// Umbrella header for the telemetry subsystem.
//
// Metric names used across the repo are centralized here so the engines,
// the beacon network, the CLIs, and the docs (docs/OBSERVABILITY.md) agree
// on spelling. Everything is header-only; link selfstab_telemetry for the
// include path.
#pragma once

#include "telemetry/event_log.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/timer.hpp"

namespace selfstab::telemetry::names {

// Executors (SyncRunner / ParallelSyncRunner).
inline constexpr const char* kRoundsTotal = "rounds_total";
inline constexpr const char* kMovesTotal = "moves_total";
inline constexpr const char* kRoundDuration = "round_duration_seconds";
inline constexpr const char* kSnapshotDuration =
    "round_snapshot_duration_seconds";
inline constexpr const char* kEvaluateDuration =
    "round_evaluate_duration_seconds";
inline constexpr const char* kCommitDuration =
    "round_commit_duration_seconds";
inline constexpr const char* kWorkerChunkDuration =
    "worker_chunk_duration_seconds";
inline constexpr const char* kWorkerImbalance = "worker_imbalance_ratio";
// Rule evaluations per second over the last round's evaluate phase (gauge;
// wall-clock-derived, so it lives in metrics, never in the event log — see
// docs/OBSERVABILITY.md on reproducibility).
inline constexpr const char* kEvaluationsPerSecond =
    "evaluations_per_second";

// Active-set scheduling (both executors; the beacon simulator reuses the
// counters for per-interval rule evaluations vs dirty-skip suppressions).
inline constexpr const char* kActiveNodes = "active_nodes_total";
inline constexpr const char* kSkippedNodes = "skipped_nodes_total";
inline constexpr const char* kActivationFraction = "round_active_fraction";

// Beacon network (adhoc::NetworkSimulator).
inline constexpr const char* kBeaconsSent = "beacons_sent_total";
inline constexpr const char* kBeaconsDelivered = "beacons_delivered_total";
inline constexpr const char* kBeaconsLost = "beacons_lost_total";
inline constexpr const char* kBeaconsCollided = "beacons_collided_total";
inline constexpr const char* kNeighborExpirations =
    "neighbor_expirations_total";
inline constexpr const char* kNeighborCacheSize = "neighbor_cache_size";

// Spatial-index / event-queue diagnostics (adhoc::NetworkSimulator). These
// shadow IndexStats, not NetworkStats: they are *mode-dependent* by design
// (the grid index exists to shrink them), so differential suites must not
// compare them across IndexMode/QueueMode.
inline constexpr const char* kRangeChecks = "range_checks_total";
inline constexpr const char* kGridOccupancy = "grid_cell_occupancy";
inline constexpr const char* kBroadcastCandidates = "broadcast_candidates";
inline constexpr const char* kCollisionCandidates = "collision_candidates";
inline constexpr const char* kEventQueueDepth = "event_queue_depth";

// Fault campaigns (chaos::RecoveryMonitor). recovery_rounds and
// containment_radius are histograms on the size ladder; the counters are
// cumulative over every fault window of the run.
inline constexpr const char* kChaosFaultsInjected = "chaos_faults_injected";
inline constexpr const char* kRecoveryRounds = "recovery_rounds";
inline constexpr const char* kContainmentRadius = "containment_radius";
inline constexpr const char* kSafetyViolations = "safety_violations_total";

}  // namespace selfstab::telemetry::names
