// Structured event sink: one JSON object per line (JSONL).
//
// Metrics aggregate; events narrate. The executors and the beacon network
// emit one record per interesting occurrence — a round executed, a beacon
// lost, a neighbor expired — and the JSONL stream is greppable and
// jq-able without any parser beyond "split on newline". Records carry only
// simulation-intrinsic fields (round indices, simulated time), never wall
// clock, so event logs of deterministic runs are byte-reproducible.
//
// Thread-safe: each record is rendered into a local buffer and appended
// under a mutex, so concurrent emitters (ParallelSyncRunner workers) cannot
// interleave partial lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "telemetry/json.hpp"

namespace selfstab::telemetry {

/// One key plus a JSON scalar. Only the types events actually need.
class Field {
 public:
  Field(std::string_view key, double v) : key_(key) { renderDouble(v); }
  // One constructor per builtin integer type (the <cstdint> typedefs alias
  // different builtins per platform and would collide).
  Field(std::string_view key, long long v) : key_(key) {
    rendered_ = std::to_string(v);
  }
  Field(std::string_view key, unsigned long long v) : key_(key) {
    rendered_ = std::to_string(v);
  }
  Field(std::string_view key, int v)
      : Field(key, static_cast<long long>(v)) {}
  Field(std::string_view key, long v)
      : Field(key, static_cast<long long>(v)) {}
  Field(std::string_view key, unsigned v)
      : Field(key, static_cast<unsigned long long>(v)) {}
  Field(std::string_view key, unsigned long v)
      : Field(key, static_cast<unsigned long long>(v)) {}
  Field(std::string_view key, bool v) : key_(key) {
    rendered_ = v ? "true" : "false";
  }
  Field(std::string_view key, std::string_view v) : key_(key) {
    rendered_ = '"' + jsonEscaped(v) + '"';
  }
  Field(std::string_view key, const char* v)
      : Field(key, std::string_view(v)) {}

  [[nodiscard]] std::string_view key() const noexcept { return key_; }
  [[nodiscard]] std::string_view rendered() const noexcept {
    return rendered_;
  }

 private:
  void renderDouble(double v) {
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    rendered_ = ss.str();
    // JSON cannot represent non-finite numbers.
    if (rendered_ == "inf" || rendered_ == "-inf" || rendered_ == "nan" ||
        rendered_ == "-nan") {
      rendered_ = "null";
    }
  }

  std::string key_;
  std::string rendered_;
};

class EventLog {
 public:
  explicit EventLog(std::ostream& out) : out_(&out) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends {"type":<type>,<fields...>}\n. Keys are escaped; duplicate
  /// keys are the caller's bug (emitted as-is, still valid JSONL lines).
  void emit(std::string_view type, std::initializer_list<Field> fields) {
    std::string line;
    line.reserve(48 + 24 * fields.size());
    line += "{\"type\":\"";
    appendJsonEscaped(line, type);
    line += '"';
    for (const Field& f : fields) {
      line += ",\"";
      appendJsonEscaped(line, f.key());
      line += "\":";
      line += f.rendered();
    }
    line += "}\n";
    const std::lock_guard<std::mutex> lock(mutex_);
    *out_ << line;
    ++lines_;
  }

  [[nodiscard]] std::size_t lineCount() const noexcept {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::ostream* out_;
  mutable std::mutex mutex_;
  std::size_t lines_ = 0;
};

}  // namespace selfstab::telemetry
