// Minimal streaming JSON writer.
//
// The telemetry layer emits machine-readable output (metric dumps, JSONL
// event logs, CLI reports) without pulling in a JSON library the container
// may not have. JsonWriter produces RFC 8259 output: strings are escaped
// (quotes, backslash, control characters as \u00XX), doubles round-trip via
// max_digits10, and non-finite doubles — which JSON cannot represent — are
// emitted as null. Structural correctness (matching begin/end, commas) is
// the writer's job; callers just say what they mean.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace selfstab::telemetry {

/// Escapes `text` as the *contents* of a JSON string (no surrounding
/// quotes). Exposed separately so ad hoc formatters can reuse it.
inline void appendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] inline std::string jsonEscaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  appendJsonEscaped(out, text);
  return out;
}

/// Streaming writer for one JSON document. Nesting is tracked so commas and
/// the key/value alternation come out right; misuse (a value where a key is
/// required, unbalanced end calls) is debug-asserted.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& beginObject() {
    prefix();
    *out_ << '{';
    stack_.push_back(Frame{Kind::Object, true, false});
    return *this;
  }

  JsonWriter& endObject() {
    assert(!stack_.empty() && stack_.back().kind == Kind::Object);
    assert(!stack_.back().keyPending && "dangling key before endObject");
    *out_ << '}';
    stack_.pop_back();
    return *this;
  }

  JsonWriter& beginArray() {
    prefix();
    *out_ << '[';
    stack_.push_back(Frame{Kind::Array, true, false});
    return *this;
  }

  JsonWriter& endArray() {
    assert(!stack_.empty() && stack_.back().kind == Kind::Array);
    *out_ << ']';
    stack_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view name) {
    assert(!stack_.empty() && stack_.back().kind == Kind::Object);
    assert(!stack_.back().keyPending && "two keys in a row");
    comma();
    writeString(name);
    *out_ << ':';
    stack_.back().keyPending = true;
    return *this;
  }

  JsonWriter& value(std::string_view text) {
    prefix();
    writeString(text);
    return *this;
  }

  JsonWriter& value(const char* text) { return value(std::string_view(text)); }

  JsonWriter& value(bool b) {
    prefix();
    *out_ << (b ? "true" : "false");
    return *this;
  }

  JsonWriter& value(double v) {
    prefix();
    // JSON has no Inf/NaN; null is the conventional stand-in.
    if (v != v || v == std::numeric_limits<double>::infinity() ||
        v == -std::numeric_limits<double>::infinity()) {
      *out_ << "null";
      return *this;
    }
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    *out_ << ss.str();
    return *this;
  }

  // One overload per builtin integer type (not the <cstdint> typedefs,
  // which alias different builtins per platform); anything narrower would
  // otherwise prefer the bool overload.
  JsonWriter& value(long long v) {
    prefix();
    *out_ << v;
    return *this;
  }

  JsonWriter& value(unsigned long long v) {
    prefix();
    *out_ << v;
    return *this;
  }

  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(long v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(unsigned v) {
    return value(static_cast<unsigned long long>(v));
  }
  JsonWriter& value(unsigned long v) {
    return value(static_cast<unsigned long long>(v));
  }

  JsonWriter& nullValue() {
    prefix();
    *out_ << "null";
    return *this;
  }

  /// True once every begin has been matched by an end.
  [[nodiscard]] bool complete() const noexcept { return stack_.empty(); }

 private:
  enum class Kind : std::uint8_t { Object, Array };
  struct Frame {
    Kind kind;
    bool first;
    bool keyPending;
  };

  void comma() {
    if (!stack_.empty()) {
      if (!stack_.back().first) *out_ << ',';
      stack_.back().first = false;
    }
  }

  /// Emits the separator appropriate before a value in the current frame.
  void prefix() {
    if (stack_.empty()) return;
    Frame& top = stack_.back();
    if (top.kind == Kind::Object) {
      assert(top.keyPending && "object value without a key");
      top.keyPending = false;
    } else {
      comma();
    }
  }

  void writeString(std::string_view text) {
    std::string escaped;
    escaped.reserve(text.size() + 2);
    escaped += '"';
    appendJsonEscaped(escaped, text);
    escaped += '"';
    *out_ << escaped;
  }

  std::ostream* out_;
  std::vector<Frame> stack_;
};

}  // namespace selfstab::telemetry
