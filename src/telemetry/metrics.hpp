// Metric primitives: lock-free counters, gauges, fixed-bucket histograms.
//
// The paper's claims are stated in counts — rounds to stabilize, moves,
// beacons heard per round — so the executors need cheap instruments they
// can bump on hot paths. All three instruments are plain std::atomic
// aggregates: ParallelSyncRunner workers increment the same Counter from
// many threads with relaxed atomics and no mutex, and a reader can snapshot
// at any time. Values only ever aggregate (no labels, no time series);
// Registry (registry.hpp) owns naming and export.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace selfstab::telemetry {

/// Monotonically increasing count (events, moves, beacons).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (cache sizes, imbalance ratios).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram in the Prometheus style: `bounds` are inclusive
/// upper edges of the finite buckets, and an implicit +Inf bucket catches
/// the rest. Buckets are chosen at construction and never change, so
/// observe() is a search plus two relaxed atomic adds — safe from any
/// number of threads concurrently.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
      throw std::invalid_argument("histogram bucket bounds must be sorted");
    }
  }

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto bucket =
        static_cast<std::size_t>(it - bounds_.begin());  // +Inf = last slot
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// Per-bucket (non-cumulative) counts; the final entry is the +Inf bucket.
  [[nodiscard]] std::vector<std::uint64_t> counts() const {
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& c : counts_) {
      out.push_back(c.load(std::memory_order_relaxed));
    }
    return out;
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<double> sum_{0.0};
};

/// Default buckets for wall-clock durations in seconds: 1-2-5 decades from
/// 1µs to 10s. Round evaluation on small graphs lands in the microsecond
/// decades; 500-node beacon rounds in the millisecond ones.
[[nodiscard]] inline std::vector<double> durationBuckets() {
  std::vector<double> bounds;
  for (double decade = 1e-6; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
  }
  bounds.push_back(10.0);
  return bounds;
}

/// Default buckets for small cardinalities (neighbor cache sizes, degrees).
[[nodiscard]] inline std::vector<double> sizeBuckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
}

/// Default buckets for large cardinalities (event-queue depth, which grows
/// with the node count): powers of 4 so million-node simulations still
/// resolve instead of piling into +Inf.
[[nodiscard]] inline std::vector<double> depthBuckets() {
  std::vector<double> bounds{0};
  for (double b = 1; b <= 16'777'216.0; b *= 4.0) bounds.push_back(b);
  return bounds;
}

/// Default buckets for fractions in [0, 1] (per-round activation fraction).
/// Log-spaced toward 0 because near-converged rounds activate a vanishing
/// share of nodes — exactly the regime the active-set scheduler targets.
[[nodiscard]] inline std::vector<double> fractionBuckets() {
  return {0,    0.001, 0.002, 0.005, 0.01, 0.02,
          0.05, 0.1,   0.2,   0.5,   1.0};
}

}  // namespace selfstab::telemetry
