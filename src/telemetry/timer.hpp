// RAII wall-clock timing into latency histograms.
//
// ScopedTimer brackets a scope with std::chrono::steady_clock reads and
// feeds the elapsed seconds to a Histogram on destruction. The histogram
// pointer may be null — the disabled-telemetry case — and then the timer
// does nothing at all, not even read the clock, so uninstrumented runs pay
// a single predictable branch per scope (the zero-overhead contract
// bench/micro_telemetry.cpp measures).
#pragma once

#include <chrono>

#include "telemetry/metrics.hpp"

namespace selfstab::telemetry {

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ScopedTimer(Histogram* sink) noexcept : sink_(sink) {
    if (sink_ != nullptr) start_ = Clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(elapsedSeconds());
  }

  /// Seconds since construction (0 when disabled). Usable mid-scope for
  /// callers that also want the raw duration (per-worker imbalance).
  [[nodiscard]] double elapsedSeconds() const noexcept {
    if (sink_ == nullptr) return 0.0;
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Histogram* sink_;
  Clock::time_point start_{};
};

/// Free-standing stopwatch for call sites that need the duration as a value
/// (e.g. to both observe it and compare across workers).
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(ScopedTimer::Clock::now()) {}

  [[nodiscard]] double elapsedSeconds() const noexcept {
    return std::chrono::duration<double>(ScopedTimer::Clock::now() - start_)
        .count();
  }

 private:
  ScopedTimer::Clock::time_point start_;
};

}  // namespace selfstab::telemetry
