// Named metric registry with JSON and Prometheus text export.
//
// One Registry per run (the CLIs create one when --metrics is given; tests
// create their own). Instruments are created on first use and live as long
// as the Registry, so hot paths resolve a name once and keep the pointer —
// the maps are touched only at registration time, under a mutex; the
// instruments themselves are lock-free (metrics.hpp).
//
// Export formats:
//  * writeJson: one JSON object {"counters":{...},"gauges":{...},
//    "histograms":{...}} — the machine-readable run summary.
//  * writePrometheus: text exposition format (# TYPE lines, cumulative
//    le-labelled histogram buckets, _sum/_count) so a scrape endpoint or
//    promtool can ingest the same numbers.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace selfstab::telemetry {

/// True for names matching [a-zA-Z_][a-zA-Z0-9_]* — valid in both the JSON
/// dump and the Prometheus exposition format.
[[nodiscard]] inline bool isValidMetricName(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!alpha(name.front())) return false;
  for (const char c : name) {
    if (!alpha(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. The returned reference is stable for the Registry's
  /// lifetime. Throws std::invalid_argument on malformed names.
  Counter& counter(std::string_view name) {
    return getOrCreate(counters_, name, [] { return new Counter(); });
  }

  Gauge& gauge(std::string_view name) {
    return getOrCreate(gauges_, name, [] { return new Gauge(); });
  }

  /// `bounds` applies on first creation; later calls with the same name
  /// return the existing histogram regardless of bounds.
  Histogram& histogram(std::string_view name, std::vector<double> bounds) {
    return getOrCreate(histograms_, name, [&] {
      return new Histogram(std::move(bounds));
    });
  }

  /// Convenience for tests and report plumbing: current value of a counter,
  /// 0 if it was never registered.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second->value();
  }

  [[nodiscard]] double gaugeValue(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(std::string(name));
    return it == gauges_.end() ? 0.0 : it->second->value();
  }

  [[nodiscard]] const Histogram* findHistogram(std::string_view name) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? nullptr : it->second.get();
  }

  void writeJson(std::ostream& out) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonWriter w(out);
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto& [name, c] : counters_) w.key(name).value(c->value());
    w.endObject();
    w.key("gauges").beginObject();
    for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto& [name, h] : histograms_) {
      w.key(name).beginObject();
      w.key("bounds").beginArray();
      for (const double b : h->bounds()) w.value(b);
      w.endArray();
      w.key("counts").beginArray();
      for (const std::uint64_t c : h->counts()) w.value(c);
      w.endArray();
      w.key("sum").value(h->sum());
      w.key("count").value(h->count());
      w.endObject();
    }
    w.endObject();
    w.endObject();
    out << '\n';
  }

  void writePrometheus(std::ostream& out) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      out << "# TYPE " << name << " counter\n"
          << name << ' ' << c->value() << '\n';
    }
    for (const auto& [name, g] : gauges_) {
      out << "# TYPE " << name << " gauge\n"
          << name << ' ' << formatDouble(g->value()) << '\n';
    }
    for (const auto& [name, h] : histograms_) {
      out << "# TYPE " << name << " histogram\n";
      const auto counts = h->counts();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h->bounds().size(); ++i) {
        cumulative += counts[i];
        out << name << "_bucket{le=\"" << formatDouble(h->bounds()[i])
            << "\"} " << cumulative << '\n';
      }
      cumulative += counts.back();
      out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n'
          << name << "_sum " << formatDouble(h->sum()) << '\n'
          << name << "_count " << cumulative << '\n';
    }
  }

 private:
  template <typename Map, typename Make>
  typename Map::mapped_type::element_type& getOrCreate(Map& map,
                                                       std::string_view name,
                                                       Make make) {
    if (!isValidMetricName(name)) {
      throw std::invalid_argument("invalid metric name '" +
                                  std::string(name) + "'");
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = map.find(std::string(name));
    if (it == map.end()) {
      it = map.emplace(std::string(name),
                       typename Map::mapped_type(make()))
               .first;
    }
    return *it->second;
  }

  [[nodiscard]] static std::string formatDouble(double v) {
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    return ss.str();
  }

  mutable std::mutex mutex_;
  // std::map: export formats list metrics in sorted order, deterministically.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace selfstab::telemetry
