// The protocol abstraction.
//
// A self-stabilizing protocol in the paper's model is a set of guarded rules
// evaluated by each node against (a) its own state and (b) the states its
// neighbors reported in their last beacon messages (Section 2). We capture
// exactly that locality: a rule sees a LocalView — self state plus one
// (id, state) pair per neighbor — and nothing else. The same Protocol object
// therefore runs unchanged under
//   * the abstract synchronous round executor   (engine/sync_runner.hpp),
//   * the classical central/distributed daemons (engine/daemons.hpp), and
//   * the discrete-event beacon simulator       (adhoc/network.hpp),
// which is the fidelity claim of this reproduction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "graph/graph.hpp"
#include "graph/id_order.hpp"

namespace selfstab::engine {

/// One neighbor as seen through its most recent beacon.
template <typename State>
struct NeighborRef {
  graph::Vertex vertex;  ///< dense index (simulation bookkeeping only)
  graph::Id id;          ///< the unique ID the algorithms compare
  const State* state;    ///< neighbor's last reported state
};

/// Everything a node may legally consult when evaluating its rules.
template <typename State>
struct LocalView {
  graph::Vertex self = graph::kNoVertex;
  graph::Id selfId = 0;
  const State* selfState = nullptr;

  /// Neighbors in increasing vertex order (the engine guarantees this; the
  /// beacon simulator sorts its caches the same way).
  std::span<const NeighborRef<State>> neighbors;

  /// Deterministic per-(run, round) entropy, identical at every node. Used
  /// by randomized wrappers (e.g. local mutual exclusion) to derive
  /// per-round priorities as hash(roundKey, id). Plain protocols ignore it.
  std::uint64_t roundKey = 0;

  [[nodiscard]] const State& state() const noexcept { return *selfState; }

  /// Looks up a neighbor entry by vertex; nullptr if v is not a neighbor.
  /// Neighbors are sorted by vertex (guaranteed above), so this is a binary
  /// search — O(log deg) instead of the old linear scan.
  [[nodiscard]] const NeighborRef<State>* find(graph::Vertex v) const noexcept {
    const auto it = std::lower_bound(
        neighbors.begin(), neighbors.end(), v,
        [](const NeighborRef<State>& nbr, graph::Vertex x) noexcept {
          return nbr.vertex < x;
        });
    if (it != neighbors.end() && it->vertex == v) return &*it;
    return nullptr;
  }
};

/// A distributed protocol: per-node guarded rules over a LocalView.
///
/// Contract: onRound() returns the node's *new* state if some rule is
/// enabled (the node is privileged and moves), or nullopt if no rule is
/// enabled. A returned state must differ from the current one — a rule whose
/// action is a no-op would make fixpoint detection meaningless.
template <typename State>
class Protocol {
 public:
  using StateType = State;

  Protocol() = default;
  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual std::optional<State> onRound(
      const LocalView<State>& view) const = 0;

  /// True if no rule of the node is enabled, *ignoring any scheduling layer*
  /// (locks, randomized suppression). Fixpoint detection uses this: a
  /// randomized wrapper like core::Synchronized may produce a zero-move
  /// round while inner rules are still enabled, which must not count as
  /// stabilization. The default matches deterministic protocols, where
  /// "cannot move" and "no rule enabled" coincide.
  [[nodiscard]] virtual bool isStable(const LocalView<State>& view) const {
    return !onRound(view).has_value();
  }

  /// True if onRound() reads LocalView::roundKey — i.e. the decision at a
  /// node can change from round to round even when its closed neighborhood
  /// is unchanged (randomized wrappers like core::Synchronized re-draw
  /// per-round priorities). The active-set scheduler relies on the converse
  /// for plain protocols ("unchanged neighborhood => still disabled"), so
  /// when this returns true it falls back to evaluating every node each
  /// round while still maintaining its snapshot incrementally.
  [[nodiscard]] virtual bool usesRoundEntropy() const noexcept { return false; }

  /// The canonical "clean" starting state (most protocols: all-null /
  /// all-zero). Self-stabilization of course never relies on it.
  [[nodiscard]] virtual State initialState(graph::Vertex v) const {
    (void)v;
    return State{};
  }
};

/// True if the node described by `view` is privileged under `p`.
template <typename State>
[[nodiscard]] bool isEnabled(const Protocol<State>& p,
                             const LocalView<State>& view) {
  return p.onRound(view).has_value();
}

}  // namespace selfstab::engine
