// Compiled fast-path kernels for protocol round evaluation.
//
// The generic path pays per-node LocalView assembly, a virtual
// Protocol::onRound call, and a const State* chase per neighbor. For the
// paper's two flagship protocols (SMM, SIS) the whole round is a pure map
// over flat data, so a per-protocol kernel can evaluate it directly off the
// CSR adjacency (engine/topology.hpp) and structure-of-arrays state — no
// views, no virtual dispatch in the inner loop, no pointer indirection.
//
// Two layers:
//  * ViewKernel  — devirtualized single-view evaluation, bit-identical to
//    Protocol::onRound. This is what the beacon simulator uses (it has no
//    static graph to mirror, only per-node caches).
//  * FlatKernel  — adds the SoA mirror plus whole-range / dirty-list batch
//    evaluation for the round executors. sync() reloads the mirror from the
//    authoritative state vector (and refreshes topology); apply() patches a
//    single slot so the Active schedule can keep the mirror hot between
//    rounds.
//
// Contract: every kernel must produce the exact same decision as the
// protocol object it mirrors, for every view — same moves, same resulting
// states, same fixpoint behavior. The KernelDifferential stress suite
// enforces this bit-identity across both executors and both schedules; see
// docs/PERFORMANCE.md.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/protocol.hpp"
#include "graph/graph.hpp"

namespace selfstab::engine {

/// Which evaluation path a runner is on. Generic = LocalView + virtual
/// onRound; Flat = SoA kernel batch evaluation.
enum class Kernel : std::uint8_t { Generic, Flat };

/// CLI-facing selection: Auto picks Flat when the protocol has a kernel
/// (SMM, SIS) and falls back to Generic otherwise.
enum class KernelMode : std::uint8_t { Auto, Generic, Flat };

[[nodiscard]] constexpr std::string_view toString(Kernel k) noexcept {
  return k == Kernel::Flat ? "flat" : "generic";
}

[[nodiscard]] constexpr std::string_view toString(KernelMode m) noexcept {
  switch (m) {
    case KernelMode::Generic:
      return "generic";
    case KernelMode::Flat:
      return "flat";
    case KernelMode::Auto:
      break;
  }
  return "auto";
}

/// Batch output: (vertex, new state) pairs, matching the runners' pending
/// queues so results splice in without conversion.
template <typename State>
using MoveList = std::vector<std::pair<graph::Vertex, State>>;

/// Devirtualized per-view evaluation, bit-identical to Protocol::onRound.
template <typename State>
class ViewKernel {
 public:
  ViewKernel() = default;
  ViewKernel(const ViewKernel&) = delete;
  ViewKernel& operator=(const ViewKernel&) = delete;
  virtual ~ViewKernel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  [[nodiscard]] virtual std::optional<State> evaluateView(
      const LocalView<State>& view) const = 0;
};

/// Whole-round evaluation over CSR adjacency + structure-of-arrays state.
///
/// Usage by a runner:
///   * Dense rounds: sync(states) once per round (the snapshot phase), then
///     evaluateRange over [0, n) — possibly chunked across workers.
///   * Active rounds: sync(states) on (re)seed, evaluateList over the dirty
///     set, then apply(v, next) for each committed move so the mirror stays
///     current without a full reload.
/// evaluateRange/evaluateList are const and touch only the mirror, so
/// disjoint chunks may be evaluated concurrently.
template <typename State>
class FlatKernel : public ViewKernel<State> {
 public:
  /// Refreshes the topology mirror and reloads the whole SoA state mirror
  /// from the authoritative vector. Handles external state edits (fault
  /// injection) and graph mutation exactly like the generic path's full
  /// snapshot copy.
  virtual void sync(const std::vector<State>& states) = 0;

  /// Patches one slot of the SoA mirror after a committed move.
  virtual void apply(graph::Vertex v, const State& s) = 0;

  /// Evaluates every vertex in [begin, end), appending moves to out.
  virtual void evaluateRange(graph::Vertex begin, graph::Vertex end,
                             std::uint64_t roundKey,
                             MoveList<State>& out) const = 0;

  /// Evaluates exactly the given vertices (ascending, as ActiveSet yields
  /// them), appending moves to out.
  virtual void evaluateList(std::span<const graph::Vertex> vertices,
                            std::uint64_t roundKey,
                            MoveList<State>& out) const = 0;
};

}  // namespace selfstab::engine
