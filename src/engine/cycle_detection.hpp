// Non-stabilization certificates.
//
// A deterministic protocol under the synchronous model induces a function on
// global configurations, so every trajectory is eventually periodic. If we
// revisit a configuration before reaching a fixpoint, the protocol provably
// never stabilizes from that start. This is how we reproduce the Section 3
// counterexample: SMM with an arbitrary-choice R2 cycles forever on C4.
//
// Only meaningful for protocols that ignore LocalView::roundKey (i.e. are
// deterministic functions of the configuration); callers assert that.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "engine/sync_runner.hpp"
#include "graph/rng.hpp"

namespace selfstab::engine {

struct TrajectoryResult {
  bool stabilized = false;   ///< reached a fixpoint
  bool cycled = false;       ///< revisited a configuration (period >= 1 would
                             ///< be a fixpoint, so cycled implies period >= 2)
  std::size_t rounds = 0;    ///< rounds until fixpoint / cycle closes / budget
  std::size_t cycleStart = 0;   ///< first round of the repeated configuration
  std::size_t cycleLength = 0;  ///< period, when cycled
};

/// Runs the protocol from `states`, recording every configuration, until a
/// fixpoint, a repeated configuration, or maxRounds.
///
/// State must be equality-comparable and provide an ADL-findable
/// `std::uint64_t hashValue(const State&)`.
template <typename State>
TrajectoryResult traceTrajectory(const Protocol<State>& protocol,
                                 const graph::Graph& g,
                                 const graph::IdAssignment& ids,
                                 std::vector<State> states,
                                 std::size_t maxRounds) {
  SyncRunner<State> runner(protocol, g, ids, /*runSeed=*/0);

  const auto hashConfig = [](const std::vector<State>& config) {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (const State& s : config) h = hashCombine(h, hashValue(s));
    return h;
  };

  std::vector<std::vector<State>> history;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> seenAt;

  TrajectoryResult result;
  for (std::size_t r = 0; r <= maxRounds; ++r) {
    // Check against history (guarding against hash collisions).
    const std::uint64_t h = hashConfig(states);
    if (auto it = seenAt.find(h); it != seenAt.end()) {
      for (const std::size_t earlier : it->second) {
        if (history[earlier] == states) {
          result.cycled = true;
          result.cycleStart = earlier;
          result.cycleLength = r - earlier;
          result.rounds = r;
          return result;
        }
      }
    }
    seenAt[h].push_back(history.size());
    history.push_back(states);

    if (r == maxRounds) break;
    const std::size_t moves = runner.step(states);
    if (moves == 0) {
      result.stabilized = true;
      result.rounds = r;
      return result;
    }
  }
  result.rounds = maxRounds;
  return result;
}

}  // namespace selfstab::engine
