// Shared helper for constructing LocalViews from a global state vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/protocol.hpp"

namespace selfstab::engine {

/// Builds LocalViews against a (graph, id assignment, state vector) triple,
/// reusing one neighbor buffer across calls. The returned view aliases both
/// the builder's buffer and the state vector passed in, so it is valid only
/// until the next build() call or state mutation.
///
/// Internally the builder mirrors the graph's adjacency into a flat CSR
/// layout (offsets + targets + pre-resolved ids) so that filling a view is a
/// cache-linear sweep over one contiguous slice instead of a pointer-chasing
/// walk over per-vertex vectors. The mirror revalidates lazily against
/// Graph::version(), so post-construction topology edits are still
/// reflected — the contract existing callers rely on.
template <typename State>
class ViewBuilder {
 public:
  ViewBuilder(const graph::Graph& g, const graph::IdAssignment& ids)
      : g_(&g), ids_(&ids) {}

  LocalView<State> build(graph::Vertex v, const std::vector<State>& states,
                         std::uint64_t roundKey = 0) {
    refresh();
    buffer_.clear();
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    buffer_.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      buffer_.push_back(
          NeighborRef<State>{targets_[i], targetIds_[i], &states[targets_[i]]});
    }
    LocalView<State> view;
    view.self = v;
    view.selfId = ids_->idOf(v);
    view.selfState = &states[v];
    view.neighbors = buffer_;
    view.roundKey = roundKey;
    return view;
  }

  /// Neighbors of v in ascending vertex order, straight from the CSR mirror.
  /// The span is invalidated by graph mutation followed by a refresh.
  [[nodiscard]] std::span<const graph::Vertex> neighborsOf(graph::Vertex v) {
    refresh();
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] const graph::Graph& graphRef() const noexcept { return *g_; }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept {
    return *ids_;
  }

 private:
  // Rebuilds the CSR mirror iff the graph mutated since the last build.
  void refresh() {
    if (fresh_ && cachedVersion_ == g_->version() &&
        offsets_.size() == g_->order() + 1) {
      return;
    }
    const std::size_t n = g_->order();
    offsets_.resize(n + 1);
    targets_.clear();
    targetIds_.clear();
    targets_.reserve(2 * g_->size());
    targetIds_.reserve(2 * g_->size());
    offsets_[0] = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      for (const graph::Vertex w : g_->neighbors(v)) {
        targets_.push_back(w);
        targetIds_.push_back(ids_->idOf(w));
      }
      offsets_[v + 1] = targets_.size();
    }
    cachedVersion_ = g_->version();
    fresh_ = true;
  }

  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::vector<NeighborRef<State>> buffer_;

  // Flat CSR mirror of the adjacency, ids pre-resolved per slot.
  std::vector<std::size_t> offsets_;
  std::vector<graph::Vertex> targets_;
  std::vector<graph::Id> targetIds_;
  std::uint64_t cachedVersion_ = 0;
  bool fresh_ = false;
};

}  // namespace selfstab::engine
