// Shared helper for constructing LocalViews from a global state vector.
#pragma once

#include <vector>

#include "engine/protocol.hpp"

namespace selfstab::engine {

/// Builds LocalViews against a (graph, id assignment, state vector) triple,
/// reusing one neighbor buffer across calls. The returned view aliases both
/// the builder's buffer and the state vector passed in, so it is valid only
/// until the next build() call or state mutation.
template <typename State>
class ViewBuilder {
 public:
  ViewBuilder(const graph::Graph& g, const graph::IdAssignment& ids)
      : g_(&g), ids_(&ids) {}

  LocalView<State> build(graph::Vertex v, const std::vector<State>& states,
                         std::uint64_t roundKey = 0) {
    buffer_.clear();
    for (const graph::Vertex w : g_->neighbors(v)) {
      buffer_.push_back(NeighborRef<State>{w, ids_->idOf(w), &states[w]});
    }
    LocalView<State> view;
    view.self = v;
    view.selfId = ids_->idOf(v);
    view.selfState = &states[v];
    view.neighbors = buffer_;
    view.roundKey = roundKey;
    return view;
  }

  [[nodiscard]] const graph::Graph& graphRef() const noexcept { return *g_; }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept {
    return *ids_;
  }

 private:
  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::vector<NeighborRef<State>> buffer_;
};

}  // namespace selfstab::engine
