// Shared helper for constructing LocalViews from a global state vector.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/protocol.hpp"
#include "engine/topology.hpp"

namespace selfstab::engine {

/// Builds LocalViews against a (graph, id assignment, state vector) triple,
/// reusing one neighbor buffer across calls. The returned view aliases both
/// the builder's buffer and the state vector passed in, so it is valid only
/// until the next build() call or state mutation.
///
/// The CSR adjacency mirror itself lives in CsrTopology (engine/topology.hpp)
/// so the flat protocol kernels can share the exact same layout; the builder
/// only adds the per-call NeighborRef materialization. The mirror revalidates
/// lazily against Graph::version(), so post-construction topology edits are
/// still reflected — the contract existing callers rely on.
template <typename State>
class ViewBuilder {
 public:
  ViewBuilder(const graph::Graph& g, const graph::IdAssignment& ids)
      : topo_(g, ids) {}

  LocalView<State> build(graph::Vertex v, const std::vector<State>& states,
                         std::uint64_t roundKey = 0) {
    topo_.refresh();
    buffer_.clear();
    const std::span<const graph::Vertex> nbrs = topo_.neighbors(v);
    const std::span<const graph::Id> nbrIds = topo_.neighborIds(v);
    buffer_.reserve(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      buffer_.push_back(
          NeighborRef<State>{nbrs[i], nbrIds[i], &states[nbrs[i]]});
    }
    LocalView<State> view;
    view.self = v;
    view.selfId = topo_.idOf(v);
    view.selfState = &states[v];
    view.neighbors = buffer_;
    view.roundKey = roundKey;
    return view;
  }

  /// Neighbors of v in ascending vertex order, straight from the CSR mirror.
  /// The span is invalidated by graph mutation followed by a refresh.
  [[nodiscard]] std::span<const graph::Vertex> neighborsOf(graph::Vertex v) {
    topo_.refresh();
    return topo_.neighbors(v);
  }

  [[nodiscard]] const graph::Graph& graphRef() const noexcept {
    return topo_.graphRef();
  }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept {
    return topo_.ids();
  }

 private:
  CsrTopology topo_;
  std::vector<NeighborRef<State>> buffer_;
};

}  // namespace selfstab::engine
