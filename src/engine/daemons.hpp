// Classical daemon schedulers.
//
// Self-stabilizing algorithms are traditionally analyzed under an adversarial
// daemon that picks which privileged node(s) move (the paper contrasts its
// beacon-round model with exactly this "adversary daemon" paradigm, and its
// baseline [15] — Hsu & Huang's matching algorithm — assumes a *central*
// daemon). These executors let us run such baselines and measure moves.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "engine/protocol.hpp"
#include "engine/view_builder.hpp"
#include "graph/rng.hpp"

namespace selfstab::engine {

/// How the central daemon picks among privileged nodes.
enum class CentralPolicy {
  Random,      ///< uniformly random privileged node
  MinId,       ///< smallest-ID privileged node
  MaxId,       ///< largest-ID privileged node
  RoundRobin,  ///< weakly fair rotation over vertices
  Adversarial  ///< greedy: the move minimizing a caller-supplied potential
};

struct DaemonResult {
  std::size_t moves = 0;    ///< individual rule executions
  bool stabilized = false;  ///< no node privileged at the end
};

/// Serial (central daemon) execution: one privileged node moves at a time,
/// reading live states.
template <typename State>
class CentralDaemonRunner {
 public:
  /// Potential function for the adversarial policy; the adversary picks the
  /// enabled move whose successor configuration has the *lowest* potential,
  /// i.e. maximum potential = most progress, adversary stalls it.
  using Potential = std::function<double(const std::vector<State>&)>;

  CentralDaemonRunner(const Protocol<State>& protocol, const graph::Graph& g,
                      const graph::IdAssignment& ids, CentralPolicy policy,
                      std::uint64_t seed = 0)
      : protocol_(&protocol),
        builder_(g, ids),
        policy_(policy),
        rng_(seed) {}

  void setPotential(Potential potential) { potential_ = std::move(potential); }

  /// Executes one daemon step (one move). Returns false at a fixpoint.
  bool step(std::vector<State>& states) {
    std::vector<graph::Vertex> enabled;
    std::vector<State> nextStates;
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (auto next = protocol_->onRound(builder_.build(v, states))) {
        enabled.push_back(v);
        nextStates.push_back(std::move(*next));
      }
    }
    if (enabled.empty()) return false;

    const std::size_t pick = choose(enabled, nextStates, states);
    states[enabled[pick]] = nextStates[pick];
    return true;
  }

  /// Runs until fixpoint or maxMoves.
  DaemonResult run(std::vector<State>& states, std::size_t maxMoves) {
    DaemonResult result;
    while (result.moves < maxMoves) {
      if (!step(states)) {
        result.stabilized = true;
        return result;
      }
      ++result.moves;
    }
    // Check whether we stopped exactly on a fixpoint.
    result.stabilized = true;
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (isEnabled(*protocol_, builder_.build(v, states))) {
        result.stabilized = false;
        break;
      }
    }
    return result;
  }

 private:
  std::size_t choose(const std::vector<graph::Vertex>& enabled,
                     const std::vector<State>& nextStates,
                     const std::vector<State>& states) {
    switch (policy_) {
      case CentralPolicy::Random:
        return static_cast<std::size_t>(rng_.below(enabled.size()));
      case CentralPolicy::MinId: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < enabled.size(); ++i) {
          if (builder_.ids().less(enabled[i], enabled[best])) best = i;
        }
        return best;
      }
      case CentralPolicy::MaxId: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < enabled.size(); ++i) {
          if (builder_.ids().less(enabled[best], enabled[i])) best = i;
        }
        return best;
      }
      case CentralPolicy::RoundRobin: {
        // First enabled vertex at or after the rotation cursor.
        for (std::size_t i = 0; i < enabled.size(); ++i) {
          if (enabled[i] >= cursor_) {
            cursor_ = enabled[i] + 1;
            return i;
          }
        }
        cursor_ = enabled.front() + 1;
        return 0;
      }
      case CentralPolicy::Adversarial: {
        assert(potential_ && "Adversarial policy needs a potential function");
        double bestValue = std::numeric_limits<double>::infinity();
        std::size_t best = 0;
        std::vector<State> scratch = states;
        for (std::size_t i = 0; i < enabled.size(); ++i) {
          scratch[enabled[i]] = nextStates[i];
          const double value = potential_(scratch);
          scratch[enabled[i]] = states[enabled[i]];
          if (value < bestValue) {
            bestValue = value;
            best = i;
          }
        }
        return best;
      }
    }
    return 0;
  }

  const Protocol<State>* protocol_;
  ViewBuilder<State> builder_;
  CentralPolicy policy_;
  Rng rng_;
  Potential potential_;
  graph::Vertex cursor_ = 0;
};

/// Distributed daemon: at each step an arbitrary non-empty subset of the
/// privileged nodes moves simultaneously on a snapshot of the current
/// configuration. We model the adversary's choice as an independent coin per
/// privileged node (forcing at least one mover to keep the daemon live).
template <typename State>
class DistributedDaemonRunner {
 public:
  DistributedDaemonRunner(const Protocol<State>& protocol,
                          const graph::Graph& g,
                          const graph::IdAssignment& ids,
                          double moveProbability, std::uint64_t seed = 0)
      : protocol_(&protocol),
        builder_(g, ids),
        moveProbability_(moveProbability),
        rng_(seed) {}

  /// One distributed step. Returns the number of nodes that moved
  /// (0 only at a fixpoint).
  std::size_t step(std::vector<State>& states) {
    std::vector<graph::Vertex> enabled;
    std::vector<State> nextStates;
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (auto next = protocol_->onRound(builder_.build(v, states))) {
        enabled.push_back(v);
        nextStates.push_back(std::move(*next));
      }
    }
    if (enabled.empty()) return 0;

    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < enabled.size(); ++i) {
      if (rng_.chance(moveProbability_)) chosen.push_back(i);
    }
    if (chosen.empty()) {
      chosen.push_back(static_cast<std::size_t>(rng_.below(enabled.size())));
    }
    for (const std::size_t i : chosen) states[enabled[i]] = nextStates[i];
    return chosen.size();
  }

  DaemonResult run(std::vector<State>& states, std::size_t maxSteps) {
    DaemonResult result;
    for (std::size_t s = 0; s < maxSteps; ++s) {
      const std::size_t moved = step(states);
      if (moved == 0) {
        result.stabilized = true;
        return result;
      }
      result.moves += moved;
    }
    return result;
  }

 private:
  const Protocol<State>* protocol_;
  ViewBuilder<State> builder_;
  double moveProbability_;
  Rng rng_;
};

}  // namespace selfstab::engine
