// Round-scheduling policy for the synchronous executors.
//
// Dense is the textbook synchronous daemon: every round snapshots the full
// state vector and evaluates every node. Active exploits the locality of the
// paper's rules — a node's guard reads only its closed neighborhood, so a node
// whose closed neighborhood did not change since its last (disabled)
// evaluation is still disabled. Tracking that "dirty" set lets near-converged
// runs evaluate a handful of nodes per round instead of all n, without
// changing a single committed state: trajectories are bit-identical to Dense.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace selfstab::engine {

/// Which nodes a synchronous executor evaluates each round.
enum class Schedule {
  /// Evaluate every node every round (reference semantics).
  Dense,
  /// Evaluate only nodes whose closed neighborhood changed in the previous
  /// round. Seeded with all nodes at round 0 and after fault injection.
  Active,
};

[[nodiscard]] constexpr std::string_view toString(Schedule s) noexcept {
  switch (s) {
    case Schedule::Dense:
      return "dense";
    case Schedule::Active:
      return "active";
  }
  return "?";
}

/// Splits `count` work items into `parts` contiguous ranges of near-equal
/// total weight. Returns parts+1 boundary indices with bounds[0] == 0 and
/// bounds[parts] == count; range p is [bounds[p], bounds[p+1]). Boundary p
/// closes at the first item where the weight prefix reaches p/parts of the
/// total, so a part exceeds the ideal share by at most one item's weight
/// (a single huge item may leave later parts empty — that is the balanced
/// answer). Zero total weight falls back to equal-count splitting.
///
/// The parallel executor uses weight(v) = deg(v)+1 — the cost of one rule
/// evaluation is dominated by the neighbor scan — so skewed (power-law)
/// graphs no longer pin one worker on all the hubs while the rest idle.
template <typename WeightFn>
[[nodiscard]] std::vector<std::size_t> weightedBoundaries(std::size_t count,
                                                          std::size_t parts,
                                                          WeightFn&& weightOf) {
  if (parts == 0) parts = 1;
  std::vector<std::size_t> bounds(parts + 1, count);
  bounds[0] = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += weightOf(i);
  if (total == 0) {
    const std::size_t chunk = (count + parts - 1) / parts;
    for (std::size_t p = 1; p < parts; ++p) {
      bounds[p] = std::min(count, p * chunk);
    }
    return bounds;
  }
  std::uint64_t acc = 0;
  std::size_t p = 1;
  for (std::size_t i = 0; i < count && p < parts; ++i) {
    acc += weightOf(i);
    while (p < parts && acc * parts >= p * total) {
      bounds[p] = i + 1;
      ++p;
    }
  }
  return bounds;
}

/// Epoch-stamped dirty set with deterministic (ascending-vertex) iteration.
///
/// Two generations are live at once: current() is the sorted set of nodes to
/// evaluate this round; mark() accumulates next round's set, deduplicated by
/// comparing a per-vertex stamp against the current epoch. advance() rotates
/// generations in O(k log k) for k marked nodes — no O(n) clears.
class ActiveSet {
 public:
  /// Resets to an unseeded set over n vertices.
  void reset(std::size_t n) {
    stamp_.assign(n, 0);
    epoch_ = 0;
    current_.clear();
    next_.clear();
    seeded_ = false;
  }

  /// True once seedAll() has run since the last reset().
  [[nodiscard]] bool seeded() const noexcept { return seeded_; }

  /// Makes every vertex current; clears any pending marks.
  void seedAll() {
    ++epoch_;
    next_.clear();
    current_.resize(stamp_.size());
    std::iota(current_.begin(), current_.end(), graph::Vertex{0});
    seeded_ = true;
  }

  /// Queues v for the next generation (idempotent within a generation).
  void mark(graph::Vertex v) {
    if (stamp_[v] != epoch_) {
      stamp_[v] = epoch_;
      next_.push_back(v);
    }
  }

  /// Rotates: the marked set becomes current (sorted ascending).
  void advance() {
    std::sort(next_.begin(), next_.end());
    current_.swap(next_);
    next_.clear();
    ++epoch_;
  }

  /// The vertices to evaluate this round, in ascending order.
  [[nodiscard]] std::span<const graph::Vertex> current() const noexcept {
    return current_;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;  // seedAll/advance bump this before any mark()
  std::vector<graph::Vertex> current_;
  std::vector<graph::Vertex> next_;
  bool seeded_ = false;
};

}  // namespace selfstab::engine
