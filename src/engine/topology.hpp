// Flat CSR mirror of a graph's adjacency with pre-resolved IDs.
//
// Extracted from ViewBuilder (PR 2) so the same mirror can back both the
// generic LocalView path and the flat protocol kernels (engine/kernel.hpp):
// offsets + targets + per-slot neighbor IDs in one contiguous layout, so a
// per-node evaluation is a cache-linear sweep over one slice instead of a
// pointer-chasing walk over per-vertex vectors. The mirror revalidates
// lazily against Graph::version(), so post-construction topology edits
// (mobility, fault campaigns) are reflected on the next refresh().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/id_order.hpp"

namespace selfstab::engine {

class CsrTopology {
 public:
  CsrTopology(const graph::Graph& g, const graph::IdAssignment& ids)
      : g_(&g), ids_(&ids) {}

  /// Rebuilds the mirror iff the graph mutated since the last refresh.
  /// Returns true when a rebuild happened, so owners of derived caches
  /// (e.g. SisKernel's bigger-neighbor slices) know to rebuild them too.
  bool refresh() {
    if (fresh_ && cachedVersion_ == g_->version() &&
        offsets_.size() == g_->order() + 1) {
      return false;
    }
    const std::size_t n = g_->order();
    offsets_.resize(n + 1);
    targets_.clear();
    targetIds_.clear();
    targets_.reserve(2 * g_->size());
    targetIds_.reserve(2 * g_->size());
    offsets_[0] = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      for (const graph::Vertex w : g_->neighbors(v)) {
        targets_.push_back(w);
        targetIds_.push_back(ids_->idOf(w));
      }
      offsets_[v + 1] = targets_.size();
    }
    cachedVersion_ = g_->version();
    fresh_ = true;
    return true;
  }

  [[nodiscard]] std::size_t order() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Neighbors of v in ascending vertex order. Valid until the next
  /// refresh() that observes a graph mutation.
  [[nodiscard]] std::span<const graph::Vertex> neighbors(
      graph::Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// IDs of v's neighbors, slot-aligned with neighbors(v).
  [[nodiscard]] std::span<const graph::Id> neighborIds(
      graph::Vertex v) const noexcept {
    return {targetIds_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  [[nodiscard]] std::size_t degree(graph::Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] graph::Id idOf(graph::Vertex v) const noexcept {
    return ids_->idOf(v);
  }

  [[nodiscard]] const graph::Graph& graphRef() const noexcept { return *g_; }
  [[nodiscard]] const graph::IdAssignment& ids() const noexcept {
    return *ids_;
  }

 private:
  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::vector<std::size_t> offsets_;
  std::vector<graph::Vertex> targets_;
  std::vector<graph::Id> targetIds_;
  std::uint64_t cachedVersion_ = 0;
  bool fresh_ = false;
};

}  // namespace selfstab::engine
