// Telemetry hookup shared by the two synchronous executors.
//
// Runners resolve registry names once at attach time and keep raw pointers,
// so the per-round cost of enabled telemetry is atomic adds and clock
// reads — and the cost of *disabled* telemetry is a null-pointer test per
// instrument (ScopedTimer skips the clock entirely on a null sink).
// Attaching is optional and never changes trajectories: telemetry observes
// the execution, it does not participate in it.
#pragma once

#include "telemetry/telemetry.hpp"

namespace selfstab::engine {

/// Resolved metric endpoints; all null when telemetry is disabled.
struct RunnerMetrics {
  telemetry::Counter* rounds = nullptr;
  telemetry::Counter* moves = nullptr;
  telemetry::Histogram* roundDuration = nullptr;
  telemetry::Histogram* snapshotDuration = nullptr;
  telemetry::Histogram* evaluateDuration = nullptr;
  telemetry::Histogram* commitDuration = nullptr;
  telemetry::Histogram* workerChunkDuration = nullptr;  // parallel only
  telemetry::Gauge* workerImbalance = nullptr;          // parallel only
  telemetry::Gauge* evaluationsPerSecond = nullptr;
  telemetry::Counter* activeNodes = nullptr;
  telemetry::Counter* skippedNodes = nullptr;
  telemetry::Histogram* activationFraction = nullptr;
};

/// `parallel` selects which phase instruments exist: the serial runner has
/// a distinct commit phase; the parallel runner fuses evaluate+commit in
/// its workers and instead reports per-worker chunk durations plus a
/// max/mean imbalance gauge.
[[nodiscard]] inline RunnerMetrics resolveRunnerMetrics(
    telemetry::Registry* registry, bool parallel) {
  RunnerMetrics m;
  if (registry == nullptr) return m;
  namespace names = telemetry::names;
  m.rounds = &registry->counter(names::kRoundsTotal);
  m.moves = &registry->counter(names::kMovesTotal);
  m.roundDuration = &registry->histogram(names::kRoundDuration,
                                         telemetry::durationBuckets());
  m.snapshotDuration = &registry->histogram(names::kSnapshotDuration,
                                            telemetry::durationBuckets());
  m.evaluateDuration = &registry->histogram(names::kEvaluateDuration,
                                            telemetry::durationBuckets());
  if (parallel) {
    m.workerChunkDuration = &registry->histogram(
        names::kWorkerChunkDuration, telemetry::durationBuckets());
    m.workerImbalance = &registry->gauge(names::kWorkerImbalance);
  } else {
    m.commitDuration = &registry->histogram(names::kCommitDuration,
                                            telemetry::durationBuckets());
  }
  m.evaluationsPerSecond = &registry->gauge(names::kEvaluationsPerSecond);
  m.activeNodes = &registry->counter(names::kActiveNodes);
  m.skippedNodes = &registry->counter(names::kSkippedNodes);
  m.activationFraction = &registry->histogram(names::kActivationFraction,
                                              telemetry::fractionBuckets());
  return m;
}

/// Sets the evaluations-per-second gauge from one round's evaluate phase.
/// Wall-clock-derived, so it goes to metrics only — round *events* must stay
/// byte-reproducible. No-op when telemetry is disabled or nothing was timed.
inline void recordEvaluationRate(const RunnerMetrics& m, std::size_t evaluated,
                                 double seconds) {
  if (m.evaluationsPerSecond != nullptr && seconds > 0.0 && evaluated > 0) {
    m.evaluationsPerSecond->set(static_cast<double>(evaluated) / seconds);
  }
}

/// Records one round's activation: `evaluated` of `n` nodes had their rules
/// run (dense rounds report n of n). No-op when telemetry is disabled.
inline void recordActivation(const RunnerMetrics& m, std::size_t evaluated,
                             std::size_t n) {
  if (m.activeNodes != nullptr) m.activeNodes->inc(evaluated);
  if (m.skippedNodes != nullptr) m.skippedNodes->inc(n - evaluated);
  if (m.activationFraction != nullptr && n > 0) {
    m.activationFraction->observe(static_cast<double>(evaluated) /
                                  static_cast<double>(n));
  }
}

}  // namespace selfstab::engine
