#include "engine/fault.hpp"

#include "graph/algorithms.hpp"

namespace selfstab::engine {

std::size_t perturbTopology(graph::Graph& g, Rng& rng, std::size_t count,
                            bool keepConnected) {
  const std::size_t n = g.order();
  if (n < 2) return 0;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<graph::Vertex>(rng.below(n));
    auto v = static_cast<graph::Vertex>(rng.below(n - 1));
    if (v >= u) ++v;
    const bool nowPresent = g.toggleEdge(u, v);
    if (!nowPresent && keepConnected && !graph::isConnected(g)) {
      g.addEdge(u, v);  // roll back the disconnecting removal
      continue;
    }
    ++applied;
  }
  return applied;
}

}  // namespace selfstab::engine
