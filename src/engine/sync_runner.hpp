// The paper's execution model: synchronous rounds.
//
// Section 2 defines a round as "a period of time in which each node in the
// system receives beacon messages from all its neighbors"; a node then
// evaluates its rules on that consistent snapshot and all privileged nodes
// move simultaneously. SyncRunner implements exactly that semantics: one
// snapshot per round, every enabled node moves.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "engine/kernel.hpp"
#include "engine/protocol.hpp"
#include "engine/runner_telemetry.hpp"
#include "engine/schedule.hpp"
#include "engine/view_builder.hpp"
#include "graph/rng.hpp"

namespace selfstab::engine {

/// Outcome of a bounded run.
struct RunResult {
  std::size_t rounds = 0;      ///< rounds executed (not counting the final
                               ///< all-quiet verification round)
  std::size_t totalMoves = 0;  ///< sum of per-round move counts
  bool stabilized = false;     ///< reached a global fixpoint within budget

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

template <typename State>
class SyncRunner {
 public:
  /// Observer invoked after every executed round with (roundIndex,
  /// statesBefore, statesAfter, movesThisRound). roundIndex is 0-based: the
  /// transition S_t -> S_{t+1} of the paper reports index t.
  using Observer = std::function<void(std::size_t, const std::vector<State>&,
                                      const std::vector<State>&, std::size_t)>;

  SyncRunner(const Protocol<State>& protocol, const graph::Graph& g,
             const graph::IdAssignment& ids, std::uint64_t runSeed = 0,
             Schedule schedule = Schedule::Dense)
      : protocol_(&protocol),
        builder_(g, ids),
        runSeed_(runSeed),
        schedule_(schedule) {
    assert(ids.order() == g.order());
  }

  /// The protocol's canonical clean start.
  [[nodiscard]] std::vector<State> initialStates() const {
    const auto n = builder_.graphRef().order();
    std::vector<State> states;
    states.reserve(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      states.push_back(protocol_->initialState(v));
    }
    return states;
  }

  /// Attaches metric/event sinks (either may be null; pass nulls to
  /// detach). Telemetry is purely observational — trajectories are
  /// bit-identical with or without it — and with no registry attached
  /// step() performs no clock reads or atomic writes at all.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events = nullptr) {
    metrics_ = resolveRunnerMetrics(registry, /*parallel=*/false);
    events_ = events;
  }

  /// Executes one synchronous round in place; returns the number of moves.
  ///
  /// Dense schedule — three phases, each timed when telemetry is attached:
  /// *snapshot* (copy S_t), *evaluate* (run every node's rules against the
  /// snapshot), *commit* (apply the moves, forming S_{t+1}).
  ///
  /// Active schedule — same round semantics, bit-identical trajectory, but
  /// only *dirty* nodes (closed neighborhood changed in the previous round)
  /// are evaluated, and the snapshot is maintained incrementally instead of
  /// recopied. Soundness: a rule reads only N[v], so an unchanged closed
  /// neighborhood means an unchanged decision — a clean node that was
  /// disabled stays disabled. Protocols that read roundKey
  /// (Protocol::usesRoundEntropy) break that implication, so for them every
  /// node is evaluated each round; the incremental snapshot still avoids the
  /// O(n) copy.
  std::size_t step(std::vector<State>& states) {
    assert(states.size() == builder_.graphRef().order());
    return schedule_ == Schedule::Active ? stepActive(states)
                                         : stepDense(states);
  }

  /// Tells an Active-schedule runner that states or topology were mutated
  /// externally (fault injection, topology churn) behind its back: the next
  /// round re-snapshots and evaluates every node, exactly like round 0.
  /// Harmless no-op under the Dense schedule. Topology edits through the
  /// runner's own Graph reference are detected automatically via
  /// Graph::version(), but state-vector edits are invisible without this.
  void invalidateSchedule() noexcept { scheduleValid_ = false; }

  [[nodiscard]] Schedule schedule() const noexcept { return schedule_; }

  /// Installs a flat protocol kernel (core/kernels.hpp) as the evaluation
  /// path for subsequent rounds; nullptr reverts to the generic LocalView
  /// path. The kernel must mirror this runner's protocol — trajectories stay
  /// bit-identical either way (the KernelDifferential suite enforces it).
  /// Counts as an external mutation for Active-schedule bookkeeping.
  void setKernel(std::unique_ptr<FlatKernel<State>> kernel) {
    kernel_ = std::move(kernel);
    scheduleValid_ = false;
  }

  /// Which evaluation path step() is on.
  [[nodiscard]] Kernel kernel() const noexcept {
    return kernel_ != nullptr ? Kernel::Flat : Kernel::Generic;
  }

  /// Runs until a fixpoint or until maxRounds rounds have executed. The
  /// final zero-move verification round is not counted in
  /// RunResult::rounds, matching the paper's convention that "stabilizes in
  /// k rounds" means S_k is stable. For randomized wrappers
  /// (core::Synchronized), a zero-move round in which some node still has
  /// an enabled rule — everyone lost its neighborhood lottery — is *not* a
  /// fixpoint; it counts as a round of scheduling delay and the run
  /// continues.
  RunResult run(std::vector<State>& states, std::size_t maxRounds,
                const Observer& observer = nullptr) {
    RunResult result;
    while (result.rounds < maxRounds) {
      const std::size_t before = round_;
      std::vector<State> prev;
      if (observer) prev = states;
      const std::size_t moves = step(states);
      if (observer) observer(before, prev, states, moves);
      if (moves == 0 && isFixpoint(states)) {
        result.stabilized = true;
        return result;
      }
      ++result.rounds;
      result.totalMoves += moves;
    }
    // Budget exhausted; check whether we happen to sit on a fixpoint.
    result.stabilized = isFixpoint(states);
    return result;
  }

  /// True if no node has an enabled rule in `states` (modulo scheduling —
  /// see Protocol::isStable).
  [[nodiscard]] bool isFixpoint(const std::vector<State>& states) {
    const std::uint64_t key = roundKey(round_);
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (!protocol_->isStable(builder_.build(v, states, key))) return false;
    }
    return true;
  }

  /// Vertices privileged in `states` (diagnostics and daemon baselines).
  [[nodiscard]] std::vector<graph::Vertex> enabledVertices(
      const std::vector<State>& states) {
    const std::uint64_t key = roundKey(round_);
    std::vector<graph::Vertex> enabled;
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (isEnabled(*protocol_, builder_.build(v, states, key))) {
        enabled.push_back(v);
      }
    }
    return enabled;
  }

  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Per-round entropy shared by all nodes: hash of (runSeed, round).
  [[nodiscard]] std::uint64_t roundKey(std::size_t r) const noexcept {
    return hashCombine(runSeed_, r);
  }

 private:
  std::size_t stepDense(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const std::uint64_t key = roundKey(round_);
    const std::size_t n = states.size();
    {
      // The flat path's sync() is the snapshot phase: a full SoA reload from
      // the authoritative vector plays the role of the S_t copy.
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      if (kernel_ != nullptr) {
        kernel_->sync(states);
      } else {
        snapshot_ = states;
      }
    }
    pending_.clear();
    {
      const telemetry::ScopedTimer t(metrics_.evaluateDuration);
      const EvalStopwatch stopwatch(metrics_, n);
      if (kernel_ != nullptr) {
        kernel_->evaluateRange(0, static_cast<graph::Vertex>(n), key,
                               pending_);
      } else {
        for (graph::Vertex v = 0; v < n; ++v) evaluateOne(v, key);
      }
    }
    {
      const telemetry::ScopedTimer t(metrics_.commitDuration);
      for (auto& [v, next] : pending_) states[v] = std::move(next);
    }
    return finishRound(n, n);
  }

  std::size_t stepActive(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const std::uint64_t key = roundKey(round_);
    const std::size_t n = states.size();
    {
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      if (!scheduleValid_ || seededCount_ != n ||
          graphVersion_ != builder_.graphRef().version()) {
        if (kernel_ != nullptr) {
          kernel_->sync(states);  // the flat path's full (re)seed copy
        } else {
          snapshot_ = states;  // the only full copy Active ever makes
        }
        seededCount_ = n;
        active_.reset(n);
        active_.seedAll();
        graphVersion_ = builder_.graphRef().version();
        scheduleValid_ = true;
      }
    }
    pending_.clear();
    std::size_t evaluated = 0;
    {
      const telemetry::ScopedTimer t(metrics_.evaluateDuration);
      if (protocol_->usesRoundEntropy()) {
        evaluated = n;
        const EvalStopwatch stopwatch(metrics_, evaluated);
        if (kernel_ != nullptr) {
          kernel_->evaluateRange(0, static_cast<graph::Vertex>(n), key,
                                 pending_);
        } else {
          for (graph::Vertex v = 0; v < n; ++v) evaluateOne(v, key);
        }
      } else {
        evaluated = active_.current().size();
        const EvalStopwatch stopwatch(metrics_, evaluated);
        if (kernel_ != nullptr) {
          kernel_->evaluateList(active_.current(), key, pending_);
        } else {
          for (const graph::Vertex v : active_.current()) evaluateOne(v, key);
        }
      }
    }
    {
      const telemetry::ScopedTimer t(metrics_.commitDuration);
      for (auto& [v, next] : pending_) {
        states[v] = next;
        if (kernel_ != nullptr) {
          kernel_->apply(v, next);  // keep the SoA mirror hot
        } else {
          snapshot_[v] = std::move(next);
        }
        // The mover and everyone who can see it re-evaluate next round.
        active_.mark(v);
        for (const graph::Vertex w : builder_.neighborsOf(v)) active_.mark(w);
      }
      active_.advance();
    }
    return finishRound(evaluated, n);
  }

  // Evaluates v's rules against the snapshot; queues a move if enabled.
  void evaluateOne(graph::Vertex v, std::uint64_t key) {
    const LocalView<State> view = builder_.build(v, snapshot_, key);
    if (auto next = protocol_->onRound(view)) {
      assert(!(*next == snapshot_[v]) && "a move must change the node's state");
      pending_.emplace_back(v, std::move(*next));
    }
  }

  // Times one evaluate phase into the evaluations_per_second gauge; skips
  // the clock entirely when no registry is attached.
  class EvalStopwatch {
   public:
    EvalStopwatch(const RunnerMetrics& metrics, std::size_t evaluated)
        : metrics_(metrics), evaluated_(evaluated) {
      if (metrics_.evaluationsPerSecond != nullptr) {
        start_ = std::chrono::steady_clock::now();
      }
    }
    ~EvalStopwatch() {
      if (metrics_.evaluationsPerSecond != nullptr) {
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
        recordEvaluationRate(metrics_, evaluated_, seconds);
      }
    }
    EvalStopwatch(const EvalStopwatch&) = delete;
    EvalStopwatch& operator=(const EvalStopwatch&) = delete;

   private:
    const RunnerMetrics& metrics_;
    std::size_t evaluated_;
    std::chrono::steady_clock::time_point start_;
  };

  // Shared round epilogue: telemetry, round event, round counter.
  std::size_t finishRound(std::size_t evaluated, std::size_t n) {
    const std::size_t moves = pending_.size();
    if (metrics_.rounds != nullptr) metrics_.rounds->inc();
    if (metrics_.moves != nullptr) metrics_.moves->inc(moves);
    recordActivation(metrics_, evaluated, n);
    if (events_ != nullptr) {
      events_->emit("round", {{"executor", "sync"},
                              {"round", round_},
                              {"moves", moves},
                              {"active", evaluated},
                              {"kernel", toString(kernel())}});
    }
    ++round_;
    return moves;
  }

  const Protocol<State>* protocol_;
  ViewBuilder<State> builder_;
  std::uint64_t runSeed_;
  Schedule schedule_;
  std::size_t round_ = 0;
  std::vector<State> snapshot_;
  std::vector<std::pair<graph::Vertex, State>> pending_;
  std::unique_ptr<FlatKernel<State>> kernel_;
  ActiveSet active_;
  std::size_t seededCount_ = 0;
  bool scheduleValid_ = false;
  std::uint64_t graphVersion_ = 0;
  RunnerMetrics metrics_;
  telemetry::EventLog* events_ = nullptr;
};

/// Convenience: clean start, run to fixpoint.
template <typename State>
RunResult runFromClean(const Protocol<State>& protocol, const graph::Graph& g,
                       const graph::IdAssignment& ids, std::size_t maxRounds,
                       std::vector<State>* finalStates = nullptr,
                       std::uint64_t runSeed = 0) {
  SyncRunner<State> runner(protocol, g, ids, runSeed);
  std::vector<State> states = runner.initialStates();
  const RunResult result = runner.run(states, maxRounds);
  if (finalStates != nullptr) *finalStates = std::move(states);
  return result;
}

}  // namespace selfstab::engine
