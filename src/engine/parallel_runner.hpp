// Multithreaded synchronous round executor.
//
// The synchronous model is embarrassingly parallel within a round: every
// node's rule reads only the immutable snapshot S_t and writes only its own
// slot of S_{t+1}. ParallelSyncRunner exploits that with a persistent worker
// pool and static vertex partitioning, producing *bit-identical*
// trajectories to SyncRunner (same snapshot, same rules, no scheduling
// freedom) — the tests assert exact agreement. Intended for simulating
// large networks; on small n the barrier overhead dominates and the serial
// runner wins.
//
// Protocols must be thread-compatible: onRound() is logically const and may
// be invoked concurrently for different vertices. Protocols with mutable
// scratch buffers (LeaderTreeProtocol, AggregationProtocol) are NOT safe
// here; the runner cannot detect that, so callers choose. All protocols in
// core/ except those two are stateless evaluators.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "engine/protocol.hpp"
#include "engine/runner_telemetry.hpp"
#include "engine/schedule.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"

namespace selfstab::engine {

template <typename State>
class ParallelSyncRunner {
 public:
  ParallelSyncRunner(const Protocol<State>& protocol, const graph::Graph& g,
                     const graph::IdAssignment& ids, std::size_t threads,
                     std::uint64_t runSeed = 0,
                     Schedule schedule = Schedule::Dense)
      : protocol_(&protocol),
        g_(&g),
        ids_(&ids),
        runSeed_(runSeed),
        threadCount_(threads == 0 ? 1 : threads),
        schedule_(schedule) {
    workerSeconds_.assign(threadCount_, 0.0);
    workerMoved_.resize(threadCount_);
    workers_.reserve(threadCount_);
    for (std::size_t t = 0; t < threadCount_; ++t) {
      workers_.emplace_back([this, t] { workerLoop(t); });
    }
  }

  ParallelSyncRunner(const ParallelSyncRunner&) = delete;
  ParallelSyncRunner& operator=(const ParallelSyncRunner&) = delete;

  ~ParallelSyncRunner() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Attaches metric/event sinks (either may be null). The registration
  /// handshake goes through the worker mutex, so calling this between
  /// rounds is safe; calling it while step() is in flight is not.
  /// Telemetry never changes the trajectory — workers bump shared lock-free
  /// counters and time their own chunks, nothing more.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events = nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = resolveRunnerMetrics(registry, /*parallel=*/true);
    events_ = events;
  }

  /// One synchronous round; identical semantics (and bit-identical
  /// trajectory) to SyncRunner::step under either schedule. Under Active,
  /// each worker records the vertices it moved; the main thread merges those
  /// per-worker queues after the round barrier into the next round's dirty
  /// set and patches the snapshot in place instead of recopying it.
  std::size_t step(std::vector<State>& states) {
    return schedule_ == Schedule::Active ? stepActive(states)
                                         : stepDense(states);
  }

  /// See SyncRunner::invalidateSchedule — call after mutating states
  /// between rounds under the Active schedule.
  void invalidateSchedule() noexcept { scheduleValid_ = false; }

  [[nodiscard]] Schedule schedule() const noexcept { return schedule_; }

  /// Runs until fixpoint or maxRounds; same contract as SyncRunner::run
  /// (fixpoint = zero moves and every node isStable).
  RunResult run(std::vector<State>& states, std::size_t maxRounds) {
    RunResult result;
    while (result.rounds < maxRounds) {
      const std::size_t moves = step(states);
      if (moves == 0 && isFixpoint(states)) {
        result.stabilized = true;
        return result;
      }
      ++result.rounds;
      result.totalMoves += moves;
    }
    result.stabilized = isFixpoint(states);
    return result;
  }

  [[nodiscard]] bool isFixpoint(const std::vector<State>& states) {
    ViewBuilder<State> builder(*g_, *ids_);
    const std::uint64_t key = hashCombine(runSeed_, round_);
    for (graph::Vertex v = 0; v < states.size(); ++v) {
      if (!protocol_->isStable(builder.build(v, states, key))) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return threadCount_;
  }

  /// Rounds executed so far; mirrors SyncRunner so campaign drivers can run
  /// either executor through the same round-indexed fault plans.
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t roundKey(std::size_t round) const noexcept {
    return hashCombine(runSeed_, round);
  }

 private:
  std::size_t stepDense(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    {
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      snapshot_ = states;
    }
    workIsAll_ = true;
    workCount_ = snapshot_.size();
    trackMoves_ = false;
    const std::size_t moves = dispatchRound(states);
    return finishRound(moves, /*evaluated=*/snapshot_.size());
  }

  std::size_t stepActive(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    {
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      if (!scheduleValid_ || snapshot_.size() != states.size() ||
          graphVersion_ != g_->version()) {
        snapshot_ = states;  // the only full copy Active ever makes
        active_.reset(states.size());
        active_.seedAll();
        graphVersion_ = g_->version();
        scheduleValid_ = true;
      }
    }
    // Entropic protocols re-draw per-round priorities, so "unchanged
    // neighborhood => still disabled" does not hold: evaluate everyone, but
    // keep the incremental snapshot.
    workIsAll_ = protocol_->usesRoundEntropy();
    work_ = active_.current();
    workCount_ = workIsAll_ ? snapshot_.size() : work_.size();
    trackMoves_ = true;
    for (auto& moved : workerMoved_) moved.clear();
    const std::size_t evaluated = workCount_;
    const std::size_t moves = dispatchRound(states);
    // Merge the per-worker moved queues (written before the pending_ release
    // barrier, read after it): patch the snapshot and mark each mover's
    // closed neighborhood dirty for the next round.
    for (const auto& moved : workerMoved_) {
      for (const graph::Vertex v : moved) {
        snapshot_[v] = states[v];
        active_.mark(v);
        for (const graph::Vertex w : g_->neighbors(v)) active_.mark(w);
      }
    }
    active_.advance();
    return finishRound(moves, evaluated);
  }

  // Wakes the pool for one round and blocks until every chunk is done.
  std::size_t dispatchRound(std::vector<State>& states) {
    target_ = &states;
    roundKey_ = hashCombine(runSeed_, round_);
    moves_.store(0, std::memory_order_relaxed);
    pending_.store(threadCount_, std::memory_order_release);
    const telemetry::ScopedTimer evaluateTimer(metrics_.evaluateDuration);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++generation_;
    }
    wake_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
    // moves_total was already bumped by the workers (lock-free, per-chunk).
    return moves_.load(std::memory_order_relaxed);
  }

  // Shared round epilogue: telemetry, round event, round counter.
  std::size_t finishRound(std::size_t moves, std::size_t evaluated) {
    if (metrics_.rounds != nullptr) metrics_.rounds->inc();
    if (metrics_.workerImbalance != nullptr) {
      metrics_.workerImbalance->set(imbalanceRatio());
    }
    recordActivation(metrics_, evaluated, snapshot_.size());
    if (events_ != nullptr) {
      events_->emit("round", {{"executor", "parallel"},
                              {"round", round_},
                              {"moves", moves},
                              {"active", evaluated},
                              {"workers", threadCount_}});
    }
    ++round_;
    return moves;
  }

  void workerLoop(std::size_t index) {
    ViewBuilder<State> builder(*g_, *ids_);
    std::uint64_t seenGeneration = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return shutdown_ || generation_ != seenGeneration;
        });
        if (shutdown_) return;
        seenGeneration = generation_;
      }
      // Static block partition of the round's work list: the full vertex
      // range (dense / entropic rounds) or the sorted active set.
      const std::size_t n = workCount_;
      const std::size_t chunk = (n + threadCount_ - 1) / threadCount_;
      const std::size_t begin = index * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      const bool timed = metrics_.workerChunkDuration != nullptr;
      std::chrono::steady_clock::time_point chunkStart;
      if (timed) chunkStart = std::chrono::steady_clock::now();
      std::size_t localMoves = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const graph::Vertex v =
            workIsAll_ ? static_cast<graph::Vertex>(i) : work_[i];
        const auto view = builder.build(v, snapshot_, roundKey_);
        if (auto next = protocol_->onRound(view)) {
          (*target_)[v] = std::move(*next);
          // Own queue only; the main thread merges after the barrier.
          if (trackMoves_) workerMoved_[index].push_back(v);
          ++localMoves;
        }
      }
      if (timed) {
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          chunkStart)
                .count();
        metrics_.workerChunkDuration->observe(seconds);
        // Own slot only; the main thread reads after the pending_ barrier.
        workerSeconds_[index] = seconds;
      }
      // Workers bump the shared counter directly — the lock-free contract
      // the telemetry TSan run (scripts/run_all.sh) exercises.
      if (metrics_.moves != nullptr) metrics_.moves->inc(localMoves);
      moves_.fetch_add(localMoves, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_one();
      }
    }
  }

  /// Load imbalance of the last round: slowest worker chunk over the mean
  /// chunk time (1.0 = perfectly balanced). 0 until a timed round ran.
  [[nodiscard]] double imbalanceRatio() const {
    double sum = 0.0;
    double worst = 0.0;
    for (const double s : workerSeconds_) {
      sum += s;
      worst = std::max(worst, s);
    }
    if (sum <= 0.0) return 0.0;
    const double mean = sum / static_cast<double>(workerSeconds_.size());
    return worst / mean;
  }

  const Protocol<State>* protocol_;
  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::uint64_t runSeed_;
  std::size_t threadCount_;
  Schedule schedule_;
  std::size_t round_ = 0;

  std::vector<State> snapshot_;
  std::vector<State>* target_ = nullptr;
  std::uint64_t roundKey_ = 0;

  // Active-set bookkeeping (main thread only, except workerMoved_ slots).
  ActiveSet active_;
  bool scheduleValid_ = false;
  std::uint64_t graphVersion_ = 0;
  std::span<const graph::Vertex> work_;
  std::size_t workCount_ = 0;
  bool workIsAll_ = true;
  bool trackMoves_ = false;
  std::vector<std::vector<graph::Vertex>> workerMoved_;
  std::atomic<std::size_t> moves_{0};
  std::atomic<std::size_t> pending_{0};

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  RunnerMetrics metrics_;
  telemetry::EventLog* events_ = nullptr;
  std::vector<double> workerSeconds_;
  std::vector<std::thread> workers_;
};

}  // namespace selfstab::engine
