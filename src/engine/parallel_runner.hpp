// Multithreaded synchronous round executor.
//
// The synchronous model is embarrassingly parallel within a round: every
// node's rule reads only the immutable snapshot S_t and writes only its own
// slot of S_{t+1}. ParallelSyncRunner exploits that with a persistent worker
// pool and degree-weighted contiguous vertex partitioning (weight deg(v)+1,
// so power-law hubs spread across workers), producing *bit-identical*
// trajectories to SyncRunner (same snapshot, same rules, no scheduling
// freedom) — the tests assert exact agreement. Intended for simulating
// large networks; on small n the barrier overhead dominates and the serial
// runner wins. Rounds evaluate through either the generic LocalView path or
// a flat protocol kernel (setKernel); fixpoint sweeps always use the pool
// with an early-exit flag.
//
// Protocols must be thread-compatible: onRound() is logically const and may
// be invoked concurrently for different vertices. Protocols with mutable
// scratch buffers (LeaderTreeProtocol, AggregationProtocol) are NOT safe
// here; the runner cannot detect that, so callers choose. All protocols in
// core/ except those two are stateless evaluators.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "engine/kernel.hpp"
#include "engine/protocol.hpp"
#include "engine/runner_telemetry.hpp"
#include "engine/schedule.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"

namespace selfstab::engine {

template <typename State>
class ParallelSyncRunner {
 public:
  ParallelSyncRunner(const Protocol<State>& protocol, const graph::Graph& g,
                     const graph::IdAssignment& ids, std::size_t threads,
                     std::uint64_t runSeed = 0,
                     Schedule schedule = Schedule::Dense)
      : protocol_(&protocol),
        g_(&g),
        ids_(&ids),
        runSeed_(runSeed),
        threadCount_(threads == 0 ? 1 : threads),
        schedule_(schedule) {
    workerSeconds_.assign(threadCount_, 0.0);
    workerMoved_.resize(threadCount_);
    workers_.reserve(threadCount_);
    for (std::size_t t = 0; t < threadCount_; ++t) {
      workers_.emplace_back([this, t] { workerLoop(t); });
    }
  }

  ParallelSyncRunner(const ParallelSyncRunner&) = delete;
  ParallelSyncRunner& operator=(const ParallelSyncRunner&) = delete;

  ~ParallelSyncRunner() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  /// Attaches metric/event sinks (either may be null). The registration
  /// handshake goes through the worker mutex, so calling this between
  /// rounds is safe; calling it while step() is in flight is not.
  /// Telemetry never changes the trajectory — workers bump shared lock-free
  /// counters and time their own chunks, nothing more.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events = nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    metrics_ = resolveRunnerMetrics(registry, /*parallel=*/true);
    events_ = events;
  }

  /// One synchronous round; identical semantics (and bit-identical
  /// trajectory) to SyncRunner::step under either schedule. Under Active,
  /// each worker records the vertices it moved; the main thread merges those
  /// per-worker queues after the round barrier into the next round's dirty
  /// set and patches the snapshot in place instead of recopying it.
  std::size_t step(std::vector<State>& states) {
    return schedule_ == Schedule::Active ? stepActive(states)
                                         : stepDense(states);
  }

  /// See SyncRunner::invalidateSchedule — call after mutating states
  /// between rounds under the Active schedule.
  void invalidateSchedule() noexcept { scheduleValid_ = false; }

  [[nodiscard]] Schedule schedule() const noexcept { return schedule_; }

  /// Installs a flat protocol kernel (core/kernels.hpp); nullptr reverts to
  /// the generic path. Goes through the worker mutex like attachTelemetry:
  /// safe between rounds, not while step() is in flight. Trajectories stay
  /// bit-identical to the generic path and to SyncRunner on either setting.
  void setKernel(std::unique_ptr<FlatKernel<State>> kernel) {
    const std::lock_guard<std::mutex> lock(mutex_);
    kernel_ = std::move(kernel);
    scheduleValid_ = false;
  }

  /// Which evaluation path step() is on.
  [[nodiscard]] Kernel kernel() const noexcept {
    return kernel_ != nullptr ? Kernel::Flat : Kernel::Generic;
  }

  /// Runs until fixpoint or maxRounds; same contract as SyncRunner::run
  /// (fixpoint = zero moves and every node isStable).
  RunResult run(std::vector<State>& states, std::size_t maxRounds) {
    RunResult result;
    while (result.rounds < maxRounds) {
      const std::size_t moves = step(states);
      if (moves == 0 && isFixpoint(states)) {
        result.stabilized = true;
        return result;
      }
      ++result.rounds;
      result.totalMoves += moves;
    }
    result.stabilized = isFixpoint(states);
    return result;
  }

  /// Dispatches the stability sweep across the worker pool (degree-weighted
  /// chunks, shared early-exit flag) instead of the old full serial scan —
  /// run() calls this after every zero-move round, so near-converged runs
  /// were paying a single-threaded O(n + m) sweep per quiet round. The
  /// decision is exact, not approximate: a worker that finds an unstable
  /// node raises the flag, and the others bail at their next poll.
  /// Always evaluates isStable through the generic view path — `states` may
  /// be any external vector (chaos masking), which a flat mirror has not
  /// seen.
  [[nodiscard]] bool isFixpoint(const std::vector<State>& states) {
    workIsAll_ = true;
    workCount_ = states.size();
    partitionWork();
    checkStates_ = &states;
    roundKey_ = hashCombine(runSeed_, round_);
    unstable_.store(false, std::memory_order_relaxed);
    command_ = Command::Stable;
    pending_.store(threadCount_, std::memory_order_release);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++generation_;
    }
    wake_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
    command_ = Command::Round;
    checkStates_ = nullptr;
    return !unstable_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t threadCount() const noexcept {
    return threadCount_;
  }

  /// Rounds executed so far; mirrors SyncRunner so campaign drivers can run
  /// either executor through the same round-indexed fault plans.
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t roundKey(std::size_t round) const noexcept {
    return hashCombine(runSeed_, round);
  }

 private:
  std::size_t stepDense(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const std::size_t n = states.size();
    {
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      if (kernel_ != nullptr) {
        kernel_->sync(states);  // the flat path's snapshot phase
      } else {
        snapshot_ = states;
      }
    }
    workIsAll_ = true;
    workCount_ = n;
    trackMoves_ = false;
    partitionWork();
    const std::size_t moves = dispatchRound(states);
    return finishRound(moves, /*evaluated=*/n, n);
  }

  std::size_t stepActive(std::vector<State>& states) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const std::size_t n = states.size();
    {
      const telemetry::ScopedTimer t(metrics_.snapshotDuration);
      if (!scheduleValid_ || seededCount_ != n ||
          graphVersion_ != g_->version()) {
        if (kernel_ != nullptr) {
          kernel_->sync(states);  // the flat path's full (re)seed copy
        } else {
          snapshot_ = states;  // the only full copy Active ever makes
        }
        seededCount_ = n;
        active_.reset(n);
        active_.seedAll();
        graphVersion_ = g_->version();
        scheduleValid_ = true;
      }
    }
    // Entropic protocols re-draw per-round priorities, so "unchanged
    // neighborhood => still disabled" does not hold: evaluate everyone, but
    // keep the incremental snapshot.
    workIsAll_ = protocol_->usesRoundEntropy();
    work_ = active_.current();
    workCount_ = workIsAll_ ? n : work_.size();
    trackMoves_ = true;
    for (auto& moved : workerMoved_) moved.clear();
    partitionWork();
    const std::size_t evaluated = workCount_;
    const std::size_t moves = dispatchRound(states);
    // Merge the per-worker moved queues (written before the pending_ release
    // barrier, read after it): patch the snapshot (SoA mirror on the flat
    // path) and mark each mover's closed neighborhood dirty for next round.
    for (const auto& moved : workerMoved_) {
      for (const graph::Vertex v : moved) {
        if (kernel_ != nullptr) {
          kernel_->apply(v, states[v]);
        } else {
          snapshot_[v] = states[v];
        }
        active_.mark(v);
        for (const graph::Vertex w : g_->neighbors(v)) active_.mark(w);
      }
    }
    active_.advance();
    return finishRound(moves, evaluated, n);
  }

  // Computes this round's degree-weighted partition boundaries: worker t
  // owns work items [bounds_[t], bounds_[t+1]). Weighting by deg(v)+1
  // balances the neighbor-scan cost, not the item count, so power-law hubs
  // spread across the pool (the worker_imbalance_ratio gauge tracks the
  // effect). The dense/full-range split depends only on (graph version, n),
  // so it is cached across rounds; active rounds repartition their (small)
  // dirty list each time.
  void partitionWork() {
    if (workIsAll_) {
      if (!denseBoundsValid_ || denseBoundsVersion_ != g_->version() ||
          denseBoundsCount_ != workCount_) {
        denseBounds_ = weightedBoundaries(
            workCount_, threadCount_, [this](std::size_t i) {
              return static_cast<std::uint64_t>(
                         g_->degree(static_cast<graph::Vertex>(i))) +
                     1;
            });
        denseBoundsValid_ = true;
        denseBoundsVersion_ = g_->version();
        denseBoundsCount_ = workCount_;
      }
      bounds_ = denseBounds_;
    } else {
      bounds_ = weightedBoundaries(
          workCount_, threadCount_, [this](std::size_t i) {
            return static_cast<std::uint64_t>(g_->degree(work_[i])) + 1;
          });
    }
  }

  // Wakes the pool for one round and blocks until every chunk is done.
  std::size_t dispatchRound(std::vector<State>& states) {
    target_ = &states;
    roundKey_ = hashCombine(runSeed_, round_);
    moves_.store(0, std::memory_order_relaxed);
    pending_.store(threadCount_, std::memory_order_release);
    const telemetry::ScopedTimer evaluateTimer(metrics_.evaluateDuration);
    const bool timeEvals = metrics_.evaluationsPerSecond != nullptr;
    std::chrono::steady_clock::time_point evalStart;
    if (timeEvals) evalStart = std::chrono::steady_clock::now();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++generation_;
    }
    wake_.notify_all();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
    }
    if (timeEvals) {
      recordEvaluationRate(
          metrics_, workCount_,
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        evalStart)
              .count());
    }
    // moves_total was already bumped by the workers (lock-free, per-chunk).
    return moves_.load(std::memory_order_relaxed);
  }

  // Shared round epilogue: telemetry, round event, round counter.
  std::size_t finishRound(std::size_t moves, std::size_t evaluated,
                          std::size_t n) {
    if (metrics_.rounds != nullptr) metrics_.rounds->inc();
    if (metrics_.workerImbalance != nullptr) {
      metrics_.workerImbalance->set(imbalanceRatio());
    }
    recordActivation(metrics_, evaluated, n);
    if (events_ != nullptr) {
      events_->emit("round", {{"executor", "parallel"},
                              {"round", round_},
                              {"moves", moves},
                              {"active", evaluated},
                              {"workers", threadCount_},
                              {"kernel", toString(kernel())}});
    }
    ++round_;
    return moves;
  }

  void workerLoop(std::size_t index) {
    ViewBuilder<State> builder(*g_, *ids_);
    MoveList<State> scratch;  // flat-kernel output for this worker's chunk
    std::uint64_t seenGeneration = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return shutdown_ || generation_ != seenGeneration;
        });
        if (shutdown_) return;
        seenGeneration = generation_;
      }
      // Degree-weighted partition of the round's work list (partitionWork):
      // the full vertex range (dense / entropic / stability dispatches) or
      // the sorted active set.
      const std::size_t begin = bounds_[index];
      const std::size_t end = bounds_[index + 1];
      if (command_ == Command::Stable) {
        stabilityScan(builder, begin, end);
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          const std::lock_guard<std::mutex> lock(mutex_);
          done_.notify_one();
        }
        continue;
      }
      const bool timed = metrics_.workerChunkDuration != nullptr;
      std::chrono::steady_clock::time_point chunkStart;
      if (timed) chunkStart = std::chrono::steady_clock::now();
      std::size_t localMoves = 0;
      if (kernel_ != nullptr) {
        scratch.clear();
        if (workIsAll_) {
          kernel_->evaluateRange(static_cast<graph::Vertex>(begin),
                                 static_cast<graph::Vertex>(end), roundKey_,
                                 scratch);
        } else {
          kernel_->evaluateList(work_.subspan(begin, end - begin), roundKey_,
                                scratch);
        }
        for (auto& [v, next] : scratch) {
          (*target_)[v] = std::move(next);
          // Own queue only; the main thread merges after the barrier.
          if (trackMoves_) workerMoved_[index].push_back(v);
        }
        localMoves = scratch.size();
      } else {
        for (std::size_t i = begin; i < end; ++i) {
          const graph::Vertex v =
              workIsAll_ ? static_cast<graph::Vertex>(i) : work_[i];
          const auto view = builder.build(v, snapshot_, roundKey_);
          if (auto next = protocol_->onRound(view)) {
            (*target_)[v] = std::move(*next);
            // Own queue only; the main thread merges after the barrier.
            if (trackMoves_) workerMoved_[index].push_back(v);
            ++localMoves;
          }
        }
      }
      if (timed) {
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          chunkStart)
                .count();
        metrics_.workerChunkDuration->observe(seconds);
        // Own slot only; the main thread reads after the pending_ barrier.
        workerSeconds_[index] = seconds;
      }
      // Workers bump the shared counter directly — the lock-free contract
      // the telemetry TSan run (scripts/run_all.sh) exercises.
      if (metrics_.moves != nullptr) metrics_.moves->inc(localMoves);
      moves_.fetch_add(localMoves, std::memory_order_relaxed);
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(mutex_);
        done_.notify_one();
      }
    }
  }

  // One worker's share of an isFixpoint sweep: scan [begin, end) of the
  // vertex range, raise the shared flag on the first unstable node, and
  // poll it every 32 vertices so a hit anywhere ends the whole sweep early.
  // Relaxed ordering suffices — the pending_ countdown publishes the flag
  // to the main thread, and a stale poll read only delays the exit.
  void stabilityScan(ViewBuilder<State>& builder, std::size_t begin,
                     std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (((i - begin) & 31U) == 0 &&
          unstable_.load(std::memory_order_relaxed)) {
        return;
      }
      const auto v = static_cast<graph::Vertex>(i);
      if (!protocol_->isStable(builder.build(v, *checkStates_, roundKey_))) {
        unstable_.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Load imbalance of the last round: slowest worker chunk over the mean
  /// chunk time (1.0 = perfectly balanced). 0 until a timed round ran.
  [[nodiscard]] double imbalanceRatio() const {
    double sum = 0.0;
    double worst = 0.0;
    for (const double s : workerSeconds_) {
      sum += s;
      worst = std::max(worst, s);
    }
    if (sum <= 0.0) return 0.0;
    const double mean = sum / static_cast<double>(workerSeconds_.size());
    return worst / mean;
  }

  const Protocol<State>* protocol_;
  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::uint64_t runSeed_;
  std::size_t threadCount_;
  Schedule schedule_;
  std::size_t round_ = 0;

  std::vector<State> snapshot_;
  std::vector<State>* target_ = nullptr;
  std::uint64_t roundKey_ = 0;
  std::unique_ptr<FlatKernel<State>> kernel_;

  // What a generation dispatch asks the pool to do: evaluate a round or
  // run a stability (isFixpoint) sweep.
  enum class Command : std::uint8_t { Round, Stable };
  Command command_ = Command::Round;
  const std::vector<State>* checkStates_ = nullptr;
  std::atomic<bool> unstable_{false};

  // Active-set bookkeeping (main thread only, except workerMoved_ slots).
  ActiveSet active_;
  std::size_t seededCount_ = 0;
  bool scheduleValid_ = false;
  std::uint64_t graphVersion_ = 0;
  std::span<const graph::Vertex> work_;
  std::size_t workCount_ = 0;
  bool workIsAll_ = true;
  bool trackMoves_ = false;

  // Partition boundaries for the current dispatch (written by the main
  // thread before the generation bump, read by workers after it). The
  // full-range split is cached: it changes only with topology or n.
  std::vector<std::size_t> bounds_;
  std::vector<std::size_t> denseBounds_;
  bool denseBoundsValid_ = false;
  std::uint64_t denseBoundsVersion_ = 0;
  std::size_t denseBoundsCount_ = 0;
  std::vector<std::vector<graph::Vertex>> workerMoved_;
  std::atomic<std::size_t> moves_{0};
  std::atomic<std::size_t> pending_{0};

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  RunnerMetrics metrics_;
  telemetry::EventLog* events_ = nullptr;
  std::vector<double> workerSeconds_;
  std::vector<std::thread> workers_;
};

}  // namespace selfstab::engine
