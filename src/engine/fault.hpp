// Fault injection and adversarial initial configurations.
//
// Self-stabilization means convergence from *every* configuration — whether
// it arose from transient memory corruption, message garbling, or topology
// churn. These helpers manufacture such configurations: uniformly random
// states, targeted corruption of a stabilized configuration, and (for small
// graphs) exhaustive enumeration of the full configuration space, which gives
// exact worst-case round counts for the bound checks of Theorems 1 and 2.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::engine {

/// Builds a configuration by sampling each node's state independently.
/// Sampler signature: State(graph::Vertex v, const graph::Graph& g, Rng&).
template <typename State, typename Sampler>
std::vector<State> randomConfiguration(const graph::Graph& g, Rng& rng,
                                       Sampler sampler) {
  std::vector<State> states;
  states.reserve(g.order());
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    states.push_back(sampler(v, g, rng));
  }
  return states;
}

/// Resamples each node's state independently with probability `fraction`
/// (a transient-fault burst hitting a random subset of nodes). Returns the
/// number of nodes corrupted.
template <typename State, typename Sampler>
std::size_t corruptConfiguration(std::vector<State>& states,
                                 const graph::Graph& g, Rng& rng,
                                 double fraction, Sampler sampler) {
  std::size_t corrupted = 0;
  for (graph::Vertex v = 0; v < states.size(); ++v) {
    if (rng.chance(fraction)) {
      states[v] = sampler(v, g, rng);
      ++corrupted;
    }
  }
  return corrupted;
}

/// Resamples exactly the listed vertices (a targeted fault, e.g. a chaos
/// plan's explicit victim list). Returns the number corrupted.
template <typename State, typename Sampler>
std::size_t corruptVertices(std::vector<State>& states, const graph::Graph& g,
                            Rng& rng, const std::vector<graph::Vertex>& victims,
                            Sampler sampler) {
  for (const graph::Vertex v : victims) {
    states[v] = sampler(v, g, rng);
  }
  return victims.size();
}

/// corruptConfiguration plus the scheduling hook an Active-schedule runner
/// needs: a transient fault changes states behind the runner's back, so its
/// dirty-set bookkeeping is stale until invalidateSchedule() reseeds it with
/// every node. Works with SyncRunner and ParallelSyncRunner alike; under the
/// Dense schedule the invalidation is a harmless no-op.
template <typename Runner, typename State, typename Sampler>
std::size_t corruptAndReschedule(Runner& runner, std::vector<State>& states,
                                 const graph::Graph& g, Rng& rng,
                                 double fraction, Sampler sampler) {
  const std::size_t corrupted =
      corruptConfiguration(states, g, rng, fraction, sampler);
  runner.invalidateSchedule();
  return corrupted;
}

/// Exhaustively enumerates the cartesian product of per-vertex candidate
/// state lists, invoking `callback(const std::vector<State>&)` once per
/// configuration. Intended for small graphs: the count is the product of the
/// candidate-list sizes. Callback returning void; enumeration is in odometer
/// order (vertex 0 varies fastest).
template <typename State, typename Callback>
void enumerateConfigurations(
    const std::vector<std::vector<State>>& candidates, Callback callback) {
  const std::size_t n = candidates.size();
  std::vector<std::size_t> index(n, 0);
  std::vector<State> config;
  config.reserve(n);
  for (const auto& options : candidates) {
    if (options.empty()) return;  // empty product
    config.push_back(options.front());
  }
  for (;;) {
    callback(const_cast<const std::vector<State>&>(config));
    std::size_t pos = 0;
    while (pos < n) {
      if (++index[pos] < candidates[pos].size()) {
        config[pos] = candidates[pos][index[pos]];
        break;
      }
      index[pos] = 0;
      config[pos] = candidates[pos][0];
      ++pos;
    }
    if (pos == n) return;
  }
}

/// Total number of configurations enumerateConfigurations would visit.
template <typename State>
std::size_t configurationCount(
    const std::vector<std::vector<State>>& candidates) {
  std::size_t total = 1;
  for (const auto& options : candidates) total *= options.size();
  return total;
}

/// Random topology churn: flips `count` uniformly random vertex pairs
/// (adds the edge if absent, removes it if present), modeling link
/// creation/failure due to host mobility (Section 2). When `keepConnected`
/// is set, a removal that would disconnect the graph is rolled back.
std::size_t perturbTopology(graph::Graph& g, Rng& rng, std::size_t count,
                            bool keepConnected);

}  // namespace selfstab::engine
