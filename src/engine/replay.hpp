// Schedule recording and replay.
//
// Under the synchronous model the trajectory is fully determined by the
// initial configuration (for deterministic protocols), but debugging a
// randomized wrapper or comparing executors benefits from an explicit
// record of *who moved when*. recordRun captures the per-round mover sets;
// replaySchedule re-executes them move-for-move — applying a recorded
// round's moves to the current snapshot regardless of what the protocol
// would choose to schedule — so a failing trajectory can be replayed,
// truncated, or inspected round by round.
#pragma once

#include <cstddef>
#include <vector>

#include "engine/sync_runner.hpp"

namespace selfstab::engine {

/// Per-round mover sets: schedule[r] lists the vertices that moved in
/// round r, in increasing vertex order.
using MoverSchedule = std::vector<std::vector<graph::Vertex>>;

template <typename State>
struct RecordedRun {
  RunResult result;
  MoverSchedule schedule;
  std::vector<State> initialStates;
};

/// Runs `protocol` from `states` (mutated in place) recording the mover
/// set of every executed round.
template <typename State>
RecordedRun<State> recordRun(const Protocol<State>& protocol,
                             const graph::Graph& g,
                             const graph::IdAssignment& ids,
                             std::vector<State>& states,
                             std::size_t maxRounds,
                             std::uint64_t runSeed = 0) {
  RecordedRun<State> recording;
  recording.initialStates = states;
  SyncRunner<State> runner(protocol, g, ids, runSeed);
  recording.result = runner.run(
      states, maxRounds,
      [&](std::size_t, const std::vector<State>& before,
          const std::vector<State>& after, std::size_t) {
        std::vector<graph::Vertex> movers;
        for (graph::Vertex v = 0; v < before.size(); ++v) {
          if (!(before[v] == after[v])) movers.push_back(v);
        }
        recording.schedule.push_back(std::move(movers));
      });
  // Drop the trailing all-quiet verification round, if any.
  while (!recording.schedule.empty() && recording.schedule.back().empty()) {
    recording.schedule.pop_back();
  }
  return recording;
}

/// Replays `schedule` from `states`: in each round, exactly the recorded
/// movers apply their rule against the round's snapshot (vertices whose
/// rule is not enabled at replay time are skipped — a diagnostic signal
/// that the replayed context diverged). Returns the number of moves
/// applied. roundKeys are re-derived from `runSeed` just like the original
/// run, so replaying with the original seed reproduces randomized wrappers
/// exactly.
template <typename State>
std::size_t replaySchedule(const Protocol<State>& protocol,
                           const graph::Graph& g,
                           const graph::IdAssignment& ids,
                           std::vector<State>& states,
                           const MoverSchedule& schedule,
                           std::uint64_t runSeed = 0) {
  ViewBuilder<State> builder(g, ids);
  std::size_t applied = 0;
  for (std::size_t r = 0; r < schedule.size(); ++r) {
    const std::uint64_t key = hashCombine(runSeed, r);
    const std::vector<State> snapshot = states;
    for (const graph::Vertex v : schedule[r]) {
      if (auto next = protocol.onRound(builder.build(v, snapshot, key))) {
        states[v] = std::move(*next);
        ++applied;
      }
    }
  }
  return applied;
}

}  // namespace selfstab::engine
