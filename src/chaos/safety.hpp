// Protocol-specific safety predicates for fault campaigns.
//
// Containment asks how far a fault's effects travel; safety asks whether
// they *harm* nodes that were doing fine. Each check inspects one committed
// round transition (before -> after) and counts transitions the protocol
// should never inflict on a non-faulty node. For the paper's protocols both
// checks are invariants — campaigns gate them at exactly zero:
//
//  * SMM   a matched edge (mutual pointers) between two non-faulty nodes is
//          never broken: a married node has no enabled rule, so only a fault
//          at one endpoint can separate the pair.
//  * SIS   a non-faulty member with no in-set neighbor never leaves the set:
//          SIS's only leave rule requires a dominating in-set neighbor.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/monitors.hpp"
#include "core/matching_state.hpp"
#include "core/sis.hpp"
#include "graph/graph.hpp"

namespace selfstab::chaos {

/// SafetyCheck for the matching protocols (PointerState).
[[nodiscard]] inline SafetyCheck<core::PointerState> smmSafetyCheck() {
  return [](const graph::Graph& g,
            const std::vector<core::PointerState>& before,
            const std::vector<core::PointerState>& after,
            const std::vector<std::uint8_t>& faulty) {
    std::size_t violations = 0;
    for (const auto& e : g.edges()) {
      if (faulty[e.u] != 0 || faulty[e.v] != 0) continue;
      const bool wasMatched = before[e.u].ptr == e.v && before[e.v].ptr == e.u;
      if (!wasMatched) continue;
      const bool stillMatched = after[e.u].ptr == e.v && after[e.v].ptr == e.u;
      if (!stillMatched) ++violations;
    }
    return violations;
  };
}

/// SafetyCheck for SIS (BitState).
[[nodiscard]] inline SafetyCheck<core::BitState> sisSafetyCheck() {
  return [](const graph::Graph& g, const std::vector<core::BitState>& before,
            const std::vector<core::BitState>& after,
            const std::vector<std::uint8_t>& faulty) {
    std::size_t violations = 0;
    for (graph::Vertex v = 0; v < before.size(); ++v) {
      if (faulty[v] != 0) continue;
      if (!before[v].in || after[v].in) continue;  // only set-leavers
      bool hadInNeighbor = false;
      for (const graph::Vertex w : g.neighbors(v)) {
        if (before[w].in) {
          hadInNeighbor = true;
          break;
        }
      }
      if (!hadInNeighbor) ++violations;
    }
    return violations;
  };
}

}  // namespace selfstab::chaos
