// Online recovery monitors for fault campaigns.
//
// Manne et al. analyze a self-stabilizing matching by how far a single
// fault's effects travel and how long repair takes; RecoveryMonitor measures
// both, live, for every event of a FaultPlan:
//
//  * recovery time   rounds from the fault until the verifier predicate
//                    holds again (masked stability under the engines,
//                    quiescence under the beacon simulator);
//  * containment     the largest BFS distance — on the topology at fault
//    radius          time — from the injected node set to any node that
//                    changed state during recovery (n if a changed node is
//                    unreachable from every injected node);
//  * safety          protocol-specific "a healthy node was harmed" checks
//    violations      (e.g. a matched edge between two non-faulty nodes
//                    broken), counted per committed round.
//
// Everything is exported twice: through the telemetry registry
// (chaos_faults_injected, recovery_rounds / containment_radius histograms,
// safety_violations_total) and as "chaos_fault"/"chaos_recovered" JSONL
// records, both keyed by round index — never wall clock — so campaign logs
// stay byte-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/plan.hpp"
#include "graph/graph.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab::chaos {

/// Counts safety violations in one committed round. `faulty[v]` is nonzero
/// while v is crashed, stuck, or was injected by the still-open fault
/// window; violations are only charged to non-faulty nodes.
template <typename State>
using SafetyCheck = std::function<std::size_t(
    const graph::Graph& g, const std::vector<State>& before,
    const std::vector<State>& after, const std::vector<std::uint8_t>& faulty)>;

class RecoveryMonitor {
 public:
  struct Record {
    std::int64_t at = 0;          ///< round the fault fired
    std::string kind;             ///< FaultKind spelling
    std::size_t injected = 0;     ///< nodes the event touched directly
    std::size_t recoveryRounds = 0;
    std::size_t containmentRadius = 0;
    bool recovered = false;       ///< predicate restored within the window
  };

  /// Either pointer may be null. Histogram buckets are the size ladder
  /// (0,1,2,4,...,256): recovery is bounded by 2n+1 and containment by n for
  /// campaign-sized systems.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events) {
    events_ = events;
    if (registry == nullptr) {
      faults_ = nullptr;
      recoveryRounds_ = nullptr;
      containmentRadius_ = nullptr;
      safetyViolations_ = nullptr;
      return;
    }
    namespace names = telemetry::names;
    faults_ = &registry->counter(names::kChaosFaultsInjected);
    recoveryRounds_ = &registry->histogram(names::kRecoveryRounds,
                                           telemetry::sizeBuckets());
    containmentRadius_ = &registry->histogram(names::kContainmentRadius,
                                              telemetry::sizeBuckets());
    safetyViolations_ = &registry->counter(names::kSafetyViolations);
  }

  /// Opens a fault window (closing any still-open one as unrecovered is the
  /// caller's job via onRecovered). `topo` is the effective topology at
  /// fault time; BFS distances from `injected` are frozen here.
  void onFault(std::int64_t at, FaultKind kind,
               const std::vector<graph::Vertex>& injected,
               const graph::Graph& topo) {
    open_ = true;
    current_ = Record{};
    current_.at = at;
    current_.kind = std::string(toString(kind));
    current_.injected = injected.size();
    computeDistances(injected, topo);
    maxChangedDistance_ = 0;
    if (faults_ != nullptr) faults_->inc();
    if (events_ != nullptr) {
      events_->emit("chaos_fault", {{"round", at},
                                    {"kind", current_.kind},
                                    {"injected", injected.size()}});
    }
  }

  /// Reports that v's state changed while the current window is open.
  /// Cheap enough for per-move hooks: one array read and a max.
  void onStateChanged(graph::Vertex v) {
    if (!open_) return;
    const std::size_t d = v < distance_.size() ? distance_[v] : 0;
    maxChangedDistance_ = std::max(maxChangedDistance_, d);
  }

  /// Closes the open window: `rounds` since the fault, and whether the
  /// verifier predicate was restored. No-op if no window is open.
  void onRecovered(std::size_t rounds, bool recovered) {
    if (!open_) return;
    open_ = false;
    current_.recoveryRounds = rounds;
    current_.containmentRadius = maxChangedDistance_;
    current_.recovered = recovered;
    if (recoveryRounds_ != nullptr) {
      recoveryRounds_->observe(static_cast<double>(rounds));
    }
    if (containmentRadius_ != nullptr) {
      containmentRadius_->observe(
          static_cast<double>(current_.containmentRadius));
    }
    if (events_ != nullptr) {
      events_->emit("chaos_recovered",
                    {{"round", current_.at},
                     {"kind", current_.kind},
                     {"recovery_rounds", rounds},
                     {"containment_radius", current_.containmentRadius},
                     {"recovered", recovered}});
    }
    records_.push_back(current_);
  }

  void onSafetyViolations(std::size_t count) {
    if (count == 0) return;
    safetyTotal_ += count;
    if (safetyViolations_ != nullptr) safetyViolations_->inc(count);
    if (events_ != nullptr) {
      events_->emit("chaos_safety_violation",
                    {{"round", current_.at}, {"count", count}});
    }
  }

  [[nodiscard]] bool windowOpen() const noexcept { return open_; }
  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t safetyViolations() const noexcept {
    return safetyTotal_;
  }
  [[nodiscard]] bool allRecovered() const noexcept {
    return std::all_of(records_.begin(), records_.end(),
                       [](const Record& r) { return r.recovered; });
  }
  [[nodiscard]] std::size_t maxRecoveryRounds() const noexcept {
    std::size_t worst = 0;
    for (const Record& r : records_) {
      worst = std::max(worst, r.recoveryRounds);
    }
    return worst;
  }
  [[nodiscard]] std::size_t maxContainmentRadius() const noexcept {
    std::size_t worst = 0;
    for (const Record& r : records_) {
      worst = std::max(worst, r.containmentRadius);
    }
    return worst;
  }

 private:
  /// Multi-source BFS from the injected set; unreachable nodes get distance
  /// n (the containment cap — "the fault's effect crossed a partition").
  /// An empty injected set (loss bursts, clock drift) maps every node to
  /// distance 0: those faults have no epicenter to measure from.
  void computeDistances(const std::vector<graph::Vertex>& injected,
                        const graph::Graph& topo) {
    const std::size_t n = topo.order();
    distance_.assign(n, injected.empty() ? 0 : n);
    std::deque<graph::Vertex> frontier;
    for (const graph::Vertex v : injected) {
      if (v < n && distance_[v] != 0) {
        distance_[v] = 0;
        frontier.push_back(v);
      }
    }
    while (!frontier.empty()) {
      const graph::Vertex v = frontier.front();
      frontier.pop_front();
      for (const graph::Vertex w : topo.neighbors(v)) {
        if (distance_[w] > distance_[v] + 1) {
          distance_[w] = distance_[v] + 1;
          frontier.push_back(w);
        }
      }
    }
  }

  bool open_ = false;
  Record current_;
  std::vector<std::size_t> distance_;
  std::size_t maxChangedDistance_ = 0;
  std::vector<Record> records_;
  std::size_t safetyTotal_ = 0;

  telemetry::Counter* faults_ = nullptr;
  telemetry::Histogram* recoveryRounds_ = nullptr;
  telemetry::Histogram* containmentRadius_ = nullptr;
  telemetry::Counter* safetyViolations_ = nullptr;
  telemetry::EventLog* events_ = nullptr;
};

}  // namespace selfstab::chaos
