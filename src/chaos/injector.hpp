// Fault-plan injection for the beacon-network simulator.
//
// SimChaosController translates a FaultPlan (round-indexed) into ChaosTick
// events on the simulator's queue (round r fires at r * beaconInterval) and
// applies each FaultEvent through the NetworkSimulator chaos hooks:
//
//  * corrupt/garble  resample states from `sampler` over the ground-truth
//                    topology at fault time;
//  * crash/rejoin    chaosCrash / chaosRejoin (restart phase drawn from the
//                    controller's RNG so restarts stay desynchronized);
//  * partition       side mask at the radio; heal removes it;
//  * loss_burst      swaps lossProbability, restores it `duration` rounds
//                    later via a second tick;
//  * clock_drift     multiplies the node's beacon interval;
//  * stuck/release   freeze / resume rule evaluation (radio stays live).
//
// Recovery is measured by quiescence: a fault's window closes at the next
// fault tick (or finalize()), recovery time is the number of beacon
// intervals from injection to the last observed move, and the window counts
// as recovered when the simulator has then been quiet for at least two
// intervals. Containment uses the monitor's BFS distances over the
// ground-truth topology at fault time, fed by the simulator's move hook.
//
// Determinism: all fault randomness comes from the controller's own Rng
// (seeded by `chaosSeed`), never from the simulator's stream, so the same
// (config seed, plan, chaos seed) replays bit-identically across every
// IndexMode/QueueMode combination — and an *empty* plan leaves the base
// trajectory untouched.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "adhoc/network.hpp"
#include "adhoc/sim_time.hpp"
#include "chaos/monitors.hpp"
#include "chaos/plan.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::chaos {

template <typename State, typename Sampler>
class SimChaosController {
 public:
  /// Inert when `plan` is empty: nothing is attached or scheduled and the
  /// simulator's trajectory is exactly the plan-free one. `monitor` must
  /// outlive the controller; attach telemetry to it separately.
  SimChaosController(adhoc::NetworkSimulator<State>& sim, FaultPlan plan,
                     std::uint64_t chaosSeed, Sampler sampler,
                     adhoc::SimTime beaconInterval, RecoveryMonitor& monitor)
      : sim_(&sim),
        plan_(std::move(plan)),
        rng_(chaosSeed),
        sampler_(std::move(sampler)),
        interval_(beaconInterval),
        monitor_(&monitor) {
    if (plan_.empty()) return;
    // A fault's first observable reaction can be expiry-driven: a crashed
    // node is noticed only timeoutFactor intervals after its last beacon,
    // and the neighbor acts at its own next (possibly drifted) beacon. The
    // quiet guard must outlast that lag or runUntilQuiet declares the old
    // pre-fault quiescence final before anyone has reacted.
    quietLag_ = static_cast<adhoc::SimTime>(
                    (sim.config().timeoutFactor + plan_.maxDriftFactor()) *
                    static_cast<double>(interval_)) +
                2 * interval_;
    sim.chaosAttach(plan_.maxDriftFactor());
    sim.chaosSetHandler([this](std::int64_t tick) { onTick(tick); });
    sim.chaosSetMoveHook([this](adhoc::SimTime, graph::Vertex v) {
      monitor_->onStateChanged(v);
    });
    baseLoss_ = sim.lossProbability();
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
      const FaultEvent& ev = plan_.events[i];
      pushTick(ev.at * interval_, i, /*restore=*/false);
      if (ev.kind == FaultKind::LossBurst) {
        pushTick((ev.at + ev.duration) * interval_, i, /*restore=*/true);
      }
    }
  }

  [[nodiscard]] bool active() const noexcept { return !plan_.empty(); }

  /// Earliest time runUntilQuiet may declare quiescence: the last scheduled
  /// tick (fault or restore) plus the worst-case reaction lag (cache
  /// timeout + a drifted beacon interval).
  [[nodiscard]] adhoc::SimTime noQuietBefore() const noexcept {
    return lastTickTime_ == 0 ? 0 : lastTickTime_ + quietLag_;
  }

  /// Closes the final fault window against the simulator's end-of-run
  /// clock. Call once, after the run.
  void finalize() { closeWindow(); }

 private:
  struct Tick {
    adhoc::SimTime at;
    std::size_t event;
    bool restore;
  };

  void pushTick(adhoc::SimTime at, std::size_t event, bool restore) {
    sim_->chaosScheduleTick(at, static_cast<std::int64_t>(ticks_.size()));
    ticks_.push_back(Tick{at, event, restore});
    lastTickTime_ = std::max(lastTickTime_, at);
  }

  void onTick(std::int64_t index) {
    const Tick tick = ticks_[static_cast<std::size_t>(index)];
    const FaultEvent& ev = plan_.events[tick.event];
    if (tick.restore) {
      // Only loss bursts schedule restores; part of the same fault window.
      sim_->chaosSetLossProbability(baseLoss_);
      return;
    }
    closeWindow();
    windowOpenAt_ = sim_->now();
    std::vector<graph::Vertex> injected = applyEvent(ev);
    monitor_->onFault(ev.at, ev.kind, injected, sim_->currentTopology());
  }

  std::vector<graph::Vertex> applyEvent(const FaultEvent& ev) {
    std::vector<graph::Vertex> injected;
    switch (ev.kind) {
      case FaultKind::Corrupt: {
        const graph::Graph topo = sim_->currentTopology();
        const auto corruptOne = [&](graph::Vertex v) {
          sim_->setNodeState(v, sampler_(v, topo, rng_));
          injected.push_back(v);
        };
        if (!ev.nodes.empty()) {
          for (const graph::Vertex v : ev.nodes) corruptOne(v);
        } else {
          for (graph::Vertex v = 0; v < topo.order(); ++v) {
            if (rng_.chance(ev.fraction)) corruptOne(v);
          }
        }
        break;
      }
      case FaultKind::Garble: {
        const graph::Graph topo = sim_->currentTopology();
        sim_->chaosGarble(ev.node, sampler_(ev.node, topo, rng_));
        injected.push_back(ev.node);
        break;
      }
      case FaultKind::Crash:
        sim_->chaosCrash(ev.node);
        injected.push_back(ev.node);
        break;
      case FaultKind::Rejoin:
        sim_->chaosRejoin(ev.node, static_cast<adhoc::SimTime>(rng_.below(
                                       static_cast<std::uint64_t>(interval_))));
        injected.push_back(ev.node);
        break;
      case FaultKind::PartitionCut: {
        side_.assign(sim_->states().size(), 0);
        for (const graph::Vertex v : ev.nodes) side_[v] = 1;
        injected = boundaryNodes();
        sim_->chaosSetPartition(side_);
        break;
      }
      case FaultKind::PartitionHeal:
        injected = boundaryNodes();  // side_ still holds the healed cut
        sim_->chaosHealPartition();
        break;
      case FaultKind::LossBurst:
        sim_->chaosSetLossProbability(ev.p);
        break;  // no epicenter: containment distances default to 0
      case FaultKind::ClockDrift:
        sim_->chaosSetDrift(ev.node, ev.factor);
        injected.push_back(ev.node);
        break;
      case FaultKind::Stuck:
        sim_->chaosSetStuck(ev.node, true);
        injected.push_back(ev.node);
        break;
      case FaultKind::Release:
        sim_->chaosSetStuck(ev.node, false);
        injected.push_back(ev.node);
        break;
    }
    return injected;
  }

  /// Endpoints of ground-truth radio links the current side_ mask severs —
  /// the nodes the partition event touches directly.
  [[nodiscard]] std::vector<graph::Vertex> boundaryNodes() {
    const graph::Graph topo = sim_->currentTopology();
    std::vector<std::uint8_t> hit(topo.order(), 0);
    for (const auto& e : topo.edges()) {
      if (side_[e.u] != side_[e.v]) hit[e.u] = hit[e.v] = 1;
    }
    std::vector<graph::Vertex> out;
    for (graph::Vertex v = 0; v < topo.order(); ++v) {
      if (hit[v] != 0) out.push_back(v);
    }
    return out;
  }

  void closeWindow() {
    if (!monitor_->windowOpen()) return;
    const adhoc::SimTime now = sim_->now();
    const adhoc::SimTime lastMove = sim_->lastMoveTime();
    std::size_t rounds = 0;
    if (lastMove > windowOpenAt_) {
      rounds = static_cast<std::size_t>(
          (lastMove - windowOpenAt_ + interval_ - 1) / interval_);
    }
    const adhoc::SimTime settled = std::max(lastMove, windowOpenAt_);
    const bool recovered = now - settled >= 2 * interval_;
    monitor_->onRecovered(rounds, recovered);
  }

  adhoc::NetworkSimulator<State>* sim_;
  FaultPlan plan_;
  Rng rng_;
  Sampler sampler_;
  adhoc::SimTime interval_;
  RecoveryMonitor* monitor_;
  std::vector<Tick> ticks_;
  std::vector<std::uint8_t> side_;
  double baseLoss_ = 0.0;
  adhoc::SimTime quietLag_ = 0;
  adhoc::SimTime lastTickTime_ = 0;
  adhoc::SimTime windowOpenAt_ = 0;
};

}  // namespace selfstab::chaos
