#include "chaos/plan.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "graph/rng.hpp"

namespace selfstab::chaos {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader. The repo's telemetry/json.hpp only *writes* JSON; the
// plan schema is small enough (objects, arrays, strings, numbers, bools)
// that a recursive-descent reader here beats importing a dependency the
// container does not have. Errors carry the byte offset.

struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw PlanError("plan JSON: " + what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      JsonValue key = string();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::String;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          default:
            fail("unsupported escape sequence");  // \uXXXX not needed here
        }
      }
      v.string += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected 'true' or 'false'");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("expected 'null'");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    try {
      std::size_t consumed = 0;
      v.number = std::stod(text_.substr(start, pos_ - start), &consumed);
      if (consumed != pos_ - start) throw std::invalid_argument("");
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// JSON -> FaultEvent field mapping.

double numberField(const JsonValue& obj, std::string_view key, double fallback,
                   bool* present = nullptr) {
  const JsonValue* v = obj.find(key);
  if (present != nullptr) *present = v != nullptr;
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::Number) {
    throw PlanError("plan JSON: field '" + std::string(key) +
                    "' must be a number");
  }
  return v->number;
}

std::int64_t intField(const JsonValue& obj, std::string_view key,
                      std::int64_t fallback) {
  const double d = numberField(obj, key, static_cast<double>(fallback));
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw PlanError("plan JSON: field '" + std::string(key) +
                    "' must be an integer");
  }
  return i;
}

graph::Vertex vertexField(const JsonValue& obj, std::string_view key,
                          bool required) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    if (required) {
      throw PlanError("plan JSON: missing required field '" +
                      std::string(key) + "'");
    }
    return graph::kNoVertex;
  }
  if (v->type != JsonValue::Type::Number || v->number < 0 ||
      v->number != static_cast<double>(static_cast<std::uint64_t>(v->number))) {
    throw PlanError("plan JSON: field '" + std::string(key) +
                    "' must be a non-negative integer");
  }
  return static_cast<graph::Vertex>(v->number);
}

std::vector<graph::Vertex> vertexListField(const JsonValue& obj,
                                           std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return {};
  if (v->type != JsonValue::Type::Array) {
    throw PlanError("plan JSON: field '" + std::string(key) +
                    "' must be an array of vertices");
  }
  std::vector<graph::Vertex> out;
  out.reserve(v->array.size());
  for (const JsonValue& item : v->array) {
    if (item.type != JsonValue::Type::Number || item.number < 0) {
      throw PlanError("plan JSON: '" + std::string(key) +
                      "' entries must be non-negative integers");
    }
    out.push_back(static_cast<graph::Vertex>(item.number));
  }
  return out;
}

bool needsNode(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Crash:
    case FaultKind::Rejoin:
    case FaultKind::Garble:
    case FaultKind::ClockDrift:
    case FaultKind::Stuck:
    case FaultKind::Release:
      return true;
    default:
      return false;
  }
}

FaultEvent eventFromJson(const JsonValue& obj, std::size_t index) {
  if (obj.type != JsonValue::Type::Object) {
    throw PlanError("plan JSON: events[" + std::to_string(index) +
                    "] must be an object");
  }
  const JsonValue* kindValue = obj.find("kind");
  if (kindValue == nullptr || kindValue->type != JsonValue::Type::String) {
    throw PlanError("plan JSON: events[" + std::to_string(index) +
                    "] needs a string 'kind'");
  }
  FaultEvent ev;
  ev.kind = faultKindFromString(kindValue->string);
  ev.at = intField(obj, "at", 0);
  ev.node = vertexField(obj, "node", needsNode(ev.kind));
  ev.nodes = vertexListField(obj, "nodes");
  ev.fraction = numberField(obj, "fraction", ev.fraction);
  ev.p = numberField(obj, "p", ev.p);
  ev.duration = intField(obj, "duration", ev.duration);
  ev.factor = numberField(obj, "factor", ev.factor);
  return ev;
}

}  // namespace

std::string_view toString(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Crash: return "crash";
    case FaultKind::Rejoin: return "rejoin";
    case FaultKind::PartitionCut: return "partition_cut";
    case FaultKind::PartitionHeal: return "partition_heal";
    case FaultKind::Garble: return "garble";
    case FaultKind::LossBurst: return "loss_burst";
    case FaultKind::ClockDrift: return "clock_drift";
    case FaultKind::Stuck: return "stuck";
    case FaultKind::Release: return "release";
  }
  return "unknown";
}

FaultKind faultKindFromString(std::string_view s) {
  for (const FaultKind kind :
       {FaultKind::Corrupt, FaultKind::Crash, FaultKind::Rejoin,
        FaultKind::PartitionCut, FaultKind::PartitionHeal, FaultKind::Garble,
        FaultKind::LossBurst, FaultKind::ClockDrift, FaultKind::Stuck,
        FaultKind::Release}) {
    if (toString(kind) == s) return kind;
  }
  throw PlanError("unknown fault kind '" + std::string(s) + "'");
}

std::int64_t FaultPlan::lastEventRound() const noexcept {
  std::int64_t last = -1;
  for (const FaultEvent& ev : events) {
    std::int64_t end = ev.at;
    if (ev.kind == FaultKind::LossBurst) end += ev.duration;
    last = std::max(last, end);
  }
  return last;
}

double FaultPlan::maxDriftFactor() const noexcept {
  double factor = 1.0;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::ClockDrift) {
      factor = std::max(factor, ev.factor);
    }
  }
  return factor;
}

void validatePlan(const FaultPlan& plan, std::size_t n) {
  auto fail = [](std::size_t index, const std::string& what) {
    throw PlanError("plan events[" + std::to_string(index) + "]: " + what);
  };
  std::vector<char> crashed(n, 0);
  std::vector<char> stuck(n, 0);
  bool partitioned = false;
  std::int64_t prevAt = 0;
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& ev = plan.events[i];
    if (ev.at < 0) fail(i, "negative round index");
    if (ev.at < prevAt) fail(i, "events must be sorted by 'at'");
    prevAt = ev.at;
    if (needsNode(ev.kind)) {
      if (ev.node >= n) fail(i, "node out of range");
    }
    for (const graph::Vertex v : ev.nodes) {
      if (v >= n) fail(i, "nodes entry out of range");
    }
    switch (ev.kind) {
      case FaultKind::Corrupt:
        if (ev.nodes.empty() &&
            !(ev.fraction >= 0.0 && ev.fraction <= 1.0)) {
          fail(i, "fraction must be in [0,1]");
        }
        break;
      case FaultKind::Crash:
        if (crashed[ev.node] != 0) fail(i, "node is already crashed");
        crashed[ev.node] = 1;
        break;
      case FaultKind::Rejoin:
        if (crashed[ev.node] == 0) fail(i, "rejoin of a node not crashed");
        crashed[ev.node] = 0;
        break;
      case FaultKind::PartitionCut:
        if (partitioned) fail(i, "a partition is already active");
        if (ev.nodes.empty() || ev.nodes.size() >= n) {
          fail(i, "partition side must be a proper non-empty subset");
        }
        partitioned = true;
        break;
      case FaultKind::PartitionHeal:
        if (!partitioned) fail(i, "no partition to heal");
        partitioned = false;
        break;
      case FaultKind::LossBurst:
        if (!(ev.p >= 0.0 && ev.p <= 1.0)) fail(i, "p must be in [0,1]");
        if (ev.duration <= 0) fail(i, "duration must be positive");
        break;
      case FaultKind::ClockDrift:
        if (!(ev.factor > 0.0)) fail(i, "factor must be positive");
        break;
      case FaultKind::Stuck:
        if (stuck[ev.node] != 0) fail(i, "node is already stuck");
        stuck[ev.node] = 1;
        break;
      case FaultKind::Release:
        if (stuck[ev.node] == 0) fail(i, "release of a node not stuck");
        stuck[ev.node] = 0;
        break;
      case FaultKind::Garble:
        break;
    }
  }
}

FaultPlan parsePlanJson(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonReader reader(buffer.str());
  const JsonValue root = reader.parse();
  if (root.type != JsonValue::Type::Object) {
    throw PlanError("plan JSON: top level must be an object");
  }
  const JsonValue* events = root.find("events");
  if (events == nullptr || events->type != JsonValue::Type::Array) {
    throw PlanError("plan JSON: missing 'events' array");
  }
  FaultPlan plan;
  plan.events.reserve(events->array.size());
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    plan.events.push_back(eventFromJson(events->array[i], i));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan parsePlanFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw PlanError("cannot open plan file '" + path + "'");
  try {
    return parsePlanJson(file);
  } catch (const PlanError& e) {
    throw PlanError("'" + path + "': " + e.what());
  }
}

bool isCampaignTemplate(std::string_view name) noexcept {
  return name == "churn" || name == "crash-storm" ||
         name == "rolling-partition";
}

FaultPlan makeCampaign(std::string_view name, std::uint64_t seed,
                       std::size_t n) {
  if (n == 0) throw PlanError("campaign needs at least one node");
  // Gap between consecutive faults: the paper-bound recovery window (2n+1
  // for SMM, the larger of the gate bounds) plus slack for the beacon
  // model's jittered round boundaries.
  const auto gap = static_cast<std::int64_t>(2 * n + 8);
  Rng rng(hashCombine(seed, 0xC4A0CA4DULL));
  // Distinct victims so crash/stuck bookkeeping never collides.
  std::vector<graph::Vertex> victims(n);
  for (graph::Vertex v = 0; v < n; ++v) victims[v] = v;
  rng.shuffle(victims);
  auto victim = [&](std::size_t i) { return victims[i % victims.size()]; };

  // Fluent single-event builder; keeps the template listings terse without
  // the partially-designated-initializer warnings -Wextra would raise.
  struct Ev {
    FaultEvent e;
    explicit Ev(FaultKind kind) { e.kind = kind; }
    Ev& node(graph::Vertex v) { e.node = v; return *this; }
    Ev& nodes(std::vector<graph::Vertex> ns) { e.nodes = std::move(ns); return *this; }
    Ev& fraction(double f) { e.fraction = f; return *this; }
    Ev& p(double value) { e.p = value; return *this; }
    Ev& duration(std::int64_t d) { e.duration = d; return *this; }
    Ev& factor(double f) { e.factor = f; return *this; }
  };

  FaultPlan plan;
  std::int64_t at = 4;  // first fault lands mid-convergence, not at a fixpoint
  auto add = [&](Ev ev) {
    ev.e.at = at;
    plan.events.push_back(std::move(ev.e));
    at += gap;
  };

  if (name == "churn") {
    add(Ev(FaultKind::Corrupt).fraction(0.3));
    const graph::Vertex crashNode = victim(0);
    add(Ev(FaultKind::Crash).node(crashNode));
    add(Ev(FaultKind::LossBurst).p(0.7).duration(
        std::max<std::int64_t>(3, gap / 4)));
    add(Ev(FaultKind::Rejoin).node(crashNode));
    const graph::Vertex driftNode = victim(1);
    add(Ev(FaultKind::ClockDrift).node(driftNode).factor(2.0));
    const graph::Vertex stuckNode = victim(2);
    add(Ev(FaultKind::Stuck).node(stuckNode));
    add(Ev(FaultKind::Release).node(stuckNode));
    add(Ev(FaultKind::ClockDrift).node(driftNode).factor(1.0));
    add(Ev(FaultKind::Garble).node(victim(3)));
    add(Ev(FaultKind::Corrupt).fraction(0.2));
  } else if (name == "crash-storm") {
    const std::size_t wave = std::min<std::size_t>(
        std::max<std::size_t>(1, n / 5), std::min<std::size_t>(3, n));
    for (std::size_t i = 0; i < wave; ++i) {
      add(Ev(FaultKind::Crash).node(victim(i)));
    }
    for (std::size_t i = 0; i < wave; ++i) {
      add(Ev(FaultKind::Rejoin).node(victim(i)));
    }
    add(Ev(FaultKind::Corrupt).fraction(0.5));
  } else if (name == "rolling-partition") {
    for (int cut = 0; cut < 3; ++cut) {
      // A fresh random proper subset each time; sides of size ~n/2.
      std::vector<graph::Vertex> side;
      for (graph::Vertex v = 0; v < n; ++v) {
        if (rng.chance(0.5)) side.push_back(v);
      }
      if (side.empty()) side.push_back(victim(cut));
      if (side.size() == n) side.pop_back();
      if (side.empty()) break;  // n == 1: no proper cut exists
      add(Ev(FaultKind::PartitionCut).nodes(std::move(side)));
      add(Ev(FaultKind::PartitionHeal));
    }
  } else {
    throw PlanError("unknown campaign template '" + std::string(name) + "'");
  }
  validatePlan(plan, n);
  return plan;
}

FaultPlan parseChaosSpec(const std::string& spec, std::size_t n) {
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos && isCampaignTemplate(spec.substr(0, colon))) {
    const std::string seedText = spec.substr(colon + 1);
    try {
      std::size_t consumed = 0;
      const std::uint64_t seed = std::stoull(seedText, &consumed);
      if (consumed != seedText.size()) throw std::invalid_argument("");
      return makeCampaign(spec.substr(0, colon), seed, n);
    } catch (const PlanError&) {
      throw;
    } catch (const std::exception&) {
      throw PlanError("bad campaign seed '" + seedText + "' in '" + spec +
                      "'");
    }
  }
  FaultPlan plan = parsePlanFile(spec);
  validatePlan(plan, n);
  return plan;
}

}  // namespace selfstab::chaos
