// Round-indexed fault campaigns over the abstract synchronous executors.
//
// runEngineCampaign drives a SyncRunner or ParallelSyncRunner through a
// FaultPlan: it steps the runner round by round, applies each FaultEvent at
// its round index, and measures recovery with chaos/monitors.hpp. The
// executor-visible model is the paper's:
//
//  * corrupt/garble  resample states behind the runner's back, then
//                    invalidateSchedule() so active-set dirty bits stay
//                    correct (the same contract as engine::corruptAndReschedule);
//  * crash           the node is isolated (its incident edges are removed
//                    from the shared Graph — Graph::version() makes both
//                    runners re-snapshot) and frozen: it executes nothing
//                    until it rejoins with a fresh initial state;
//  * partition       cross-side edges are masked out of the shared Graph,
//                    restored at heal;
//  * stuck           the node's state is pinned (any move the protocol
//                    makes for it is reverted before the next round), but
//                    neighbors keep seeing the frozen state — Byzantine-lite;
//  * loss_burst /    beacon-model-only faults: logged no-ops here (the
//    clock_drift     abstract model has no radio or clocks).
//
// Recovery per event is *masked stability*: every node that is not crashed
// or stuck has no enabled rule (Protocol::isStable), evaluated on the
// effective topology. For SMM/SIS that implies the paper predicate restricted
// to live nodes; once the plan ends clean it coincides with the global
// fixpoint, which the campaign then verifies.
//
// Determinism: all campaign randomness comes from a dedicated Rng seeded by
// `chaosSeed`, so the same (plan, seeds, executor schedule) replays
// bit-identically on either executor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "chaos/monitors.hpp"
#include "chaos/plan.hpp"
#include "engine/protocol.hpp"
#include "engine/view_builder.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::chaos {

struct CampaignResult {
  std::size_t roundsExecuted = 0;
  std::size_t totalMoves = 0;
  std::size_t safetyViolations = 0;
  bool recoveredAll = true;   ///< every fault window reached masked stability
  bool finalFixpoint = false; ///< global fixpoint after the plan played out
};

/// Drives `runner` (constructed over this same `g`, `ids`) through `plan`.
/// `states` is the live configuration, mutated in place. `recoveryBudget`
/// caps each fault's recovery window and the final drain (0 = 2n+8, the
/// template gap). `sampler(v, g, rng)` supplies corrupted states. `monitor`
/// and `safety` may be null/empty.
template <typename State, typename Runner, typename Sampler>
CampaignResult runEngineCampaign(
    Runner& runner, const engine::Protocol<State>& protocol, graph::Graph& g,
    const graph::IdAssignment& ids, std::vector<State>& states,
    const FaultPlan& plan, std::uint64_t chaosSeed,
    std::size_t recoveryBudget, Sampler sampler,
    RecoveryMonitor* monitor = nullptr,
    const SafetyCheck<State>& safety = nullptr) {
  const std::size_t n = g.order();
  validatePlan(plan, n);
  if (recoveryBudget == 0) recoveryBudget = 2 * n + 8;

  CampaignResult result;
  const graph::Graph base = g;
  Rng chaosRng(chaosSeed);
  engine::ViewBuilder<State> builder(g, ids);

  std::vector<std::uint8_t> crashed(n, 0);  // isolated in the topology
  std::vector<std::uint8_t> frozen(n, 0);   // executes nothing (crash|stuck)
  std::vector<std::uint8_t> side(n, 0);
  std::vector<std::uint8_t> faulty(n, 0);   // frozen or in the open window
  std::vector<State> frozenState(states);
  bool partitionActive = false;

  // Syncs the shared Graph to base minus crashed-incident and cross-side
  // edges. Rebuilding bumps Graph::version(), which makes both runners (and
  // `builder`) refresh their mirrors before the next round.
  const auto rebuildEffective = [&] {
    g.clearEdges();
    for (const auto& e : base.edges()) {
      if (crashed[e.u] != 0 || crashed[e.v] != 0) continue;
      if (partitionActive && side[e.u] != side[e.v]) continue;
      g.addEdge(e.u, e.v);
    }
    runner.invalidateSchedule();
  };

  const auto maskedStable = [&] {
    const std::uint64_t key = runner.roundKey(runner.round());
    for (graph::Vertex v = 0; v < n; ++v) {
      if (frozen[v] != 0) continue;
      if (!protocol.isStable(builder.build(v, states, key))) return false;
    }
    return true;
  };

  std::vector<State> prev;
  const auto stepOnce = [&] {
    prev = states;
    result.totalMoves += runner.step(states);
    ++result.roundsExecuted;
    // Pin frozen nodes: a crashed node executes nothing, a stuck node keeps
    // beaconing its frozen state. Reverting before anyone reads S_{t+1}
    // keeps the move invisible under the synchronous model.
    bool reverted = false;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (frozen[v] != 0 && !(states[v] == frozenState[v])) {
        states[v] = frozenState[v];
        reverted = true;
      }
    }
    if (reverted) runner.invalidateSchedule();
    if (safety) {
      const std::size_t violations = safety(g, prev, states, faulty);
      result.safetyViolations += violations;
      if (monitor != nullptr) monitor->onSafetyViolations(violations);
    }
    if (monitor != nullptr) {
      for (graph::Vertex v = 0; v < n; ++v) {
        if (!(states[v] == prev[v])) monitor->onStateChanged(v);
      }
    }
  };

  // Endpoints of edges a partition mask change cuts or restores: the nodes
  // whose views the event directly touches.
  const auto boundaryNodes = [&] {
    std::vector<std::uint8_t> hit(n, 0);
    for (const auto& e : base.edges()) {
      if (crashed[e.u] != 0 || crashed[e.v] != 0) continue;
      if (side[e.u] != side[e.v]) hit[e.u] = hit[e.v] = 1;
    }
    std::vector<graph::Vertex> out;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (hit[v] != 0) out.push_back(v);
    }
    return out;
  };

  const auto applyEvent = [&](const FaultEvent& ev) {
    std::vector<graph::Vertex> injected;
    switch (ev.kind) {
      case FaultKind::Corrupt:
        if (!ev.nodes.empty()) {
          for (const graph::Vertex v : ev.nodes) {
            states[v] = sampler(v, g, chaosRng);
            injected.push_back(v);
          }
        } else {
          for (graph::Vertex v = 0; v < n; ++v) {
            if (chaosRng.chance(ev.fraction)) {
              states[v] = sampler(v, g, chaosRng);
              injected.push_back(v);
            }
          }
        }
        runner.invalidateSchedule();
        break;
      case FaultKind::Garble:
        // No payloads to garble in the abstract model; the nearest fault is
        // one corrupted state snapshot at the garbled node.
        states[ev.node] = sampler(ev.node, g, chaosRng);
        injected.push_back(ev.node);
        runner.invalidateSchedule();
        break;
      case FaultKind::Crash:
        crashed[ev.node] = 1;
        frozen[ev.node] = 1;
        frozenState[ev.node] = states[ev.node];
        rebuildEffective();
        injected.push_back(ev.node);
        break;
      case FaultKind::Rejoin:
        crashed[ev.node] = 0;
        frozen[ev.node] = 0;
        states[ev.node] = protocol.initialState(ev.node);
        rebuildEffective();
        injected.push_back(ev.node);
        break;
      case FaultKind::PartitionCut:
        std::fill(side.begin(), side.end(), 0);
        for (const graph::Vertex v : ev.nodes) side[v] = 1;
        injected = boundaryNodes();
        partitionActive = true;
        rebuildEffective();
        break;
      case FaultKind::PartitionHeal:
        injected = boundaryNodes();  // side[] still holds the healed cut
        partitionActive = false;
        rebuildEffective();
        break;
      case FaultKind::Stuck:
        frozen[ev.node] = 1;
        frozenState[ev.node] = states[ev.node];
        injected.push_back(ev.node);
        break;
      case FaultKind::Release:
        frozen[ev.node] = 0;
        injected.push_back(ev.node);
        runner.invalidateSchedule();
        break;
      case FaultKind::LossBurst:
      case FaultKind::ClockDrift:
        break;  // beacon-model-only; nothing to do under the abstract engine
    }
    return injected;
  };

  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& ev = plan.events[i];
    while (static_cast<std::int64_t>(result.roundsExecuted) < ev.at) {
      stepOnce();
    }
    const std::vector<graph::Vertex> injected = applyEvent(ev);
    for (const graph::Vertex v : injected) faulty[v] = 1;
    if (monitor != nullptr) monitor->onFault(ev.at, ev.kind, injected, g);

    // Recovery window: until masked stability, the next event, or budget.
    std::int64_t limit = ev.at + static_cast<std::int64_t>(recoveryBudget);
    if (i + 1 < plan.events.size()) {
      limit = std::min(limit, plan.events[i + 1].at);
    }
    bool recovered = maskedStable();
    while (!recovered &&
           static_cast<std::int64_t>(result.roundsExecuted) < limit) {
      stepOnce();
      recovered = maskedStable();
    }
    const auto rounds = static_cast<std::size_t>(
        static_cast<std::int64_t>(result.roundsExecuted) - ev.at);
    if (monitor != nullptr) monitor->onRecovered(rounds, recovered);
    result.recoveredAll = result.recoveredAll && recovered;
    for (const graph::Vertex v : injected) faulty[v] = frozen[v];
  }

  // Drain to a true global fixpoint (or masked stability, if the plan left
  // nodes crashed or stuck — templates never do).
  const bool anyFrozen =
      std::any_of(frozen.begin(), frozen.end(),
                  [](std::uint8_t f) { return f != 0; });
  const auto finalStable = [&] {
    return anyFrozen ? maskedStable() : runner.isFixpoint(states);
  };
  std::size_t extra = 0;
  result.finalFixpoint = finalStable();
  while (!result.finalFixpoint && extra < recoveryBudget) {
    stepOnce();
    ++extra;
    result.finalFixpoint = finalStable();
  }
  return result;
}

}  // namespace selfstab::chaos
