// Declarative fault campaigns: what goes wrong, to whom, and when.
//
// The paper's claim is convergence from *arbitrary* transient faults; a
// FaultPlan makes the adversary explicit and reproducible. A plan is an
// ordered list of timed FaultEvents — state corruption, crash/rejoin churn,
// network partitions, garbled beacon payloads, loss bursts, per-node clock
// drift, and stuck (Byzantine-lite, frozen-state) nodes — indexed by *round*
// (the paper's time unit; the beacon simulator maps round r to simulated
// time r x beaconInterval). Plans come from a small JSON file or from the
// built-in campaign templates (churn, rolling-partition, crash-storm), which
// are pure functions of (seed, n) so the same campaign replays bit-identical
// anywhere.
//
// The plan layer is engine-agnostic: chaos/campaign.hpp drives the abstract
// executors (SyncRunner / ParallelSyncRunner) and chaos/injector.hpp drives
// adhoc::NetworkSimulator from the same FaultPlan. Faults that only exist in
// the beacon model (loss_burst, clock_drift) are logged no-ops under the
// abstract engine; garble degrades to a one-node corruption there (the
// abstract model has no payloads to garble).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace selfstab::chaos {

class PlanError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultKind {
  Corrupt,        ///< resample states: explicit `nodes` or per-node `fraction`
  Crash,          ///< `node` leaves: timers die, links drop, caches age out
  Rejoin,         ///< crashed `node` returns with a fresh initial state
  PartitionCut,   ///< mask links between `nodes` (side A) and the rest
  PartitionHeal,  ///< lift the partition mask
  Garble,         ///< `node`'s next beacon carries a corrupted state snapshot
  LossBurst,      ///< lossProbability := `p` for `duration` rounds
  ClockDrift,     ///< `node`'s beacon interval is scaled by `factor`
  Stuck,          ///< `node` stops evaluating rules but keeps beaconing its
                  ///< frozen state (Byzantine-lite; protocols route around it)
  Release,        ///< stuck `node` resumes evaluating its rules
};

[[nodiscard]] std::string_view toString(FaultKind kind) noexcept;
/// Parses the JSON spelling ("corrupt", "partition_cut", ...); throws
/// PlanError on an unknown kind.
[[nodiscard]] FaultKind faultKindFromString(std::string_view s);

/// One timed fault. Only the fields its kind reads are meaningful; the rest
/// keep their defaults.
struct FaultEvent {
  std::int64_t at = 0;  ///< round index the fault fires at
  FaultKind kind = FaultKind::Corrupt;
  /// Corrupt: explicit victims (empty = sample by `fraction`).
  /// PartitionCut: side-A membership; everyone else is side B.
  std::vector<graph::Vertex> nodes;
  graph::Vertex node = graph::kNoVertex;  ///< single-node kinds
  double fraction = 0.3;                  ///< Corrupt without explicit nodes
  double p = 0.5;                         ///< LossBurst probability
  std::int64_t duration = 5;              ///< LossBurst length in rounds
  double factor = 1.0;                    ///< ClockDrift interval multiplier

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< non-decreasing `at` (validate checks)

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Round index after which the plan is fully played out, including the
  /// expiry of the last loss burst. -1 for an empty plan.
  [[nodiscard]] std::int64_t lastEventRound() const noexcept;

  /// Largest clock-drift factor any event installs (>= 1.0). The beacon
  /// simulator widens its spatial-index staleness slack by this before the
  /// campaign starts, so grid gathers stay supersets of the truth.
  [[nodiscard]] double maxDriftFactor() const noexcept;
};

/// Structural validation against an n-node system: events sorted by `at`,
/// vertices in range, probabilities/fractions in [0,1], positive durations
/// and factors, rejoin only of crashed nodes, release only of stuck nodes,
/// at most one partition active at a time. Throws PlanError.
void validatePlan(const FaultPlan& plan, std::size_t n);

/// Parses the plan JSON (see docs/ROBUSTNESS.md for the schema):
///   {"events":[{"at":4,"kind":"corrupt","fraction":0.3},
///              {"at":40,"kind":"crash","node":2}, ...]}
/// Throws PlanError with a position-annotated message on malformed input.
/// The result is *not* validated against a node count; call validatePlan.
[[nodiscard]] FaultPlan parsePlanJson(std::istream& in);
[[nodiscard]] FaultPlan parsePlanFile(const std::string& path);

/// True if `name` names a built-in campaign template.
[[nodiscard]] bool isCampaignTemplate(std::string_view name) noexcept;

/// Builds a built-in campaign for an n-node system. Deterministic in
/// (name, seed, n). Consecutive events are spaced 2n+8 rounds apart so the
/// paper-bound recovery window (2n+1 for SMM, n for SIS) fits between any
/// two faults, and every template ends clean: crashes rejoined, partitions
/// healed, stuck nodes released, drift factors restored to 1.0.
///   churn             corruption, crash/rejoin, loss burst, clock drift,
///                     stuck/release, garble — one of everything
///   crash-storm       a wave of crashes, then rejoins, then a corruption
///   rolling-partition three different cuts, each healed before the next
/// Throws PlanError on an unknown name or n == 0.
[[nodiscard]] FaultPlan makeCampaign(std::string_view name,
                                     std::uint64_t seed, std::size_t n);

/// Resolves a --chaos spec: "<template>:<seed>" (e.g. "churn:42") builds the
/// named campaign; anything else is read as a JSON plan file. The result is
/// validated against n either way.
[[nodiscard]] FaultPlan parseChaosSpec(const std::string& spec,
                                       std::size_t n);

}  // namespace selfstab::chaos
