// Simulated time: 64-bit integer microseconds (deterministic arithmetic,
// no floating-point drift in event ordering).
#pragma once

#include <cstdint>

namespace selfstab::adhoc {

using SimTime = std::int64_t;  ///< microseconds since simulation start

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1'000'000;

}  // namespace selfstab::adhoc
