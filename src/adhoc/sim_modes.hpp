// Runtime-selectable implementations of the beacon simulator's hot paths.
//
// Both knobs choose *how* an interval is computed, never *what* it computes:
// every combination produces bit-identical trajectories, stats, and event
// logs (asserted by tests/adhoc/test_network_differential.cpp). The
// reference modes exist so the fast paths stay falsifiable.
#pragma once

namespace selfstab::adhoc {

/// How broadcast fan-out and collision checks find nearby nodes.
enum class IndexMode {
  /// Incrementally-maintained spatial grid + per-cell recent-transmitter
  /// rings: one beacon costs O(deg) instead of O(n).
  Grid,
  /// Reference full scan over all n nodes (the pre-index implementation).
  Scan,
};

/// Event queue backing the discrete-event loop.
enum class QueueMode {
  /// Calendar queue bucketed at a fraction of the beacon interval: O(1)
  /// amortized schedule/pop for the near-periodic beacon workload, with a
  /// heap fallback for far-future events.
  Calendar,
  /// Reference binary heap.
  Heap,
};

}  // namespace selfstab::adhoc
