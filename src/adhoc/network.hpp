// Discrete-event simulation of the paper's system model (Section 2).
//
// Each node periodically broadcasts a beacon carrying its protocol state.
// Receivers cache (sender, state, timestamp); a neighbor not heard from
// within the timeout is presumed gone and dropped (the neighbor-discovery
// protocol). Immediately before sending its own beacon — i.e. once per
// beacon interval, after it has had the chance to hear every neighbor, the
// paper's definition of a round — a node evaluates its protocol rules
// against the cached neighbor states and moves if privileged.
//
// The same Protocol objects that run under the abstract synchronous engine
// run here unchanged; the LocalView is simply built from beacon caches
// instead of a global snapshot. Radio connectivity is unit-disk over a
// Mobility model, so host movement creates and destroys links and the
// protocols must re-stabilize, which is exactly the paper's fault-tolerance
// story.
//
// Hot-path structure (NetworkConfig::index / ::queue pick the
// implementation; every mode combination is bit-identical — same RNG draw
// order, same event tie-breaking — which the differential suite in
// tests/adhoc/test_network_differential.cpp asserts):
//
//  * Broadcast fan-out and collision checks consult an incrementally
//    maintained SpatialGrid instead of scanning all n nodes. A node's cell
//    is refreshed at its own beacon, so a recorded position is stale by at
//    most one (jittered) beacon interval; queries widen the radius by
//    maxSpeed x staleness to cover the drift, then apply the reference
//    implementation's exact distance test to the candidates, sorted into
//    ascending vertex order so the per-receiver RNG draws (loss) and
//    delivery sequence numbers come out identical to the full scan.
//  * Collision checks only ever need nodes that transmitted within
//    collisionWindow, so each grid cell keeps a ring of recent
//    transmissions (recorded at the transmitter's exact cell at
//    transmission time, lazily pruned); the query widens by
//    maxSpeed x collisionWindow.
//  * The event queue is a CalendarQueue bucketed at 1/16 beacon interval.
//  * Mobility::position is memoized per (node, event-timestamp).
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "adhoc/event_queue.hpp"
#include "adhoc/mobility.hpp"
#include "adhoc/sim_modes.hpp"
#include "adhoc/sim_time.hpp"
#include "engine/kernel.hpp"
#include "engine/protocol.hpp"
#include "engine/schedule.hpp"
#include "graph/geometry.hpp"
#include "graph/id_order.hpp"
#include "graph/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab::adhoc {

struct NetworkConfig {
  SimTime beaconInterval = 100 * kMillisecond;
  /// Each interval is multiplied by (1 + u) with u uniform in
  /// [-jitterFraction, +jitterFraction]; beacons are not phase-locked.
  double jitterFraction = 0.05;
  /// Neighbor expiry: drop j if not heard for timeoutFactor * beaconInterval.
  double timeoutFactor = 2.5;
  SimTime propagationDelay = 1 * kMillisecond;
  /// Independent per-(beacon, receiver) loss probability.
  double lossProbability = 0.0;
  /// MAC contention model: a beacon is lost at receiver j if some third
  /// node in j's radio range transmitted within this window before the
  /// sender (half-duplex carrier collision). 0 disables the model — the
  /// paper's assumption that "the data link protocol resolves any
  /// contention for the shared medium". Jittered beacon phases make
  /// persistent collisions between fixed pairs unlikely, so protocols
  /// still converge, just slower.
  SimTime collisionWindow = 0;
  /// Radio range in unit-square widths.
  double radius = 0.35;
  /// Dense: every node evaluates its rules each beacon interval. Active: a
  /// node evaluates only when *dirty* — its own state or its neighbor cache
  /// (membership or cached states) changed since its last evaluation. A
  /// deterministic rule over an unchanged view returns the same answer, so
  /// skipping it cannot change the trajectory; protocols that read roundKey
  /// (Protocol::usesRoundEntropy) always evaluate. Beacons are broadcast
  /// either way — only the rule evaluation is elided.
  engine::Schedule schedule = engine::Schedule::Dense;
  /// Optional per-node transmit ranges overriding `radius` (empty = uniform).
  /// Heterogeneous ranges create *asymmetric* links — u hears v without v
  /// hearing u — which violates the paper's assumption that "the links
  /// between two adjacent nodes are always bidirectional". The simulator
  /// supports them precisely so tests can probe what that assumption buys
  /// (see adhoc/test_network.cpp: SMM can wedge a node into pointing at a
  /// neighbor that will never answer).
  std::vector<double> perNodeRadius;
  /// Hot-path implementation knobs; every combination is bit-identical
  /// (see the header comment). Scan/Heap are the reference modes the
  /// differential suite and the scale benchmark compare against.
  IndexMode index = IndexMode::Grid;
  QueueMode queue = QueueMode::Calendar;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument for configurations the simulator cannot
  /// honor. NetworkSimulator's constructor calls this; the CLIs call it as
  /// soon as the flags are parsed so a bad value fails with a clear message
  /// instead of a hang or an assert. NaN fails every range check below.
  void validate() const {
    const auto fail = [](const std::string& what) {
      throw std::invalid_argument("NetworkConfig: " + what);
    };
    if (beaconInterval <= 0) fail("beaconInterval must be > 0");
    if (!(jitterFraction >= 0.0 && jitterFraction < 1.0)) {
      fail("jitterFraction must be in [0, 1)");
    }
    if (!(timeoutFactor > 0.0)) fail("timeoutFactor must be > 0");
    if (propagationDelay < 0) fail("propagationDelay must be >= 0");
    if (!(lossProbability >= 0.0 && lossProbability <= 1.0)) {
      fail("lossProbability must be in [0, 1]");
    }
    if (collisionWindow < 0) fail("collisionWindow must be >= 0");
    if (!(radius > 0.0)) fail("radius must be > 0");
    for (const double r : perNodeRadius) {
      if (!(r > 0.0)) fail("perNodeRadius entries must be > 0");
    }
  }
};

struct NetworkStats {
  std::size_t beaconsSent = 0;
  std::size_t beaconsDelivered = 0;
  std::size_t beaconsLost = 0;      ///< random (fading) losses
  std::size_t beaconsCollided = 0;  ///< MAC collision losses
  std::size_t moves = 0;
  std::size_t ruleEvaluations = 0;    ///< beacon intervals that ran the rules
  std::size_t evaluationsSkipped = 0; ///< intervals suppressed (Active, clean)

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

/// Diagnostic counters for the spatial index and its reference scan. Unlike
/// NetworkStats these are *mode-dependent by design* — the grid exists to
/// shrink rangeChecks — so equivalence suites must not compare them across
/// IndexMode values. The scale benchmark's >= 20x reduction gate reads them.
struct IndexStats {
  std::size_t rangeChecks = 0;         ///< exact distance tests executed
  std::size_t gridQueries = 0;         ///< broadcast gathers (Grid mode)
  std::size_t broadcastCandidates = 0; ///< candidates those gathers returned
  std::size_t collisionChecks = 0;     ///< collidesAt invocations
  std::size_t collisionCandidates = 0; ///< in-window transmitters tested

  friend bool operator==(const IndexStats&, const IndexStats&) = default;
};

struct QuietResult {
  SimTime endTime = 0;
  bool quiet = false;  ///< no state change for the requested window
  NetworkStats stats;
};

template <typename State>
class NetworkSimulator {
 public:
  NetworkSimulator(const engine::Protocol<State>& protocol,
                   const graph::IdAssignment& ids, Mobility& mobility,
                   NetworkConfig config)
      : protocol_(&protocol),
        ids_(&ids),
        mobility_(&mobility),
        config_(std::move(config)),
        rng_(config_.seed),
        nodes_(mobility.order()),
        lastTx_(mobility.order(), -1),
        queue_(config_.queue == QueueMode::Calendar
                   ? std::max<SimTime>(1, config_.beaconInterval / 16)
                   : 0),
        posStamp_(mobility.order(), -1),
        posPoint_(mobility.order()) {
    assert(ids.order() == mobility.order());
    config_.validate();
    if (!config_.perNodeRadius.empty() &&
        config_.perNodeRadius.size() != mobility.order()) {
      throw std::invalid_argument(
          "NetworkConfig: perNodeRadius size must match the node count");
    }
    maxRadius_ = config_.radius;
    if (!config_.perNodeRadius.empty()) {
      maxRadius_ = *std::max_element(config_.perNodeRadius.begin(),
                                     config_.perNodeRadius.end());
    }
    // A recorded position lags reality by at most one jittered beacon
    // interval (a node re-places itself at every beacon; the construction
    // placement below covers the first interval, whose phase is < one
    // interval). Collision candidates lag by at most collisionWindow. The
    // epsilon absorbs the interpolation arithmetic of Mobility::position.
    constexpr double kSlack = 1e-9;
    const double secondsPerInterval = static_cast<double>(
                                          config_.beaconInterval) /
                                      static_cast<double>(kSecond);
    broadcastSlack_ = mobility.maxSpeed() * (1.0 + config_.jitterFraction) *
                          secondsPerInterval +
                      kSlack;
    collisionSlack_ = mobility.maxSpeed() *
                          (static_cast<double>(config_.collisionWindow) /
                           static_cast<double>(kSecond)) +
                      kSlack;
    if (config_.index == IndexMode::Grid) {
      grid_ = graph::SpatialGrid(nodes_.size(), maxRadius_);
      if (config_.collisionWindow > 0) txRings_.resize(grid_.cellCount());
      for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
        grid_.place(v, positionAt(v, 0));
      }
    }
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      nodes_[v].state = protocol.initialState(v);
      // Desynchronized start: first beacon at a random phase of one interval.
      queue_.schedule(
          static_cast<SimTime>(rng_.below(
              static_cast<std::uint64_t>(config_.beaconInterval))),
          Event{BeaconTimer{v}});
    }
  }

  /// Attaches metric/event sinks (either may be null; pass nulls to
  /// detach). Counters shadow NetworkStats increment-for-increment, so a
  /// registry dump always agrees with stats() exactly; the index/queue
  /// diagnostics shadow IndexStats the same way (and are mode-dependent,
  /// see IndexStats). The event log receives "move", "neighbor_expired",
  /// and "reboot" records keyed by simulated time — never wall clock — so
  /// logs stay reproducible.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events = nullptr) {
    events_ = events;
    if (registry == nullptr) {
      metrics_ = Metrics{};
      return;
    }
    namespace names = telemetry::names;
    metrics_.beaconsSent = &registry->counter(names::kBeaconsSent);
    metrics_.beaconsDelivered = &registry->counter(names::kBeaconsDelivered);
    metrics_.beaconsLost = &registry->counter(names::kBeaconsLost);
    metrics_.beaconsCollided = &registry->counter(names::kBeaconsCollided);
    metrics_.moves = &registry->counter(names::kMovesTotal);
    metrics_.neighborExpirations =
        &registry->counter(names::kNeighborExpirations);
    metrics_.ruleEvaluations = &registry->counter(names::kActiveNodes);
    metrics_.evaluationsSkipped = &registry->counter(names::kSkippedNodes);
    metrics_.rangeChecks = &registry->counter(names::kRangeChecks);
    metrics_.cacheSize = &registry->histogram(names::kNeighborCacheSize,
                                              telemetry::sizeBuckets());
    metrics_.gridOccupancy = &registry->histogram(names::kGridOccupancy,
                                                  telemetry::sizeBuckets());
    metrics_.broadcastCandidates = &registry->histogram(
        names::kBroadcastCandidates, telemetry::sizeBuckets());
    metrics_.collisionCandidates = &registry->histogram(
        names::kCollisionCandidates, telemetry::sizeBuckets());
    metrics_.queueDepth = &registry->histogram(names::kEventQueueDepth,
                                               telemetry::depthBuckets());
    // A node's beacon-interval work (expiry sweep, rule evaluation,
    // broadcast) is its share of one paper-round; that is the latency this
    // histogram tracks in the beacon model.
    metrics_.roundDuration = &registry->histogram(
        names::kRoundDuration, telemetry::durationBuckets());
    metrics_.evaluationsPerSecond =
        &registry->gauge(names::kEvaluationsPerSecond);
  }

  /// Installs a devirtualized view kernel (core/kernels.hpp) for rule
  /// evaluation; nullptr reverts to Protocol::onRound. The simulator has no
  /// static graph to mirror, so it uses the view-level kernel tier —
  /// decisions are bit-identical by construction (kernel and protocol share
  /// the same rule code). Caller keeps ownership; the kernel must outlive
  /// the simulator or be detached first.
  void setViewKernel(const engine::ViewKernel<State>* kernel) noexcept {
    viewKernel_ = kernel;
  }

  /// Which evaluation path rule evaluation is on.
  [[nodiscard]] engine::Kernel kernel() const noexcept {
    return viewKernel_ != nullptr ? engine::Kernel::Flat
                                  : engine::Kernel::Generic;
  }

  /// Runs until simulated time `until`.
  void run(SimTime until) {
    const EvalRateScope rate(metrics_, stats_);
    while (!queue_.empty() && queue_.nextTime() <= until) {
      dispatch(queue_.pop());
    }
  }

  /// Runs until no node has changed protocol state for `quietWindow`, or
  /// until maxTime. (Quiescence in the beacon model: every node keeps
  /// evaluating its rules each interval but none is privileged.)
  /// `noQuietBefore` suppresses the quiet exit until that time — a fault
  /// campaign must not declare quiescence while events are still pending.
  QuietResult runUntilQuiet(SimTime quietWindow, SimTime maxTime,
                            SimTime noQuietBefore = 0) {
    QuietResult result;
    const EvalRateScope rate(metrics_, stats_);
    while (!queue_.empty() && queue_.nextTime() <= maxTime) {
      dispatch(queue_.pop());
      if (queue_.now() >= noQuietBefore &&
          queue_.now() - lastMove_ >= quietWindow) {
        result.quiet = true;
        break;
      }
    }
    result.endTime = queue_.now();
    result.stats = stats_;
    return result;
  }

  /// Overwrites node states (fault injection). Every node is marked dirty:
  /// an Active-schedule run must re-evaluate everyone after a fault burst.
  void setStates(std::vector<State> states) {
    assert(states.size() == nodes_.size());
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      nodes_[v].state = std::move(states[v]);
      nodes_[v].dirty = true;
    }
    lastMove_ = queue_.now();
  }

  /// Reboots node v: protocol state back to the protocol's initial value
  /// and the neighbor cache wiped, as after a transient crash-restart. The
  /// paper's model keeps the node set fixed, so a "crash" is exactly this
  /// kind of transient fault; the protocol must absorb it.
  void rebootNode(graph::Vertex v) {
    nodes_[v].state = protocol_->initialState(v);
    nodes_[v].cache.clear();
    nodes_[v].dirty = true;
    lastMove_ = queue_.now();
    if (events_ != nullptr) {
      events_->emit("reboot", {{"t_us", queue_.now()}, {"node", v}});
    }
  }

  [[nodiscard]] std::vector<State> states() const {
    std::vector<State> out;
    out.reserve(nodes_.size());
    for (const auto& node : nodes_) out.push_back(node.state);
    return out;
  }

  /// Ground-truth *bidirectional* radio topology at the current simulation
  /// time: {u,v} is an edge iff each is within the other's transmit range
  /// (with uniform ranges this is the plain unit-disk graph). Asymmetric
  /// one-way reachability is, by the paper's model, not a link.
  [[nodiscard]] graph::Graph currentTopology() {
    const SimTime now = queue_.now();
    std::vector<graph::Point> pts(nodes_.size());
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      pts[v] = positionAt(v, now);
    }
    graph::Graph g(nodes_.size());
    if (config_.index == IndexMode::Scan || nodes_.size() < 256) {
      for (graph::Vertex u = 0; u < nodes_.size(); ++u) {
        for (graph::Vertex v = u + 1; v < nodes_.size(); ++v) {
          const double reach = std::min(radiusOf(u), radiusOf(v));
          if (graph::squaredDistance(pts[u], pts[v]) <= reach * reach) {
            g.addEdge(u, v);
          }
        }
      }
      return g;
    }
    // A fresh exact-position grid (the incremental one lags by a beacon
    // interval). Graph stores sorted adjacency and compares structurally,
    // so the cell-driven discovery order is unobservable.
    graph::SpatialGrid snap(nodes_.size(), maxRadius_);
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) snap.place(v, pts[v]);
    std::vector<graph::Vertex> near;
    for (graph::Vertex u = 0; u < nodes_.size(); ++u) {
      near.clear();
      snap.gather(pts[u], maxRadius_, near);
      for (const graph::Vertex v : near) {
        if (v <= u) continue;
        const double reach = std::min(radiusOf(u), radiusOf(v));
        if (graph::squaredDistance(pts[u], pts[v]) <= reach * reach) {
          g.addEdge(u, v);
        }
      }
    }
    return g;
  }

  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const IndexStats& indexStats() const noexcept {
    return indexStats_;
  }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] SimTime lastMoveTime() const noexcept { return lastMove_; }

  /// Number of whole beacon intervals elapsed — the paper's round count.
  [[nodiscard]] double roundsElapsed() const noexcept {
    return static_cast<double>(queue_.now()) /
           static_cast<double>(config_.beaconInterval);
  }

  // --- Fault-campaign hooks (driven by chaos::SimChaosController) -------
  //
  // chaosAttach() allocates the chaos state; every other chaos* method
  // requires it. While no fault has fired the attached simulator's
  // trajectory is bit-identical to an unattached one: the chaos checks
  // read only all-zero flag arrays, consume no RNG draws, and schedule no
  // events (the controller owns a separate Rng for fault randomness).

  /// `maxDriftFactor` widens the grid's broadcast staleness slack so a
  /// drift-slowed beacon interval keeps the gather superset sound.
  void chaosAttach(double maxDriftFactor = 1.0) {
    if (chaos_ != nullptr) return;
    chaos_ = std::make_unique<ChaosState>();
    const std::size_t n = nodes_.size();
    chaos_->crashed.assign(n, 0);
    chaos_->stuck.assign(n, 0);
    chaos_->epoch.assign(n, 0);
    chaos_->drift.assign(n, 1.0);
    chaos_->side.assign(n, 0);
    chaos_->garbled.assign(n, std::nullopt);
    if (maxDriftFactor > 1.0) broadcastSlack_ *= maxDriftFactor;
  }
  [[nodiscard]] bool chaosAttached() const noexcept {
    return chaos_ != nullptr;
  }

  /// Schedules a ChaosTick carrying `index`; the handler set via
  /// chaosSetHandler receives it when simulated time reaches `at`.
  void chaosScheduleTick(SimTime at, std::int64_t index) {
    queue_.schedule(at, Event{ChaosTick{index}});
  }
  void chaosSetHandler(std::function<void(std::int64_t)> handler) {
    chaos_->handler = std::move(handler);
  }
  /// Called after every committed protocol move (simulated time, node).
  void chaosSetMoveHook(std::function<void(SimTime, graph::Vertex)> hook) {
    chaos_->moveHook = std::move(hook);
  }

  /// Crash: the node stops transmitting (its pending beacon-timer chain is
  /// orphaned by the epoch bump) and hears nothing until it rejoins.
  /// Neighbors discover the silence through cache expiry, exactly like a
  /// real host vanishing.
  void chaosCrash(graph::Vertex v) {
    chaos_->crashed[v] = 1;
    ++chaos_->epoch[v];
  }

  /// Rejoin after a crash: fresh initial state, empty neighbor cache, and a
  /// new beacon-timer chain starting `phase` from now (the caller picks the
  /// phase from its own RNG to keep the restart desynchronized).
  void chaosRejoin(graph::Vertex v, SimTime phase) {
    chaos_->crashed[v] = 0;
    ++chaos_->epoch[v];
    nodes_[v].state = protocol_->initialState(v);
    nodes_[v].cache.clear();
    nodes_[v].dirty = true;
    lastMove_ = queue_.now();
    if (config_.index == IndexMode::Grid) {
      grid_.place(v, positionAt(v, queue_.now()));
    }
    queue_.schedule(queue_.now() + std::max<SimTime>(1, phase),
                    Event{BeaconTimer{v, chaos_->epoch[v]}});
    if (events_ != nullptr) {
      events_->emit("reboot", {{"t_us", queue_.now()}, {"node", v}});
    }
  }

  /// Partition: beacons between different sides are dropped at the radio.
  void chaosSetPartition(std::vector<std::uint8_t> side) {
    assert(side.size() == nodes_.size());
    chaos_->side = std::move(side);
    chaos_->partitionActive = true;
  }
  void chaosHealPartition() { chaos_->partitionActive = false; }

  /// Loss bursts: swap the per-receiver loss probability (restore with the
  /// original value). The loss draw consumes one RNG value regardless of p,
  /// so changing it never desynchronizes the Grid/Scan draw order.
  void chaosSetLossProbability(double p) { config_.lossProbability = p; }
  [[nodiscard]] double lossProbability() const noexcept {
    return config_.lossProbability;
  }

  /// Clock drift: this node's beacon interval is multiplied by `factor`
  /// (1.0 restores a true clock).
  void chaosSetDrift(graph::Vertex v, double factor) {
    chaos_->drift[v] = factor;
  }

  /// Stuck: the node keeps beaconing its current state but never evaluates
  /// its rules — a frozen program with a live radio.
  void chaosSetStuck(graph::Vertex v, bool stuck) {
    chaos_->stuck[v] = stuck ? 1 : 0;
    if (!stuck) nodes_[v].dirty = true;  // resume with a forced evaluation
  }

  /// Garble: the node's *next* beacon carries `payload` instead of its real
  /// state (one corrupted transmission, then the radio is honest again).
  void chaosGarble(graph::Vertex v, State payload) {
    chaos_->garbled[v] = std::move(payload);
  }

  /// Overwrites one node's state in place (targeted corruption).
  void setNodeState(graph::Vertex v, State state) {
    nodes_[v].state = std::move(state);
    nodes_[v].dirty = true;
    lastMove_ = queue_.now();
  }

  [[nodiscard]] bool chaosCrashed(graph::Vertex v) const noexcept {
    return chaos_ != nullptr && chaos_->crashed[v] != 0;
  }
  [[nodiscard]] bool chaosStuck(graph::Vertex v) const noexcept {
    return chaos_ != nullptr && chaos_->stuck[v] != 0;
  }

 private:
  struct BeaconTimer {
    graph::Vertex node;
    /// Crash/rejoin bump the node's chaos epoch; a timer whose epoch no
    /// longer matches belongs to an orphaned chain and is dropped. Always 0
    /// when no chaos state is attached.
    std::uint32_t epoch = 0;
  };
  struct Delivery {
    graph::Vertex to;
    graph::Vertex from;
    State payload;
  };
  /// Fault-campaign timer; `index` identifies the FaultEvent to apply.
  struct ChaosTick {
    std::int64_t index;
  };
  using Event = std::variant<BeaconTimer, Delivery, ChaosTick>;

  struct CacheEntry {
    graph::Vertex from;
    SimTime heardAt;
    State state;
  };

  struct Node {
    State state{};
    // Sorted by sender vertex so LocalViews enumerate neighbors in
    // increasing vertex order, matching the abstract engine. Flat storage:
    // one allocation, contiguous iteration for the expiry sweep and the
    // view build.
    std::vector<CacheEntry> cache;
    // Active schedule: true iff the node's view (own state, cache
    // membership, or a cached neighbor state) changed since its last rule
    // evaluation. Starts dirty so every node evaluates at least once.
    bool dirty = true;
  };

  struct TxRecord {
    SimTime at;
    graph::Vertex node;
  };

  void dispatch(Event event) {
    if (auto* timer = std::get_if<BeaconTimer>(&event)) {
      onBeaconTimer(timer->node, timer->epoch);
    } else if (auto* tick = std::get_if<ChaosTick>(&event)) {
      if (chaos_ != nullptr && chaos_->handler) chaos_->handler(tick->index);
    } else {
      onDelivery(std::get<Delivery>(std::move(event)));
    }
  }

  void onBeaconTimer(graph::Vertex v, std::uint32_t epoch) {
    if (chaos_ != nullptr && epoch != chaos_->epoch[v]) return;  // orphaned
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const SimTime now = queue_.now();
    Node& node = nodes_[v];

    // Neighbor discovery: expire links whose beacons stopped arriving. The
    // cache compacts in place; entries stay sorted by sender, so expiry
    // events fire in ascending neighbor order.
    const auto timeout = static_cast<SimTime>(
        config_.timeoutFactor * static_cast<double>(config_.beaconInterval));
    std::size_t keep = 0;
    for (std::size_t i = 0; i < node.cache.size(); ++i) {
      CacheEntry& entry = node.cache[i];
      if (now - entry.heardAt > timeout) {
        if (metrics_.neighborExpirations != nullptr) {
          metrics_.neighborExpirations->inc();
        }
        if (events_ != nullptr) {
          events_->emit(
              "neighbor_expired",
              {{"t_us", now}, {"node", v}, {"neighbor", entry.from}});
        }
        node.dirty = true;  // view shrank: re-evaluate
      } else {
        if (keep != i) node.cache[keep] = std::move(entry);
        ++keep;
      }
    }
    node.cache.erase(node.cache.begin() + static_cast<std::ptrdiff_t>(keep),
                     node.cache.end());
    if (metrics_.cacheSize != nullptr) {
      metrics_.cacheSize->observe(static_cast<double>(node.cache.size()));
    }

    // Act on the beacons gathered this round (the paper: a node takes action
    // after receiving beacon messages from all its neighbors). Under the
    // Active schedule a clean node skips the evaluation: its view is
    // unchanged since the last (disabled) evaluation, so a deterministic
    // rule would return the same nullopt.
    const bool stuckNode = chaos_ != nullptr && chaos_->stuck[v] != 0;
    const bool evaluate =
        !stuckNode && (config_.schedule != engine::Schedule::Active ||
                       protocol_->usesRoundEntropy() || node.dirty);
    if (evaluate) {
      ++stats_.ruleEvaluations;
      if (metrics_.ruleEvaluations != nullptr) metrics_.ruleEvaluations->inc();
      node.dirty = false;
      neighborBuffer_.clear();
      for (const CacheEntry& entry : node.cache) {
        neighborBuffer_.push_back(engine::NeighborRef<State>{
            entry.from, ids_->idOf(entry.from), &entry.state});
      }
      engine::LocalView<State> view;
      view.self = v;
      view.selfId = ids_->idOf(v);
      view.selfState = &node.state;
      view.neighbors = neighborBuffer_;
      view.roundKey = hashCombine(config_.seed,
                                  static_cast<std::uint64_t>(
                                      now / config_.beaconInterval));
      if (auto next = viewKernel_ != nullptr ? viewKernel_->evaluateView(view)
                                             : protocol_->onRound(view)) {
        node.state = std::move(*next);
        node.dirty = true;  // own state is part of the view
        ++stats_.moves;
        if (metrics_.moves != nullptr) metrics_.moves->inc();
        if (events_ != nullptr) {
          events_->emit("move", {{"t_us", now}, {"node", v}});
        }
        lastMove_ = now;
        if (chaos_ != nullptr && chaos_->moveHook) chaos_->moveHook(now, v);
      }
    } else {
      ++stats_.evaluationsSkipped;
      if (metrics_.evaluationsSkipped != nullptr) {
        metrics_.evaluationsSkipped->inc();
      }
    }

    // Broadcast the (possibly updated) state to everyone in the *sender's*
    // transmit range (reception is governed by the transmitter's power).
    // Both index modes run the same per-receiver pipeline — exact distance
    // test, loss draw, collision check, delivery — over ascending receiver
    // vertices, so RNG draws and event sequence numbers are identical; the
    // grid merely prunes receivers that cannot possibly be in range.
    const graph::Point me = positionAt(v, now);
    const double r2 = radiusOf(v) * radiusOf(v);
    const State* payload = &node.state;
    if (chaos_ != nullptr && chaos_->garbled[v].has_value()) {
      payload = &*chaos_->garbled[v];
    }
    const auto offerBeacon = [&](graph::Vertex u) {
      if (u == v) return;
      if (chaos_ != nullptr) {
        // Crashed receivers hear nothing; a partition cuts cross-side
        // links. Both tests precede the distance test and the loss draw so
        // Grid and Scan stay RNG-aligned: a chaos-dropped receiver consumes
        // no draws in either mode.
        if (chaos_->crashed[u] != 0) return;
        if (chaos_->partitionActive && chaos_->side[u] != chaos_->side[v]) {
          return;
        }
      }
      const graph::Point other = positionAt(u, now);
      ++indexStats_.rangeChecks;
      if (metrics_.rangeChecks != nullptr) metrics_.rangeChecks->inc();
      if (graph::squaredDistance(me, other) > r2) return;
      if (rng_.chance(config_.lossProbability)) {
        ++stats_.beaconsLost;
        if (metrics_.beaconsLost != nullptr) metrics_.beaconsLost->inc();
        return;
      }
      if (config_.collisionWindow > 0 && collidesAt(u, v, other, now)) {
        ++stats_.beaconsCollided;
        if (metrics_.beaconsCollided != nullptr) {
          metrics_.beaconsCollided->inc();
        }
        return;
      }
      queue_.schedule(now + config_.propagationDelay,
                      Event{Delivery{u, v, *payload}});
    };
    if (config_.index == IndexMode::Grid) {
      grid_.place(v, me);
      candidates_.clear();
      grid_.gather(me, radiusOf(v) + broadcastSlack_, candidates_);
      std::sort(candidates_.begin(), candidates_.end());
      ++indexStats_.gridQueries;
      indexStats_.broadcastCandidates += candidates_.size();
      if (metrics_.broadcastCandidates != nullptr) {
        metrics_.broadcastCandidates->observe(
            static_cast<double>(candidates_.size()));
      }
      if (metrics_.gridOccupancy != nullptr) {
        metrics_.gridOccupancy->observe(static_cast<double>(
            grid_.cellMembers(grid_.cellOf(me)).size()));
      }
      for (const graph::Vertex u : candidates_) offerBeacon(u);
    } else {
      for (graph::Vertex u = 0; u < nodes_.size(); ++u) offerBeacon(u);
    }
    if (config_.index == IndexMode::Grid && config_.collisionWindow > 0) {
      auto& ring = txRings_[grid_.cellOf(me)];
      pruneRing(ring, now);
      ring.push_back(TxRecord{now, v});
    }
    lastTx_[v] = now;
    ++stats_.beaconsSent;
    if (metrics_.beaconsSent != nullptr) metrics_.beaconsSent->inc();
    if (chaos_ != nullptr) chaos_->garbled[v].reset();  // one beacon only

    // Next beacon with jitter (and any chaos clock drift; drift 1.0
    // multiplies through exactly, keeping the undrifted interval
    // bit-identical).
    const double jitter =
        rng_.real(-config_.jitterFraction, config_.jitterFraction);
    const double drift = chaos_ != nullptr ? chaos_->drift[v] : 1.0;
    const auto interval = std::max<SimTime>(
        1, static_cast<SimTime>(
               (1.0 + jitter) * drift *
               static_cast<double>(config_.beaconInterval)));
    queue_.schedule(now + interval, Event{BeaconTimer{v, epoch}});
    if (metrics_.queueDepth != nullptr) {
      metrics_.queueDepth->observe(static_cast<double>(queue_.size()));
    }
  }

  void onDelivery(Delivery&& d) {
    if (chaos_ != nullptr && chaos_->crashed[d.to] != 0) return;
    Node& node = nodes_[d.to];
    const SimTime now = queue_.now();
    const auto it = std::lower_bound(
        node.cache.begin(), node.cache.end(), d.from,
        [](const CacheEntry& e, graph::Vertex from) { return e.from < from; });
    if (it == node.cache.end() || it->from != d.from) {
      node.cache.insert(it, CacheEntry{d.from, now, std::move(d.payload)});
      node.dirty = true;  // new neighbor appeared in the view
    } else {
      // Refresh heardAt in place; a changed payload moves in and dirties
      // the view, an unchanged one costs no copy at all.
      if (!(it->state == d.payload)) {
        it->state = std::move(d.payload);
        node.dirty = true;
      }
      it->heardAt = now;
    }
    ++stats_.beaconsDelivered;
    if (metrics_.beaconsDelivered != nullptr) {
      metrics_.beaconsDelivered->inc();
    }
  }

  /// MAC collision check for a beacon sent by `sender` at `now` towards the
  /// receiver at `receiverPos`: lost if any third node in the receiver's
  /// range transmitted within the collision window. (Half-duplex model:
  /// only transmissions *before* the current one are checked; the jittered
  /// schedule breaks symmetric persistent collisions.) Grid mode walks only
  /// the per-cell recent-transmitter rings around the receiver: an
  /// in-window transmitter recorded its last transmission at its exact cell
  /// at that moment, so widening the query disk by collisionSlack_ covers
  /// any drift since. Duplicate ring entries (a node beaconing twice inside
  /// the window) merely repeat the same existence test.
  [[nodiscard]] bool collidesAt(graph::Vertex receiver, graph::Vertex sender,
                                const graph::Point& receiverPos,
                                SimTime now) {
    ++indexStats_.collisionChecks;
    bool hit = false;
    std::size_t candidates = 0;
    const auto testTransmitter = [&](graph::Vertex k) {
      if (k == sender || k == receiver) return;
      if (lastTx_[k] < 0 || now - lastTx_[k] > config_.collisionWindow) {
        return;
      }
      ++candidates;
      ++indexStats_.rangeChecks;
      if (metrics_.rangeChecks != nullptr) metrics_.rangeChecks->inc();
      const graph::Point kp = positionAt(k, now);
      const double rk = radiusOf(k);
      if (graph::squaredDistance(kp, receiverPos) <= rk * rk) hit = true;
    };
    if (config_.index == IndexMode::Grid) {
      grid_.forEachCellIntersecting(
          receiverPos, maxRadius_ + collisionSlack_, [&](std::size_t cell) {
            if (hit) return;
            auto& ring = txRings_[cell];
            pruneRing(ring, now);
            for (const TxRecord& rec : ring) {
              testTransmitter(rec.node);
              if (hit) return;
            }
          });
    } else {
      for (graph::Vertex k = 0; k < nodes_.size() && !hit; ++k) {
        testTransmitter(k);
      }
    }
    indexStats_.collisionCandidates += candidates;
    if (metrics_.collisionCandidates != nullptr) {
      metrics_.collisionCandidates->observe(static_cast<double>(candidates));
    }
    return hit;
  }

  /// Drops the stale prefix of a cell's transmitter ring (entries are
  /// appended in transmission order, so stale ones are contiguous).
  void pruneRing(std::vector<TxRecord>& ring, SimTime now) {
    std::size_t drop = 0;
    while (drop < ring.size() &&
           now - ring[drop].at > config_.collisionWindow) {
      ++drop;
    }
    if (drop > 0) {
      ring.erase(ring.begin(), ring.begin() + static_cast<std::ptrdiff_t>(drop));
    }
  }

  /// Mobility::position memoized per (node, event timestamp): one beacon
  /// touches a receiver several times (broadcast test + collision checks),
  /// and position(v, t) is pure in (v, t), so a same-timestamp replay is
  /// free.
  [[nodiscard]] graph::Point positionAt(graph::Vertex v, SimTime t) {
    if (posStamp_[v] == t) return posPoint_[v];
    const graph::Point p = mobility_->position(v, t);
    posStamp_[v] = t;
    posPoint_[v] = p;
    return p;
  }

  [[nodiscard]] double radiusOf(graph::Vertex v) const noexcept {
    return config_.perNodeRadius.empty() ? config_.radius
                                         : config_.perNodeRadius[v];
  }

  /// Resolved registry endpoints; all null when telemetry is disabled, in
  /// which case the simulator performs no clock reads or atomic writes.
  struct Metrics {
    telemetry::Counter* beaconsSent = nullptr;
    telemetry::Counter* beaconsDelivered = nullptr;
    telemetry::Counter* beaconsLost = nullptr;
    telemetry::Counter* beaconsCollided = nullptr;
    telemetry::Counter* moves = nullptr;
    telemetry::Counter* neighborExpirations = nullptr;
    telemetry::Counter* ruleEvaluations = nullptr;
    telemetry::Counter* evaluationsSkipped = nullptr;
    telemetry::Counter* rangeChecks = nullptr;
    telemetry::Histogram* cacheSize = nullptr;
    telemetry::Histogram* gridOccupancy = nullptr;
    telemetry::Histogram* broadcastCandidates = nullptr;
    telemetry::Histogram* collisionCandidates = nullptr;
    telemetry::Histogram* queueDepth = nullptr;
    telemetry::Histogram* roundDuration = nullptr;
    telemetry::Gauge* evaluationsPerSecond = nullptr;
  };

  // Times one drive call (run / runUntilQuiet) into the
  // evaluations_per_second gauge, mirroring the round executors'
  // EvalStopwatch. Wall-clock rates are metrics-only: reports and the
  // event log stay byte-reproducible across kernels and index/queue
  // modes. No registry attached -> no clock reads at all.
  class EvalRateScope {
   public:
    EvalRateScope(const Metrics& metrics, const NetworkStats& stats)
        : metrics_(metrics), stats_(stats) {
      if (metrics_.evaluationsPerSecond != nullptr) {
        startEvals_ = stats_.ruleEvaluations;
        start_ = std::chrono::steady_clock::now();
      }
    }
    EvalRateScope(const EvalRateScope&) = delete;
    EvalRateScope& operator=(const EvalRateScope&) = delete;
    ~EvalRateScope() {
      if (metrics_.evaluationsPerSecond == nullptr) return;
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start_)
                                 .count();
      const std::size_t evaluated = stats_.ruleEvaluations - startEvals_;
      if (seconds > 0.0 && evaluated > 0) {
        metrics_.evaluationsPerSecond->set(static_cast<double>(evaluated) /
                                           seconds);
      }
    }

   private:
    const Metrics& metrics_;
    const NetworkStats& stats_;
    std::size_t startEvals_ = 0;
    std::chrono::steady_clock::time_point start_;
  };

  /// Fault-campaign state. Allocated only by chaosAttach(): a null pointer
  /// keeps every hot-path chaos check to one predicted-not-taken branch,
  /// and an attached-but-quiet simulator (empty plan) reads only all-zero
  /// flags — no RNG stream, event, or schedule is perturbed until a fault
  /// actually fires. Fault randomness (victim choice, corrupted states,
  /// rejoin phases) lives in the controller's own Rng, never in rng_.
  struct ChaosState {
    std::function<void(std::int64_t)> handler;
    std::function<void(SimTime, graph::Vertex)> moveHook;
    std::vector<std::uint8_t> crashed;
    std::vector<std::uint8_t> stuck;
    std::vector<std::uint32_t> epoch;
    std::vector<double> drift;
    std::vector<std::uint8_t> side;
    std::vector<std::optional<State>> garbled;
    bool partitionActive = false;
  };

  const engine::Protocol<State>* protocol_;
  const engine::ViewKernel<State>* viewKernel_ = nullptr;
  const graph::IdAssignment* ids_;
  Mobility* mobility_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<SimTime> lastTx_;
  CalendarQueue<Event> queue_;
  std::vector<SimTime> posStamp_;      ///< timestamp posPoint_[v] is valid for
  std::vector<graph::Point> posPoint_;
  graph::SpatialGrid grid_;
  std::vector<std::vector<TxRecord>> txRings_;  ///< per grid cell
  std::vector<graph::Vertex> candidates_;       ///< reused gather buffer
  double maxRadius_ = 0.0;
  double broadcastSlack_ = 0.0;
  double collisionSlack_ = 0.0;
  NetworkStats stats_;
  IndexStats indexStats_;
  Metrics metrics_;
  telemetry::EventLog* events_ = nullptr;
  SimTime lastMove_ = 0;
  std::vector<engine::NeighborRef<State>> neighborBuffer_;
  std::unique_ptr<ChaosState> chaos_;
};

}  // namespace selfstab::adhoc
