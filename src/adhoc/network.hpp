// Discrete-event simulation of the paper's system model (Section 2).
//
// Each node periodically broadcasts a beacon carrying its protocol state.
// Receivers cache (sender, state, timestamp); a neighbor not heard from
// within the timeout is presumed gone and dropped (the neighbor-discovery
// protocol). Immediately before sending its own beacon — i.e. once per
// beacon interval, after it has had the chance to hear every neighbor, the
// paper's definition of a round — a node evaluates its protocol rules
// against the cached neighbor states and moves if privileged.
//
// The same Protocol objects that run under the abstract synchronous engine
// run here unchanged; the LocalView is simply built from beacon caches
// instead of a global snapshot. Radio connectivity is unit-disk over a
// Mobility model, so host movement creates and destroys links and the
// protocols must re-stabilize, which is exactly the paper's fault-tolerance
// story.
#pragma once

#include <algorithm>
#include <cassert>
#include <map>
#include <variant>
#include <vector>

#include "adhoc/event_queue.hpp"
#include "adhoc/mobility.hpp"
#include "adhoc/sim_time.hpp"
#include "engine/protocol.hpp"
#include "engine/schedule.hpp"
#include "graph/geometry.hpp"
#include "graph/id_order.hpp"
#include "graph/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab::adhoc {

struct NetworkConfig {
  SimTime beaconInterval = 100 * kMillisecond;
  /// Each interval is multiplied by (1 + u) with u uniform in
  /// [-jitterFraction, +jitterFraction]; beacons are not phase-locked.
  double jitterFraction = 0.05;
  /// Neighbor expiry: drop j if not heard for timeoutFactor * beaconInterval.
  double timeoutFactor = 2.5;
  SimTime propagationDelay = 1 * kMillisecond;
  /// Independent per-(beacon, receiver) loss probability.
  double lossProbability = 0.0;
  /// MAC contention model: a beacon is lost at receiver j if some third
  /// node in j's radio range transmitted within this window before the
  /// sender (half-duplex carrier collision). 0 disables the model — the
  /// paper's assumption that "the data link protocol resolves any
  /// contention for the shared medium". Jittered beacon phases make
  /// persistent collisions between fixed pairs unlikely, so protocols
  /// still converge, just slower.
  SimTime collisionWindow = 0;
  /// Radio range in unit-square widths.
  double radius = 0.35;
  /// Dense: every node evaluates its rules each beacon interval. Active: a
  /// node evaluates only when *dirty* — its own state or its neighbor cache
  /// (membership or cached states) changed since its last evaluation. A
  /// deterministic rule over an unchanged view returns the same answer, so
  /// skipping it cannot change the trajectory; protocols that read roundKey
  /// (Protocol::usesRoundEntropy) always evaluate. Beacons are broadcast
  /// either way — only the rule evaluation is elided.
  engine::Schedule schedule = engine::Schedule::Dense;
  /// Optional per-node transmit ranges overriding `radius` (empty = uniform).
  /// Heterogeneous ranges create *asymmetric* links — u hears v without v
  /// hearing u — which violates the paper's assumption that "the links
  /// between two adjacent nodes are always bidirectional". The simulator
  /// supports them precisely so tests can probe what that assumption buys
  /// (see adhoc/test_network.cpp: SMM can wedge a node into pointing at a
  /// neighbor that will never answer).
  std::vector<double> perNodeRadius;
  std::uint64_t seed = 1;
};

struct NetworkStats {
  std::size_t beaconsSent = 0;
  std::size_t beaconsDelivered = 0;
  std::size_t beaconsLost = 0;      ///< random (fading) losses
  std::size_t beaconsCollided = 0;  ///< MAC collision losses
  std::size_t moves = 0;
  std::size_t ruleEvaluations = 0;    ///< beacon intervals that ran the rules
  std::size_t evaluationsSkipped = 0; ///< intervals suppressed (Active, clean)
};

struct QuietResult {
  SimTime endTime = 0;
  bool quiet = false;  ///< no state change for the requested window
  NetworkStats stats;
};

template <typename State>
class NetworkSimulator {
 public:
  NetworkSimulator(const engine::Protocol<State>& protocol,
                   const graph::IdAssignment& ids, Mobility& mobility,
                   NetworkConfig config)
      : protocol_(&protocol),
        ids_(&ids),
        mobility_(&mobility),
        config_(config),
        rng_(config.seed),
        nodes_(mobility.order()),
        lastTx_(mobility.order(), -1) {
    assert(ids.order() == mobility.order());
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      nodes_[v].state = protocol.initialState(v);
      // Desynchronized start: first beacon at a random phase of one interval.
      queue_.schedule(
          static_cast<SimTime>(rng_.below(
              static_cast<std::uint64_t>(config_.beaconInterval))),
          Event{BeaconTimer{v}});
    }
  }

  /// Attaches metric/event sinks (either may be null; pass nulls to
  /// detach). Counters shadow NetworkStats increment-for-increment, so a
  /// registry dump always agrees with stats() exactly. The event log
  /// receives "move", "neighbor_expired", and "reboot" records keyed by
  /// simulated time — never wall clock — so logs stay reproducible.
  void attachTelemetry(telemetry::Registry* registry,
                       telemetry::EventLog* events = nullptr) {
    events_ = events;
    if (registry == nullptr) {
      metrics_ = Metrics{};
      return;
    }
    namespace names = telemetry::names;
    metrics_.beaconsSent = &registry->counter(names::kBeaconsSent);
    metrics_.beaconsDelivered = &registry->counter(names::kBeaconsDelivered);
    metrics_.beaconsLost = &registry->counter(names::kBeaconsLost);
    metrics_.beaconsCollided = &registry->counter(names::kBeaconsCollided);
    metrics_.moves = &registry->counter(names::kMovesTotal);
    metrics_.neighborExpirations =
        &registry->counter(names::kNeighborExpirations);
    metrics_.ruleEvaluations = &registry->counter(names::kActiveNodes);
    metrics_.evaluationsSkipped = &registry->counter(names::kSkippedNodes);
    metrics_.cacheSize = &registry->histogram(names::kNeighborCacheSize,
                                              telemetry::sizeBuckets());
    // A node's beacon-interval work (expiry sweep, rule evaluation,
    // broadcast) is its share of one paper-round; that is the latency this
    // histogram tracks in the beacon model.
    metrics_.roundDuration = &registry->histogram(
        names::kRoundDuration, telemetry::durationBuckets());
  }

  /// Runs until simulated time `until`.
  void run(SimTime until) {
    while (!queue_.empty() && queue_.nextTime() <= until) {
      dispatch(queue_.pop());
    }
  }

  /// Runs until no node has changed protocol state for `quietWindow`, or
  /// until maxTime. (Quiescence in the beacon model: every node keeps
  /// evaluating its rules each interval but none is privileged.)
  QuietResult runUntilQuiet(SimTime quietWindow, SimTime maxTime) {
    QuietResult result;
    while (!queue_.empty() && queue_.nextTime() <= maxTime) {
      dispatch(queue_.pop());
      if (queue_.now() - lastMove_ >= quietWindow) {
        result.quiet = true;
        break;
      }
    }
    result.endTime = queue_.now();
    result.stats = stats_;
    return result;
  }

  /// Overwrites node states (fault injection). Every node is marked dirty:
  /// an Active-schedule run must re-evaluate everyone after a fault burst.
  void setStates(std::vector<State> states) {
    assert(states.size() == nodes_.size());
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      nodes_[v].state = std::move(states[v]);
      nodes_[v].dirty = true;
    }
    lastMove_ = queue_.now();
  }

  /// Reboots node v: protocol state back to the protocol's initial value
  /// and the neighbor cache wiped, as after a transient crash-restart. The
  /// paper's model keeps the node set fixed, so a "crash" is exactly this
  /// kind of transient fault; the protocol must absorb it.
  void rebootNode(graph::Vertex v) {
    nodes_[v].state = protocol_->initialState(v);
    nodes_[v].cache.clear();
    nodes_[v].dirty = true;
    lastMove_ = queue_.now();
    if (events_ != nullptr) {
      events_->emit("reboot", {{"t_us", queue_.now()}, {"node", v}});
    }
  }

  [[nodiscard]] std::vector<State> states() const {
    std::vector<State> out;
    out.reserve(nodes_.size());
    for (const auto& node : nodes_) out.push_back(node.state);
    return out;
  }

  /// Ground-truth *bidirectional* radio topology at the current simulation
  /// time: {u,v} is an edge iff each is within the other's transmit range
  /// (with uniform ranges this is the plain unit-disk graph). Asymmetric
  /// one-way reachability is, by the paper's model, not a link.
  [[nodiscard]] graph::Graph currentTopology() {
    std::vector<graph::Point> pts(nodes_.size());
    for (graph::Vertex v = 0; v < nodes_.size(); ++v) {
      pts[v] = mobility_->position(v, queue_.now());
    }
    graph::Graph g(nodes_.size());
    for (graph::Vertex u = 0; u < nodes_.size(); ++u) {
      for (graph::Vertex v = u + 1; v < nodes_.size(); ++v) {
        const double reach = std::min(radiusOf(u), radiusOf(v));
        if (graph::squaredDistance(pts[u], pts[v]) <= reach * reach) {
          g.addEdge(u, v);
        }
      }
    }
    return g;
  }

  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] SimTime lastMoveTime() const noexcept { return lastMove_; }

  /// Number of whole beacon intervals elapsed — the paper's round count.
  [[nodiscard]] double roundsElapsed() const noexcept {
    return static_cast<double>(queue_.now()) /
           static_cast<double>(config_.beaconInterval);
  }

 private:
  struct BeaconTimer {
    graph::Vertex node;
  };
  struct Delivery {
    graph::Vertex to;
    graph::Vertex from;
    State payload;
  };
  using Event = std::variant<BeaconTimer, Delivery>;

  struct CacheEntry {
    State state{};
    SimTime heardAt = 0;
  };

  struct Node {
    State state{};
    // Sorted by sender vertex so LocalViews enumerate neighbors in
    // increasing vertex order, matching the abstract engine.
    std::map<graph::Vertex, CacheEntry> cache;
    // Active schedule: true iff the node's view (own state, cache
    // membership, or a cached neighbor state) changed since its last rule
    // evaluation. Starts dirty so every node evaluates at least once.
    bool dirty = true;
  };

  void dispatch(Event event) {
    if (auto* timer = std::get_if<BeaconTimer>(&event)) {
      onBeaconTimer(timer->node);
    } else {
      onDelivery(std::get<Delivery>(event));
    }
  }

  void onBeaconTimer(graph::Vertex v) {
    const telemetry::ScopedTimer roundTimer(metrics_.roundDuration);
    const SimTime now = queue_.now();
    Node& node = nodes_[v];

    // Neighbor discovery: expire links whose beacons stopped arriving.
    const auto timeout = static_cast<SimTime>(
        config_.timeoutFactor * static_cast<double>(config_.beaconInterval));
    for (auto it = node.cache.begin(); it != node.cache.end();) {
      if (now - it->second.heardAt > timeout) {
        if (metrics_.neighborExpirations != nullptr) {
          metrics_.neighborExpirations->inc();
        }
        if (events_ != nullptr) {
          events_->emit("neighbor_expired",
                        {{"t_us", now}, {"node", v}, {"neighbor", it->first}});
        }
        it = node.cache.erase(it);
        node.dirty = true;  // view shrank: re-evaluate
      } else {
        ++it;
      }
    }
    if (metrics_.cacheSize != nullptr) {
      metrics_.cacheSize->observe(static_cast<double>(node.cache.size()));
    }

    // Act on the beacons gathered this round (the paper: a node takes action
    // after receiving beacon messages from all its neighbors). Under the
    // Active schedule a clean node skips the evaluation: its view is
    // unchanged since the last (disabled) evaluation, so a deterministic
    // rule would return the same nullopt.
    const bool evaluate = config_.schedule != engine::Schedule::Active ||
                          protocol_->usesRoundEntropy() || node.dirty;
    if (evaluate) {
      ++stats_.ruleEvaluations;
      if (metrics_.ruleEvaluations != nullptr) metrics_.ruleEvaluations->inc();
      node.dirty = false;
      neighborBuffer_.clear();
      for (const auto& [from, entry] : node.cache) {
        neighborBuffer_.push_back(
            engine::NeighborRef<State>{from, ids_->idOf(from), &entry.state});
      }
      engine::LocalView<State> view;
      view.self = v;
      view.selfId = ids_->idOf(v);
      view.selfState = &node.state;
      view.neighbors = neighborBuffer_;
      view.roundKey = hashCombine(config_.seed,
                                  static_cast<std::uint64_t>(
                                      now / config_.beaconInterval));
      if (auto next = protocol_->onRound(view)) {
        node.state = std::move(*next);
        node.dirty = true;  // own state is part of the view
        ++stats_.moves;
        if (metrics_.moves != nullptr) metrics_.moves->inc();
        if (events_ != nullptr) {
          events_->emit("move", {{"t_us", now}, {"node", v}});
        }
        lastMove_ = now;
      }
    } else {
      ++stats_.evaluationsSkipped;
      if (metrics_.evaluationsSkipped != nullptr) {
        metrics_.evaluationsSkipped->inc();
      }
    }

    // Broadcast the (possibly updated) state to everyone in the *sender's*
    // transmit range (reception is governed by the transmitter's power).
    const graph::Point me = mobility_->position(v, now);
    const double r2 = radiusOf(v) * radiusOf(v);
    for (graph::Vertex u = 0; u < nodes_.size(); ++u) {
      if (u == v) continue;
      const graph::Point other = mobility_->position(u, now);
      if (graph::squaredDistance(me, other) > r2) continue;
      if (rng_.chance(config_.lossProbability)) {
        ++stats_.beaconsLost;
        if (metrics_.beaconsLost != nullptr) metrics_.beaconsLost->inc();
        continue;
      }
      if (config_.collisionWindow > 0 && collidesAt(u, v, other, now)) {
        ++stats_.beaconsCollided;
        if (metrics_.beaconsCollided != nullptr) {
          metrics_.beaconsCollided->inc();
        }
        continue;
      }
      queue_.schedule(now + config_.propagationDelay,
                      Event{Delivery{u, v, node.state}});
    }
    lastTx_[v] = now;
    ++stats_.beaconsSent;
    if (metrics_.beaconsSent != nullptr) metrics_.beaconsSent->inc();

    // Next beacon with jitter.
    const double jitter =
        rng_.real(-config_.jitterFraction, config_.jitterFraction);
    const auto interval = std::max<SimTime>(
        1, static_cast<SimTime>(
               (1.0 + jitter) * static_cast<double>(config_.beaconInterval)));
    queue_.schedule(now + interval, Event{BeaconTimer{v}});
  }

  void onDelivery(const Delivery& d) {
    Node& node = nodes_[d.to];
    const auto [it, inserted] =
        node.cache.try_emplace(d.from, CacheEntry{d.payload, queue_.now()});
    if (inserted) {
      node.dirty = true;  // new neighbor appeared in the view
    } else {
      // Refreshed heardAt alone does not dirty the view; a changed payload
      // does.
      if (!(it->second.state == d.payload)) node.dirty = true;
      it->second = CacheEntry{d.payload, queue_.now()};
    }
    ++stats_.beaconsDelivered;
    if (metrics_.beaconsDelivered != nullptr) {
      metrics_.beaconsDelivered->inc();
    }
  }

  /// MAC collision check for a beacon sent by `sender` at `now` towards the
  /// receiver at `receiverPos`: lost if any third node in the receiver's
  /// range transmitted within the collision window. (Half-duplex model:
  /// only transmissions *before* the current one are checked; the jittered
  /// schedule breaks symmetric persistent collisions.)
  [[nodiscard]] bool collidesAt(graph::Vertex receiver, graph::Vertex sender,
                                const graph::Point& receiverPos,
                                SimTime now) {
    for (graph::Vertex k = 0; k < nodes_.size(); ++k) {
      if (k == sender || k == receiver) continue;
      if (lastTx_[k] < 0 || now - lastTx_[k] > config_.collisionWindow) {
        continue;
      }
      const graph::Point kp = mobility_->position(k, now);
      const double rk = radiusOf(k);
      if (graph::squaredDistance(kp, receiverPos) <= rk * rk) return true;
    }
    return false;
  }

  [[nodiscard]] double radiusOf(graph::Vertex v) const noexcept {
    return config_.perNodeRadius.empty() ? config_.radius
                                         : config_.perNodeRadius[v];
  }

  /// Resolved registry endpoints; all null when telemetry is disabled, in
  /// which case the simulator performs no clock reads or atomic writes.
  struct Metrics {
    telemetry::Counter* beaconsSent = nullptr;
    telemetry::Counter* beaconsDelivered = nullptr;
    telemetry::Counter* beaconsLost = nullptr;
    telemetry::Counter* beaconsCollided = nullptr;
    telemetry::Counter* moves = nullptr;
    telemetry::Counter* neighborExpirations = nullptr;
    telemetry::Counter* ruleEvaluations = nullptr;
    telemetry::Counter* evaluationsSkipped = nullptr;
    telemetry::Histogram* cacheSize = nullptr;
    telemetry::Histogram* roundDuration = nullptr;
  };

  const engine::Protocol<State>* protocol_;
  const graph::IdAssignment* ids_;
  Mobility* mobility_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Node> nodes_;
  std::vector<SimTime> lastTx_;
  EventQueue<Event> queue_;
  NetworkStats stats_;
  Metrics metrics_;
  telemetry::EventLog* events_ = nullptr;
  SimTime lastMove_ = 0;
  std::vector<engine::NeighborRef<State>> neighborBuffer_;
};

}  // namespace selfstab::adhoc
