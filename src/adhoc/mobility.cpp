#include "adhoc/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace selfstab::adhoc {

using graph::Point;
using graph::Vertex;

RandomWaypoint::RandomWaypoint(std::vector<Point> start, Config config,
                               std::uint64_t seed)
    : config_(config) {
  legs_.reserve(start.size());
  rngs_.reserve(start.size());
  for (const Point& p : start) {
    // Begin with a zero-length leg so the first position query spawns a
    // fresh trajectory from the starting point.
    legs_.push_back(Leg{p, p, 0, 0});
    rngs_.emplace_back(
        hashCombine(seed, static_cast<std::uint64_t>(rngs_.size())));
  }
}

RandomWaypoint::Leg RandomWaypoint::nextLeg(Vertex v, const Leg& current) {
  // Alternate travel legs with pause legs when a pause is configured.
  const bool justTravelled = !(current.from == current.to);
  if (justTravelled && config_.pause > 0) {
    return Leg{current.to, current.to, current.end, current.end + config_.pause};
  }
  Rng& rng = rngs_[v];
  const Point target{rng.real(), rng.real()};
  const double speed = rng.real(config_.speedMin, config_.speedMax);
  if (!(speed > 0.0)) {
    // Degenerate zero-speed config: dwell in place so maxSpeed() == 0
    // stays an honest bound.
    return Leg{current.to, current.to, current.end, current.end + kSecond};
  }
  const double dist = graph::distance(current.to, target);
  // Round the travel time *up*: a floor could make the realized speed
  // (dist / duration) exceed the drawn speed, and maxSpeed() must be a hard
  // bound for the simulator's spatial index to be exact.
  const auto duration = std::max<SimTime>(
      1, static_cast<SimTime>(std::ceil(dist / speed *
                                        static_cast<double>(kSecond))));
  return Leg{current.to, target, current.end, current.end + duration};
}

void RandomWaypoint::advance(Vertex v, SimTime t) {
  Leg& leg = legs_[v];
  while (leg.end < t) leg = nextLeg(v, leg);
}

Point RandomWaypoint::position(Vertex v, SimTime t) {
  if (config_.stopTime >= 0) t = std::min(t, config_.stopTime);
  advance(v, t);
  const Leg& leg = legs_[v];
  if (leg.end == leg.start) return leg.to;
  const double frac = static_cast<double>(t - leg.start) /
                      static_cast<double>(leg.end - leg.start);
  const double clamped = std::clamp(frac, 0.0, 1.0);
  return Point{leg.from.x + clamped * (leg.to.x - leg.from.x),
               leg.from.y + clamped * (leg.to.y - leg.from.y)};
}

}  // namespace selfstab::adhoc
