#include "adhoc/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace selfstab::adhoc {

using graph::Point;
using graph::Vertex;

RandomWaypoint::RandomWaypoint(std::vector<Point> start, Config config,
                               std::uint64_t seed)
    : config_(config), rng_(seed) {
  legs_.reserve(start.size());
  for (const Point& p : start) {
    // Begin with a zero-length leg so the first position query spawns a
    // fresh trajectory from the starting point.
    legs_.push_back(Leg{p, p, 0, 0});
  }
}

RandomWaypoint::Leg RandomWaypoint::nextLeg(const Leg& current) {
  // Alternate travel legs with pause legs when a pause is configured.
  const bool justTravelled = !(current.from == current.to);
  if (justTravelled && config_.pause > 0) {
    return Leg{current.to, current.to, current.end, current.end + config_.pause};
  }
  const Point target{rng_.real(), rng_.real()};
  const double speed = rng_.real(config_.speedMin, config_.speedMax);
  const double dist = graph::distance(current.to, target);
  const double seconds = speed > 0 ? dist / speed : 0.0;
  const auto duration =
      std::max<SimTime>(1, static_cast<SimTime>(seconds * kSecond));
  return Leg{current.to, target, current.end, current.end + duration};
}

void RandomWaypoint::advance(Vertex v, SimTime t) {
  Leg& leg = legs_[v];
  while (leg.end < t) leg = nextLeg(leg);
}

Point RandomWaypoint::position(Vertex v, SimTime t) {
  if (config_.stopTime >= 0) t = std::min(t, config_.stopTime);
  advance(v, t);
  const Leg& leg = legs_[v];
  if (leg.end == leg.start) return leg.to;
  const double frac = static_cast<double>(t - leg.start) /
                      static_cast<double>(leg.end - leg.start);
  const double clamped = std::clamp(frac, 0.0, 1.0);
  return Point{leg.from.x + clamped * (leg.to.x - leg.from.x),
               leg.from.y + clamped * (leg.to.y - leg.from.y)};
}

}  // namespace selfstab::adhoc
