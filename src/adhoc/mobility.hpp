// Host mobility models.
//
// The paper's topology changes come from "mobility of the hosts" (Section 1).
// We model nodes moving in the unit square; radio links exist between hosts
// within transmission radius (unit-disk connectivity), so movement creates
// and destroys links exactly as the neighbor-discovery protocol expects.
#pragma once

#include <cstddef>
#include <vector>

#include "adhoc/sim_time.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::adhoc {

/// Position provider. position() may be called with non-decreasing times per
/// vertex interleaved arbitrarily across vertices; implementations advance
/// internal trajectories lazily. position(v, t) must be a pure function of
/// (v, t) — which vertices get queried, and how queries interleave across
/// vertices, must not influence any trajectory. (The spatial-index and
/// reference simulator paths query different vertex subsets; purity is what
/// keeps their trajectories bit-identical.)
class Mobility {
 public:
  Mobility() = default;
  Mobility(const Mobility&) = delete;
  Mobility& operator=(const Mobility&) = delete;
  virtual ~Mobility() = default;

  [[nodiscard]] virtual std::size_t order() const = 0;
  [[nodiscard]] virtual graph::Point position(graph::Vertex v, SimTime t) = 0;

  /// Hard upper bound on any host's instantaneous speed (unit-square widths
  /// per second). The spatial index uses it to bound how far a host can
  /// drift between position refreshes.
  [[nodiscard]] virtual double maxSpeed() const noexcept = 0;
};

/// Hosts that never move.
class StaticPlacement final : public Mobility {
 public:
  explicit StaticPlacement(std::vector<graph::Point> points)
      : points_(std::move(points)) {}

  [[nodiscard]] std::size_t order() const override { return points_.size(); }

  [[nodiscard]] graph::Point position(graph::Vertex v, SimTime) override {
    return points_[v];
  }

  [[nodiscard]] double maxSpeed() const noexcept override { return 0.0; }

 private:
  std::vector<graph::Point> points_;
};

/// Random waypoint: each host repeatedly picks a uniform target in the unit
/// square and a uniform speed in [speedMin, speedMax] (units per second),
/// travels there in a straight line, pauses, and repeats. Movement can be
/// frozen after `stopTime` so experiments can wait for re-stabilization on a
/// then-static topology.
class RandomWaypoint final : public Mobility {
 public:
  struct Config {
    double speedMin = 0.01;   ///< unit-square widths per second
    double speedMax = 0.05;
    SimTime pause = 0;        ///< dwell time at each waypoint
    SimTime stopTime = -1;    ///< freeze movement after this time; -1 = never
  };

  RandomWaypoint(std::vector<graph::Point> start, Config config,
                 std::uint64_t seed);

  [[nodiscard]] std::size_t order() const override { return legs_.size(); }

  [[nodiscard]] graph::Point position(graph::Vertex v, SimTime t) override;

  [[nodiscard]] double maxSpeed() const noexcept override {
    return config_.speedMax;
  }

 private:
  struct Leg {
    graph::Point from;
    graph::Point to;
    SimTime start = 0;
    SimTime end = 0;  ///< arrival time; a pause leg has from == to
  };

  void advance(graph::Vertex v, SimTime t);
  Leg nextLeg(graph::Vertex v, const Leg& current);

  std::vector<Leg> legs_;
  Config config_;
  // One RNG stream per host, seeded from (seed, v): a host's waypoint
  // sequence depends only on its own draws, making position(v, t) pure in
  // (v, t) no matter which subset of hosts gets queried (see Mobility).
  std::vector<Rng> rngs_;
};

}  // namespace selfstab::adhoc
