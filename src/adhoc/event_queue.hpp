// Deterministic discrete-event queues.
//
// Ties at equal timestamps are broken by insertion order (a monotone
// sequence number), so simulations replay identically for a given seed.
// Two implementations share that ordering contract:
//
//  * EventQueue      — the reference binary heap.
//  * CalendarQueue   — a calendar queue (wheel of per-bucket heaps) tuned
//                      for near-periodic workloads like beacon timers:
//                      schedule/pop are O(1) amortized because almost every
//                      event lands within one bucket-wheel revolution of
//                      now. Far-future events overflow into a plain heap
//                      and migrate onto the wheel as the cursor approaches.
//
// Both pop by *moving* the stored event out — the payload (which carries a
// whole protocol State for deliveries) is never copied on the hot path.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "adhoc/sim_time.hpp"

namespace selfstab::adhoc {

namespace detail {

template <typename Event>
struct TimedEntry {
  SimTime at;
  std::uint64_t seq;
  Event event;
};

// Heap comparator: std::push_heap builds a max-heap, so order entries such
// that the earliest (then lowest-seq) entry is the "largest" and sits at
// the front.
template <typename Event>
struct EntryAfter {
  bool operator()(const TimedEntry<Event>& a,
                  const TimedEntry<Event>& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

/// Removes and returns the minimum entry of a heap-ordered vector, moving
/// it out rather than copying (std::priority_queue cannot do this — its
/// top() is const, which is exactly the deep-copy bug this replaces).
template <typename Event>
TimedEntry<Event> popHeapEntry(std::vector<TimedEntry<Event>>& heap) {
  std::pop_heap(heap.begin(), heap.end(), EntryAfter<Event>{});
  TimedEntry<Event> entry = std::move(heap.back());
  heap.pop_back();
  return entry;
}

template <typename Event>
void pushHeapEntry(std::vector<TimedEntry<Event>>& heap,
                   TimedEntry<Event> entry) {
  heap.push_back(std::move(entry));
  std::push_heap(heap.begin(), heap.end(), EntryAfter<Event>{});
}

}  // namespace detail

template <typename Event>
class EventQueue {
 public:
  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Event event) {
    assert(at >= now_);
    detail::pushHeapEntry(heap_, Entry{at, nextSeq_++, std::move(event)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Current simulation time: the timestamp of the last popped event.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Timestamp of the next event; queue must be non-empty.
  [[nodiscard]] SimTime nextTime() const {
    assert(!heap_.empty());
    return heap_.front().at;
  }

  /// Removes and returns the earliest event, advancing now().
  Event pop() {
    assert(!heap_.empty());
    Entry top = detail::popHeapEntry(heap_);
    now_ = top.at;
    return std::move(top.event);
  }

 private:
  using Entry = detail::TimedEntry<Event>;

  std::vector<Entry> heap_;
  std::uint64_t nextSeq_ = 0;
  SimTime now_ = 0;
};

/// Calendar queue: a wheel of `bucketCount` slots, each a small heap holding
/// the events of one `bucketWidth`-wide stretch of simulated time. The
/// cursor tracks the bucket of the earliest pending event; events within one
/// revolution of the cursor go straight onto the wheel (O(1) into a heap
/// that is almost always tiny), anything further out waits in an overflow
/// heap and migrates as the cursor advances. Because two events with equal
/// timestamps always share a bucket, the (at, seq) pop order is *identical*
/// to EventQueue's — the differential tests assert exact equality.
///
/// `bucketWidth <= 0` degenerates to a single heap (reference behavior).
template <typename Event>
class CalendarQueue {
 public:
  explicit CalendarQueue(SimTime bucketWidth = 0,
                         std::size_t bucketCount = 64)
      : width_(bucketWidth > 0 ? bucketWidth : 0),
        wheel_(width_ > 0 ? bucketCount : 0) {
    assert(width_ <= 0 || bucketCount > 0);
  }

  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Event event) {
    assert(at >= now_);
    Entry entry{at, nextSeq_++, std::move(event)};
    ++size_;
    if (width_ <= 0) {
      detail::pushHeapEntry(overflow_, std::move(entry));
      return;
    }
    const std::int64_t bucket = at / width_;
    if (bucket < cursor_) {
      // Legal but rare: `at >= now()` bounds the timestamp, not the cursor,
      // which may already have jumped toward a far-future event when
      // nextTime() settled. Rewind the horizon to cover the new event.
      rewind(bucket);
    }
    if (bucket < cursor_ + span()) {
      pushWheel(std::move(entry), bucket);
    } else {
      detail::pushHeapEntry(overflow_, std::move(entry));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Current simulation time: the timestamp of the last popped event.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Timestamp of the next event; queue must be non-empty. Not const: the
  /// cursor settles onto the earliest occupied bucket.
  [[nodiscard]] SimTime nextTime() {
    assert(size_ > 0);
    settle();
    return width_ <= 0 ? overflow_.front().at
                       : wheel_[slotOf(cursor_)].front().at;
  }

  /// Removes and returns the earliest event, advancing now().
  Event pop() {
    assert(size_ > 0);
    settle();
    Entry entry = width_ <= 0 ? detail::popHeapEntry(overflow_)
                              : popCurrentBucket();
    now_ = entry.at;
    --size_;
    return std::move(entry.event);
  }

 private:
  using Entry = detail::TimedEntry<Event>;

  [[nodiscard]] std::int64_t span() const noexcept {
    return static_cast<std::int64_t>(wheel_.size());
  }
  [[nodiscard]] std::size_t slotOf(std::int64_t bucket) const noexcept {
    return static_cast<std::size_t>(bucket) % wheel_.size();
  }

  void pushWheel(Entry entry, std::int64_t bucket) {
    detail::pushHeapEntry(wheel_[slotOf(bucket)], std::move(entry));
    ++onWheel_;
  }

  Entry popCurrentBucket() {
    Entry entry = detail::popHeapEntry(wheel_[slotOf(cursor_)]);
    --onWheel_;
    return entry;
  }

  /// Establishes the invariant "the cursor's bucket holds the global
  /// minimum": migrates overflow events that entered the horizon, walks the
  /// cursor over empty buckets, and jumps it when the whole wheel drained
  /// (everything pending lies beyond one revolution).
  void settle() {
    if (width_ <= 0) return;
    for (;;) {
      while (!overflow_.empty() &&
             overflow_.front().at / width_ < cursor_ + span()) {
        Entry entry = detail::popHeapEntry(overflow_);
        const std::int64_t bucket = entry.at / width_;
        pushWheel(std::move(entry), bucket);
      }
      if (!wheel_[slotOf(cursor_)].empty()) return;
      if (onWheel_ > 0) {
        ++cursor_;
        continue;
      }
      cursor_ = overflow_.front().at / width_;
    }
  }

  /// Pulls the cursor back to `bucket`, evicting wheel entries that no
  /// longer fit the shortened horizon into the overflow heap. Entries that
  /// still fit already sit in their correct slot (slot index depends only
  /// on the bucket number, not the cursor).
  void rewind(std::int64_t bucket) {
    for (auto& slot : wheel_) {
      std::size_t keep = 0;
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].at / width_ >= bucket + span()) {
          detail::pushHeapEntry(overflow_, std::move(slot[i]));
          --onWheel_;
        } else {
          if (keep != i) slot[keep] = std::move(slot[i]);
          ++keep;
        }
      }
      slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(keep),
                 slot.end());
      std::make_heap(slot.begin(), slot.end(), detail::EntryAfter<Event>{});
    }
    cursor_ = bucket;
  }

  SimTime width_ = 0;
  std::vector<std::vector<Entry>> wheel_;
  std::vector<Entry> overflow_;
  std::int64_t cursor_ = 0;  ///< absolute bucket index of the earliest event
  std::size_t onWheel_ = 0;
  std::size_t size_ = 0;
  std::uint64_t nextSeq_ = 0;
  SimTime now_ = 0;
};

}  // namespace selfstab::adhoc
