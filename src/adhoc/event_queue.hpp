// Deterministic discrete-event queue.
//
// Ties at equal timestamps are broken by insertion order (a monotone
// sequence number), so simulations replay identically for a given seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "adhoc/sim_time.hpp"

namespace selfstab::adhoc {

template <typename Event>
class EventQueue {
 public:
  /// Schedules `event` at absolute time `at` (must be >= now()).
  void schedule(SimTime at, Event event) {
    assert(at >= now_);
    heap_.push(Entry{at, nextSeq_++, std::move(event)});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Current simulation time: the timestamp of the last popped event.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Timestamp of the next event; queue must be non-empty.
  [[nodiscard]] SimTime nextTime() const {
    assert(!heap_.empty());
    return heap_.top().at;
  }

  /// Removes and returns the earliest event, advancing now().
  Event pop() {
    assert(!heap_.empty());
    Entry top = heap_.top();
    heap_.pop();
    now_ = top.at;
    return std::move(top.event);
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Event event;

    // std::priority_queue is a max-heap; invert so earliest (then lowest
    // seq) pops first.
    friend bool operator<(const Entry& a, const Entry& b) noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry> heap_;
  std::uint64_t nextSeq_ = 0;
  SimTime now_ = 0;
};

}  // namespace selfstab::adhoc
