// The paper's node-type machinery (Section 3, Figures 2 and 3).
//
// Any global configuration of pointer states partitions the nodes into
//   M  — matched:  i -> j and j -> i
//   A⁰ — aloof, nobody points at it (p(i)=Λ, ∀j: p(j)≠i)
//   A¹ — aloof, someone points at it (p(i)=Λ, ∃j: p(j)=i)
//   PA — pointing at an aloof node
//   PM — pointing at a matched node
//   PP — pointing at a pointing node
// Lemmas 1–7 restrict how a node's type can change between consecutive
// synchronous rounds; TransitionCensus records observed transitions and
// checks them against that diagram. This is how bench/exp_transition_census
// reproduces Figures 2–3 empirically.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/matching_state.hpp"
#include "graph/graph.hpp"

namespace selfstab::analysis {

enum class NodeType : std::uint8_t {
  M = 0,   ///< matched
  A0 = 1,  ///< aloof, un-pointed-at
  A1 = 2,  ///< aloof, pointed-at
  PA = 3,  ///< pointing at an aloof node
  PM = 4,  ///< pointing at a matched node
  PP = 5,  ///< pointing at a pointing node
};

inline constexpr std::size_t kNodeTypeCount = 6;

[[nodiscard]] std::string_view toString(NodeType t) noexcept;

/// True if every pointer is Λ or a current neighbor — the configuration
/// space the paper's proofs quantify over. Classification requires this.
[[nodiscard]] bool isTypeCorrect(const graph::Graph& g,
                                 const std::vector<core::PointerState>& states);

/// Classifies every node. Precondition: isTypeCorrect(g, states).
[[nodiscard]] std::vector<NodeType> classifyNodes(
    const graph::Graph& g, const std::vector<core::PointerState>& states);

/// Histogram of node types.
struct TypeCounts {
  std::array<std::size_t, kNodeTypeCount> count{};

  [[nodiscard]] std::size_t of(NodeType t) const noexcept {
    return count[static_cast<std::size_t>(t)];
  }
};

[[nodiscard]] TypeCounts countTypes(const std::vector<NodeType>& types);

/// The legal transition relation of Figure 3 (derived from Lemmas 1–6):
///   M  -> M
///   PM -> A⁰            (Lemma 2; the proof forces the A⁰ sub-type)
///   PP -> A⁰            (Lemma 3)
///   PA -> M | PM        (Lemma 4; PA occurs only at t=0 by Lemma 7)
///   A¹ -> M             (Lemma 5; A¹ occurs only at t=0 by Lemma 7)
///   A⁰ -> A⁰ | M | PM | PP   (Lemma 6)
[[nodiscard]] bool isLegalTransition(NodeType from, NodeType to) noexcept;

/// Records per-node type transitions across synchronous rounds and checks
/// them against the diagram. Feed it consecutive configurations.
class TransitionCensus {
 public:
  explicit TransitionCensus(const graph::Graph& g) : g_(&g) {}

  /// Registers the transition S_t -> S_{t+1}. `t` is the round index of the
  /// `before` configuration (0-based, matching the paper's S_0).
  void record(std::size_t t, const std::vector<core::PointerState>& before,
              const std::vector<core::PointerState>& after);

  /// counts[from][to] over all recorded transitions.
  [[nodiscard]] const std::array<std::array<std::size_t, kNodeTypeCount>,
                                 kNodeTypeCount>&
  counts() const noexcept {
    return counts_;
  }

  /// Number of recorded transitions violating the Figure 3 diagram.
  [[nodiscard]] std::size_t illegalCount() const noexcept { return illegal_; }

  /// Number of nodes observed in A¹ or PA in any configuration with t >= 1
  /// (Lemma 7 says this must be zero).
  [[nodiscard]] std::size_t lateA1PaCount() const noexcept {
    return lateA1Pa_;
  }

  [[nodiscard]] std::size_t transitionsRecorded() const noexcept {
    return total_;
  }

 private:
  const graph::Graph* g_;
  std::array<std::array<std::size_t, kNodeTypeCount>, kNodeTypeCount>
      counts_{};
  std::size_t illegal_ = 0;
  std::size_t lateA1Pa_ = 0;
  std::size_t total_ = 0;
};

}  // namespace selfstab::analysis
