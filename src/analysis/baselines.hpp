// Sequential baselines for solution quality (experiment E9).
//
// The self-stabilizing protocols guarantee *maximality*, which pins their
// quality within classical factors (a maximal matching has at least half the
// edges of a maximum one; a maximal independent set is a minimal dominating
// set). These baselines let the experiments report where in those ranges the
// protocols actually land: greedy sequential constructions, and exact optima
// on small instances.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace selfstab::analysis {

/// Greedy maximal matching: scan vertices in the given order, match each
/// unmatched vertex with its first unmatched neighbor.
[[nodiscard]] std::vector<graph::Edge> greedyMaximalMatching(
    const graph::Graph& g, std::span<const graph::Vertex> order);
[[nodiscard]] std::vector<graph::Edge> greedyMaximalMatching(
    const graph::Graph& g);

/// Greedy maximal independent set in the given vertex order.
[[nodiscard]] std::vector<graph::Vertex> greedyMaximalIndependentSet(
    const graph::Graph& g, std::span<const graph::Vertex> order);
[[nodiscard]] std::vector<graph::Vertex> greedyMaximalIndependentSet(
    const graph::Graph& g);

/// Exact maximum matching size via bitmask DP. Requires order() <= 24.
[[nodiscard]] std::size_t maximumMatchingSize(const graph::Graph& g);

/// Exact maximum independent set size via branch and bound with neighborhood
/// bitmasks. Requires order() <= 64; practical well past the experiment
/// sizes (tens of vertices).
[[nodiscard]] std::size_t maximumIndependentSetSize(const graph::Graph& g);

/// Exact minimum dominating set size via branch and bound over candidate
/// dominators. Requires order() <= 64.
[[nodiscard]] std::size_t minimumDominatingSetSize(const graph::Graph& g);

}  // namespace selfstab::analysis
