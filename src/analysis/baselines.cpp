#include "analysis/baselines.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <numeric>

namespace selfstab::analysis {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

std::vector<Edge> greedyMaximalMatching(const Graph& g,
                                        std::span<const Vertex> order) {
  std::vector<bool> covered(g.order(), false);
  std::vector<Edge> matching;
  for (const Vertex u : order) {
    if (covered[u]) continue;
    for (const Vertex v : g.neighbors(u)) {
      if (!covered[v]) {
        covered[u] = covered[v] = true;
        matching.push_back(graph::makeEdge(u, v));
        break;
      }
    }
  }
  return matching;
}

std::vector<Edge> greedyMaximalMatching(const Graph& g) {
  std::vector<Vertex> order(g.order());
  std::iota(order.begin(), order.end(), Vertex{0});
  return greedyMaximalMatching(g, order);
}

std::vector<Vertex> greedyMaximalIndependentSet(
    const Graph& g, std::span<const Vertex> order) {
  std::vector<bool> blocked(g.order(), false);
  std::vector<Vertex> members;
  for (const Vertex u : order) {
    if (blocked[u]) continue;
    members.push_back(u);
    blocked[u] = true;
    for (const Vertex v : g.neighbors(u)) blocked[v] = true;
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<Vertex> greedyMaximalIndependentSet(const Graph& g) {
  std::vector<Vertex> order(g.order());
  std::iota(order.begin(), order.end(), Vertex{0});
  return greedyMaximalIndependentSet(g, order);
}

namespace {

// Recursive bitmask DP for maximum matching. `used` marks consumed vertices.
std::size_t maxMatchingRec(const Graph& g, std::uint32_t used,
                           std::vector<std::int8_t>& memo) {
  const std::size_t n = g.order();
  const std::uint32_t full = n == 32 ? ~0u : ((1u << n) - 1);
  if (used == full) return 0;
  if (memo[used] >= 0) return static_cast<std::size_t>(memo[used]);

  const auto v = static_cast<Vertex>(std::countr_one(used));
  // Option 1: v stays unmatched.
  std::size_t best = maxMatchingRec(g, used | (1u << v), memo);
  // Option 2: match v with a free neighbor.
  for (const Vertex w : g.neighbors(v)) {
    if ((used >> w) & 1u) continue;
    best = std::max(best, 1 + maxMatchingRec(
                              g, used | (1u << v) | (1u << w), memo));
  }
  memo[used] = static_cast<std::int8_t>(best);
  return best;
}

}  // namespace

std::size_t maximumMatchingSize(const Graph& g) {
  const std::size_t n = g.order();
  assert(n <= 24 && "bitmask DP limited to 24 vertices");
  if (n == 0) return 0;
  std::vector<std::int8_t> memo(std::size_t{1} << n, -1);
  return maxMatchingRec(g, 0, memo);
}

namespace {

struct MaskGraph {
  std::vector<std::uint64_t> closed;  // N[v] as bitmask
  std::size_t n = 0;

  explicit MaskGraph(const Graph& g) : closed(g.order()), n(g.order()) {
    assert(n <= 64);
    for (Vertex v = 0; v < n; ++v) {
      std::uint64_t mask = std::uint64_t{1} << v;
      for (const Vertex w : g.neighbors(v)) mask |= std::uint64_t{1} << w;
      closed[v] = mask;
    }
  }

  [[nodiscard]] std::uint64_t all() const noexcept {
    return n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  }
};

std::size_t misRec(const MaskGraph& mg, std::uint64_t avail) {
  if (avail == 0) return 0;

  // Reduction: a vertex with residual degree <= 1 is always in some maximum
  // independent set of the residual graph, so take it without branching.
  {
    std::uint64_t scan = avail;
    while (scan != 0) {
      const auto v = static_cast<Vertex>(std::countr_zero(scan));
      scan &= scan - 1;
      const std::uint64_t nbrs =
          (mg.closed[v] & avail) & ~(std::uint64_t{1} << v);
      if (std::popcount(nbrs) <= 1) {
        return 1 + misRec(mg, avail & ~mg.closed[v]);
      }
    }
  }

  // Branch on a maximum-residual-degree vertex.
  Vertex pivot = 0;
  int bestDeg = -1;
  std::uint64_t scan = avail;
  while (scan != 0) {
    const auto v = static_cast<Vertex>(std::countr_zero(scan));
    scan &= scan - 1;
    const int deg = std::popcount(mg.closed[v] & avail) - 1;
    if (deg > bestDeg) {
      bestDeg = deg;
      pivot = v;
    }
  }
  const std::size_t with = 1 + misRec(mg, avail & ~mg.closed[pivot]);
  const std::size_t without = misRec(mg, avail & ~(std::uint64_t{1} << pivot));
  return std::max(with, without);
}

void minDomRec(const MaskGraph& mg, std::uint64_t dominated,
               std::size_t chosen, std::size_t& best) {
  if (chosen >= best) return;  // bound
  if (dominated == mg.all()) {
    best = chosen;
    return;
  }
  // Pick the lowest undominated vertex; some member of N[u] must be chosen.
  const auto u = static_cast<Vertex>(
      std::countr_zero(~dominated & mg.all()));
  std::uint64_t candidates = mg.closed[u];
  while (candidates != 0) {
    const auto c = static_cast<Vertex>(std::countr_zero(candidates));
    candidates &= candidates - 1;
    minDomRec(mg, dominated | mg.closed[c], chosen + 1, best);
  }
}

}  // namespace

std::size_t maximumIndependentSetSize(const Graph& g) {
  assert(g.order() <= 64);
  if (g.order() == 0) return 0;
  const MaskGraph mg(g);
  return misRec(mg, mg.all());
}

std::size_t minimumDominatingSetSize(const Graph& g) {
  assert(g.order() <= 64);
  if (g.order() == 0) return 0;
  const MaskGraph mg(g);
  std::size_t best = g.order();
  minDomRec(mg, 0, 0, best);
  return best;
}

}  // namespace selfstab::analysis
