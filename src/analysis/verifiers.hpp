// Predicate verifiers: is the stabilized configuration actually a maximal
// matching / maximal independent set / minimal dominating set / proper
// coloring? Every experiment and most tests end with one of these checks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bfs_tree.hpp"
#include "core/coloring.hpp"
#include "core/leader_tree.hpp"
#include "core/dominating_set.hpp"
#include "core/matching_state.hpp"
#include "core/sis.hpp"
#include "graph/graph.hpp"
#include "graph/id_order.hpp"

namespace selfstab::analysis {

// ---------------------------------------------------------------- matching

/// Mutually-pointing pairs i <-> j, each reported once with u < v.
[[nodiscard]] std::vector<graph::Edge> matchedEdges(
    const graph::Graph& g, const std::vector<core::PointerState>& states);

/// Pairwise-disjoint edges of g?
[[nodiscard]] bool isMatching(const graph::Graph& g,
                              std::span<const graph::Edge> edges);

/// No g-edge can be added while keeping it a matching?
[[nodiscard]] bool isMaximalMatching(const graph::Graph& g,
                                     std::span<const graph::Edge> edges);

/// All the fixpoint properties of Lemma 8 at once.
struct MatchingFixpointCheck {
  bool typeCorrect = false;       ///< pointers are Λ or neighbors
  bool isMatching = false;        ///< matched pairs are disjoint g-edges
  bool isMaximal = false;         ///< Lemma 8: M is a maximal matching
  bool unmatchedAreAloof = false; ///< Lemma 8: non-M nodes have null
                                  ///< pointers and nobody points at them

  [[nodiscard]] bool ok() const noexcept {
    return typeCorrect && isMatching && isMaximal && unmatchedAreAloof;
  }
};

[[nodiscard]] MatchingFixpointCheck checkMatchingFixpoint(
    const graph::Graph& g, const std::vector<core::PointerState>& states);

// ------------------------------------------------------------ vertex sets

[[nodiscard]] std::vector<graph::Vertex> membersOf(
    const std::vector<core::BitState>& states);
[[nodiscard]] std::vector<graph::Vertex> membersOf(
    const std::vector<core::DomState>& states);

[[nodiscard]] bool isIndependentSet(const graph::Graph& g,
                                    std::span<const graph::Vertex> members);
[[nodiscard]] bool isMaximalIndependentSet(
    const graph::Graph& g, std::span<const graph::Vertex> members);

[[nodiscard]] bool isDominatingSet(const graph::Graph& g,
                                   std::span<const graph::Vertex> members);
/// Dominating and no proper subset dominates (checked via the
/// private-neighbor characterization, O(n + m)).
[[nodiscard]] bool isMinimalDominatingSet(
    const graph::Graph& g, std::span<const graph::Vertex> members);

// --------------------------------------------------------------- coloring

[[nodiscard]] bool isProperColoring(const graph::Graph& g,
                                    const std::vector<std::uint32_t>& colors);
[[nodiscard]] bool isProperColoring(
    const graph::Graph& g, const std::vector<core::ColorState>& states);
[[nodiscard]] std::uint32_t colorCount(
    const std::vector<core::ColorState>& states);

// ------------------------------------------------------------- BFS tree

/// Verifies a stabilized BfsTreeProtocol configuration against ground truth:
/// the root holds (0, Λ); every reachable node holds its exact BFS distance
/// and points at the minimum-ID neighbor one step closer to the root;
/// unreachable nodes hold (cap, Λ).
[[nodiscard]] bool isShortestPathTree(const graph::Graph& g,
                                      const graph::IdAssignment& ids,
                                      graph::Vertex root, std::uint32_t cap,
                                      const std::vector<core::TreeState>& states);

/// Verifies a stabilized LeaderTreeProtocol configuration: within every
/// connected component, all nodes agree that the component's maximum-ID node
/// is the root, hold their exact BFS distance from it, and point at the
/// minimum-ID neighbor one step closer (the leader itself holds (0, Λ)).
[[nodiscard]] bool isLeaderTree(const graph::Graph& g,
                                const graph::IdAssignment& ids,
                                const std::vector<core::LeaderState>& states);

}  // namespace selfstab::analysis
