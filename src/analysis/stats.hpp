// Tiny descriptive-statistics helpers for the experiment tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace selfstab::analysis {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
};

inline Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = s.max = values.front();
  double sum = 0.0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

/// Nearest-rank percentile, p in [0, 100]. Copies and sorts.
inline double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace selfstab::analysis
