#include "analysis/node_types.hpp"

#include <cassert>

namespace selfstab::analysis {

using core::PointerState;
using graph::Graph;
using graph::Vertex;

std::string_view toString(NodeType t) noexcept {
  switch (t) {
    case NodeType::M:
      return "M";
    case NodeType::A0:
      return "A0";
    case NodeType::A1:
      return "A1";
    case NodeType::PA:
      return "PA";
    case NodeType::PM:
      return "PM";
    case NodeType::PP:
      return "PP";
  }
  return "?";
}

bool isTypeCorrect(const Graph& g, const std::vector<PointerState>& states) {
  if (states.size() != g.order()) return false;
  for (Vertex v = 0; v < states.size(); ++v) {
    const PointerState& s = states[v];
    if (!s.isNull() && !g.hasEdge(v, s.ptr)) return false;
  }
  return true;
}

std::vector<NodeType> classifyNodes([[maybe_unused]] const Graph& g,
                                    const std::vector<PointerState>& states) {
  assert(isTypeCorrect(g, states));
  const std::size_t n = states.size();

  // pointedAt[v]: does some neighbor point at v?
  std::vector<bool> pointedAt(n, false);
  for (Vertex v = 0; v < n; ++v) {
    if (!states[v].isNull()) pointedAt[states[v].ptr] = true;
  }

  std::vector<NodeType> types(n);
  for (Vertex v = 0; v < n; ++v) {
    const PointerState& s = states[v];
    if (s.isNull()) {
      types[v] = pointedAt[v] ? NodeType::A1 : NodeType::A0;
      continue;
    }
    const PointerState& target = states[s.ptr];
    if (target.ptr == v) {
      types[v] = NodeType::M;
    } else if (target.isNull()) {
      types[v] = NodeType::PA;
    } else {
      // v points at u which points at w != v: u is matched iff w points
      // back at u, making v's type PM; otherwise u is itself pointing, PP.
      const Vertex u = s.ptr;
      const Vertex w = target.ptr;
      types[v] = (states[w].ptr == u) ? NodeType::PM : NodeType::PP;
    }
  }
  return types;
}

TypeCounts countTypes(const std::vector<NodeType>& types) {
  TypeCounts counts;
  for (const NodeType t : types) ++counts.count[static_cast<std::size_t>(t)];
  return counts;
}

bool isLegalTransition(NodeType from, NodeType to) noexcept {
  switch (from) {
    case NodeType::M:
      return to == NodeType::M;
    case NodeType::PM:
    case NodeType::PP:
      return to == NodeType::A0;
    case NodeType::PA:
      return to == NodeType::M || to == NodeType::PM;
    case NodeType::A1:
      return to == NodeType::M;
    case NodeType::A0:
      return to == NodeType::A0 || to == NodeType::M || to == NodeType::PM ||
             to == NodeType::PP;
  }
  return false;
}

void TransitionCensus::record(std::size_t t,
                              const std::vector<PointerState>& before,
                              const std::vector<PointerState>& after) {
  const auto fromTypes = classifyNodes(*g_, before);
  const auto toTypes = classifyNodes(*g_, after);
  assert(fromTypes.size() == toTypes.size());
  for (std::size_t v = 0; v < fromTypes.size(); ++v) {
    const NodeType from = fromTypes[v];
    const NodeType to = toTypes[v];
    ++counts_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
    ++total_;
    if (!isLegalTransition(from, to)) ++illegal_;
    // Lemma 7: A¹ and PA must be empty from round 1 on. Every `after`
    // configuration has index t+1 >= 1; `before` contributes when t >= 1.
    if (to == NodeType::A1 || to == NodeType::PA) ++lateA1Pa_;
    if (t >= 1 && (from == NodeType::A1 || from == NodeType::PA)) {
      ++lateA1Pa_;
    }
  }
}

}  // namespace selfstab::analysis
