// Round-by-round numeric traces with CSV export.
//
// Experiments and the CLI record one row per synchronous round (moves,
// predicate sizes, potential-function values, ...) and dump them as CSV for
// external plotting. Purely numeric by design: column schemas are fixed at
// construction, rows are validated against them.
#pragma once

#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace selfstab::analysis {

class RoundTrace {
 public:
  explicit RoundTrace(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Appends one row. Throws std::invalid_argument on a column-count
  /// mismatch — a ragged row silently recorded would corrupt every CSV
  /// consumer downstream, so this is enforced in release builds too.
  void addRow(std::vector<double> values) {
    if (values.size() != columns_.size()) {
      throw std::invalid_argument(
          "RoundTrace::addRow: got " + std::to_string(values.size()) +
          " value(s) for " + std::to_string(columns_.size()) + " column(s)");
    }
    rows_.push_back(std::move(values));
  }

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Values of the named column, empty if the name is unknown.
  [[nodiscard]] std::vector<double> column(const std::string& name) const {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (columns_[c] == name) {
        std::vector<double> out;
        out.reserve(rows_.size());
        for (const auto& row : rows_) out.push_back(row[c]);
        return out;
      }
    }
    return {};
  }

  /// RFC-4180-ish CSV: header line then one line per row. Numbers are
  /// printed with full double round-trip not needed here; default precision
  /// is fine for counts and sizes.
  void writeCsv(std::ostream& out) const {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out << ',';
      out << columns_[c];
    }
    out << '\n';
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ',';
        // Print integers without a trailing ".0" for readability.
        const double v = row[c];
        if (v == static_cast<double>(static_cast<long long>(v))) {
          out << static_cast<long long>(v);
        } else {
          out << v;
        }
      }
      out << '\n';
    }
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace selfstab::analysis
