#include "analysis/verifiers.hpp"

#include <algorithm>

#include "analysis/node_types.hpp"
#include "graph/algorithms.hpp"

namespace selfstab::analysis {

using core::BitState;
using core::ColorState;
using core::DomState;
using core::PointerState;
using graph::Edge;
using graph::Graph;
using graph::Vertex;

std::vector<Edge> matchedEdges(const Graph& g,
                               const std::vector<PointerState>& states) {
  std::vector<Edge> edges;
  for (Vertex v = 0; v < states.size(); ++v) {
    const PointerState& s = states[v];
    if (s.isNull() || s.ptr <= v || !g.hasEdge(v, s.ptr)) continue;
    if (states[s.ptr].ptr == v) edges.push_back(Edge{v, s.ptr});
  }
  return edges;
}

bool isMatching(const Graph& g, std::span<const Edge> edges) {
  std::vector<bool> covered(g.order(), false);
  for (const Edge& e : edges) {
    if (!g.hasEdge(e.u, e.v)) return false;
    if (covered[e.u] || covered[e.v]) return false;
    covered[e.u] = covered[e.v] = true;
  }
  return true;
}

bool isMaximalMatching(const Graph& g, std::span<const Edge> edges) {
  if (!isMatching(g, edges)) return false;
  std::vector<bool> covered(g.order(), false);
  for (const Edge& e : edges) covered[e.u] = covered[e.v] = true;
  for (Vertex u = 0; u < g.order(); ++u) {
    if (covered[u]) continue;
    for (const Vertex v : g.neighbors(u)) {
      if (!covered[v]) return false;  // {u, v} could be added
    }
  }
  return true;
}

MatchingFixpointCheck checkMatchingFixpoint(
    const Graph& g, const std::vector<PointerState>& states) {
  MatchingFixpointCheck check;
  check.typeCorrect = isTypeCorrect(g, states);
  if (!check.typeCorrect) return check;

  const auto edges = matchedEdges(g, states);
  check.isMatching = isMatching(g, edges);
  check.isMaximal = isMaximalMatching(g, edges);

  // Lemma 8: every node outside M is aloof (null pointer, nobody pointing).
  const auto types = classifyNodes(g, states);
  check.unmatchedAreAloof =
      std::all_of(types.begin(), types.end(), [](NodeType t) {
        return t == NodeType::M || t == NodeType::A0;
      });
  return check;
}

std::vector<Vertex> membersOf(const std::vector<BitState>& states) {
  std::vector<Vertex> members;
  for (Vertex v = 0; v < states.size(); ++v) {
    if (states[v].in) members.push_back(v);
  }
  return members;
}

std::vector<Vertex> membersOf(const std::vector<DomState>& states) {
  std::vector<Vertex> members;
  for (Vertex v = 0; v < states.size(); ++v) {
    if (states[v].in) members.push_back(v);
  }
  return members;
}

namespace {

std::vector<bool> membershipMask(const Graph& g,
                                 std::span<const Vertex> members) {
  std::vector<bool> in(g.order(), false);
  for (const Vertex v : members) in[v] = true;
  return in;
}

}  // namespace

bool isIndependentSet(const Graph& g, std::span<const Vertex> members) {
  const auto in = membershipMask(g, members);
  for (const Vertex u : members) {
    for (const Vertex v : g.neighbors(u)) {
      if (in[v]) return false;
    }
  }
  return true;
}

bool isMaximalIndependentSet(const Graph& g,
                             std::span<const Vertex> members) {
  if (!isIndependentSet(g, members)) return false;
  const auto in = membershipMask(g, members);
  for (Vertex u = 0; u < g.order(); ++u) {
    if (in[u]) continue;
    const auto nbrs = g.neighbors(u);
    const bool dominated = std::any_of(nbrs.begin(), nbrs.end(),
                                       [&](Vertex v) { return in[v]; });
    if (!dominated) return false;  // u could be added
  }
  return true;
}

bool isDominatingSet(const Graph& g, std::span<const Vertex> members) {
  const auto in = membershipMask(g, members);
  for (Vertex u = 0; u < g.order(); ++u) {
    if (in[u]) continue;
    const auto nbrs = g.neighbors(u);
    if (std::none_of(nbrs.begin(), nbrs.end(),
                     [&](Vertex v) { return in[v]; })) {
      return false;
    }
  }
  return true;
}

bool isMinimalDominatingSet(const Graph& g, std::span<const Vertex> members) {
  if (!isDominatingSet(g, members)) return false;
  const auto in = membershipMask(g, members);

  // dominators[u] = |N[u] ∩ S|.
  std::vector<std::uint32_t> dominators(g.order(), 0);
  for (Vertex u = 0; u < g.order(); ++u) {
    if (in[u]) ++dominators[u];
    for (const Vertex v : g.neighbors(u)) {
      if (in[v]) ++dominators[u];
    }
  }

  // S is minimal iff every member has a private neighbor: either itself
  // (no other dominator) or some non-member neighbor dominated only by it.
  for (const Vertex u : members) {
    if (dominators[u] == 1) continue;  // u is its own private neighbor
    bool hasPrivate = false;
    for (const Vertex v : g.neighbors(u)) {
      if (!in[v] && dominators[v] == 1) {
        hasPrivate = true;
        break;
      }
    }
    if (!hasPrivate) return false;  // S \ {u} still dominates
  }
  return true;
}

bool isProperColoring(const Graph& g,
                      const std::vector<std::uint32_t>& colors) {
  for (const Edge& e : g.edges()) {
    if (colors[e.u] == colors[e.v]) return false;
  }
  return true;
}

bool isProperColoring(const Graph& g,
                      const std::vector<ColorState>& states) {
  std::vector<std::uint32_t> colors(states.size());
  for (std::size_t v = 0; v < states.size(); ++v) colors[v] = states[v].color;
  return isProperColoring(g, colors);
}

std::uint32_t colorCount(const std::vector<ColorState>& states) {
  std::uint32_t highest = 0;
  for (const ColorState& s : states) highest = std::max(highest, s.color);
  return states.empty() ? 0 : highest + 1;
}

bool isLeaderTree(const Graph& g, const graph::IdAssignment& ids,
                  const std::vector<core::LeaderState>& states) {
  if (states.size() != g.order()) return false;
  const auto comp = connectedComponents(g);
  const std::size_t componentTotal = componentCount(g);

  // Leader (max-ID vertex) of every component.
  std::vector<Vertex> leader(componentTotal, graph::kNoVertex);
  for (Vertex v = 0; v < g.order(); ++v) {
    Vertex& best = leader[comp[v]];
    if (best == graph::kNoVertex || ids.less(best, v)) best = v;
  }

  // BFS distances from each leader, restricted to its component.
  for (std::size_t c = 0; c < componentTotal; ++c) {
    const Vertex root = leader[c];
    const auto truth = bfsDistances(g, root);
    for (Vertex v = 0; v < g.order(); ++v) {
      if (comp[v] != c) continue;
      const core::LeaderState& s = states[v];
      if (s.root != ids.idOf(root)) return false;
      if (v == root) {
        if (s.dist != 0 || s.parent != graph::kNoVertex) return false;
        continue;
      }
      if (s.dist != truth[v]) return false;
      Vertex expected = graph::kNoVertex;
      for (const Vertex w : g.neighbors(v)) {
        if (truth[w] + 1 != truth[v]) continue;
        if (expected == graph::kNoVertex || ids.less(w, expected)) {
          expected = w;
        }
      }
      if (s.parent != expected) return false;
    }
  }
  return true;
}

bool isShortestPathTree(const Graph& g, const graph::IdAssignment& ids,
                        Vertex root, std::uint32_t cap,
                        const std::vector<core::TreeState>& states) {
  if (states.size() != g.order() || !g.contains(root)) return false;
  const auto truth = bfsDistances(g, root);
  for (Vertex v = 0; v < g.order(); ++v) {
    const core::TreeState& s = states[v];
    if (v == root) {
      if (s.dist != 0 || s.parent != graph::kNoVertex) return false;
      continue;
    }
    if (truth[v] == graph::kUnreachable || truth[v] >= cap) {
      if (s.dist != cap || s.parent != graph::kNoVertex) return false;
      continue;
    }
    if (s.dist != truth[v]) return false;
    // Parent: the minimum-ID neighbor at distance dist-1.
    Vertex expected = graph::kNoVertex;
    for (const Vertex w : g.neighbors(v)) {
      if (truth[w] + 1 != truth[v]) continue;
      if (expected == graph::kNoVertex || ids.less(w, expected)) {
        expected = w;
      }
    }
    if (s.parent != expected) return false;
  }
  return true;
}

}  // namespace selfstab::analysis
