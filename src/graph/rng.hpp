// Deterministic, seedable random number generation.
//
// Every randomized component in this library takes an explicit 64-bit seed so
// that all simulations and experiments are reproducible bit-for-bit. We avoid
// std::mt19937 / std::uniform_int_distribution because their outputs are not
// guaranteed identical across standard library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

namespace selfstab {

/// SplitMix64: a tiny, high-quality 64-bit mixer. Used both as a stand-alone
/// generator for seeding and as a stateless hash of (seed, counter) pairs.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit output; advances the internal state.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of an arbitrary number of 64-bit words into one word.
/// Useful for deriving per-(seed, round, node) values deterministically.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Xoshiro256**: fast general-purpose PRNG with 256-bit state.
/// Seeded via SplitMix64 per the authors' recommendation.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Lemire-style rejection keeps the result unbiased.
  std::uint64_t below(std::uint64_t bound) noexcept {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    // Width computed modularly in unsigned space: correct even for the
    // full-int64 span, where it wraps to 0 (meaning "any 64-bit value").
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    const std::uint64_t offset = span == 0 ? next() : below(span);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  /// Uniform double in [0, 1).
  double real() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double real(double lo, double hi) noexcept { return lo + (hi - lo) * real(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return real() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    shuffle(std::span<T>(items));
  }

  /// Pick a uniformly random element. Requires a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(below(items.size()))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace selfstab

namespace selfstab::graph {
// Convenience aliases: callers working with the graph layer routinely need
// its RNG; let them write graph::Rng without reaching into the root
// namespace.
using selfstab::hashCombine;
using selfstab::mix64;
using selfstab::Rng;
using selfstab::SplitMix64;
}  // namespace selfstab::graph
