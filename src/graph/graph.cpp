#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace selfstab::graph {

namespace {

// Inserts x into the sorted vector v if absent; returns true on insertion.
bool sortedInsert(std::vector<Vertex>& v, Vertex x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

// Erases x from the sorted vector v if present; returns true on erasure.
bool sortedErase(std::vector<Vertex>& v, Vertex x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

}  // namespace

bool Graph::addEdge(Vertex u, Vertex v) {
  assert(contains(u) && contains(v));
  if (u == v) return false;
  if (!sortedInsert(adj_[u], v)) return false;
  sortedInsert(adj_[v], u);
  ++edgeCount_;
  ++version_;
  return true;
}

bool Graph::removeEdge(Vertex u, Vertex v) {
  assert(contains(u) && contains(v));
  if (u == v) return false;
  if (!sortedErase(adj_[u], v)) return false;
  sortedErase(adj_[v], u);
  --edgeCount_;
  ++version_;
  return true;
}

bool Graph::hasEdge(Vertex u, Vertex v) const noexcept {
  if (!contains(u) || !contains(v) || u == v) return false;
  const auto& nbrs = adj_[u];
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::size_t Graph::maxDegree() const noexcept {
  std::size_t best = 0;
  for (const auto& nbrs : adj_) best = std::max(best, nbrs.size());
  return best;
}

std::size_t Graph::minDegree() const noexcept {
  if (adj_.empty()) return 0;
  std::size_t best = adj_[0].size();
  for (const auto& nbrs : adj_) best = std::min(best, nbrs.size());
  return best;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(edgeCount_);
  for (Vertex u = 0; u < adj_.size(); ++u) {
    for (const Vertex v : adj_[u]) {
      if (u < v) result.push_back(Edge{u, v});
    }
  }
  return result;
}

void Graph::clearEdges() {
  for (auto& nbrs : adj_) nbrs.clear();
  if (edgeCount_ > 0) ++version_;
  edgeCount_ = 0;
}

bool Graph::toggleEdge(Vertex u, Vertex v) {
  if (hasEdge(u, v)) {
    removeEdge(u, v);
    return false;
  }
  return addEdge(u, v);
}

}  // namespace selfstab::graph
