#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

namespace selfstab::graph {

namespace {

[[noreturn]] void fail(const std::string& message) { throw ParseError(message); }

void addCheckedEdge(Graph& g, std::uint64_t u, std::uint64_t v) {
  if (u >= g.order() || v >= g.order()) fail("edge endpoint out of range");
  if (u == v) fail("self-loop not allowed");
  if (!g.addEdge(static_cast<Vertex>(u), static_cast<Vertex>(v))) {
    fail("duplicate edge");
  }
}

}  // namespace

void writeEdgeList(std::ostream& out, const Graph& g) {
  out << g.order() << ' ' << g.size() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << '\n';
}

Graph readEdgeList(std::istream& in) {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  if (!(in >> n >> m)) fail("missing edge-list header");
  Graph g(n);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(in >> u >> v)) fail("truncated edge list");
    addCheckedEdge(g, u, v);
  }
  return g;
}

void writeDimacs(std::ostream& out, const Graph& g) {
  out << "p edge " << g.order() << ' ' << g.size() << '\n';
  for (const Edge& e : g.edges()) {
    out << "e " << (e.u + 1) << ' ' << (e.v + 1) << '\n';
  }
}

Graph readDimacs(std::istream& in) {
  Graph g;
  bool sawHeader = false;
  std::uint64_t expectedEdges = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string format;
      std::uint64_t n = 0;
      if (!(ls >> format >> n >> expectedEdges) || format != "edge") {
        fail("bad DIMACS problem line");
      }
      g = Graph(n);
      sawHeader = true;
    } else if (kind == 'e') {
      if (!sawHeader) fail("DIMACS edge before problem line");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(ls >> u >> v) || u == 0 || v == 0) fail("bad DIMACS edge line");
      addCheckedEdge(g, u - 1, v - 1);
    } else {
      fail("unknown DIMACS line kind");
    }
  }
  if (!sawHeader) fail("missing DIMACS problem line");
  if (g.size() != expectedEdges) fail("DIMACS edge count mismatch");
  return g;
}

void writeDot(std::ostream& out, const Graph& g, const std::string& name) {
  out << "graph " << name << " {\n";
  for (Vertex v = 0; v < g.order(); ++v) out << "  " << v << ";\n";
  for (const Edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v << ";\n";
  }
  out << "}\n";
}

}  // namespace selfstab::graph
