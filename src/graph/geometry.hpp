// Minimal 2-D geometry used by the unit-disk model and the mobility layer.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::graph {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr double squaredDistance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(squaredDistance(a, b));
}

/// n points uniformly at random in the unit square.
std::vector<Point> randomPoints(std::size_t n, Rng& rng);

/// The unit-disk graph of the given points: {u,v} is an edge iff the two
/// points are within `radius` of each other. This is the standard model of
/// radio connectivity in an ad hoc network.
Graph unitDiskGraph(const std::vector<Point>& points, double radius);

/// Incrementally-maintained uniform grid over up to `order` moving points in
/// the unit square. place() inserts a vertex or moves it between cells in
/// O(1); gather() enumerates every vertex whose *recorded* cell intersects
/// the bounding square of a query disk — a superset of the vertices actually
/// inside it, so callers apply their own exact distance test. Coordinates
/// outside [0,1) clamp into the border cells, so slightly-out-of-square
/// queries and points are safe.
///
/// Cells are at least `cellWidth` wide (so a disk of that radius overlaps at
/// most a 3x3 block), but the grid caps itself at ~order cells so a tiny
/// radius cannot blow up memory; correctness never depends on the width —
/// gather() walks however many cells the query rectangle covers.
class SpatialGrid {
 public:
  SpatialGrid() = default;
  SpatialGrid(std::size_t order, double cellWidth);

  [[nodiscard]] std::size_t side() const noexcept { return side_; }
  [[nodiscard]] std::size_t cellCount() const noexcept {
    return side_ * side_;
  }

  [[nodiscard]] std::size_t cellOf(const Point& p) const noexcept {
    return axisCell(p.y) * side_ + axisCell(p.x);
  }

  /// Inserts v at p, or moves it there (swap-pop from its previous cell).
  void place(Vertex v, const Point& p);

  /// Vertices currently recorded in one cell, in insertion order.
  [[nodiscard]] const std::vector<Vertex>& cellMembers(
      std::size_t cell) const noexcept {
    return cells_[cell];
  }

  /// Invokes fn(cell) for every cell intersecting the bounding square of
  /// the disk (center, radius).
  template <typename Fn>
  void forEachCellIntersecting(const Point& center, double radius,
                               Fn&& fn) const {
    const std::size_t x0 = axisCell(center.x - radius);
    const std::size_t x1 = axisCell(center.x + radius);
    const std::size_t y0 = axisCell(center.y - radius);
    const std::size_t y1 = axisCell(center.y + radius);
    for (std::size_t cy = y0; cy <= y1; ++cy) {
      for (std::size_t cx = x0; cx <= x1; ++cx) {
        fn(cy * side_ + cx);
      }
    }
  }

  /// Appends every vertex recorded in a cell touching the disk's bounding
  /// square to `out` (no clear, no ordering guarantee).
  void gather(const Point& center, double radius,
              std::vector<Vertex>& out) const;

 private:
  [[nodiscard]] std::size_t axisCell(double coord) const noexcept {
    if (coord <= 0.0) return 0;
    const auto c = static_cast<std::size_t>(coord * scale_);
    return c < side_ ? c : side_ - 1;
  }

  static constexpr std::uint32_t kNowhere = 0xffffffffu;
  struct Slot {
    std::uint32_t cell = kNowhere;
    std::uint32_t index = 0;  ///< position inside cells_[cell]
  };

  std::size_t side_ = 1;
  double scale_ = 1.0;  ///< == side_, cached for the coordinate scaling
  std::vector<std::vector<Vertex>> cells_;
  std::vector<Slot> where_;
};

}  // namespace selfstab::graph
