// Minimal 2-D geometry used by the unit-disk model and the mobility layer.
#pragma once

#include <cmath>
#include <vector>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::graph {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
};

constexpr double squaredDistance(const Point& a, const Point& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point& a, const Point& b) noexcept {
  return std::sqrt(squaredDistance(a, b));
}

/// n points uniformly at random in the unit square.
std::vector<Point> randomPoints(std::size_t n, Rng& rng);

/// The unit-disk graph of the given points: {u,v} is an edge iff the two
/// points are within `radius` of each other. This is the standard model of
/// radio connectivity in an ad hoc network.
Graph unitDiskGraph(const std::vector<Point>& points, double radius);

}  // namespace selfstab::graph
