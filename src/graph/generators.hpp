// Graph families used throughout the experiments.
//
// The paper proves worst-case bounds over *arbitrary* connected topologies,
// so the benches sweep structured families (paths, cycles, stars, grids,
// trees, complete and complete bipartite graphs, hypercubes) as well as the
// random families that model ad hoc deployments (G(n,p), random geometric /
// unit-disk graphs).
#pragma once

#include <cstddef>

#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::graph {

/// Path P_n: 0-1-2-...-(n-1).
Graph path(std::size_t n);

/// Cycle C_n (n >= 3): the counterexample topology of Section 3.
Graph cycle(std::size_t n);

/// Complete graph K_n.
Graph complete(std::size_t n);

/// Complete bipartite graph K_{a,b}; vertices 0..a-1 on the left side.
Graph completeBipartite(std::size_t a, std::size_t b);

/// Star K_{1,n-1} with vertex 0 at the center.
Graph star(std::size_t n);

/// rows x cols grid (4-neighbor mesh).
Graph grid(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube Q_d on 2^d vertices.
Graph hypercube(std::size_t d);

/// Complete binary tree on n vertices (heap-indexed: children 2i+1, 2i+2).
Graph binaryTree(std::size_t n);

/// Uniformly random labelled tree on n vertices (via Prüfer-like attachment:
/// each vertex v >= 1 attaches to a uniformly random earlier vertex).
Graph randomTree(std::size_t n, Rng& rng);

/// Caterpillar: a path of `spine` vertices with `legsPerSpine` pendant
/// vertices attached to each spine vertex.
Graph caterpillar(std::size_t spine, std::size_t legsPerSpine);

/// Erdős–Rényi G(n,p).
Graph erdosRenyi(std::size_t n, double p, Rng& rng);

/// Connected Erdős–Rényi: a random spanning tree plus G(n,p) edges. The paper
/// assumes the network stays connected, so this is the default random family.
Graph connectedErdosRenyi(std::size_t n, double p, Rng& rng);

/// Wheel W_n: cycle on vertices 1..n-1 plus hub 0 adjacent to all (n >= 4).
Graph wheel(std::size_t n);

/// The Petersen graph (10 vertices, 3-regular, girth 5): outer cycle 0..4,
/// inner pentagram 5..9.
Graph petersen();

/// Barbell: two K_k cliques joined by a path of `bridge` intermediate
/// vertices (bridge may be 0: cliques joined by a single edge).
Graph barbell(std::size_t k, std::size_t bridge);

/// Lollipop: K_k with a path of `tail` vertices attached.
Graph lollipop(std::size_t k, std::size_t tail);

/// Random d-regular graph via the pairing (configuration) model with
/// restarts; n*d must be even and d < n. May include up to `maxTries`
/// resampling rounds to avoid self-loops/multi-edges.
Graph randomRegular(std::size_t n, std::size_t d, Rng& rng,
                    int maxTries = 200);

/// Random geometric (unit-disk) graph: n uniform points in the unit square,
/// edges within `radius`. Optionally returns the generated points.
Graph randomGeometric(std::size_t n, double radius, Rng& rng,
                      std::vector<Point>* outPoints = nullptr);

/// Connected random geometric graph: resamples point sets (up to maxTries)
/// until the unit-disk graph is connected; falls back to adding a random
/// spanning tree over the final sample if the budget is exhausted.
Graph connectedRandomGeometric(std::size_t n, double radius, Rng& rng,
                               std::vector<Point>* outPoints = nullptr,
                               int maxTries = 64);

/// Preferential attachment (Barabási–Albert): vertex v >= 1 attaches
/// min(v, m) edges to distinct earlier vertices sampled proportionally to
/// degree+1. Connected by construction, with a power-law degree tail — the
/// hub-heavy regime that defeats equal-count work splits and motivates the
/// executors' degree-weighted partitioning.
Graph preferentialAttachment(std::size_t n, std::size_t m, Rng& rng);

}  // namespace selfstab::graph
