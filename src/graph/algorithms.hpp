// Basic graph algorithms shared by generators, verifiers, and experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace selfstab::graph {

/// Distance in edges to every vertex from `source`; unreachable vertices get
/// kUnreachable.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
std::vector<std::size_t> bfsDistances(const Graph& g, Vertex source);

/// True if the graph has one connected component (vacuously true for n <= 1).
[[nodiscard]] bool isConnected(const Graph& g);

/// Component label (0-based, in discovery order) for every vertex.
std::vector<std::size_t> connectedComponents(const Graph& g);

[[nodiscard]] std::size_t componentCount(const Graph& g);

/// Exact diameter via all-pairs BFS; kUnreachable if disconnected.
/// O(n * (n + m)): intended for experiment-sized graphs.
[[nodiscard]] std::size_t diameter(const Graph& g);

/// True if the graph is bipartite (2-colorable).
[[nodiscard]] bool isBipartite(const Graph& g);

/// Vertices in non-increasing degeneracy order, i.e. repeatedly removing a
/// minimum-degree vertex; also reports the degeneracy. Useful for bounding
/// greedy coloring quality.
struct DegeneracyResult {
  std::vector<Vertex> order;
  std::size_t degeneracy = 0;
};
DegeneracyResult degeneracyOrder(const Graph& g);

/// Number of triangles in the graph (sum over edges of common neighbors / 3).
[[nodiscard]] std::size_t triangleCount(const Graph& g);

}  // namespace selfstab::graph
