#include "graph/id_order.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace selfstab::graph {

IdAssignment IdAssignment::identity(std::size_t n) {
  std::vector<Id> ids(n);
  std::iota(ids.begin(), ids.end(), Id{0});
  return IdAssignment(std::move(ids));
}

IdAssignment IdAssignment::reversed(std::size_t n) {
  std::vector<Id> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = n - 1 - v;
  return IdAssignment(std::move(ids));
}

IdAssignment IdAssignment::randomPermutation(std::size_t n, Rng& rng) {
  std::vector<Id> ids(n);
  std::iota(ids.begin(), ids.end(), Id{0});
  rng.shuffle(ids);
  return IdAssignment(std::move(ids));
}

IdAssignment IdAssignment::randomSparse(std::size_t n, Rng& rng) {
  std::unordered_set<Id> seen;
  std::vector<Id> ids;
  ids.reserve(n);
  while (ids.size() < n) {
    const Id candidate = rng.next();
    if (seen.insert(candidate).second) ids.push_back(candidate);
  }
  return IdAssignment(std::move(ids));
}

bool IdAssignment::isValid(std::size_t n) const {
  if (ids_.size() != n) return false;
  std::vector<Id> sorted = ids_;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace selfstab::graph
