// Undirected dynamic graph.
//
// Models the ad hoc network topology of the paper's system model (Section 2):
// a fixed set of n nodes whose *edge set* changes over time as hosts move.
// Vertices are dense indices 0..n-1; the protocol-level unique IDs the
// algorithms compare (Section 2: "each node is assigned a unique ID") are kept
// separate in IdAssignment so experiments can sweep ID orders.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace selfstab::graph {

using Vertex = std::uint32_t;

/// Sentinel meaning "no vertex" (the paper's null pointer Λ).
inline constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

/// An undirected edge, stored with u < v.
struct Edge {
  Vertex u;
  Vertex v;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// Normalizes an unordered pair into an Edge (u < v). Requires a != b.
constexpr Edge makeEdge(Vertex a, Vertex b) noexcept {
  return a < b ? Edge{a, b} : Edge{b, a};
}

/// Undirected simple graph on a fixed vertex set with a mutable edge set.
///
/// Adjacency lists are kept sorted, so neighbors() enumerates in increasing
/// vertex order and hasEdge() is O(log deg). Mutation is O(deg) per endpoint,
/// which is cheap at the degrees ad hoc networks exhibit.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph on n vertices.
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Number of vertices.
  [[nodiscard]] std::size_t order() const noexcept { return adj_.size(); }

  /// Number of edges.
  [[nodiscard]] std::size_t size() const noexcept { return edgeCount_; }

  [[nodiscard]] bool contains(Vertex v) const noexcept {
    return v < adj_.size();
  }

  /// Adds edge {u, v}. Returns false (and changes nothing) if the edge
  /// already exists or u == v. Both endpoints must be valid vertices.
  bool addEdge(Vertex u, Vertex v);

  /// Removes edge {u, v}. Returns false if it was not present.
  bool removeEdge(Vertex u, Vertex v);

  /// True if {u, v} is an edge. Safe for any vertex arguments.
  [[nodiscard]] bool hasEdge(Vertex u, Vertex v) const noexcept;

  /// Neighbors of v in increasing vertex order.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return adj_[v];
  }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return adj_[v].size();
  }

  [[nodiscard]] std::size_t maxDegree() const noexcept;
  [[nodiscard]] std::size_t minDegree() const noexcept;

  /// All edges, each once, with u < v, in lexicographic order.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Removes every edge; keeps the vertex set.
  void clearEdges();

  /// Flips the presence of edge {u, v}: adds it if absent, removes it
  /// otherwise. Returns true if the edge is present afterwards.
  bool toggleEdge(Vertex u, Vertex v);

  /// Monotone mutation counter: bumped by every successful edge insertion or
  /// removal. Lets adjacency caches (engine::ViewBuilder's CSR mirror)
  /// revalidate with a single integer compare instead of a deep scan.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Equality is structural (same adjacency), independent of the mutation
  /// history that produced it.
  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adj_ == b.adj_;
  }

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t edgeCount_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace selfstab::graph
