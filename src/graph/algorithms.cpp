#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

namespace selfstab::graph {

std::vector<std::size_t> bfsDistances(const Graph& g, Vertex source) {
  std::vector<std::size_t> dist(g.order(), kUnreachable);
  if (!g.contains(source)) return dist;
  std::deque<Vertex> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    for (const Vertex v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool isConnected(const Graph& g) {
  if (g.order() <= 1) return true;
  const auto dist = bfsDistances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::vector<std::size_t> connectedComponents(const Graph& g) {
  std::vector<std::size_t> comp(g.order(), kUnreachable);
  std::size_t label = 0;
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < g.order(); ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = label;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (comp[v] == kUnreachable) {
          comp[v] = label;
          queue.push_back(v);
        }
      }
    }
    ++label;
  }
  return comp;
}

std::size_t componentCount(const Graph& g) {
  const auto comp = connectedComponents(g);
  return comp.empty() ? 0 : 1 + *std::max_element(comp.begin(), comp.end());
}

std::size_t diameter(const Graph& g) {
  std::size_t best = 0;
  for (Vertex s = 0; s < g.order(); ++s) {
    const auto dist = bfsDistances(g, s);
    for (const std::size_t d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

bool isBipartite(const Graph& g) {
  std::vector<int> side(g.order(), -1);
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < g.order(); ++s) {
    if (side[s] != -1) continue;
    side[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex u = queue.front();
      queue.pop_front();
      for (const Vertex v : g.neighbors(u)) {
        if (side[v] == -1) {
          side[v] = 1 - side[u];
          queue.push_back(v);
        } else if (side[v] == side[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

DegeneracyResult degeneracyOrder(const Graph& g) {
  const std::size_t n = g.order();
  DegeneracyResult result;
  result.order.reserve(n);

  std::vector<std::size_t> degree(n);
  for (Vertex v = 0; v < n; ++v) degree[v] = g.degree(v);

  // Bucket queue over residual degrees.
  const std::size_t maxDeg = g.maxDegree();
  std::vector<std::vector<Vertex>> buckets(maxDeg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);

  std::size_t cursor = 0;
  for (std::size_t taken = 0; taken < n; ++taken) {
    // Find the lowest non-empty bucket; the cursor can move down by at most
    // one per removal, so rewind by one and scan up.
    cursor = cursor > 0 ? cursor - 1 : 0;
    while (cursor <= maxDeg &&
           (buckets[cursor].empty() ||
            removed[buckets[cursor].back()] ||
            degree[buckets[cursor].back()] != cursor)) {
      // Pop stale entries (lazy deletion).
      if (!buckets[cursor].empty() &&
          (removed[buckets[cursor].back()] ||
           degree[buckets[cursor].back()] != cursor)) {
        buckets[cursor].pop_back();
      } else {
        ++cursor;
      }
    }
    const Vertex v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    result.degeneracy = std::max(result.degeneracy, cursor);
    result.order.push_back(v);
    for (const Vertex w : g.neighbors(v)) {
      if (!removed[w]) {
        --degree[w];
        buckets[degree[w]].push_back(w);
      }
    }
  }
  return result;
}

std::size_t triangleCount(const Graph& g) {
  std::size_t total = 0;
  for (Vertex u = 0; u < g.order(); ++u) {
    const auto nu = g.neighbors(u);
    for (const Vertex v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // Count common neighbors w with w > v to count each triangle once.
      auto itU = std::upper_bound(nu.begin(), nu.end(), v);
      auto itV = std::upper_bound(nv.begin(), nv.end(), v);
      while (itU != nu.end() && itV != nv.end()) {
        if (*itU < *itV) {
          ++itU;
        } else if (*itV < *itU) {
          ++itV;
        } else {
          ++total;
          ++itU;
          ++itV;
        }
      }
    }
  }
  return total;
}

}  // namespace selfstab::graph
