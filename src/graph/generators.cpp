#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>

#include "graph/algorithms.hpp"

namespace selfstab::graph {

Graph path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  assert(n >= 3);
  Graph g = path(n);
  g.addEdge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.addEdge(u, v);
  }
  return g;
}

Graph completeBipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) {
      g.addEdge(u, static_cast<Vertex>(a + v));
    }
  }
  return g;
}

Graph star(std::size_t n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.addEdge(0, v);
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  const auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.addEdge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) g.addEdge(at(r, c), at(r + 1, c));
    }
  }
  return g;
}

Graph hypercube(std::size_t d) {
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t bit = 0; bit < d; ++bit) {
      const std::size_t v = u ^ (std::size_t{1} << bit);
      if (u < v) g.addEdge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  return g;
}

Graph binaryTree(std::size_t n) {
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) {
    g.addEdge(static_cast<Vertex>((v - 1) / 2), static_cast<Vertex>(v));
  }
  return g;
}

Graph randomTree(std::size_t n, Rng& rng) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.below(v));
    g.addEdge(parent, v);
  }
  return g;
}

Graph caterpillar(std::size_t spine, std::size_t legsPerSpine) {
  const std::size_t n = spine + spine * legsPerSpine;
  Graph g(n);
  for (Vertex v = 0; v + 1 < spine; ++v) g.addEdge(v, v + 1);
  Vertex next = static_cast<Vertex>(spine);
  for (Vertex s = 0; s < spine; ++s) {
    for (std::size_t leg = 0; leg < legsPerSpine; ++leg) {
      g.addEdge(s, next++);
    }
  }
  return g;
}

Graph erdosRenyi(std::size_t n, double p, Rng& rng) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.addEdge(u, v);
    }
  }
  return g;
}

Graph connectedErdosRenyi(std::size_t n, double p, Rng& rng) {
  Graph g = randomTree(n, rng);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (!g.hasEdge(u, v) && rng.chance(p)) g.addEdge(u, v);
    }
  }
  return g;
}

Graph wheel(std::size_t n) {
  assert(n >= 4);
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) {
    g.addEdge(0, v);
    g.addEdge(v, v + 1 < n ? v + 1 : 1);
  }
  return g;
}

Graph petersen() {
  Graph g(10);
  for (Vertex v = 0; v < 5; ++v) {
    g.addEdge(v, (v + 1) % 5);                       // outer cycle
    g.addEdge(static_cast<Vertex>(5 + v),
              static_cast<Vertex>(5 + (v + 2) % 5)); // inner pentagram
    g.addEdge(v, static_cast<Vertex>(5 + v));        // spokes
  }
  return g;
}

Graph barbell(std::size_t k, std::size_t bridge) {
  assert(k >= 1);
  const std::size_t n = 2 * k + bridge;
  Graph g(n);
  const auto clique = [&](Vertex base) {
    for (Vertex u = 0; u < k; ++u) {
      for (Vertex v = u + 1; v < k; ++v) {
        g.addEdge(base + u, base + v);
      }
    }
  };
  clique(0);
  clique(static_cast<Vertex>(k + bridge));
  // Path from the last vertex of the left clique through the bridge to the
  // first vertex of the right clique.
  Vertex prev = static_cast<Vertex>(k - 1);
  for (std::size_t i = 0; i < bridge; ++i) {
    const auto next = static_cast<Vertex>(k + i);
    g.addEdge(prev, next);
    prev = next;
  }
  g.addEdge(prev, static_cast<Vertex>(k + bridge));
  return g;
}

Graph lollipop(std::size_t k, std::size_t tail) {
  assert(k >= 1);
  Graph g(k + tail);
  for (Vertex u = 0; u < k; ++u) {
    for (Vertex v = u + 1; v < k; ++v) g.addEdge(u, v);
  }
  Vertex prev = static_cast<Vertex>(k - 1);
  for (std::size_t i = 0; i < tail; ++i) {
    const auto next = static_cast<Vertex>(k + i);
    g.addEdge(prev, next);
    prev = next;
  }
  return g;
}

Graph randomRegular(std::size_t n, std::size_t d, Rng& rng, int maxTries) {
  assert(d < n && (n * d) % 2 == 0);
  for (int attempt = 0; attempt < maxTries; ++attempt) {
    // Pairing model: n*d half-edge stubs, shuffled and paired up.
    std::vector<Vertex> stubs;
    stubs.reserve(n * d);
    for (Vertex v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (stubs[i] == stubs[i + 1] || !g.addEdge(stubs[i], stubs[i + 1])) {
        ok = false;  // self-loop or multi-edge: resample
        break;
      }
    }
    if (ok) return g;
  }
  // The pairing model succeeds with constant probability for modest d;
  // exhausting maxTries indicates misuse.
  assert(false && "randomRegular: retry budget exhausted");
  return Graph(n);
}

Graph randomGeometric(std::size_t n, double radius, Rng& rng,
                      std::vector<Point>* outPoints) {
  std::vector<Point> points = randomPoints(n, rng);
  Graph g = unitDiskGraph(points, radius);
  if (outPoints != nullptr) *outPoints = std::move(points);
  return g;
}

Graph connectedRandomGeometric(std::size_t n, double radius, Rng& rng,
                               std::vector<Point>* outPoints, int maxTries) {
  for (int attempt = 0; attempt < maxTries; ++attempt) {
    std::vector<Point> points = randomPoints(n, rng);
    Graph g = unitDiskGraph(points, radius);
    if (isConnected(g)) {
      if (outPoints != nullptr) *outPoints = std::move(points);
      return g;
    }
  }
  // Budget exhausted: keep the last sample's geometry but splice in a random
  // spanning tree so the result is connected (the paper assumes coordinated
  // movement keeps the network connected).
  std::vector<Point> points = randomPoints(n, rng);
  Graph g = unitDiskGraph(points, radius);
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.below(v));
    g.addEdge(parent, v);
  }
  if (outPoints != nullptr) *outPoints = std::move(points);
  return g;
}

Graph preferentialAttachment(std::size_t n, std::size_t m, Rng& rng) {
  assert(m >= 1);
  Graph g(n);
  // Endpoint multiset: one baseline slot per vertex plus one slot per
  // incident half-edge, so a uniform draw is a degree+1-proportional draw.
  std::vector<Vertex> slots;
  slots.reserve(n + 2 * n * m);
  if (n > 0) slots.push_back(0);
  for (Vertex v = 1; v < n; ++v) {
    const std::size_t wanted = std::min<std::size_t>(v, m);
    // Freeze the pool for this step: v's own edges must not bias its
    // remaining draws.
    const std::size_t poolSize = slots.size();
    std::size_t added = 0;
    while (added < wanted) {
      const Vertex target = slots[rng.below(poolSize)];
      if (g.addEdge(target, v)) {  // rejects duplicates; resample
        slots.push_back(target);
        slots.push_back(v);
        ++added;
      }
    }
    slots.push_back(v);
  }
  return g;
}

}  // namespace selfstab::graph
