#include "graph/geometry.hpp"

namespace selfstab::graph {

std::vector<Point> randomPoints(std::size_t n, Rng& rng) {
  std::vector<Point> points(n);
  for (auto& p : points) {
    p.x = rng.real();
    p.y = rng.real();
  }
  return points;
}

Graph unitDiskGraph(const std::vector<Point>& points, double radius) {
  Graph g(points.size());
  const double r2 = radius * radius;
  for (Vertex u = 0; u < points.size(); ++u) {
    for (Vertex v = u + 1; v < points.size(); ++v) {
      if (squaredDistance(points[u], points[v]) <= r2) g.addEdge(u, v);
    }
  }
  return g;
}

}  // namespace selfstab::graph
