#include "graph/geometry.hpp"

#include <algorithm>
#include <cmath>

namespace selfstab::graph {

std::vector<Point> randomPoints(std::size_t n, Rng& rng) {
  std::vector<Point> points(n);
  for (auto& p : points) {
    p.x = rng.real();
    p.y = rng.real();
  }
  return points;
}

Graph unitDiskGraph(const std::vector<Point>& points, double radius) {
  Graph g(points.size());
  const double r2 = radius * radius;

  // Spatial hashing: bucket the unit square into cells of side >= radius, so
  // every in-range pair lives in the same or an adjacent cell. Expected cost
  // is O(n + m) instead of the all-pairs O(n^2), which is what makes
  // 100k-node geometric topologies practical. Small inputs keep the direct
  // scan — building the grid would cost more than it saves.
  if (points.size() < 256 || radius <= 0.0 || radius >= 0.5) {
    for (Vertex u = 0; u < points.size(); ++u) {
      for (Vertex v = u + 1; v < points.size(); ++v) {
        if (squaredDistance(points[u], points[v]) <= r2) g.addEdge(u, v);
      }
    }
    return g;
  }

  const auto side = static_cast<std::size_t>(1.0 / radius);  // side >= 2
  const auto cellOf = [&](const Point& p) {
    auto cx = static_cast<std::size_t>(p.x * static_cast<double>(side));
    auto cy = static_cast<std::size_t>(p.y * static_cast<double>(side));
    cx = std::min(cx, side - 1);
    cy = std::min(cy, side - 1);
    return cy * side + cx;
  };

  // Counting sort of vertices into cells (CSR layout: offsets + members).
  std::vector<std::size_t> offsets(side * side + 1, 0);
  for (const Point& p : points) ++offsets[cellOf(p) + 1];
  for (std::size_t c = 1; c < offsets.size(); ++c) offsets[c] += offsets[c - 1];
  std::vector<Vertex> members(points.size());
  {
    std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (Vertex v = 0; v < points.size(); ++v) {
      members[cursor[cellOf(points[v])]++] = v;
    }
  }

  for (std::size_t cy = 0; cy < side; ++cy) {
    for (std::size_t cx = 0; cx < side; ++cx) {
      const std::size_t c = cy * side + cx;
      for (std::size_t i = offsets[c]; i < offsets[c + 1]; ++i) {
        const Vertex u = members[i];
        // Same cell: remaining members only, each pair visited once.
        for (std::size_t j = i + 1; j < offsets[c + 1]; ++j) {
          const Vertex v = members[j];
          if (squaredDistance(points[u], points[v]) <= r2) g.addEdge(u, v);
        }
        // Forward half of the 8-neighborhood (E, SW, S, SE): every adjacent
        // cell pair is visited exactly once.
        constexpr int kDx[] = {1, -1, 0, 1};
        constexpr int kDy[] = {0, 1, 1, 1};
        for (int k = 0; k < 4; ++k) {
          const auto nx = static_cast<std::ptrdiff_t>(cx) + kDx[k];
          const auto ny = static_cast<std::ptrdiff_t>(cy) + kDy[k];
          if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(side) ||
              ny >= static_cast<std::ptrdiff_t>(side)) {
            continue;
          }
          const std::size_t d = static_cast<std::size_t>(ny) * side +
                                static_cast<std::size_t>(nx);
          for (std::size_t j = offsets[d]; j < offsets[d + 1]; ++j) {
            const Vertex v = members[j];
            if (squaredDistance(points[u], points[v]) <= r2) g.addEdge(u, v);
          }
        }
      }
    }
  }
  return g;
}

SpatialGrid::SpatialGrid(std::size_t order, double cellWidth) {
  // floor(1/width) keeps cells at least cellWidth wide; the sqrt(order) cap
  // keeps the cell count O(order) when the width is tiny relative to the
  // point density (gather() walks rectangles, so a cell narrower than the
  // query radius costs extra cells, never correctness).
  const auto cap = static_cast<std::size_t>(std::ceil(
      std::sqrt(static_cast<double>(std::max<std::size_t>(order, 1)))));
  std::size_t side = cap;
  if (cellWidth > 0.0) {
    side = std::min(side, static_cast<std::size_t>(
                              std::max(1.0, 1.0 / cellWidth)));
  }
  side_ = std::max<std::size_t>(side, 1);
  scale_ = static_cast<double>(side_);
  cells_.resize(side_ * side_);
  where_.resize(order);
}

void SpatialGrid::place(Vertex v, const Point& p) {
  const auto cell = static_cast<std::uint32_t>(cellOf(p));
  Slot& slot = where_[v];
  if (slot.cell == cell) return;
  if (slot.cell != kNowhere) {
    auto& old = cells_[slot.cell];
    const Vertex moved = old.back();
    old[slot.index] = moved;
    where_[moved].index = slot.index;
    old.pop_back();
  }
  auto& dst = cells_[cell];
  slot.cell = cell;
  slot.index = static_cast<std::uint32_t>(dst.size());
  dst.push_back(v);
}

void SpatialGrid::gather(const Point& center, double radius,
                         std::vector<Vertex>& out) const {
  forEachCellIntersecting(center, radius, [&](std::size_t cell) {
    const auto& members = cells_[cell];
    out.insert(out.end(), members.begin(), members.end());
  });
}

}  // namespace selfstab::graph
