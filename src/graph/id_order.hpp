// Unique node identifiers.
//
// The paper assumes "each node is assigned a unique ID" (Section 2) and both
// algorithms are ID-sensitive: SMM rule R2 proposes to the *minimum-ID* null
// neighbor, and SIS compares IDs to decide who is "bigger". Keeping the ID
// assignment separate from the dense vertex indexing lets experiments sweep
// ID orders (identity, reversed, random permutations) on the same topology.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

#include <vector>

namespace selfstab::graph {

using Id = std::uint64_t;

/// A bijection from vertices 0..n-1 to unique 64-bit IDs.
class IdAssignment {
 public:
  IdAssignment() = default;

  /// Takes ownership of an arbitrary vector of pairwise-distinct IDs,
  /// one per vertex. Uniqueness is the caller's responsibility (checked
  /// in debug builds via isValid()).
  explicit IdAssignment(std::vector<Id> ids) : ids_(std::move(ids)) {}

  /// Identity assignment: vertex v has ID v.
  static IdAssignment identity(std::size_t n);

  /// Reversed assignment: vertex v has ID n-1-v.
  static IdAssignment reversed(std::size_t n);

  /// Random permutation of 0..n-1 as IDs.
  static IdAssignment randomPermutation(std::size_t n, Rng& rng);

  /// Random *sparse* IDs: distinct draws from the full 64-bit space,
  /// mimicking hardware addresses in a real ad hoc network.
  static IdAssignment randomSparse(std::size_t n, Rng& rng);

  [[nodiscard]] std::size_t order() const noexcept { return ids_.size(); }

  [[nodiscard]] Id idOf(Vertex v) const noexcept { return ids_[v]; }

  /// True if a's ID is smaller than b's.
  [[nodiscard]] bool less(Vertex a, Vertex b) const noexcept {
    return ids_[a] < ids_[b];
  }

  /// All IDs pairwise distinct and sized to the vertex set?
  [[nodiscard]] bool isValid(std::size_t n) const;

 private:
  std::vector<Id> ids_;
};

}  // namespace selfstab::graph
