// Graph serialization: whitespace edge lists, DIMACS, and Graphviz DOT.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace selfstab::graph {

/// Thrown by the readers on malformed input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes "n m" followed by one "u v" line per edge.
void writeEdgeList(std::ostream& out, const Graph& g);

/// Reads the format produced by writeEdgeList. Throws ParseError on
/// malformed input (bad counts, out-of-range or duplicate edges, self-loops).
Graph readEdgeList(std::istream& in);

/// DIMACS format: "p edge n m" header, "e u v" lines with 1-based vertices.
void writeDimacs(std::ostream& out, const Graph& g);
Graph readDimacs(std::istream& in);

/// Graphviz DOT (undirected), for eyeballing small experiment topologies.
void writeDot(std::ostream& out, const Graph& g,
              const std::string& name = "G");

}  // namespace selfstab::graph
