// Kernel lookup: which protocols have a compiled fast path.
//
// The runners and CLIs stay protocol-agnostic; they ask this factory for a
// kernel and fall back to the generic LocalView path when it returns null.
// A protocol earns a flat kernel by having per-node state that flattens into
// a structure-of-arrays mirror — today SMM (dense pointer vector) and SIS
// (packed membership bitset). Wrappers like core::Synchronized<SmmProtocol>
// deliberately do NOT match: their state carries scheduling fields the flat
// mirrors don't model, and dynamic_cast on the concrete protocol type keeps
// them on the generic path without any opt-out flag.
#pragma once

#include <memory>
#include <type_traits>

#include "core/sis.hpp"
#include "core/sis_kernel.hpp"
#include "core/smm.hpp"
#include "core/smm_kernel.hpp"
#include "engine/kernel.hpp"

namespace selfstab::core {

/// Flat (SoA batch) kernel for the round executors, or nullptr when the
/// protocol has none.
template <typename State>
[[nodiscard]] std::unique_ptr<engine::FlatKernel<State>> makeFlatKernel(
    const engine::Protocol<State>& protocol, const graph::Graph& g,
    const graph::IdAssignment& ids) {
  if constexpr (std::is_same_v<State, BitState>) {
    if (const auto* sis = dynamic_cast<const SisProtocol*>(&protocol)) {
      return std::make_unique<SisKernel>(g, ids, sis->seniority());
    }
  } else if constexpr (std::is_same_v<State, PointerState>) {
    if (const auto* smm = dynamic_cast<const SmmProtocol*>(&protocol)) {
      return std::make_unique<SmmKernel>(g, ids, smm->proposePolicy(),
                                         smm->acceptPolicy());
    }
  }
  (void)g;
  (void)ids;
  return nullptr;
}

/// View-level kernel for executors without a static graph to mirror (the
/// beacon simulator), or nullptr. Evaluation is the same shared rule code
/// the protocol's onRound delegates to, minus the Protocol vtable hop.
class SisViewKernel final : public engine::ViewKernel<BitState> {
 public:
  explicit SisViewKernel(Seniority seniority) : seniority_(seniority) {}

  [[nodiscard]] std::string_view name() const override { return "sis/flat"; }

  [[nodiscard]] std::optional<BitState> evaluateView(
      const engine::LocalView<BitState>& view) const override {
    return sisEvaluateView(view, seniority_);
  }

 private:
  Seniority seniority_;
};

class SmmViewKernel final : public engine::ViewKernel<PointerState> {
 public:
  SmmViewKernel(Choice propose, Choice accept)
      : propose_(propose), accept_(accept) {}

  [[nodiscard]] std::string_view name() const override { return "smm/flat"; }

  [[nodiscard]] std::optional<PointerState> evaluateView(
      const engine::LocalView<PointerState>& view) const override {
    return smmEvaluateView(view, propose_, accept_);
  }

 private:
  Choice propose_;
  Choice accept_;
};

template <typename State>
[[nodiscard]] std::unique_ptr<engine::ViewKernel<State>> makeViewKernel(
    const engine::Protocol<State>& protocol) {
  if constexpr (std::is_same_v<State, BitState>) {
    if (const auto* sis = dynamic_cast<const SisProtocol*>(&protocol)) {
      return std::make_unique<SisViewKernel>(sis->seniority());
    }
  } else if constexpr (std::is_same_v<State, PointerState>) {
    if (const auto* smm = dynamic_cast<const SmmProtocol*>(&protocol)) {
      return std::make_unique<SmmViewKernel>(smm->proposePolicy(),
                                             smm->acceptPolicy());
    }
  }
  return nullptr;
}

}  // namespace selfstab::core
