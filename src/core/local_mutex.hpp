// Daemon refinement: running central-daemon algorithms synchronously.
//
// Section 3 of the paper notes that Hsu & Huang's central-daemon matching
// algorithm [15] "may be converted into a synchronous model protocol using
// the techniques of [1, 16], [but] the resulting protocol is not as fast" as
// SMM. This header implements that conversion: a randomized local mutual
// exclusion wrapper in the style of Beauquier–Datta–Gradinariu–Magniette
// (DISC 2000, the paper's reference [16]).
//
// Every round, each node derives a priority hash(roundKey, id) — the same
// fresh random priority at every node, recomputed each round because
// roundKey changes. A node executes its inner rule only if it is privileged
// AND its (priority, id) pair is strictly largest in its closed neighborhood.
// Movers therefore form an independent set; since an inner rule reads only
// N[i] and writes only i, any set of pairwise-non-adjacent simultaneous moves
// is serializable, so each synchronous round corresponds to a legal sequence
// of central-daemon moves and the inner algorithm's central-daemon
// correctness transfers. The price is exactly what the paper predicts: many
// privileged nodes wait for their neighborhood lock, so stabilization takes
// more rounds than SMM (measured by bench/exp_baseline_comparison).
#pragma once

#include <string>
#include <utility>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

/// Wraps an inner protocol with per-round randomized neighborhood locks.
template <typename Inner>
class Synchronized final
    : public engine::Protocol<typename Inner::StateType> {
 public:
  using State = typename Inner::StateType;

  template <typename... Args>
  explicit Synchronized(Args&&... args)
      : inner_(std::forward<Args>(args)...),
        name_(std::string("synchronized[") + std::string(inner_.name()) + "]") {}

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::optional<State> onRound(
      const engine::LocalView<State>& view) const override {
    auto move = inner_.onRound(view);
    if (!move) return std::nullopt;
    const auto mine = priority(view.roundKey, view.selfId);
    for (const auto& nbr : view.neighbors) {
      if (priority(view.roundKey, nbr.id) > mine) return std::nullopt;
    }
    return move;
  }

  [[nodiscard]] State initialState(graph::Vertex v) const override {
    return inner_.initialState(v);
  }

  /// Stability is a property of the *inner* rules: a node that lost its
  /// neighborhood lottery this round is delayed, not stable.
  [[nodiscard]] bool isStable(
      const engine::LocalView<State>& view) const override {
    return inner_.isStable(view);
  }

  /// The lottery re-draws priorities from roundKey every round, so a node's
  /// decision can flip with an unchanged neighborhood — the active-set
  /// scheduler must not skip nodes for this wrapper.
  [[nodiscard]] bool usesRoundEntropy() const noexcept override { return true; }

  [[nodiscard]] const Inner& inner() const noexcept { return inner_; }

 private:
  /// Per-round lottery ticket; the id component breaks hash ties, keeping
  /// the order strict (ids are unique).
  static std::pair<std::uint64_t, graph::Id> priority(std::uint64_t roundKey,
                                                      graph::Id id) noexcept {
    return {mix64(hashCombine(roundKey, id)), id};
  }

  Inner inner_;
  std::string name_;
};

}  // namespace selfstab::core
