#include "core/smm.hpp"

#include <vector>

namespace selfstab::core {

namespace {

using engine::LocalView;
using engine::NeighborRef;

// Applies a selection policy to a non-empty candidate list (indices into
// view.neighbors).
std::size_t select(Choice choice, const LocalView<PointerState>& view,
                   const std::vector<std::size_t>& candidates) {
  const auto& nbrs = view.neighbors;
  const auto argBest = [&](auto betterThan) {
    std::size_t best = candidates.front();
    for (const std::size_t c : candidates) {
      if (betterThan(nbrs[c].id, nbrs[best].id)) best = c;
    }
    return best;
  };
  switch (choice) {
    case Choice::MinId:
      return argBest([](graph::Id a, graph::Id b) { return a < b; });
    case Choice::MaxId:
      return argBest([](graph::Id a, graph::Id b) { return a > b; });
    case Choice::First:
      return candidates.front();
    case Choice::Successor: {
      // "Clockwise" neighbor on a cycle labelled 0..n-1: prefer the
      // candidate whose vertex index is self+1 (vertex indices wrap only on
      // a cycle, where self+1 may be 0; checking both covers that).
      for (const std::size_t c : candidates) {
        if (nbrs[c].vertex == view.self + 1 ||
            (view.self != 0 && nbrs[c].vertex == 0 &&
             view.find(view.self + 1) == nullptr)) {
          // second disjunct: wrap-around candidate 0 when self is the
          // highest-indexed vertex of a cycle
          return c;
        }
      }
      return argBest([](graph::Id a, graph::Id b) { return a < b; });
    }
    case Choice::Random: {
      SplitMix64 sm(hashCombine(view.roundKey, view.selfId));
      return candidates[sm.next() % candidates.size()];
    }
  }
  return candidates.front();
}

}  // namespace

std::string_view toString(Choice choice) noexcept {
  switch (choice) {
    case Choice::MinId:
      return "min-id";
    case Choice::MaxId:
      return "max-id";
    case Choice::First:
      return "first";
    case Choice::Successor:
      return "successor";
    case Choice::Random:
      return "random";
  }
  return "?";
}

SmmProtocol::SmmProtocol(Choice propose, Choice accept)
    : propose_(propose), accept_(accept) {
  name_ = "smm(propose=";
  name_ += toString(propose);
  name_ += ",accept=";
  name_ += toString(accept);
  name_ += ")";
}

std::optional<PointerState> SmmProtocol::onRound(
    const LocalView<PointerState>& view) const {
  return smmEvaluateView(view, propose_, accept_);
}

std::optional<PointerState> smmEvaluateView(
    const LocalView<PointerState>& view, Choice propose_, Choice accept_) {
  const PointerState& self = view.state();

  if (self.isNull()) {
    // Gather proposers (neighbors pointing at me) and null-pointer neighbors.
    std::vector<std::size_t> proposers;
    std::vector<std::size_t> nullNeighbors;
    for (std::size_t k = 0; k < view.neighbors.size(); ++k) {
      const NeighborRef<PointerState>& nbr = view.neighbors[k];
      if (nbr.state->ptr == view.self) proposers.push_back(k);
      if (nbr.state->isNull()) nullNeighbors.push_back(k);
    }
    if (!proposers.empty()) {
      // R1 [accept a proposal].
      const std::size_t j = select(accept_, view, proposers);
      return PointerState{view.neighbors[j].vertex};
    }
    if (!nullNeighbors.empty()) {
      // R2 [make a proposal].
      const std::size_t j = select(propose_, view, nullNeighbors);
      return PointerState{view.neighbors[j].vertex};
    }
    return std::nullopt;
  }

  // Pointer set: locate its target among current neighbors.
  const NeighborRef<PointerState>* target = view.find(self.ptr);
  if (target == nullptr) {
    // Dangling pointer: the link vanished (mobility) or the state is
    // corrupt. The paper's rules implicitly assume p(i) ∈ N(i) ∪ {Λ}; the
    // self-stabilizing reading of R3 is that a target we cannot observe is
    // certainly not pointing back, so back off.
    return PointerState{};
  }
  const PointerState& targetState = *target->state;
  if (!targetState.isNull() && targetState.ptr != view.self) {
    // R3 [back off]: i -> j, j -> k, k ∉ {Λ, i}.
    return PointerState{};
  }
  // Either matched (j -> i) or waiting on an aloof target (j -> Λ): stable.
  return std::nullopt;
}

}  // namespace selfstab::core
