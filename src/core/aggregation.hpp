// Extension: self-stabilizing convergecast (aggregation) over the leader
// tree — protocol composition.
//
// The paper's introduction motivates spanning trees for "echo-based
// distributed algorithms" (refs [1]-[4]): waves that aggregate a value from
// the whole network at a root. This protocol composes two layers in one
// state, the classic fair-composition pattern of self-stabilization:
//
//   layer 1 (tree):  the rootless leader-tree rule of leader_tree.hpp;
//   layer 2 (sum):   every node publishes the (sum, count) aggregate of its
//                    subtree: its own sensor reading plus the published
//                    aggregates of its *children* — the neighbors whose
//                    parent pointer names it:
//
//     agg(i) = reading(i) (+) Σ { agg(j) : j ∈ N(i), parent(j) = i }
//
// Layer 2 depends only on layer 1's output; once the tree is stable the
// aggregates settle bottom-up in depth(T) further rounds, and any corrupt
// aggregate is recomputed away. At the global fixpoint the leader's
// (sum, count) is exactly the component-wide total and node count — a
// continuously self-healing network monitor.
//
// Sensor readings live *outside* the protocol (they are inputs, not
// protocol state): the protocol observes them through a pointer, so a
// deployment can change readings mid-run and the aggregate re-stabilizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/leader_tree.hpp"
#include "engine/protocol.hpp"

namespace selfstab::core {

struct AggregateState {
  LeaderState tree;
  std::uint64_t sum = 0;    ///< Σ readings over the claimed subtree
  std::uint32_t count = 0;  ///< node count of the claimed subtree

  friend constexpr bool operator==(const AggregateState&,
                                   const AggregateState&) = default;

  friend constexpr std::uint64_t hashValue(const AggregateState& s) noexcept {
    return hashCombine(hashValue(s.tree), hashCombine(s.sum, s.count));
  }
};

inline AggregateState randomAggregateState(graph::Vertex v,
                                           const graph::Graph& g, Rng& rng) {
  AggregateState s;
  s.tree = randomLeaderState(v, g, rng);
  s.sum = rng.next();
  s.count = static_cast<std::uint32_t>(rng.below(2 * g.order() + 1));
  return s;
}

class AggregationProtocol final : public engine::Protocol<AggregateState> {
 public:
  /// `readings` must outlive the protocol and hold one value per vertex;
  /// the caller may mutate it between rounds (new sensor samples) and the
  /// aggregate re-stabilizes.
  AggregationProtocol(std::uint32_t cap,
                      const std::vector<std::uint64_t>* readings)
      : cap_(cap), readings_(readings) {
    name_ = "aggregation(cap=" + std::to_string(cap) + ")";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::optional<AggregateState> onRound(
      const engine::LocalView<AggregateState>& view) const override {
    // Layer 1: the leader-tree target.
    offers_.clear();
    for (const auto& nbr : view.neighbors) {
      offers_.push_back(LeaderOffer{nbr.id, nbr.vertex, &nbr.state->tree});
    }
    AggregateState target;
    target.tree = bestLeaderCandidate(view.selfId, offers_, cap_);

    // Layer 2: aggregate own reading with the children's published values.
    // Children are recognized from the *current* neighbor states; during
    // transients the sums are garbage-in/garbage-out, but they become exact
    // once the parent pointers below stabilize.
    target.sum = (*readings_)[view.self];
    target.count = 1;
    for (const auto& nbr : view.neighbors) {
      if (nbr.state->tree.parent == view.self) {
        target.sum += nbr.state->sum;
        target.count += nbr.state->count;
      }
    }

    if (view.state() == target) return std::nullopt;
    return target;
  }

  [[nodiscard]] AggregateState initialState(graph::Vertex v) const override {
    AggregateState s;
    s.sum = (*readings_)[v];
    s.count = 1;
    return s;
  }

 private:
  std::uint32_t cap_;
  const std::vector<std::uint64_t>* readings_;
  std::string name_;
  mutable std::vector<LeaderOffer> offers_;
};

}  // namespace selfstab::core
