// Per-node state of the matching protocols.
//
// Section 3: "Each node i maintains a single pointer variable which is either
// null, denoted i -> Λ, or points to one of its neighbors j, denoted i -> j."
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

/// The single pointer variable of algorithms SMM and Hsu–Huang.
struct PointerState {
  /// Target vertex, or graph::kNoVertex for the null pointer Λ.
  graph::Vertex ptr = graph::kNoVertex;

  [[nodiscard]] constexpr bool isNull() const noexcept {
    return ptr == graph::kNoVertex;
  }

  friend constexpr bool operator==(const PointerState&,
                                   const PointerState&) = default;

  friend constexpr std::uint64_t hashValue(const PointerState& s) noexcept {
    return mix64(static_cast<std::uint64_t>(s.ptr) + 1);
  }
};

/// Uniform sample from N(v) ∪ {Λ} — the set of *type-correct* pointer values.
/// This spans the full configuration space the paper's proofs quantify over.
inline PointerState randomPointerState(graph::Vertex v, const graph::Graph& g,
                                       Rng& rng) {
  const auto nbrs = g.neighbors(v);
  const std::uint64_t pick = rng.below(nbrs.size() + 1);
  if (pick == nbrs.size()) return PointerState{};  // Λ
  return PointerState{nbrs[static_cast<std::size_t>(pick)]};
}

/// Uniform sample from V ∪ {Λ}: may produce pointers to non-neighbors or to
/// the node itself, the kind of garbage left behind by memory corruption or
/// by a link failing while a pointer crossed it. Protocol implementations
/// must tolerate (and clean up) such values.
inline PointerState wildPointerState(graph::Vertex v, const graph::Graph& g,
                                     Rng& rng) {
  (void)v;
  const std::uint64_t pick = rng.below(g.order() + 1);
  if (pick == g.order()) return PointerState{};  // Λ
  return PointerState{static_cast<graph::Vertex>(pick)};
}

}  // namespace selfstab::core
