// Flat kernel for algorithm SMM (engine/kernel.hpp fast path).
//
// State mirror: the pointer variables p(i) as one dense
// std::vector<graph::Vertex> (Λ = graph::kNoVertex). Every guard of R1/R2/R3
// reads only p over the CSR neighbor slice, so a node evaluates with zero
// LocalView assembly and zero per-neighbor State* chasing:
//   * p(i)=Λ  — one sweep over the slice collecting proposers (p(j)=i) and
//     null neighbors, then the same selection policies as smm.cpp applied to
//     raw (vertex, id) slots;
//   * p(i)=j  — binary search j in the sorted slice (dangling ⇒ back off),
//     then a single load of p(j) decides R3.
//
// Selection mirrors core/smm.cpp select() case by case — argBest with a
// strict comparator (first minimum wins), Successor's clockwise probe with
// the wrap-around disjunct, Random keyed on hash(roundKey, id(i)) — so the
// chosen neighbor, not just "some eligible neighbor", is identical. The
// KernelDifferential suite checks all policy combinations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/smm.hpp"
#include "engine/kernel.hpp"
#include "engine/topology.hpp"

namespace selfstab::core {

class SmmKernel final : public engine::FlatKernel<PointerState> {
 public:
  SmmKernel(const graph::Graph& g, const graph::IdAssignment& ids,
            Choice propose, Choice accept)
      : topo_(g, ids), propose_(propose), accept_(accept) {}

  [[nodiscard]] std::string_view name() const override { return "smm/flat"; }

  [[nodiscard]] std::optional<PointerState> evaluateView(
      const engine::LocalView<PointerState>& view) const override {
    return smmEvaluateView(view, propose_, accept_);
  }

  void sync(const std::vector<PointerState>& states) override {
    topo_.refresh();
    ptr_.resize(states.size());
    for (std::size_t v = 0; v < states.size(); ++v) ptr_[v] = states[v].ptr;
  }

  void apply(graph::Vertex v, const PointerState& s) override {
    ptr_[v] = s.ptr;
  }

  void evaluateRange(graph::Vertex begin, graph::Vertex end,
                     std::uint64_t roundKey,
                     engine::MoveList<PointerState>& out) const override {
    Scratch scratch;
    for (graph::Vertex v = begin; v < end; ++v) {
      evaluateOne(v, roundKey, scratch, out);
    }
  }

  void evaluateList(std::span<const graph::Vertex> vertices,
                    std::uint64_t roundKey,
                    engine::MoveList<PointerState>& out) const override {
    Scratch scratch;
    for (const graph::Vertex v : vertices) {
      evaluateOne(v, roundKey, scratch, out);
    }
  }

 private:
  // Candidate slots (indices into a neighbor slice), reused across the
  // vertices of one evaluate call. Function-local to the batch entry points,
  // so concurrent chunk evaluation never shares them.
  struct Scratch {
    std::vector<std::size_t> proposers;
    std::vector<std::size_t> nullNeighbors;
  };

  void evaluateOne(graph::Vertex v, std::uint64_t roundKey, Scratch& scratch,
                   engine::MoveList<PointerState>& out) const {
    const auto nbrs = topo_.neighbors(v);
    const graph::Vertex p = ptr_[v];

    if (p == graph::kNoVertex) {
      scratch.proposers.clear();
      scratch.nullNeighbors.clear();
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const graph::Vertex pk = ptr_[nbrs[k]];
        if (pk == v) scratch.proposers.push_back(k);
        if (pk == graph::kNoVertex) scratch.nullNeighbors.push_back(k);
      }
      if (!scratch.proposers.empty()) {
        // R1 [accept a proposal].
        const std::size_t j = select(accept_, v, roundKey, scratch.proposers);
        out.emplace_back(v, PointerState{nbrs[j]});
      } else if (!scratch.nullNeighbors.empty()) {
        // R2 [make a proposal].
        const std::size_t j =
            select(propose_, v, roundKey, scratch.nullNeighbors);
        out.emplace_back(v, PointerState{nbrs[j]});
      }
      return;
    }

    // Pointer set: locate its target among current neighbors.
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), p);
    if (it == nbrs.end() || *it != p) {
      out.emplace_back(v, PointerState{});  // dangling: back off
      return;
    }
    const graph::Vertex targetPtr = ptr_[p];
    if (targetPtr != graph::kNoVertex && targetPtr != v) {
      out.emplace_back(v, PointerState{});  // R3 [back off]
    }
  }

  [[nodiscard]] bool hasNeighbor(graph::Vertex v, graph::Vertex w) const {
    const auto nbrs = topo_.neighbors(v);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), w);
    return it != nbrs.end() && *it == w;
  }

  // Mirror of select() in smm.cpp over flat slices.
  [[nodiscard]] std::size_t select(
      Choice choice, graph::Vertex v, std::uint64_t roundKey,
      const std::vector<std::size_t>& candidates) const {
    const auto ids = topo_.neighborIds(v);
    const auto argBest = [&](auto betterThan) {
      std::size_t best = candidates.front();
      for (const std::size_t c : candidates) {
        if (betterThan(ids[c], ids[best])) best = c;
      }
      return best;
    };
    switch (choice) {
      case Choice::MinId:
        return argBest([](graph::Id a, graph::Id b) { return a < b; });
      case Choice::MaxId:
        return argBest([](graph::Id a, graph::Id b) { return a > b; });
      case Choice::First:
        return candidates.front();
      case Choice::Successor: {
        const auto nbrs = topo_.neighbors(v);
        for (const std::size_t c : candidates) {
          if (nbrs[c] == v + 1 ||
              (v != 0 && nbrs[c] == 0 && !hasNeighbor(v, v + 1))) {
            return c;
          }
        }
        return argBest([](graph::Id a, graph::Id b) { return a < b; });
      }
      case Choice::Random: {
        SplitMix64 sm(hashCombine(roundKey, topo_.idOf(v)));
        return candidates[sm.next() % candidates.size()];
      }
    }
    return candidates.front();
  }

  engine::CsrTopology topo_;
  Choice propose_;
  Choice accept_;
  std::vector<graph::Vertex> ptr_;  // p(i), Λ = kNoVertex
};

}  // namespace selfstab::core
