// Algorithm SMM — Synchronous Maximal Matching (paper, Figure 1) — and its
// relatives.
//
//   R1 [accept]  : p(i)=Λ ∧ ∃j∈N(i): p(j)=i            ⇒ p(i) := j
//   R2 [propose] : p(i)=Λ ∧ ∀k∈N(i): p(k)≠i
//                         ∧ ∃j∈N(i): p(j)=Λ            ⇒ p(i) := min such j
//   R3 [back-off]: p(i)=j ∧ p(j)=k, k∉{Λ,i}            ⇒ p(i) := Λ
//
// The minimum-ID selection in R2 is what makes the synchronous protocol
// stabilize (Theorem 1: at most n+1 rounds); with an arbitrary selection the
// protocol can oscillate forever (Section 3 closing remark, reproduced by
// bench/exp_counterexample). Hsu & Huang's central-daemon algorithm [15] has
// the same three rules with arbitrary selections, so it is expressed here as
// a policy configuration of the same rule evaluator.
#pragma once

#include <string>

#include "core/matching_state.hpp"
#include "engine/protocol.hpp"

namespace selfstab::core {

/// How a node picks among several eligible neighbors in R1/R2.
enum class Choice {
  MinId,      ///< smallest ID — the paper's R2 requirement
  MaxId,      ///< largest ID
  First,      ///< first in adjacency (vertex) order — an "arbitrary" choice
  Successor,  ///< prefer vertex (self+1) mod n when eligible, else MinId;
              ///< realizes the paper's "clockwise" counterexample on cycles
  Random      ///< fresh uniform pick every round (keyed on roundKey, selfId)
};

[[nodiscard]] std::string_view toString(Choice choice) noexcept;

/// The SMM rule evaluation over a view, shared verbatim by the protocol
/// object and the flat kernel (core/smm_kernel.hpp) so both paths are the
/// same code and bit-identity is by construction.
[[nodiscard]] std::optional<PointerState> smmEvaluateView(
    const engine::LocalView<PointerState>& view, Choice propose,
    Choice accept);

/// The SMM rule evaluator, parameterized by selection policies.
class SmmProtocol final : public engine::Protocol<PointerState> {
 public:
  /// `propose` governs R2 (the paper mandates MinId; anything else yields the
  /// possibly-non-stabilizing variant). `accept` governs R1, where the paper
  /// allows any choice ("i may select a node j ... among those pointing to
  /// it"); the proofs are independent of it.
  explicit SmmProtocol(Choice propose = Choice::MinId,
                       Choice accept = Choice::MinId);

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::optional<PointerState> onRound(
      const engine::LocalView<PointerState>& view) const override;

  [[nodiscard]] PointerState initialState(graph::Vertex) const override {
    return PointerState{};  // all pointers null
  }

  [[nodiscard]] Choice proposePolicy() const noexcept { return propose_; }
  [[nodiscard]] Choice acceptPolicy() const noexcept { return accept_; }

 private:
  Choice propose_;
  Choice accept_;
  std::string name_;
};

/// The paper's Algorithm SMM (Figure 1): min-ID proposals.
[[nodiscard]] inline SmmProtocol smmPaper() {
  return SmmProtocol(Choice::MinId, Choice::MinId);
}

/// The broken variant of the Section 3 remark: arbitrary-choice R2.
[[nodiscard]] inline SmmProtocol smmArbitrary(Choice propose = Choice::Successor) {
  return SmmProtocol(propose, Choice::First);
}

/// Hsu–Huang [15]: identical rules, arbitrary (adjacency-order) selections,
/// intended for execution under a central daemon.
[[nodiscard]] inline SmmProtocol hsuHuang() {
  return SmmProtocol(Choice::First, Choice::First);
}

}  // namespace selfstab::core
