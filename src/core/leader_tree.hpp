// Extension: self-stabilizing leader election + spanning tree (rootless).
//
// BfsTreeProtocol needs a configured root; in a real ad hoc deployment no
// such node exists a priori. The classic composition elects the maximum-ID
// node as leader while simultaneously building a BFS tree rooted at it:
// every node publishes (root, dist, parent) and adopts the best offer in its
// closed neighborhood, ordered by (larger root ID, then smaller distance):
//
//   candidates(i) = { (id(i), 0, Λ) } ∪
//                   { (root_j, dist_j + 1, j) : j ∈ N(i), dist_j + 1 < cap }
//   rule: state(i) != max(candidates)  ⇒  state(i) := max(candidates)
//
// The distance cap kills the classical "fake root" problem: a corrupt state
// advertising a non-existent large root ID keeps propagating only with
// strictly growing distance, so it drains out of the system within cap
// rounds, after which the true maximum ID wins everywhere. Stabilizes in
// O(cap + diameter) synchronous rounds; at the fixpoint every node agrees
// on root = max ID and (dist, parent) form the BFS tree of the leader
// (min-ID parent tie-break).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

struct LeaderState {
  graph::Id root = 0;
  std::uint32_t dist = 0;
  graph::Vertex parent = graph::kNoVertex;

  friend constexpr bool operator==(const LeaderState&,
                                   const LeaderState&) = default;

  friend constexpr std::uint64_t hashValue(const LeaderState& s) noexcept {
    return hashCombine(hashCombine(s.root, s.dist),
                       static_cast<std::uint64_t>(s.parent) + 1);
  }
};

/// Garbage state including fake root IDs that no node owns — the classical
/// hard case for leader election.
inline LeaderState randomLeaderState(graph::Vertex v, const graph::Graph& g,
                                     Rng& rng) {
  (void)v;
  LeaderState s;
  s.root = rng.next();  // almost surely a fake, very large root ID
  s.dist = static_cast<std::uint32_t>(rng.below(g.order() + 2));
  const std::uint64_t pick = rng.below(g.order() + 1);
  s.parent = pick == g.order() ? graph::kNoVertex
                               : static_cast<graph::Vertex>(pick);
  return s;
}

/// One neighbor's advertised (root, dist) offer, as needed by
/// bestLeaderCandidate. Kept separate from engine::NeighborRef so protocols
/// stacking extra fields on LeaderState (core/aggregation.hpp) can project
/// their views into it.
struct LeaderOffer {
  graph::Id id;
  graph::Vertex vertex;
  const LeaderState* state;
};

/// The target state of the leader-tree rule: the lexicographically best of
/// the node's own candidacy (selfId, 0, Λ) and every neighbor offer with
/// dist + 1 < cap, ordered by (larger root, smaller dist, smaller parent
/// ID).
inline LeaderState bestLeaderCandidate(graph::Id selfId,
                                       std::span<const LeaderOffer> offers,
                                       std::uint32_t cap) {
  LeaderState best{selfId, 0, graph::kNoVertex};
  graph::Id bestParentId = 0;
  for (const LeaderOffer& nbr : offers) {
    const std::uint64_t d = std::uint64_t{nbr.state->dist} + 1;
    if (d >= cap) continue;  // drained: too far to be real
    const LeaderState offer{nbr.state->root, static_cast<std::uint32_t>(d),
                            nbr.vertex};
    const bool better =
        offer.root > best.root ||
        (offer.root == best.root && offer.dist < best.dist) ||
        (offer.root == best.root && offer.dist == best.dist &&
         best.parent != graph::kNoVertex && nbr.id < bestParentId);
    if (better) {
      best = offer;
      bestParentId = nbr.id;
    }
  }
  return best;
}

class LeaderTreeProtocol final : public engine::Protocol<LeaderState> {
 public:
  /// `cap` bounds every achievable distance (the node count works).
  explicit LeaderTreeProtocol(std::uint32_t cap) : cap_(cap) {
    name_ = "leader-tree(cap=" + std::to_string(cap) + ")";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::optional<LeaderState> onRound(
      const engine::LocalView<LeaderState>& view) const override {
    offers_.clear();
    for (const auto& nbr : view.neighbors) {
      offers_.push_back(LeaderOffer{nbr.id, nbr.vertex, nbr.state});
    }
    const LeaderState best = bestLeaderCandidate(view.selfId, offers_, cap_);
    if (view.state() == best) return std::nullopt;
    return best;
  }

  [[nodiscard]] LeaderState initialState(graph::Vertex) const override {
    // Clean start: every node is its own candidate; the protocol repairs
    // the root field on the first round anyway, so (0,0,Λ) is fine too —
    // but self-candidacy converges faster and is the natural deployment.
    return LeaderState{0, 0, graph::kNoVertex};
  }

  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }

 private:
  std::uint32_t cap_;
  std::string name_;
  // Scratch buffer for projecting views into offers; onRound is logically
  // const and protocols are driven single-threaded.
  mutable std::vector<LeaderOffer> offers_;
};

}  // namespace selfstab::core
