// Extension: synchronous self-stabilizing graph coloring.
//
// The paper's reference [7] (Hedetniemi, Jacobs, Srimani — "Fault tolerant
// distributed coloring algorithms that stabilize in linear time") belongs to
// the same research program, and the introduction lists minimal coloring
// among the global predicates these techniques maintain. We implement the
// one-rule ID-based variant in that style:
//
//   R: c(i) ≠ mex{ c(j) : j ∈ N(i), id(j) > id(i) }  ⇒  c(i) := that mex
//
// where mex(S) is the minimum non-negative integer not in S. At a fixpoint
// the coloring is proper (two adjacent nodes cannot both equal the mex over
// their bigger neighbors) and uses at most 1 + max "up-degree" colors, hence
// at most Δ+1. It stabilizes in at most n synchronous rounds: nodes become
// fixed in decreasing ID order, one per round in the worst case.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

struct ColorState {
  std::uint32_t color = 0;

  friend constexpr bool operator==(const ColorState&,
                                   const ColorState&) = default;

  friend constexpr std::uint64_t hashValue(const ColorState& s) noexcept {
    return mix64(s.color + 0x51afd7edULL);
  }
};

/// Random color in [0, maxDegree]: the range the algorithm itself stays in.
/// Corruption may of course set anything; the rule repairs any value.
inline ColorState randomColorState(graph::Vertex v, const graph::Graph& g,
                                   Rng& rng) {
  (void)v;
  return ColorState{
      static_cast<std::uint32_t>(rng.below(g.maxDegree() + 1))};
}

class ColoringProtocol final : public engine::Protocol<ColorState> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "grundy-coloring";
  }

  [[nodiscard]] std::optional<ColorState> onRound(
      const engine::LocalView<ColorState>& view) const override {
    // Compute mex over bigger neighbors' colors with a small bitset-on-stack
    // approach: only values in [0, deg] matter.
    const std::size_t cap = view.neighbors.size() + 1;
    std::uint64_t smallMask = 0;  // covers mex candidates < 64
    std::vector<bool> largeSeen;  // lazily allocated beyond 64
    for (const auto& nbr : view.neighbors) {
      if (nbr.id <= view.selfId) continue;
      const std::uint32_t c = nbr.state->color;
      if (c < 64) {
        smallMask |= (std::uint64_t{1} << c);
      } else if (c < cap) {
        if (largeSeen.empty()) largeSeen.assign(cap, false);
        largeSeen[c] = true;
      }
    }
    std::uint32_t mex = 0;
    while (mex < cap) {
      const bool taken = mex < 64
                             ? ((smallMask >> mex) & 1u) != 0
                             : (!largeSeen.empty() && largeSeen[mex]);
      if (!taken) break;
      ++mex;
    }
    if (view.state().color == mex) return std::nullopt;
    return ColorState{mex};
  }

  [[nodiscard]] ColorState initialState(graph::Vertex) const override {
    return ColorState{0};
  }
};

}  // namespace selfstab::core
