// Extension: self-stabilizing minimal dominating set.
//
// The paper's introduction motivates maintaining "a minimal dominating set
// ... to optimize the number and the locations of the resource centers in a
// network" (reference [5]). The classical central-daemon algorithm needs
// distance-2 information (does a neighbor have another dominator?), which a
// beacon can only carry as a *published* variable. We therefore keep, next
// to the membership bit x(i), a published dominator count c(i) = |N[i] ∩ S|
// maintained by a bookkeeping rule, and express the enter/leave guards
// against fresh local counts plus neighbors' published counts:
//
//   RC [refresh]: c(i) ≠ |N[i] ∩ S|                        ⇒ c(i) := |N[i] ∩ S|
//   R1 [enter]  : x(i)=0 ∧ |N[i] ∩ S| = 0                  ⇒ x(i) := 1 (and c)
//   R2 [leave]  : x(i)=1 ∧ |N[i] ∩ S| ≥ 2 ∧ c(i) fresh
//                 ∧ ∀j∈N(i): x(j)=0 ⇒ c(j) ≥ 2             ⇒ x(i) := 0 (and c)
//
// (|N[i] ∩ S| is computed from the neighbors' x bits in the current view;
// "c(i) fresh" means the node's own published count matches it.) At any
// fixpoint all counts are correct, R1-disabled means every node is
// dominated, and R2-disabled means every member has a private neighbor or is
// its own private neighbor — i.e. S is a *minimal* dominating set.
//
// Because R2 trusts neighbors' published counts, which lag one move behind,
// this protocol is intended to run under a central daemon or under the
// Synchronized<> local-mutex wrapper (core/local_mutex.hpp), mirroring how
// the paper says central-daemon algorithms are deployed in the beacon model.
// Plain synchronous execution may oscillate; tests document both behaviors.
#pragma once

#include <cstdint>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

struct DomState {
  bool in = false;            ///< x(i): membership in S
  std::uint32_t published = 0;  ///< c(i): advertised |N[i] ∩ S|

  friend constexpr bool operator==(const DomState&, const DomState&) = default;

  friend constexpr std::uint64_t hashValue(const DomState& s) noexcept {
    return mix64((std::uint64_t{s.published} << 1) | (s.in ? 1 : 0));
  }
};

inline DomState randomDomState(graph::Vertex v, const graph::Graph& g,
                               Rng& rng) {
  DomState s;
  s.in = rng.chance(0.5);
  s.published = static_cast<std::uint32_t>(rng.below(g.degree(v) + 2));
  return s;
}

class DominatingSetProtocol final : public engine::Protocol<DomState> {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "minimal-dominating-set";
  }

  [[nodiscard]] std::optional<DomState> onRound(
      const engine::LocalView<DomState>& view) const override {
    const DomState& self = view.state();

    // Fresh dominator count of the closed neighborhood.
    std::uint32_t fresh = self.in ? 1u : 0u;
    for (const auto& nbr : view.neighbors) {
      if (nbr.state->in) ++fresh;
    }

    // R1 [enter]: undominated nodes join unconditionally.
    if (!self.in && fresh == 0) return DomState{true, 1};

    // RC [refresh] has priority over leaving: publish a correct count first
    // so neighbors never base a leave on a count staler than one move.
    if (self.published != fresh) return DomState{self.in, fresh};

    // R2 [leave]: redundant member with no private neighbor.
    if (self.in && fresh >= 2) {
      bool hasPrivateNeighbor = false;
      for (const auto& nbr : view.neighbors) {
        if (!nbr.state->in && nbr.state->published < 2) {
          hasPrivateNeighbor = true;
          break;
        }
      }
      if (!hasPrivateNeighbor) return DomState{false, fresh - 1};
    }
    return std::nullopt;
  }

  [[nodiscard]] DomState initialState(graph::Vertex) const override {
    return DomState{false, 0};
  }
};

}  // namespace selfstab::core
