// Algorithm SIS — Synchronous Maximal Independent Set (paper, Figure 4;
// called "SMI" there).
//
//   R1 [enter]: x(i)=0 ∧ ¬∃j∈N(i): bigger(j,i) ∧ x(j)=1   ⇒ x(i) := 1
//   R2 [leave]: x(i)=1 ∧  ∃j∈N(i): bigger(j,i) ∧ x(j)=1   ⇒ x(i) := 0
//
// Theorem 2: stabilizes in at most n rounds; at a fixpoint {i : x(i)=1} is a
// maximal independent set. "bigger" is any fixed total order on the unique
// IDs; we default to numerically-larger-ID-is-bigger and keep the direction
// configurable, since the proof only needs *some* total order.
#pragma once

#include <cstdint>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

/// Membership bit of algorithm SIS.
struct BitState {
  bool in = false;

  friend constexpr bool operator==(const BitState&, const BitState&) = default;

  friend constexpr std::uint64_t hashValue(const BitState& s) noexcept {
    return s.in ? 0x9e3779b97f4a7c15ULL : 0x2545f4914f6cdd1dULL;
  }
};

inline BitState randomBitState(graph::Vertex, const graph::Graph&, Rng& rng) {
  return BitState{rng.chance(0.5)};
}

/// Which end of the ID order dominates.
enum class Seniority {
  LargerIdWins,   ///< j is bigger than i iff id(j) > id(i)  (default)
  SmallerIdWins,  ///< j is bigger than i iff id(j) < id(i)
};

[[nodiscard]] constexpr bool sisBigger(Seniority seniority, graph::Id a,
                                       graph::Id b) noexcept {
  return seniority == Seniority::LargerIdWins ? a > b : a < b;
}

/// The SIS rule evaluation over a view, shared verbatim by the protocol
/// object and the flat kernel (core/sis_kernel.hpp) so both paths are the
/// same code and bit-identity is by construction.
[[nodiscard]] inline std::optional<BitState> sisEvaluateView(
    const engine::LocalView<BitState>& view, Seniority seniority) {
  bool biggerNeighborIn = false;
  for (const auto& nbr : view.neighbors) {
    if (nbr.state->in && sisBigger(seniority, nbr.id, view.selfId)) {
      biggerNeighborIn = true;
      break;
    }
  }
  if (!view.state().in && !biggerNeighborIn) return BitState{true};   // R1
  if (view.state().in && biggerNeighborIn) return BitState{false};    // R2
  return std::nullopt;
}

class SisProtocol final : public engine::Protocol<BitState> {
 public:
  explicit SisProtocol(Seniority seniority = Seniority::LargerIdWins)
      : seniority_(seniority) {}

  [[nodiscard]] std::string_view name() const override { return "sis"; }

  [[nodiscard]] std::optional<BitState> onRound(
      const engine::LocalView<BitState>& view) const override {
    return sisEvaluateView(view, seniority_);
  }

  [[nodiscard]] BitState initialState(graph::Vertex) const override {
    return BitState{false};
  }

  [[nodiscard]] Seniority seniority() const noexcept { return seniority_; }

 private:
  Seniority seniority_;
};

}  // namespace selfstab::core
