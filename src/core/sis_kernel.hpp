// Flat kernel for algorithm SIS (engine/kernel.hpp fast path).
//
// State mirror: the membership bits x(i) packed 64-per-word. The only thing
// a node's rules read from a neighbor j is "x(j)=1 ∧ bigger(j,i)", and
// bigger(j,i) depends on IDs alone — fixed between topology changes. So we
// precompute, per node, its *bigger* neighbors as (word index, mask) pairs
// grouped by word: the "∃ bigger neighbor with x=1" test collapses to a few
// `words[w] & mask` probes, 64 potential neighbors per AND. On a geometric
// or power-law graph most bigger-neighbor sets hit only one or two distinct
// words, so R1/R2 evaluation is a handful of loads regardless of degree.
//
// Existence is all the rules need: the generic loop short-circuits on the
// first bigger in-neighbor, and any word hit here witnesses the same
// existential, so decisions are bit-identical by construction (both paths
// also share sisEvaluateView for the per-view form).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/sis.hpp"
#include "engine/kernel.hpp"
#include "engine/topology.hpp"

namespace selfstab::core {

class SisKernel final : public engine::FlatKernel<BitState> {
 public:
  SisKernel(const graph::Graph& g, const graph::IdAssignment& ids,
            Seniority seniority)
      : topo_(g, ids), seniority_(seniority) {}

  [[nodiscard]] std::string_view name() const override { return "sis/flat"; }

  [[nodiscard]] std::optional<BitState> evaluateView(
      const engine::LocalView<BitState>& view) const override {
    return sisEvaluateView(view, seniority_);
  }

  void sync(const std::vector<BitState>& states) override {
    if (topo_.refresh() || !built_) rebuildBiggerSlices();
    const std::size_t n = topo_.order();
    const std::size_t full = n / 64;
    words_.resize((n + 63) / 64);
    // Branchless packing, one fixed-trip inner loop per word: a converged
    // MIS is an unpredictable bit pattern, so the per-bit branch mispredicts
    // enough to dominate the snapshot phase at scale.
    std::size_t v = 0;
    for (std::size_t w = 0; w < full; ++w) {
      std::uint64_t word = 0;
      for (int b = 0; b < 64; ++b, ++v) {
        word |= static_cast<std::uint64_t>(states[v].in) << b;
      }
      words_[w] = word;
    }
    if (v < n) {
      std::uint64_t word = 0;
      for (int b = 0; v < n; ++b, ++v) {
        word |= static_cast<std::uint64_t>(states[v].in) << b;
      }
      words_[full] = word;
    }
  }

  void apply(graph::Vertex v, const BitState& s) override {
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    if (s.in) {
      words_[v >> 6] |= bit;
    } else {
      words_[v >> 6] &= ~bit;
    }
  }

  void evaluateRange(graph::Vertex begin, graph::Vertex end,
                     std::uint64_t /*roundKey*/,
                     engine::MoveList<BitState>& out) const override {
    graph::Vertex v = begin;
    while (v < end && (v & 63) != 0) evaluateOne(v++, out);
    // Word-at-a-time middle: a node moves iff x == "∃ bigger neighbor in",
    // so folding 64 verdicts into one move-word turns the per-node emission
    // checks into a single (on quiet rounds never-taken) branch per word.
    // Decisions and emission order are unchanged, so trajectories stay
    // bit-identical with evaluateOne — including across the parallel
    // runner's unaligned partition boundaries handled above/below.
    for (; v + 64 <= end; v += 64) {
      const std::uint64_t selfWord = words_[v >> 6];
      std::uint64_t biggerWord = 0;
      for (int b = 0; b < 64; ++b) {
        const graph::Vertex u = v + static_cast<graph::Vertex>(b);
        std::uint64_t hit = 0;
        const std::size_t gEnd = groupOffsets_[u + 1];
        for (std::size_t i = groupOffsets_[u]; i < gEnd; ++i) {
          hit |= words_[groupWord_[i]] & groupMask_[i];
        }
        biggerWord |= static_cast<std::uint64_t>(hit != 0) << b;
      }
      std::uint64_t moveWord = ~(selfWord ^ biggerWord);
      while (moveWord != 0) {
        const int b = std::countr_zero(moveWord);
        moveWord &= moveWord - 1;
        out.emplace_back(v + static_cast<graph::Vertex>(b),
                         BitState{((selfWord >> b) & 1U) == 0});
      }
    }
    for (; v < end; ++v) evaluateOne(v, out);
  }

  void evaluateList(std::span<const graph::Vertex> vertices,
                    std::uint64_t /*roundKey*/,
                    engine::MoveList<BitState>& out) const override {
    for (const graph::Vertex v : vertices) evaluateOne(v, out);
  }

 private:
  void evaluateOne(graph::Vertex v, engine::MoveList<BitState>& out) const {
    const bool in = (words_[v >> 6] >> (v & 63)) & 1U;
    std::uint64_t hit = 0;
    const std::size_t end = groupOffsets_[v + 1];
    for (std::size_t i = groupOffsets_[v]; i < end; ++i) {
      hit |= words_[groupWord_[i]] & groupMask_[i];
    }
    const bool biggerNeighborIn = hit != 0;
    if (!in && !biggerNeighborIn) {
      out.emplace_back(v, BitState{true});   // R1 [enter]
    } else if (in && biggerNeighborIn) {
      out.emplace_back(v, BitState{false});  // R2 [leave]
    }
  }

  // Per node, the bigger neighbors folded into (word, mask) groups. Vertex
  // order is ascending within a neighbor slice, so word indices are
  // nondecreasing and one pass groups them.
  void rebuildBiggerSlices() {
    const std::size_t n = topo_.order();
    groupOffsets_.assign(n + 1, 0);
    groupWord_.clear();
    groupMask_.clear();
    for (graph::Vertex v = 0; v < n; ++v) {
      const auto nbrs = topo_.neighbors(v);
      const auto nbrIds = topo_.neighborIds(v);
      const graph::Id selfId = topo_.idOf(v);
      std::uint32_t curWord = kNoWord;
      std::uint64_t curMask = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (!sisBigger(seniority_, nbrIds[i], selfId)) continue;
        const auto w = static_cast<std::uint32_t>(nbrs[i] >> 6);
        if (w != curWord) {
          if (curWord != kNoWord) {
            groupWord_.push_back(curWord);
            groupMask_.push_back(curMask);
          }
          curWord = w;
          curMask = 0;
        }
        curMask |= std::uint64_t{1} << (nbrs[i] & 63);
      }
      if (curWord != kNoWord) {
        groupWord_.push_back(curWord);
        groupMask_.push_back(curMask);
      }
      groupOffsets_[v + 1] = static_cast<std::uint32_t>(groupWord_.size());
    }
    built_ = true;
  }

  // Word indices top out at (2^32-1)>>6, so the all-ones value is free as a
  // "no open group" sentinel.
  static constexpr std::uint32_t kNoWord = ~std::uint32_t{0};

  engine::CsrTopology topo_;
  Seniority seniority_;
  std::vector<std::uint64_t> words_;         // x(i) bits, 64 nodes per word
  // CSR over the (word, mask) groups. 32-bit offsets halve the per-node
  // index stream; one group per 12 bytes of mask+word storage means 2^32
  // groups would already need >48 GiB, so narrowing cannot truncate first.
  std::vector<std::uint32_t> groupOffsets_;
  std::vector<std::uint32_t> groupWord_;
  std::vector<std::uint64_t> groupMask_;
  bool built_ = false;
};

}  // namespace selfstab::core
