// Extension: self-stabilizing BFS (shortest-path) spanning tree.
//
// The paper's opening motivation: "a minimal spanning tree must be
// maintained to minimize latency and bandwidth requirements of
// multicast/broadcast messages" — and its references [13, 14] are exactly
// self-stabilizing multicast/shortest-path-tree protocols for mobile
// networks by the same group. We implement the classic beacon-model version:
// each node publishes (dist, parent) and repairs them from its neighbors'
// beacons.
//
//   root  : (dist, parent) != (0, Λ)                     ⇒ (0, Λ)
//   other : (dist, parent) != (d, p) where
//           d = min(cap, 1 + min_{j∈N(i)} dist(j)),
//           p = the min-ID neighbor attaining the minimum (Λ if d == cap)
//                                                        ⇒ (d, p)
//
// `cap` is an upper bound on any achievable distance (the paper's model
// fixes the node set, so n is a valid bound); corrupt underestimates climb
// by at least one per round until they hit truth or the cap, giving O(cap)
// synchronous stabilization from arbitrary states and O(diameter) from
// clean ones. At the fixpoint dist equals the true BFS distance from the
// root and the parent pointers form a shortest-path tree (min-ID tie-break
// makes it unique).
#pragma once

#include <cstdint>
#include <string>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::core {

struct TreeState {
  std::uint32_t dist = 0;
  graph::Vertex parent = graph::kNoVertex;

  friend constexpr bool operator==(const TreeState&,
                                   const TreeState&) = default;

  friend constexpr std::uint64_t hashValue(const TreeState& s) noexcept {
    return hashCombine(s.dist, static_cast<std::uint64_t>(s.parent) + 1);
  }
};

/// Arbitrary (possibly nonsensical) tree state, for fault injection.
inline TreeState randomTreeState(graph::Vertex v, const graph::Graph& g,
                                 Rng& rng) {
  (void)v;
  TreeState s;
  s.dist = static_cast<std::uint32_t>(rng.below(g.order() + 2));
  const std::uint64_t pick = rng.below(g.order() + 1);
  s.parent = pick == g.order() ? graph::kNoVertex
                               : static_cast<graph::Vertex>(pick);
  return s;
}

class BfsTreeProtocol final : public engine::Protocol<TreeState> {
 public:
  /// `rootId` designates the root by its unique ID (any node will do; ad hoc
  /// deployments typically use a gateway). `cap` must be an upper bound on
  /// every achievable distance, e.g. the number of nodes; it also serves as
  /// the "unreachable" marker.
  BfsTreeProtocol(graph::Id rootId, std::uint32_t cap)
      : rootId_(rootId), cap_(cap) {
    name_ = "bfs-tree(root=" + std::to_string(rootId) +
            ",cap=" + std::to_string(cap) + ")";
  }

  [[nodiscard]] std::string_view name() const override { return name_; }

  [[nodiscard]] std::optional<TreeState> onRound(
      const engine::LocalView<TreeState>& view) const override {
    const TreeState target = targetState(view);
    if (view.state() == target) return std::nullopt;
    return target;
  }

  [[nodiscard]] TreeState initialState(graph::Vertex) const override {
    return TreeState{cap_, graph::kNoVertex};
  }

  [[nodiscard]] graph::Id rootId() const noexcept { return rootId_; }
  [[nodiscard]] std::uint32_t cap() const noexcept { return cap_; }

 private:
  [[nodiscard]] TreeState targetState(
      const engine::LocalView<TreeState>& view) const {
    if (view.selfId == rootId_) return TreeState{0, graph::kNoVertex};
    // 64-bit accumulation so corrupt huge dists cannot overflow.
    std::uint64_t best = cap_;
    graph::Vertex parent = graph::kNoVertex;
    graph::Id parentId = 0;
    for (const auto& nbr : view.neighbors) {
      const std::uint64_t d = std::uint64_t{nbr.state->dist} + 1;
      if (d < best || (d == best && parent != graph::kNoVertex &&
                       nbr.id < parentId)) {
        best = d;
        parent = nbr.vertex;
        parentId = nbr.id;
      }
    }
    if (best >= cap_) return TreeState{cap_, graph::kNoVertex};
    return TreeState{static_cast<std::uint32_t>(best), parent};
  }

  graph::Id rootId_;
  std::uint32_t cap_;
  std::string name_;
};

}  // namespace selfstab::core
