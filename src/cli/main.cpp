// `selfstab` — run any protocol of this library on any topology from the
// shell. See --help for the grammar.
#include <iostream>
#include <vector>

#include "chaos/plan.hpp"
#include "cli/options.hpp"
#include "cli/run.hpp"

int main(int argc, char** argv) {
  using namespace selfstab::cli;
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    const Options options = parseOptions(args);
    if (options.help) {
      std::cout << usage();
      return 0;
    }
    const Report report = execute(options, std::cout);
    if (options.json) {
      printReportJson(report, std::cout);
    } else {
      printReport(report, std::cout);
    }
    // Non-stabilization is only "success" for the counterexample protocol,
    // where a certified livelock is the expected outcome.
    if (options.protocol == ProtocolKind::SmmArbitrary &&
        report.livelockCertified) {
      return 0;
    }
    return report.predicateOk ? 0 : 2;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const selfstab::chaos::PlanError& e) {
    std::cerr << "error: --chaos: " << e.what() << '\n';
    return 1;
  }
}
