// Command-line interface of the `selfstab` tool: option grammar and parser.
//
// The parser is a pure function from argv to an Options struct (or a
// CliError), so it is unit-testable without spawning processes.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/kernel.hpp"
#include "engine/schedule.hpp"

namespace selfstab::cli {

class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class ProtocolKind {
  Smm,           ///< the paper's Algorithm SMM (min-ID proposals)
  SmmArbitrary,  ///< broken variant: successor-choice R2 (counterexample)
  HsuHuangSync,  ///< Hsu-Huang via the Synchronized (local mutex) wrapper
  Sis,           ///< the paper's Algorithm SIS
  Coloring,      ///< Grundy coloring extension
  DominatingSet, ///< minimal dominating set extension (Synchronized)
  BfsTree,       ///< BFS spanning tree extension
  LeaderTree,    ///< rootless leader election + spanning tree extension
};

enum class IdOrderKind { Identity, Reversed, Random };
enum class StartKind { Clean, Random };

/// How to obtain the topology: a generator spec or a file.
struct GraphSpec {
  enum class Kind {
    Path,
    Cycle,
    Star,
    Complete,
    Grid,
    Tree,
    Gnp,
    Udg,
    File
  };
  Kind kind = Kind::Gnp;
  std::size_t n = 32;       ///< primary size (rows for Grid)
  std::size_t cols = 0;     ///< Grid only
  double param = 0.1;       ///< p for Gnp, radius for Udg
  std::string path;         ///< File only (edge-list format)
};

struct Options {
  ProtocolKind protocol = ProtocolKind::Smm;
  GraphSpec graph;
  IdOrderKind idOrder = IdOrderKind::Identity;
  StartKind start = StartKind::Clean;
  std::uint64_t seed = 1;
  std::size_t maxRounds = 0;  ///< 0 = auto (protocol-appropriate bound)
  engine::Schedule schedule = engine::Schedule::Dense;  ///< --schedule
  engine::KernelMode kernel = engine::KernelMode::Auto;  ///< --kernel
  bool trace = false;         ///< per-round progress lines
  bool json = false;          ///< print the report as one JSON object
  std::string dotPath;        ///< write final graph+solution as DOT
  std::string csvPath;        ///< write a per-round CSV trace
  std::string saveGraphPath;  ///< write the topology as an edge list
  std::string metricsPath;    ///< dump telemetry (JSON + Prometheus); "-" = stdout
  std::string eventsPath;     ///< JSONL event log; "-" = stdout
  std::string chaosSpec;      ///< fault plan: JSON path or "template:seed"
  bool help = false;
};

/// Parses the argument vector (without argv[0]). Throws CliError on bad
/// input.
[[nodiscard]] Options parseOptions(const std::vector<std::string>& args);

/// Parses a graph spec string, e.g. "path:64", "grid:8x8", "gnp:64:0.1",
/// "udg:50:0.3", "file:topo.txt".
[[nodiscard]] GraphSpec parseGraphSpec(const std::string& spec);

[[nodiscard]] std::string usage();

[[nodiscard]] std::string_view toString(ProtocolKind kind) noexcept;

}  // namespace selfstab::cli
