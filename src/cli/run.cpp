#include "cli/run.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "analysis/trace.hpp"
#include "analysis/verifiers.hpp"
#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "chaos/safety.hpp"
#include "cli/metrics_io.hpp"
#include "core/bfs_tree.hpp"
#include "core/coloring.hpp"
#include "core/dominating_set.hpp"
#include "core/kernels.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "telemetry/json.hpp"

namespace selfstab::cli {

namespace {

using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

/// Optional telemetry sinks threaded from execute() into every driver.
struct Sinks {
  telemetry::Registry* registry = nullptr;
  telemetry::EventLog* events = nullptr;
};

/// Writes the final graph with per-vertex / per-edge annotations.
void writeAnnotatedDot(std::ostream& out, const Graph& g,
                       const std::vector<std::string>& vertexAttrs,
                       const std::vector<std::pair<graph::Edge, std::string>>&
                           edgeAttrs) {
  out << "graph selfstab {\n  node [shape=circle];\n";
  for (Vertex v = 0; v < g.order(); ++v) {
    out << "  " << v;
    if (!vertexAttrs[v].empty()) out << " [" << vertexAttrs[v] << "]";
    out << ";\n";
  }
  for (const auto& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v;
    for (const auto& [edge, attr] : edgeAttrs) {
      if (edge == e) {
        out << " [" << attr << "]";
        break;
      }
    }
    out << ";\n";
  }
  out << "}\n";
}

void maybeWriteDot(const Options& options, const Graph& g,
                   const std::vector<std::string>& vertexAttrs,
                   const std::vector<std::pair<graph::Edge, std::string>>&
                       edgeAttrs) {
  if (options.dotPath.empty()) return;
  std::ofstream file(options.dotPath);
  if (!file) throw CliError("cannot write DOT file '" + options.dotPath + "'");
  writeAnnotatedDot(file, g, vertexAttrs, edgeAttrs);
}

/// Installs the compiled SoA kernel on the runner per --kernel and records
/// the path actually taken in the report. Auto silently falls back to the
/// generic LocalView path for protocols without a kernel; an explicit
/// `--kernel flat` there is a usage error. The graph reference must be the
/// one the runner itself iterates (the mutable chaos copy under --chaos), so
/// the kernel's topology mirror tracks the same edge masking.
template <typename State>
void installKernel(engine::SyncRunner<State>& runner,
                   const engine::Protocol<State>& protocol, const Graph& g,
                   const IdAssignment& ids, const Options& options,
                   Report& report) {
  report.schedule = std::string(engine::toString(options.schedule));
  report.kernel = std::string(engine::toString(engine::Kernel::Generic));
  if (options.kernel == engine::KernelMode::Generic) return;
  auto kernel = core::makeFlatKernel<State>(protocol, g, ids);
  if (kernel == nullptr) {
    if (options.kernel == engine::KernelMode::Flat) {
      throw CliError("--kernel flat: protocol '" +
                     std::string(protocol.name()) +
                     "' has no flat kernel (try --kernel auto)");
    }
    return;
  }
  runner.setKernel(std::move(kernel));
  report.kernel = std::string(engine::toString(engine::Kernel::Flat));
}

/// Shared driver: runs `protocol` from the configured start, tracing if
/// requested; fills the run-related Report fields. `metric` maps a
/// configuration to the solution size recorded in the CSV trace (matched
/// pairs, set members, colors, tree depth, ...).
template <typename State, typename Sampler, typename Metric>
std::vector<State> drive(const Options& options, const Sinks& sinks,
                         const engine::Protocol<State>& protocol,
                         const Graph& g, const IdAssignment& ids,
                         std::size_t autoBudget, Sampler sampler,
                         Metric metric, std::ostream& out, Report& report,
                         const chaos::SafetyCheck<State>& safety = {}) {
  if (!options.chaosSpec.empty()) {
    // Fault campaign: the runner owns a mutable copy of the topology (crash
    // and partition events mask edges in place); the caller's graph stays
    // the base topology its verifiers expect. --max-rounds, if set, caps
    // each fault's recovery window instead of the whole run.
    const chaos::FaultPlan plan =
        chaos::parseChaosSpec(options.chaosSpec, g.order());
    Graph effective = g;
    engine::SyncRunner<State> runner(protocol, effective, ids, options.seed,
                                     options.schedule);
    runner.attachTelemetry(sinks.registry, sinks.events);
    installKernel(runner, protocol, effective, ids, options, report);
    std::vector<State> states;
    if (options.start == StartKind::Clean) {
      states = runner.initialStates();
    } else {
      graph::Rng rng(hashCombine(options.seed, 0x5747u));
      states = engine::randomConfiguration<State>(g, rng, sampler);
    }
    chaos::RecoveryMonitor monitor;
    monitor.attachTelemetry(sinks.registry, sinks.events);
    const chaos::CampaignResult result = chaos::runEngineCampaign(
        runner, protocol, effective, ids, states, plan,
        hashCombine(options.seed, 0xC4A05ULL), options.maxRounds, sampler,
        &monitor, safety);
    report.rounds = result.roundsExecuted;
    report.moves = result.totalMoves;
    report.stabilized = result.finalFixpoint;
    report.chaosActive = true;
    report.chaosFaults = monitor.records().size();
    report.chaosRecoveredAll = result.recoveredAll;
    report.chaosMaxRecoveryRounds = monitor.maxRecoveryRounds();
    report.chaosMaxContainment = monitor.maxContainmentRadius();
    report.chaosSafetyViolations = result.safetyViolations;
    if (options.trace) {
      for (const auto& r : monitor.records()) {
        out << "fault @" << r.at << " " << r.kind << ": "
            << (r.recovered ? "recovered" : "NOT recovered") << " in "
            << r.recoveryRounds << " round(s), containment "
            << r.containmentRadius << '\n';
      }
    }
    return states;
  }

  engine::SyncRunner<State> runner(protocol, g, ids, options.seed,
                                   options.schedule);
  runner.attachTelemetry(sinks.registry, sinks.events);
  installKernel(runner, protocol, g, ids, options, report);
  std::vector<State> states;
  if (options.start == StartKind::Clean) {
    states = runner.initialStates();
  } else {
    graph::Rng rng(hashCombine(options.seed, 0x5747u));
    states = engine::randomConfiguration<State>(g, rng, sampler);
  }
  const std::size_t budget =
      options.maxRounds > 0 ? options.maxRounds : autoBudget;

  analysis::RoundTrace trace({"round", "moves", "size"});
  const bool wantRows = options.trace || !options.csvPath.empty();

  engine::RunResult result;
  if (wantRows) {
    trace.addRow({0.0, 0.0, metric(states)});
    result = runner.run(
        states, budget,
        [&](std::size_t round, const std::vector<State>&,
            const std::vector<State>& after, std::size_t moves) {
          if (options.trace) {
            out << "round " << round << ": " << moves << " move(s)\n";
          }
          trace.addRow({static_cast<double>(round + 1),
                        static_cast<double>(moves), metric(after)});
        });
  } else {
    result = runner.run(states, budget);
  }
  if (!options.csvPath.empty()) {
    std::ofstream csv(options.csvPath);
    if (!csv) {
      throw CliError("cannot write CSV file '" + options.csvPath + "'");
    }
    trace.writeCsv(csv);
  }
  report.rounds = result.rounds;
  report.moves = result.totalMoves;
  report.stabilized = result.stabilized;
  return states;
}

/// Metric: matched pairs in the configuration.
inline auto matchingMetric(const Graph& g) {
  return [&g](const std::vector<core::PointerState>& states) {
    return static_cast<double>(analysis::matchedEdges(g, states).size());
  };
}

/// Metric: set membership count (works for any state with an `in` bit).
template <typename State>
auto membershipMetric() {
  return [](const std::vector<State>& states) {
    std::size_t count = 0;
    for (const auto& s : states) count += s.in ? 1 : 0;
    return static_cast<double>(count);
  };
}

Report runMatching(const Options& options, const Sinks& sinks, const Graph& g,
                   const IdAssignment& ids, std::ostream& out) {
  Report report;
  std::vector<core::PointerState> states;

  const std::size_t budget = std::max<std::size_t>(g.order() + 2, 16);
  if (options.protocol == ProtocolKind::Smm) {
    const core::SmmProtocol smm = core::smmPaper();
    report.protocol = std::string(smm.name());
    states = drive(options, sinks, smm, g, ids, budget, core::randomPointerState,
                   matchingMetric(g), out, report, chaos::smmSafetyCheck());
  } else if (options.protocol == ProtocolKind::SmmArbitrary) {
    const core::SmmProtocol broken =
        core::smmArbitrary(core::Choice::Successor);
    report.protocol = std::string(broken.name());
    states = drive(options, sinks, broken, g, ids, 4 * g.order() + 64,
                   core::randomPointerState, matchingMetric(g), out, report);
    if (!report.stabilized) {
      // Deterministic protocol: certify the livelock by finding the cycle.
      engine::SyncRunner<core::PointerState> probe(broken, g, ids);
      auto start = options.start == StartKind::Clean
                       ? probe.initialStates()
                       : states;  // wherever we ended up still cycles
      const auto trajectory = engine::traceTrajectory(
          broken, g, ids, std::move(start), 4 * g.order() + 64);
      report.livelockCertified = trajectory.cycled;
    }
  } else {  // HsuHuangSync
    const core::Synchronized<core::SmmProtocol> wrapped(core::Choice::First,
                                                        core::Choice::First);
    report.protocol = std::string(wrapped.name());
    states = drive(options, sinks, wrapped, g, ids, 64 * g.order() + 256,
                   core::randomPointerState, matchingMetric(g), out, report);
  }

  const auto pairs = analysis::matchedEdges(g, states);
  report.predicateOk =
      report.stabilized && analysis::checkMatchingFixpoint(g, states).ok();
  std::ostringstream summary;
  summary << "matching: " << pairs.size() << " pair(s), "
          << (2 * pairs.size()) << "/" << g.order() << " nodes matched";
  report.summary = summary.str();

  std::vector<std::string> vattrs(g.order());
  std::vector<std::pair<graph::Edge, std::string>> eattrs;
  for (const auto& e : pairs) {
    vattrs[e.u] = vattrs[e.v] = "style=filled,fillcolor=lightblue";
    eattrs.emplace_back(e, "penwidth=3,color=blue");
  }
  maybeWriteDot(options, g, vattrs, eattrs);
  return report;
}

Report runSis(const Options& options, const Sinks& sinks, const Graph& g,
              const IdAssignment& ids, std::ostream& out) {
  Report report;
  const core::SisProtocol sis;
  report.protocol = std::string(sis.name());
  auto states = drive(options, sinks, sis, g, ids, g.order() + 1,
                      core::randomBitState, membershipMetric<core::BitState>(),
                      out, report, chaos::sisSafetyCheck());
  const auto members = analysis::membersOf(states);
  report.predicateOk =
      report.stabilized && analysis::isMaximalIndependentSet(g, members);
  std::ostringstream summary;
  summary << "independent set: " << members.size() << " member(s)";
  report.summary = summary.str();

  std::vector<std::string> vattrs(g.order());
  for (const Vertex v : members) {
    vattrs[v] = "style=filled,fillcolor=gold";
  }
  maybeWriteDot(options, g, vattrs, {});
  return report;
}

Report runColoring(const Options& options, const Sinks& sinks, const Graph& g,
                   const IdAssignment& ids, std::ostream& out) {
  Report report;
  const core::ColoringProtocol coloring;
  report.protocol = std::string(coloring.name());
  auto states = drive(
      options, sinks, coloring, g, ids, g.order() + 1, core::randomColorState,
      [](const std::vector<core::ColorState>& st) {
        return static_cast<double>(analysis::colorCount(st));
      },
      out, report);
  report.predicateOk =
      report.stabilized && analysis::isProperColoring(g, states);
  std::ostringstream summary;
  summary << "proper coloring with " << analysis::colorCount(states)
          << " color(s) (Delta+1 = " << g.maxDegree() + 1 << ")";
  report.summary = summary.str();

  static const char* kPalette[] = {"lightblue",  "gold",   "palegreen",
                                   "lightcoral", "plum",   "khaki",
                                   "lightgray",  "orange", "cyan"};
  std::vector<std::string> vattrs(g.order());
  for (Vertex v = 0; v < g.order(); ++v) {
    vattrs[v] = std::string("style=filled,fillcolor=") +
                kPalette[states[v].color % 9] + ",label=\"" +
                std::to_string(v) + ":" + std::to_string(states[v].color) +
                "\"";
  }
  maybeWriteDot(options, g, vattrs, {});
  return report;
}

Report runDominatingSet(const Options& options, const Sinks& sinks,
                        const Graph& g, const IdAssignment& ids,
                        std::ostream& out) {
  Report report;
  const core::Synchronized<core::DominatingSetProtocol> dom;
  report.protocol = std::string(dom.name());
  auto states = drive(options, sinks, dom, g, ids, 64 * g.order() + 256,
                      core::randomDomState,
                      membershipMetric<core::DomState>(), out, report);
  const auto members = analysis::membersOf(states);
  report.predicateOk =
      report.stabilized && analysis::isMinimalDominatingSet(g, members);
  std::ostringstream summary;
  summary << "minimal dominating set: " << members.size() << " member(s)";
  report.summary = summary.str();

  std::vector<std::string> vattrs(g.order());
  for (const Vertex v : members) {
    vattrs[v] = "style=filled,fillcolor=lightcoral";
  }
  maybeWriteDot(options, g, vattrs, {});
  return report;
}

Report runBfsTree(const Options& options, const Sinks& sinks,
                  const Graph& g, const IdAssignment& ids,
                  std::ostream& out) {
  Report report;
  // Root: the vertex holding the smallest ID (deterministic under every
  // --ids mode).
  Vertex root = 0;
  for (Vertex v = 1; v < g.order(); ++v) {
    if (ids.less(v, root)) root = v;
  }
  const auto cap = static_cast<std::uint32_t>(std::max<std::size_t>(
      g.order(), 1));
  const core::BfsTreeProtocol bfs(ids.idOf(root), cap);
  report.protocol = std::string(bfs.name());
  auto states = drive(
      options, sinks, bfs, g, ids, 3 * g.order() + 8, core::randomTreeState,
      [cap](const std::vector<core::TreeState>& st) {
        std::uint32_t depth = 0;
        for (const auto& t : st) {
          if (t.dist < cap) depth = std::max(depth, t.dist);
        }
        return static_cast<double>(depth);
      },
      out, report);
  report.predicateOk =
      report.stabilized &&
      analysis::isShortestPathTree(g, ids, root, cap, states);
  std::uint32_t depth = 0;
  for (const auto& s : states) {
    if (s.dist < cap) depth = std::max(depth, s.dist);
  }
  std::ostringstream summary;
  summary << "BFS tree rooted at " << root << ", depth " << depth;
  report.summary = summary.str();

  std::vector<std::string> vattrs(g.order());
  vattrs[root] = "style=filled,fillcolor=gold";
  std::vector<std::pair<graph::Edge, std::string>> eattrs;
  for (Vertex v = 0; v < g.order(); ++v) {
    if (v != root && states[v].parent != graph::kNoVertex) {
      eattrs.emplace_back(graph::makeEdge(v, states[v].parent),
                          "penwidth=3,color=forestgreen");
    }
  }
  maybeWriteDot(options, g, vattrs, eattrs);
  return report;
}

Report runLeaderTree(const Options& options, const Sinks& sinks,
                     const Graph& g, const IdAssignment& ids,
                     std::ostream& out) {
  Report report;
  const auto cap = static_cast<std::uint32_t>(std::max<std::size_t>(
      g.order(), 1));
  const core::LeaderTreeProtocol protocol(cap);
  report.protocol = std::string(protocol.name());
  auto states = drive(
      options, sinks, protocol, g, ids, 3 * g.order() + 8, core::randomLeaderState,
      [](const std::vector<core::LeaderState>& st) {
        std::uint32_t depth = 0;
        for (const auto& t : st) depth = std::max(depth, t.dist);
        return static_cast<double>(depth);
      },
      out, report);
  report.predicateOk =
      report.stabilized && analysis::isLeaderTree(g, ids, states);

  // Elected leader (of vertex 0's component — the whole graph if connected).
  Vertex leader = graph::kNoVertex;
  for (Vertex v = 0; v < g.order(); ++v) {
    if (ids.idOf(v) == states[0].root) {
      leader = v;
      break;
    }
  }
  std::uint32_t depth = 0;
  for (const auto& s : states) {
    if (s.root == states[0].root) depth = std::max(depth, s.dist);
  }
  std::ostringstream summary;
  summary << "leader " << leader << " (id " << states[0].root
          << "), tree depth " << depth;
  report.summary = summary.str();

  std::vector<std::string> vattrs(g.order());
  if (leader != graph::kNoVertex) {
    vattrs[leader] = "style=filled,fillcolor=gold";
  }
  std::vector<std::pair<graph::Edge, std::string>> eattrs;
  for (Vertex v = 0; v < g.order(); ++v) {
    if (states[v].parent != graph::kNoVertex) {
      eattrs.emplace_back(graph::makeEdge(v, states[v].parent),
                          "penwidth=3,color=forestgreen");
    }
  }
  maybeWriteDot(options, g, vattrs, eattrs);
  return report;
}

}  // namespace

Graph buildGraph(const GraphSpec& spec, std::uint64_t seed) {
  graph::Rng rng(hashCombine(seed, 0x6772617068ULL));
  switch (spec.kind) {
    case GraphSpec::Kind::Path:
      return graph::path(spec.n);
    case GraphSpec::Kind::Cycle:
      return graph::cycle(spec.n);
    case GraphSpec::Kind::Star:
      return graph::star(spec.n);
    case GraphSpec::Kind::Complete:
      return graph::complete(spec.n);
    case GraphSpec::Kind::Grid:
      return graph::grid(spec.n, spec.cols);
    case GraphSpec::Kind::Tree:
      return graph::randomTree(spec.n, rng);
    case GraphSpec::Kind::Gnp:
      return graph::connectedErdosRenyi(spec.n, spec.param, rng);
    case GraphSpec::Kind::Udg:
      return graph::connectedRandomGeometric(spec.n, spec.param, rng);
    case GraphSpec::Kind::File: {
      std::ifstream file(spec.path);
      if (!file) throw CliError("cannot open graph file '" + spec.path + "'");
      try {
        return graph::readEdgeList(file);
      } catch (const graph::ParseError& e) {
        throw CliError("bad graph file '" + spec.path + "': " + e.what());
      }
    }
  }
  throw CliError("unhandled graph kind");
}

IdAssignment buildIds(IdOrderKind kind, std::size_t n, std::uint64_t seed) {
  switch (kind) {
    case IdOrderKind::Identity:
      return IdAssignment::identity(n);
    case IdOrderKind::Reversed:
      return IdAssignment::reversed(n);
    case IdOrderKind::Random: {
      graph::Rng rng(hashCombine(seed, 0x696473ULL));
      return IdAssignment::randomPermutation(n, rng);
    }
  }
  throw CliError("unhandled id order");
}

Report execute(const Options& options, std::ostream& out) {
  const Graph g = buildGraph(options.graph, options.seed);
  if (g.order() == 0) throw CliError("empty graph");
  if (!options.saveGraphPath.empty()) {
    std::ofstream file(options.saveGraphPath);
    if (!file) {
      throw CliError("cannot write graph file '" + options.saveGraphPath +
                     "'");
    }
    graph::writeEdgeList(file, g);
  }
  const IdAssignment ids = buildIds(options.idOrder, g.order(), options.seed);

  // Telemetry is opt-in: with neither flag given the runners see null sinks
  // and instrument nothing. --json also needs a registry, to harvest the
  // evaluations_per_second gauge into the report.
  std::optional<telemetry::Registry> registry;
  if (!options.metricsPath.empty() || options.json) registry.emplace();
  EventSink events(options.eventsPath, out);
  Sinks sinks{registry.has_value() ? &*registry : nullptr, events.get()};

  Report report;
  switch (options.protocol) {
    case ProtocolKind::Smm:
    case ProtocolKind::SmmArbitrary:
    case ProtocolKind::HsuHuangSync:
      report = runMatching(options, sinks, g, ids, out);
      break;
    case ProtocolKind::Sis:
      report = runSis(options, sinks, g, ids, out);
      break;
    case ProtocolKind::Coloring:
      report = runColoring(options, sinks, g, ids, out);
      break;
    case ProtocolKind::DominatingSet:
      report = runDominatingSet(options, sinks, g, ids, out);
      break;
    case ProtocolKind::BfsTree:
      report = runBfsTree(options, sinks, g, ids, out);
      break;
    case ProtocolKind::LeaderTree:
      report = runLeaderTree(options, sinks, g, ids, out);
      break;
  }
  report.n = g.order();
  report.m = g.size();
  if (registry.has_value()) {
    report.evaluationsPerSecond =
        registry->gaugeValue(telemetry::names::kEvaluationsPerSecond);
    if (!options.metricsPath.empty()) {
      writeMetricsDump(*registry, options.metricsPath, out);
    }
  }
  return report;
}

void printReport(const Report& report, std::ostream& out) {
  out << "protocol    : " << report.protocol << '\n'
      << "graph       : " << report.n << " nodes, " << report.m << " edges\n"
      << "stabilized  : " << (report.stabilized ? "yes" : "NO");
  if (report.livelockCertified) out << " (livelock certified: configuration repeats)";
  out << '\n'
      << "rounds      : " << report.rounds << '\n'
      << "moves       : " << report.moves << '\n';
  if (!report.kernel.empty()) {
    out << "kernel      : " << report.kernel << " (" << report.schedule
        << " schedule)\n";
  }
  out << "result      : " << report.summary << '\n'
      << "verified    : " << (report.predicateOk ? "yes" : "NO") << '\n';
  if (report.chaosActive) {
    out << "chaos       : " << report.chaosFaults << " fault(s), "
        << (report.chaosRecoveredAll ? "all recovered" : "NOT all recovered")
        << ", worst recovery " << report.chaosMaxRecoveryRounds
        << " round(s), worst containment " << report.chaosMaxContainment
        << ", safety violations " << report.chaosSafetyViolations << '\n';
  }
}

void printReportJson(const Report& report, std::ostream& out) {
  telemetry::JsonWriter w(out);
  w.beginObject();
  w.key("protocol").value(report.protocol);
  w.key("n").value(static_cast<std::uint64_t>(report.n));
  w.key("m").value(static_cast<std::uint64_t>(report.m));
  w.key("rounds").value(static_cast<std::uint64_t>(report.rounds));
  w.key("moves").value(static_cast<std::uint64_t>(report.moves));
  w.key("stabilized").value(report.stabilized);
  w.key("livelockCertified").value(report.livelockCertified);
  w.key("predicateOk").value(report.predicateOk);
  w.key("kernel").value(report.kernel);
  w.key("schedule").value(report.schedule);
  w.key("evaluationsPerSecond").value(report.evaluationsPerSecond);
  w.key("summary").value(report.summary);
  if (report.chaosActive) {
    w.key("chaosFaults").value(static_cast<std::uint64_t>(report.chaosFaults));
    w.key("chaosRecoveredAll").value(report.chaosRecoveredAll);
    w.key("chaosMaxRecoveryRounds")
        .value(static_cast<std::uint64_t>(report.chaosMaxRecoveryRounds));
    w.key("chaosMaxContainment")
        .value(static_cast<std::uint64_t>(report.chaosMaxContainment));
    w.key("chaosSafetyViolations")
        .value(static_cast<std::uint64_t>(report.chaosSafetyViolations));
  }
  w.endObject();
  out << '\n';
}

}  // namespace selfstab::cli
