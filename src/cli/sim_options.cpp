#include "cli/sim_options.hpp"

#include <charconv>

namespace selfstab::cli {

namespace {

[[noreturn]] void fail(const std::string& message) { throw CliError(message); }

std::uint64_t parseU64(const std::string& text, const std::string& what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("invalid " + what + ": '" + text + "'");
  }
  return value;
}

double parseProbability(const std::string& text, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    // !(a && b) instead of (< || >): NaN must not slip through.
    if (consumed != text.size() || !(value >= 0.0 && value <= 1.0)) {
      fail("invalid " + what + " (want [0,1]): '" + text + "'");
    }
    return value;
  } catch (const std::logic_error&) {
    fail("invalid " + what + ": '" + text + "'");
  }
}

double parsePositive(const std::string& text, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size() || !(value > 0.0)) {  // NaN-safe
      fail("invalid " + what + " (want > 0): '" + text + "'");
    }
    return value;
  } catch (const std::logic_error&) {
    fail("invalid " + what + ": '" + text + "'");
  }
}

adhoc::SimTime secondsToSimTime(const std::string& text,
                                const std::string& what) {
  return static_cast<adhoc::SimTime>(parsePositive(text, what) *
                                     static_cast<double>(adhoc::kSecond));
}

}  // namespace

SimOptions parseSimOptions(const std::vector<std::string>& args) {
  SimOptions options;

  const auto next = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) fail("missing value for " + flag);
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--protocol" || arg == "-p") {
      const std::string value = next(i, arg);
      if (value == "smm") {
        options.protocol = SimProtocolKind::Smm;
      } else if (value == "sis") {
        options.protocol = SimProtocolKind::Sis;
      } else if (value == "leadertree") {
        options.protocol = SimProtocolKind::LeaderTree;
      } else {
        fail("unknown protocol '" + value + "'");
      }
    } else if (arg == "--nodes" || arg == "-n") {
      options.nodes = parseU64(next(i, arg), "node count");
      if (options.nodes == 0) fail("need at least one node");
    } else if (arg == "--radius") {
      options.radius = parsePositive(next(i, arg), "radius");
    } else if (arg == "--seed") {
      options.seed = parseU64(next(i, arg), "seed");
    } else if (arg == "--beacon-ms") {
      options.beaconInterval =
          static_cast<adhoc::SimTime>(parseU64(next(i, arg), "beacon-ms")) *
          adhoc::kMillisecond;
      if (options.beaconInterval <= 0) fail("beacon interval must be > 0");
    } else if (arg == "--loss") {
      options.lossProbability = parseProbability(next(i, arg), "loss");
    } else if (arg == "--collision-us") {
      options.collisionWindow = static_cast<adhoc::SimTime>(
          parseU64(next(i, arg), "collision-us"));
    } else if (arg == "--timeout-factor") {
      options.timeoutFactor = parsePositive(next(i, arg), "timeout factor");
    } else if (arg == "--schedule") {
      const std::string value = next(i, arg);
      if (value == "dense") {
        options.schedule = engine::Schedule::Dense;
      } else if (value == "active") {
        options.schedule = engine::Schedule::Active;
      } else {
        fail("unknown schedule '" + value + "'");
      }
    } else if (arg == "--kernel") {
      const std::string value = next(i, arg);
      if (value == "auto") {
        options.kernel = engine::KernelMode::Auto;
      } else if (value == "generic") {
        options.kernel = engine::KernelMode::Generic;
      } else if (value == "flat") {
        options.kernel = engine::KernelMode::Flat;
      } else {
        fail("unknown kernel '" + value + "'");
      }
    } else if (arg == "--index") {
      const std::string value = next(i, arg);
      if (value == "grid") {
        options.index = adhoc::IndexMode::Grid;
      } else if (value == "scan") {
        options.index = adhoc::IndexMode::Scan;
      } else {
        fail("unknown index '" + value + "'");
      }
    } else if (arg == "--queue") {
      const std::string value = next(i, arg);
      if (value == "calendar") {
        options.queue = adhoc::QueueMode::Calendar;
      } else if (value == "heap") {
        options.queue = adhoc::QueueMode::Heap;
      } else {
        fail("unknown queue '" + value + "'");
      }
    } else if (arg == "--mobility") {
      const std::string value = next(i, arg);
      if (value == "static") {
        options.mobility = MobilityKind::Static;
      } else if (value == "waypoint") {
        options.mobility = MobilityKind::Waypoint;
      } else {
        fail("unknown mobility '" + value + "'");
      }
    } else if (arg == "--speed") {
      const std::string value = next(i, arg);
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) fail("speed spec must be MIN:MAX");
      options.speedMin = parsePositive(value.substr(0, colon), "speed min");
      options.speedMax = parsePositive(value.substr(colon + 1), "speed max");
      if (options.speedMin > options.speedMax) fail("speed min > max");
    } else if (arg == "--stop-sec") {
      options.stopTime = secondsToSimTime(next(i, arg), "stop-sec");
    } else if (arg == "--duration-sec") {
      options.duration = secondsToSimTime(next(i, arg), "duration-sec");
    } else if (arg == "--report-sec") {
      options.reportEvery = secondsToSimTime(next(i, arg), "report-sec");
    } else if (arg == "--no-early-stop") {
      options.untilQuiet = false;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--metrics") {
      options.metricsPath = next(i, arg);
    } else if (arg == "--events") {
      options.eventsPath = next(i, arg);
    } else if (arg == "--chaos") {
      options.chaosSpec = next(i, arg);
      if (options.chaosSpec.empty()) fail("--chaos needs a plan");
    } else {
      fail("unknown argument '" + arg + "' (try --help)");
    }
  }
  return options;
}

std::string simUsage() {
  return R"(selfstab-sim — protocols over the beacon-model network simulator

usage: selfstab-sim [options]

  --protocol, -p   smm | sis | leadertree                [default: smm]
  --nodes, -n      host count                            [default: 25]
  --radius         radio range (unit-square widths)      [default: 0.35]
  --seed           64-bit seed                           [default: 1]
  --beacon-ms      beacon interval in milliseconds       [default: 100]
  --loss           per-beacon loss probability           [default: 0]
  --collision-us   MAC collision window in microseconds  [default: 0 = off]
  --timeout-factor neighbor expiry in beacon intervals   [default: 2.5]
  --schedule       dense | active (skip rule evaluation
                   on nodes whose view is unchanged)     [default: dense]
  --kernel         auto | generic | flat (devirtualized rule
                   evaluation for smm/sis; bit-identical)  [default: auto]
  --index          grid | scan spatial index for radio
                   fan-out (bit-identical results; scan
                   is the O(n^2) reference)              [default: grid]
  --queue          calendar | heap event queue
                   (bit-identical results)               [default: calendar]
  --mobility       static | waypoint                     [default: static]
  --speed          waypoint speed range MIN:MAX          [default: 0.01:0.04]
  --stop-sec       freeze waypoint motion at this time   [default: never]
  --duration-sec   simulated time budget                 [default: 60]
  --report-sec     timeline row interval                 [default: 10]
  --no-early-stop  run the full duration even if quiet
  --json           emit the final report as JSON (suppresses the timeline)
  --metrics PATH   dump run telemetry as JSON + Prometheus text ("-" = stdout)
  --events PATH    write a JSONL event log ("-" = stdout)
  --chaos SPEC     run a fault campaign: a JSON plan file, or a built-in
                   template "churn:SEED" | "crash-storm:SEED"
                   | "rolling-partition:SEED" (see docs/ROBUSTNESS.md)
  --help, -h       this text

examples:
  selfstab-sim -p smm -n 30 --loss 0.1
  selfstab-sim -p sis --mobility waypoint --stop-sec 40 --duration-sec 120
  selfstab-sim -p smm -n 30 --chaos crash-storm:3 --events -
)";
}

std::string_view toString(SimProtocolKind kind) noexcept {
  switch (kind) {
    case SimProtocolKind::Smm:
      return "smm";
    case SimProtocolKind::Sis:
      return "sis";
    case SimProtocolKind::LeaderTree:
      return "leadertree";
  }
  return "?";
}

}  // namespace selfstab::cli
