// Shared --metrics / --events plumbing for the selfstab and selfstab-sim
// CLIs: open the requested sinks ("-" meaning the CLI's stdout stream) and
// dump a Registry in both export formats.
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

#include "cli/options.hpp"  // CliError
#include "telemetry/telemetry.hpp"

namespace selfstab::cli {

/// Dumps `registry` to `path`: first the one-line JSON document, then the
/// Prometheus text exposition of the same instruments. `path` == "-" writes
/// to `dash` (the CLI's stdout). See docs/OBSERVABILITY.md for the schema.
inline void writeMetricsDump(const telemetry::Registry& registry,
                             const std::string& path, std::ostream& dash) {
  if (path == "-") {
    registry.writeJson(dash);
    registry.writePrometheus(dash);
    return;
  }
  std::ofstream file(path);
  if (!file) throw CliError("cannot write metrics file '" + path + "'");
  registry.writeJson(file);
  registry.writePrometheus(file);
}

/// Owns the stream behind an --events JSONL log for the duration of a run.
/// Default-constructed (no path) it hands out a null EventLog*.
class EventSink {
 public:
  EventSink() = default;

  EventSink(const std::string& path, std::ostream& dash) {
    if (path.empty()) return;
    if (path == "-") {
      log_.emplace(dash);
      return;
    }
    file_ = std::make_unique<std::ofstream>(path);
    if (!*file_) throw CliError("cannot write events file '" + path + "'");
    log_.emplace(*file_);
  }

  [[nodiscard]] telemetry::EventLog* get() noexcept {
    return log_.has_value() ? &*log_ : nullptr;
  }

 private:
  std::unique_ptr<std::ofstream> file_;  // stable address for the log
  std::optional<telemetry::EventLog> log_;
};

}  // namespace selfstab::cli
