// `selfstab-sim` — run protocols over the beacon-model network simulator.
#include <iostream>
#include <vector>

#include "chaos/plan.hpp"
#include "cli/sim_options.hpp"
#include "cli/sim_run.hpp"

int main(int argc, char** argv) {
  using namespace selfstab::cli;
  try {
    const std::vector<std::string> args(argv + 1, argv + argc);
    const SimOptions options = parseSimOptions(args);
    if (options.help) {
      std::cout << simUsage();
      return 0;
    }
    const SimReport report = executeSim(options, std::cout);
    if (options.json) {
      printSimReportJson(report, std::cout);
    } else {
      printSimReport(report, std::cout);
    }
    return report.predicateOk ? 0 : 2;
  } catch (const CliError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  } catch (const selfstab::chaos::PlanError& e) {
    std::cerr << "error: --chaos: " << e.what() << '\n';
    return 1;
  }
}
