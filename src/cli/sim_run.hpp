// Execution engine of `selfstab-sim`.
#pragma once

#include <iosfwd>
#include <string>

#include "cli/sim_options.hpp"

namespace selfstab::cli {

struct SimReport {
  std::string protocol;
  std::string kernel;  ///< evaluation path taken: "flat" or "generic"
  std::size_t nodes = 0;
  adhoc::SimTime endTime = 0;
  bool quiet = false;        ///< no state change for the quiet window
  bool predicateOk = false;  ///< verified on the final bidirectional topology
  std::size_t beaconsSent = 0;
  std::size_t beaconsDelivered = 0;
  std::size_t beaconsLost = 0;
  std::size_t beaconsCollided = 0;
  std::size_t moves = 0;
  std::size_t ruleEvaluations = 0;     ///< beacon intervals that ran the rules
  std::size_t evaluationsSkipped = 0;  ///< suppressed by --schedule active
  std::size_t rounds = 0;  ///< whole beacon intervals elapsed (paper rounds)
  std::size_t rangeChecks = 0;  ///< exact distance tests (index diagnostic)
  std::string summary;

  // Fault-campaign outcome (--chaos); see docs/ROBUSTNESS.md.
  bool chaosActive = false;
  std::size_t chaosFaults = 0;            ///< fault events injected
  bool chaosRecoveredAll = false;         ///< every window re-quiesced
  std::size_t chaosMaxRecoveryRounds = 0;
  std::size_t chaosMaxContainment = 0;    ///< worst BFS containment radius
};

/// Runs the simulation described by `options`, printing a timeline row
/// every reportEvery of simulated time to `out`.
[[nodiscard]] SimReport executeSim(const SimOptions& options,
                                   std::ostream& out);

void printSimReport(const SimReport& report, std::ostream& out);

/// Machine-readable form of the same report: one JSON object (--json).
void printSimReportJson(const SimReport& report, std::ostream& out);

}  // namespace selfstab::cli
