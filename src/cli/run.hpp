// Execution engine of the `selfstab` CLI: materialize the graph, run the
// requested protocol, verify the stabilized predicate, and report.
#pragma once

#include <iosfwd>
#include <string>

#include "cli/options.hpp"
#include "graph/graph.hpp"
#include "graph/id_order.hpp"

namespace selfstab::cli {

struct Report {
  std::string protocol;
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t rounds = 0;
  std::size_t moves = 0;
  bool stabilized = false;
  bool livelockCertified = false;  ///< deterministic revisit detected
  bool predicateOk = false;
  std::string kernel;    ///< evaluation path taken: "flat" or "generic"
  std::string schedule;  ///< "dense" or "active"
  double evaluationsPerSecond = 0.0;  ///< last-round rate (0 = not measured)
  std::string summary;  ///< e.g. "maximal matching: 12 pairs"

  // Fault-campaign outcome (--chaos); see docs/ROBUSTNESS.md.
  bool chaosActive = false;
  std::size_t chaosFaults = 0;            ///< fault events injected
  bool chaosRecoveredAll = false;         ///< every window re-stabilized
  std::size_t chaosMaxRecoveryRounds = 0;
  std::size_t chaosMaxContainment = 0;    ///< worst BFS containment radius
  std::size_t chaosSafetyViolations = 0;
};

/// Builds the topology described by `spec` (reads files for Kind::File).
/// Generator-based specs retry/connect so the result is connected, matching
/// the paper's system model.
[[nodiscard]] graph::Graph buildGraph(const GraphSpec& spec,
                                      std::uint64_t seed);

[[nodiscard]] graph::IdAssignment buildIds(IdOrderKind kind, std::size_t n,
                                           std::uint64_t seed);

/// Runs one protocol per `options`; trace lines (when enabled) and the DOT
/// file go through/into the given stream/path. Throws CliError on
/// unusable input.
[[nodiscard]] Report execute(const Options& options, std::ostream& out);

/// Renders the report in the CLI's human-readable format.
void printReport(const Report& report, std::ostream& out);

/// Machine-readable form of the same report: one JSON object (--json).
void printReportJson(const Report& report, std::ostream& out);

}  // namespace selfstab::cli
