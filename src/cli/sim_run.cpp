#include "cli/sim_run.hpp"

#include <iomanip>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "adhoc/network.hpp"
#include "analysis/verifiers.hpp"
#include "chaos/injector.hpp"
#include "chaos/monitors.hpp"
#include "chaos/plan.hpp"
#include "cli/metrics_io.hpp"
#include "core/kernels.hpp"
#include "core/leader_tree.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab::cli {

namespace {

using adhoc::SimTime;

std::unique_ptr<adhoc::Mobility> makeMobility(const SimOptions& options) {
  graph::Rng rng(hashCombine(options.seed, 0x6d6f62ULL));
  if (options.mobility == MobilityKind::Static) {
    std::vector<graph::Point> pts;
    graph::connectedRandomGeometric(options.nodes, options.radius, rng, &pts);
    return std::make_unique<adhoc::StaticPlacement>(std::move(pts));
  }
  adhoc::RandomWaypoint::Config wp;
  wp.speedMin = options.speedMin;
  wp.speedMax = options.speedMax;
  wp.stopTime = options.stopTime;
  return std::make_unique<adhoc::RandomWaypoint>(
      graph::randomPoints(options.nodes, rng), wp, options.seed * 31 + 7);
}

adhoc::NetworkConfig makeConfig(const SimOptions& options) {
  adhoc::NetworkConfig config;
  config.beaconInterval = options.beaconInterval;
  config.lossProbability = options.lossProbability;
  config.collisionWindow = options.collisionWindow;
  config.timeoutFactor = options.timeoutFactor;
  config.schedule = options.schedule;
  config.radius = options.radius;
  config.index = options.index;
  config.queue = options.queue;
  config.seed = options.seed;
  return config;
}

/// Drives one protocol type through the timeline loop. `verify` and
/// `describe` evaluate the final configuration against the ground-truth
/// bidirectional topology. `sampler` supplies corrupted states for --chaos.
template <typename State, typename Sampler, typename Verify, typename Describe>
SimReport driveSim(const SimOptions& options, telemetry::Registry* registry,
                   telemetry::EventLog* events,
                   const engine::Protocol<State>& protocol,
                   const graph::IdAssignment& ids, Sampler sampler,
                   Verify verify, Describe describe, std::ostream& out) {
  auto mobility = makeMobility(options);
  adhoc::NetworkSimulator<State> sim(protocol, ids, *mobility,
                                     makeConfig(options));
  sim.attachTelemetry(registry, events);

  // Devirtualized rule evaluation (--kernel): the simulator has no static
  // graph to mirror, so it takes the view-level kernel — same shared rule
  // code as Protocol::onRound, minus the vtable hop. Auto falls back to the
  // generic path for protocols without one.
  std::unique_ptr<engine::ViewKernel<State>> viewKernel;
  if (options.kernel != engine::KernelMode::Generic) {
    viewKernel = core::makeViewKernel<State>(protocol);
    if (viewKernel == nullptr && options.kernel == engine::KernelMode::Flat) {
      throw CliError("--kernel flat: protocol '" +
                     std::string(protocol.name()) +
                     "' has no flat kernel (try --kernel auto)");
    }
  }
  sim.setViewKernel(viewKernel.get());

  // Fault campaign: with no --chaos the plan is empty and the controller is
  // inert — the trajectory is bit-identical to a build without it.
  chaos::FaultPlan plan;
  if (!options.chaosSpec.empty()) {
    plan = chaos::parseChaosSpec(options.chaosSpec, options.nodes);
  }
  chaos::RecoveryMonitor monitor;
  monitor.attachTelemetry(registry, events);
  chaos::SimChaosController<State, Sampler> controller(
      sim, plan, hashCombine(options.seed, 0xC4A05ULL), sampler,
      options.beaconInterval, monitor);
  // A campaign stretches the time budget to cover its own tail, and
  // suppresses the quiet early-exit until every scheduled fault has fired.
  const SimTime duration =
      controller.active()
          ? std::max(options.duration,
                     controller.noQuietBefore() + 10 * options.beaconInterval)
          : options.duration;

  // --json wants a single machine-readable document on stdout, so the
  // human timeline is suppressed.
  const bool timeline = !options.json;
  if (timeline) out << "time(s)  links  moves  beacons(sent/lost/coll)\n";
  const SimTime quietWindow = 5 * options.beaconInterval;
  bool quiet = false;
  for (SimTime t = options.reportEvery; t <= duration;
       t += options.reportEvery) {
    if (options.untilQuiet) {
      const auto result =
          sim.runUntilQuiet(quietWindow, t, controller.noQuietBefore());
      quiet = result.quiet;
    } else {
      sim.run(t);
    }
    if (timeline) {
      const auto& stats = sim.stats();
      out << std::setw(7) << sim.now() / adhoc::kSecond << "  " << std::setw(5)
          << sim.currentTopology().size() << "  " << std::setw(5)
          << stats.moves << "  " << stats.beaconsSent << "/"
          << stats.beaconsLost << "/" << stats.beaconsCollided << '\n';
    }
    if (quiet) break;
  }
  controller.finalize();

  SimReport report;
  report.protocol = std::string(protocol.name());
  report.kernel = std::string(engine::toString(sim.kernel()));
  report.nodes = options.nodes;
  report.endTime = sim.now();
  report.quiet =
      options.untilQuiet ? quiet
                         : (sim.now() - sim.lastMoveTime() >= quietWindow);
  const graph::Graph topo = sim.currentTopology();
  const auto states = sim.states();
  report.predicateOk = report.quiet && verify(topo, states);
  report.summary = describe(topo, states);
  const auto& stats = sim.stats();
  report.beaconsSent = stats.beaconsSent;
  report.beaconsDelivered = stats.beaconsDelivered;
  report.beaconsLost = stats.beaconsLost;
  report.beaconsCollided = stats.beaconsCollided;
  report.moves = stats.moves;
  report.ruleEvaluations = stats.ruleEvaluations;
  report.evaluationsSkipped = stats.evaluationsSkipped;
  report.rounds = static_cast<std::size_t>(sim.now() / options.beaconInterval);
  report.rangeChecks = sim.indexStats().rangeChecks;
  if (controller.active()) {
    report.chaosActive = true;
    report.chaosFaults = monitor.records().size();
    report.chaosRecoveredAll = monitor.allRecovered();
    report.chaosMaxRecoveryRounds = monitor.maxRecoveryRounds();
    report.chaosMaxContainment = monitor.maxContainmentRadius();
  }
  if (registry != nullptr) {
    // The paper counts rounds as whole beacon intervals; finalize the
    // counter here so it equals SimReport::rounds exactly.
    registry->counter(telemetry::names::kRoundsTotal)
        .inc(static_cast<std::uint64_t>(report.rounds));
  }
  return report;
}

}  // namespace

SimReport executeSim(const SimOptions& options, std::ostream& out) {
  const graph::IdAssignment ids =
      graph::IdAssignment::identity(options.nodes);

  std::optional<telemetry::Registry> registry;
  if (!options.metricsPath.empty()) registry.emplace();
  EventSink events(options.eventsPath, out);
  telemetry::Registry* reg = registry.has_value() ? &*registry : nullptr;

  SimReport report;
  switch (options.protocol) {
    case SimProtocolKind::Smm: {
      const core::SmmProtocol smm = core::smmPaper();
      report = driveSim<core::PointerState>(
          options, reg, events.get(), smm, ids, core::randomPointerState,
          [](const graph::Graph& g,
             const std::vector<core::PointerState>& states) {
            return analysis::checkMatchingFixpoint(g, states).ok();
          },
          [](const graph::Graph& g,
             const std::vector<core::PointerState>& states) {
            std::ostringstream ss;
            ss << "matching: " << analysis::matchedEdges(g, states).size()
               << " pair(s)";
            return ss.str();
          },
          out);
      break;
    }
    case SimProtocolKind::Sis: {
      const core::SisProtocol sis;
      report = driveSim<core::BitState>(
          options, reg, events.get(), sis, ids, core::randomBitState,
          [](const graph::Graph& g,
             const std::vector<core::BitState>& states) {
            return analysis::isMaximalIndependentSet(
                g, analysis::membersOf(states));
          },
          [](const graph::Graph&,
             const std::vector<core::BitState>& states) {
            std::ostringstream ss;
            ss << "independent set: " << analysis::membersOf(states).size()
               << " member(s)";
            return ss.str();
          },
          out);
      break;
    }
    case SimProtocolKind::LeaderTree: {
      const core::LeaderTreeProtocol protocol(
          static_cast<std::uint32_t>(options.nodes));
      report = driveSim<core::LeaderState>(
          options, reg, events.get(), protocol, ids, core::randomLeaderState,
          [](const graph::Graph& g,
             const std::vector<core::LeaderState>& states) {
            const graph::IdAssignment identity =
                graph::IdAssignment::identity(g.order());
            return analysis::isLeaderTree(g, identity, states);
          },
          [](const graph::Graph&,
             const std::vector<core::LeaderState>& states) {
            std::uint32_t depth = 0;
            for (const auto& s : states) {
              if (!states.empty() && s.root == states[0].root) {
                depth = std::max(depth, s.dist);
              }
            }
            std::ostringstream ss;
            ss << "leader id " << (states.empty() ? 0 : states[0].root)
               << ", tree depth " << depth;
            return ss.str();
          },
          out);
      break;
    }
    default:
      throw CliError("unhandled protocol");
  }
  if (registry.has_value()) {
    writeMetricsDump(*registry, options.metricsPath, out);
  }
  return report;
}

void printSimReportJson(const SimReport& report, std::ostream& out) {
  telemetry::JsonWriter w(out);
  w.beginObject();
  w.key("protocol").value(report.protocol);
  w.key("kernel").value(report.kernel);
  w.key("nodes").value(static_cast<std::uint64_t>(report.nodes));
  w.key("endTimeUs").value(static_cast<std::int64_t>(report.endTime));
  w.key("rounds").value(static_cast<std::uint64_t>(report.rounds));
  w.key("quiet").value(report.quiet);
  w.key("predicateOk").value(report.predicateOk);
  w.key("beaconsSent").value(static_cast<std::uint64_t>(report.beaconsSent));
  w.key("beaconsDelivered")
      .value(static_cast<std::uint64_t>(report.beaconsDelivered));
  w.key("beaconsLost").value(static_cast<std::uint64_t>(report.beaconsLost));
  w.key("beaconsCollided")
      .value(static_cast<std::uint64_t>(report.beaconsCollided));
  w.key("moves").value(static_cast<std::uint64_t>(report.moves));
  w.key("ruleEvaluations")
      .value(static_cast<std::uint64_t>(report.ruleEvaluations));
  w.key("evaluationsSkipped")
      .value(static_cast<std::uint64_t>(report.evaluationsSkipped));
  w.key("rangeChecks").value(static_cast<std::uint64_t>(report.rangeChecks));
  w.key("summary").value(report.summary);
  if (report.chaosActive) {
    w.key("chaosFaults").value(static_cast<std::uint64_t>(report.chaosFaults));
    w.key("chaosRecoveredAll").value(report.chaosRecoveredAll);
    w.key("chaosMaxRecoveryRounds")
        .value(static_cast<std::uint64_t>(report.chaosMaxRecoveryRounds));
    w.key("chaosMaxContainment")
        .value(static_cast<std::uint64_t>(report.chaosMaxContainment));
  }
  w.endObject();
  out << '\n';
}

void printSimReport(const SimReport& report, std::ostream& out) {
  out << "protocol    : " << report.protocol << '\n'
      << "kernel      : " << report.kernel << '\n'
      << "hosts       : " << report.nodes << '\n'
      << "sim time    : " << std::fixed << std::setprecision(1)
      << static_cast<double>(report.endTime) /
             static_cast<double>(adhoc::kSecond)
      << "s\n"
      << "quiet       : " << (report.quiet ? "yes" : "NO") << '\n'
      << "beacons     : " << report.beaconsSent << " sent, "
      << report.beaconsDelivered << " delivered, " << report.beaconsLost
      << " lost, " << report.beaconsCollided << " collided\n"
      << "moves       : " << report.moves << '\n'
      << "evaluations : " << report.ruleEvaluations << " run, "
      << report.evaluationsSkipped << " skipped\n"
      << "rounds      : " << report.rounds << '\n'
      << "range checks: " << report.rangeChecks << '\n'
      << "result      : " << report.summary << '\n'
      << "verified    : " << (report.predicateOk ? "yes" : "NO") << '\n';
  if (report.chaosActive) {
    out << "chaos       : " << report.chaosFaults << " fault(s), "
        << (report.chaosRecoveredAll ? "all recovered" : "NOT all recovered")
        << ", worst recovery " << report.chaosMaxRecoveryRounds
        << " round(s), worst containment " << report.chaosMaxContainment
        << '\n';
  }
}

}  // namespace selfstab::cli
