// Option grammar of the `selfstab-sim` tool: protocols over the
// discrete-event beacon simulator (deployment geometry, mobility, link
// quality, timeline reporting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adhoc/sim_modes.hpp"
#include "adhoc/sim_time.hpp"
#include "cli/options.hpp"  // CliError
#include "engine/kernel.hpp"

namespace selfstab::cli {

enum class SimProtocolKind { Smm, Sis, LeaderTree };
enum class MobilityKind { Static, Waypoint };

struct SimOptions {
  SimProtocolKind protocol = SimProtocolKind::Smm;
  std::size_t nodes = 25;
  double radius = 0.35;
  std::uint64_t seed = 1;

  adhoc::SimTime beaconInterval = 100 * adhoc::kMillisecond;
  double lossProbability = 0.0;
  adhoc::SimTime collisionWindow = 0;
  double timeoutFactor = 2.5;
  engine::Schedule schedule = engine::Schedule::Dense;  ///< --schedule
  engine::KernelMode kernel = engine::KernelMode::Auto;  ///< --kernel
  adhoc::IndexMode index = adhoc::IndexMode::Grid;      ///< --index
  adhoc::QueueMode queue = adhoc::QueueMode::Calendar;  ///< --queue

  MobilityKind mobility = MobilityKind::Static;
  double speedMin = 0.01;
  double speedMax = 0.04;
  adhoc::SimTime stopTime = -1;  ///< freeze waypoint motion; -1 = never

  adhoc::SimTime duration = 60 * adhoc::kSecond;  ///< simulated time budget
  adhoc::SimTime reportEvery = 10 * adhoc::kSecond;
  bool untilQuiet = true;  ///< stop early once the protocol quiesces

  bool json = false;          ///< machine-readable SimReport instead of prose
  std::string metricsPath;    ///< dump telemetry (JSON + Prometheus); "-" = stdout
  std::string eventsPath;     ///< JSONL event log; "-" = stdout
  std::string chaosSpec;      ///< fault plan: JSON path or "template:seed"

  bool help = false;
};

[[nodiscard]] SimOptions parseSimOptions(const std::vector<std::string>& args);
[[nodiscard]] std::string simUsage();
[[nodiscard]] std::string_view toString(SimProtocolKind kind) noexcept;

}  // namespace selfstab::cli
