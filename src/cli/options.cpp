#include "cli/options.hpp"

#include <charconv>
#include <unordered_map>

namespace selfstab::cli {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw CliError(message);
}

std::size_t parseSize(const std::string& text, const std::string& what) {
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    fail("invalid " + what + ": '" + text + "'");
  }
  return value;
}

double parseDouble(const std::string& text, const std::string& what) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) fail("invalid " + what + ": '" + text + "'");
    return value;
  } catch (const std::logic_error&) {
    fail("invalid " + what + ": '" + text + "'");
  }
}

std::vector<std::string> splitColons(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t colon = text.find(':', begin);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(begin));
      return parts;
    }
    parts.push_back(text.substr(begin, colon - begin));
    begin = colon + 1;
  }
}

}  // namespace

GraphSpec parseGraphSpec(const std::string& spec) {
  const auto parts = splitColons(spec);
  const std::string& kind = parts[0];
  GraphSpec gs;

  const auto wantParts = [&](std::size_t count) {
    if (parts.size() != count) {
      fail("graph spec '" + spec + "': expected " + std::to_string(count - 1) +
           " ':'-separated argument(s) after '" + kind + "'");
    }
  };

  if (kind == "path" || kind == "cycle" || kind == "star" ||
      kind == "complete" || kind == "tree") {
    wantParts(2);
    gs.n = parseSize(parts[1], "size");
    gs.kind = kind == "path"       ? GraphSpec::Kind::Path
              : kind == "cycle"    ? GraphSpec::Kind::Cycle
              : kind == "star"     ? GraphSpec::Kind::Star
              : kind == "complete" ? GraphSpec::Kind::Complete
                                   : GraphSpec::Kind::Tree;
    if (gs.kind == GraphSpec::Kind::Cycle && gs.n < 3) {
      fail("cycle needs at least 3 vertices");
    }
  } else if (kind == "grid") {
    wantParts(2);
    const std::size_t x = parts[1].find('x');
    if (x == std::string::npos) fail("grid spec must be grid:RxC");
    gs.kind = GraphSpec::Kind::Grid;
    gs.n = parseSize(parts[1].substr(0, x), "grid rows");
    gs.cols = parseSize(parts[1].substr(x + 1), "grid cols");
  } else if (kind == "gnp") {
    wantParts(3);
    gs.kind = GraphSpec::Kind::Gnp;
    gs.n = parseSize(parts[1], "size");
    gs.param = parseDouble(parts[2], "edge probability");
    // !(a && b) instead of (< || >): NaN must not slip through.
    if (!(gs.param >= 0.0 && gs.param <= 1.0)) {
      fail("gnp probability not in [0,1]");
    }
  } else if (kind == "udg") {
    wantParts(3);
    gs.kind = GraphSpec::Kind::Udg;
    gs.n = parseSize(parts[1], "size");
    gs.param = parseDouble(parts[2], "radius");
    if (!(gs.param > 0.0)) fail("udg radius must be positive");  // NaN-safe
  } else if (kind == "file") {
    wantParts(2);
    gs.kind = GraphSpec::Kind::File;
    gs.path = parts[1];
    if (gs.path.empty()) fail("file spec needs a path");
  } else {
    fail("unknown graph kind '" + kind + "'");
  }
  return gs;
}

Options parseOptions(const std::vector<std::string>& args) {
  Options options;

  const auto next = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) fail("missing value for " + flag);
    return args[++i];
  };

  static const std::unordered_map<std::string, ProtocolKind> kProtocols{
      {"smm", ProtocolKind::Smm},
      {"smm-arbitrary", ProtocolKind::SmmArbitrary},
      {"hh-sync", ProtocolKind::HsuHuangSync},
      {"sis", ProtocolKind::Sis},
      {"coloring", ProtocolKind::Coloring},
      {"domset", ProtocolKind::DominatingSet},
      {"bfstree", ProtocolKind::BfsTree},
      {"leadertree", ProtocolKind::LeaderTree},
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--protocol" || arg == "-p") {
      const std::string value = next(i, arg);
      const auto it = kProtocols.find(value);
      if (it == kProtocols.end()) fail("unknown protocol '" + value + "'");
      options.protocol = it->second;
    } else if (arg == "--graph" || arg == "-g") {
      options.graph = parseGraphSpec(next(i, arg));
    } else if (arg == "--ids") {
      const std::string value = next(i, arg);
      if (value == "identity") {
        options.idOrder = IdOrderKind::Identity;
      } else if (value == "reversed") {
        options.idOrder = IdOrderKind::Reversed;
      } else if (value == "random") {
        options.idOrder = IdOrderKind::Random;
      } else {
        fail("unknown id order '" + value + "'");
      }
    } else if (arg == "--start") {
      const std::string value = next(i, arg);
      if (value == "clean") {
        options.start = StartKind::Clean;
      } else if (value == "random") {
        options.start = StartKind::Random;
      } else {
        fail("unknown start '" + value + "'");
      }
    } else if (arg == "--seed") {
      options.seed = parseSize(next(i, arg), "seed");
    } else if (arg == "--max-rounds") {
      options.maxRounds = parseSize(next(i, arg), "max rounds");
    } else if (arg == "--schedule") {
      const std::string value = next(i, arg);
      if (value == "dense") {
        options.schedule = engine::Schedule::Dense;
      } else if (value == "active") {
        options.schedule = engine::Schedule::Active;
      } else {
        fail("unknown schedule '" + value + "'");
      }
    } else if (arg == "--kernel") {
      const std::string value = next(i, arg);
      if (value == "auto") {
        options.kernel = engine::KernelMode::Auto;
      } else if (value == "generic") {
        options.kernel = engine::KernelMode::Generic;
      } else if (value == "flat") {
        options.kernel = engine::KernelMode::Flat;
      } else {
        fail("unknown kernel '" + value + "'");
      }
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--dot") {
      options.dotPath = next(i, arg);
    } else if (arg == "--csv") {
      options.csvPath = next(i, arg);
    } else if (arg == "--save-graph") {
      options.saveGraphPath = next(i, arg);
    } else if (arg == "--metrics") {
      options.metricsPath = next(i, arg);
    } else if (arg == "--events") {
      options.eventsPath = next(i, arg);
    } else if (arg == "--chaos") {
      options.chaosSpec = next(i, arg);
      if (options.chaosSpec.empty()) fail("--chaos needs a plan");
    } else {
      fail("unknown argument '" + arg + "' (try --help)");
    }
  }
  return options;
}

std::string usage() {
  return R"(selfstab — self-stabilizing protocols for ad hoc networks
(Goddard, Hedetniemi, Jacobs, Srimani; IPDPS 2003)

usage: selfstab [options]

  --protocol, -p  smm | smm-arbitrary | hh-sync | sis | coloring | domset
                  | bfstree | leadertree                      [default: smm]
  --graph, -g     path:N | cycle:N | star:N | complete:N | tree:N
                  | grid:RxC | gnp:N:P | udg:N:R | file:PATH  [default: gnp:32:0.1]
  --ids           identity | reversed | random                [default: identity]
  --start         clean | random                              [default: clean]
  --seed          64-bit seed for all randomness              [default: 1]
  --max-rounds    round budget (0 = protocol-appropriate)     [default: 0]
  --schedule      dense | active (evaluate only dirty nodes;
                  trajectory is bit-identical)                [default: dense]
  --kernel        auto | generic | flat (compiled SoA fast path for
                  smm/sis; trajectory is bit-identical)       [default: auto]
  --json          print the run report as one JSON object
  --trace         print per-round progress
  --dot PATH      write the final graph + solution as Graphviz DOT
  --csv PATH      write a per-round CSV trace (round, moves, size)
  --save-graph P  write the (possibly generated) topology as an edge list
  --metrics PATH  dump run telemetry as JSON + Prometheus text ("-" = stdout)
  --events PATH   write a JSONL event log ("-" = stdout)
  --chaos SPEC    run a fault campaign: a JSON plan file, or a built-in
                  template "churn:SEED" | "crash-storm:SEED"
                  | "rolling-partition:SEED" (see docs/ROBUSTNESS.md)
  --help, -h      this text

examples:
  selfstab -p smm -g udg:50:0.3 --trace
  selfstab -p sis -g file:topo.txt --ids random --seed 7
  selfstab -p smm-arbitrary -g cycle:4     # the paper's counterexample
  selfstab -p smm -g gnp:40:0.15 --chaos churn:7 --events -
)";
}

std::string_view toString(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::Smm:
      return "smm";
    case ProtocolKind::SmmArbitrary:
      return "smm-arbitrary";
    case ProtocolKind::HsuHuangSync:
      return "hh-sync";
    case ProtocolKind::Sis:
      return "sis";
    case ProtocolKind::Coloring:
      return "coloring";
    case ProtocolKind::DominatingSet:
      return "domset";
    case ProtocolKind::BfsTree:
      return "bfstree";
    case ProtocolKind::LeaderTree:
      return "leadertree";
  }
  return "?";
}

}  // namespace selfstab::cli
