// Quickstart: the public API in ~60 lines.
//
//   1. Build a network topology        (selfstab::graph)
//   2. Pick a protocol                 (selfstab::core)
//   3. Run it under synchronous rounds (selfstab::engine)
//   4. Verify the stabilized predicate (selfstab::analysis)
#include <iostream>

#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace selfstab;

  // 1. An ad hoc deployment: 30 hosts dropped uniformly in the unit square,
  //    radios reaching 0.3 units. Unique IDs are just 0..n-1 here.
  graph::Rng rng(/*seed=*/2003);
  const graph::Graph g = graph::connectedRandomGeometric(30, 0.3, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.order());
  std::cout << "network: " << g.order() << " hosts, " << g.size()
            << " radio links\n";

  // 2+3. Maximal matching with the paper's Algorithm SMM, from the clean
  //      all-null start (self-stabilization means ANY start works; see the
  //      fault-tolerance example for adversarial ones).
  const core::SmmProtocol smm = core::smmPaper();
  engine::SyncRunner<core::PointerState> runner(smm, g, ids);
  auto states = runner.initialStates();
  const engine::RunResult result = runner.run(states, g.order() + 2);

  std::cout << "SMM stabilized: " << std::boolalpha << result.stabilized
            << " after " << result.rounds << " rounds (bound: "
            << g.order() + 1 << ")\n";

  // 4. Inspect and verify the result.
  const auto matching = analysis::matchedEdges(g, states);
  std::cout << "matched pairs (" << matching.size() << "):";
  for (const auto& e : matching) std::cout << "  " << e.u << "-" << e.v;
  std::cout << "\nmaximal matching verified: "
            << analysis::checkMatchingFixpoint(g, states).ok() << "\n\n";

  // Same drill for a maximal independent set with Algorithm SIS.
  const core::SisProtocol sis;
  engine::SyncRunner<core::BitState> sisRunner(sis, g, ids);
  auto sisStates = sisRunner.initialStates();
  const auto sisResult = sisRunner.run(sisStates, g.order() + 1);
  const auto members = analysis::membersOf(sisStates);

  std::cout << "SIS stabilized: " << sisResult.stabilized << " after "
            << sisResult.rounds << " rounds (bound: " << g.order() << ")\n";
  std::cout << "independent set (" << members.size() << "):";
  for (const auto v : members) std::cout << ' ' << v;
  std::cout << "\nmaximal independent set verified: "
            << analysis::isMaximalIndependentSet(g, members) << '\n';
  return 0;
}
