// Continuous network monitoring: self-stabilizing aggregation over beacons.
//
// A field of sensors must report a network-wide aggregate (here: total and
// average reading) to whoever asks — without any coordinator. The
// aggregation protocol composes leader election, spanning-tree maintenance,
// and convergecast in one self-stabilizing rule set; the elected leader's
// state always (re-)converges to the exact component-wide total, through
// sensor-value changes, transient corruption, and beacon loss.
//
// Everything runs over the discrete-event beacon simulator: the aggregate
// rides the same periodic beacons the link layer already sends.
#include <iomanip>
#include <iostream>

#include "adhoc/network.hpp"
#include "core/aggregation.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace selfstab;
  using adhoc::kSecond;

  constexpr std::size_t kSensors = 18;

  adhoc::NetworkConfig config;
  config.seed = 314;
  config.radius = 0.35;
  config.lossProbability = 0.05;

  graph::Rng rng(27);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(kSensors, config.radius, rng, &pts);
  adhoc::StaticPlacement mobility(pts);
  const graph::IdAssignment ids = graph::IdAssignment::identity(kSensors);

  // Sensor readings are protocol *inputs*; we mutate them live below.
  std::vector<std::uint64_t> readings(kSensors);
  for (std::size_t v = 0; v < kSensors; ++v) readings[v] = 20 + v;

  const core::AggregationProtocol protocol(
      static_cast<std::uint32_t>(kSensors), &readings);
  adhoc::NetworkSimulator<core::AggregateState> sim(protocol, ids, mobility,
                                                    config);

  const auto groundTruth = [&] {
    std::uint64_t total = 0;
    for (const auto r : readings) total += r;
    return total;
  };

  const auto leaderReport = [&](const char* phase) {
    const auto states = sim.states();
    // The leader is the node that believes itself root (dist 0, own id).
    std::size_t leader = kSensors;
    for (std::size_t v = 0; v < kSensors; ++v) {
      if (states[v].tree.root == ids.idOf(static_cast<graph::Vertex>(v)) &&
          states[v].tree.dist == 0) {
        leader = v;
        break;
      }
    }
    const std::uint64_t truth = groundTruth();
    const std::uint64_t reported =
        leader < kSensors ? states[leader].sum : 0;
    std::cout << std::setw(5) << sim.now() / kSecond << "s  " << std::setw(24)
              << phase << "  leader=" << leader << "  reported=" << reported
              << "  truth=" << truth
              << (reported == truth ? "  [exact]" : "  [stale]") << '\n';
  };

  std::cout << "time   phase                     aggregate state\n"
            << "--------------------------------------------------------\n";

  // Phase 1: cold start.
  sim.runUntilQuiet(5 * config.beaconInterval, 120 * kSecond);
  leaderReport("stabilized");

  // Phase 2: readings change (a heat wave on three sensors).
  readings[2] += 500;
  readings[9] += 500;
  readings[14] += 500;
  leaderReport("readings changed");
  // A reading change is invisible to the quiet detector until the first
  // node reacts to it, so advance a few beacon intervals first.
  sim.run(sim.now() + 10 * config.beaconInterval);
  sim.runUntilQuiet(5 * config.beaconInterval, sim.now() + 120 * kSecond);
  leaderReport("re-stabilized");

  // Phase 3: transient fault wipes all protocol state.
  {
    graph::Rng corruption(5);
    const auto topo = sim.currentTopology();
    auto scrambled = sim.states();
    for (graph::Vertex v = 0; v < kSensors; ++v) {
      scrambled[v] = core::randomAggregateState(v, topo, corruption);
    }
    sim.setStates(std::move(scrambled));
  }
  leaderReport("TRANSIENT FAULT");
  sim.runUntilQuiet(5 * config.beaconInterval, sim.now() + 120 * kSecond);
  leaderReport("recovered");

  // Final verdict for the harness.
  const auto states = sim.states();
  std::uint64_t reported = 0;
  for (std::size_t v = 0; v < kSensors; ++v) {
    if (states[v].tree.dist == 0 &&
        states[v].tree.root == ids.idOf(static_cast<graph::Vertex>(v))) {
      reported = states[v].sum;
    }
  }
  const bool ok = reported == groundTruth();
  std::cout << "--------------------------------------------------------\n"
            << "final aggregate " << (ok ? "EXACT" : "WRONG") << ": "
            << reported << " over " << kSensors << " sensors\n";
  return ok ? 0 : 1;
}
