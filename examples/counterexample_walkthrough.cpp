// A round-by-round walkthrough of the paper's Section 3 counterexample.
//
// "It is interesting to note that in rule R2 of Algorithm SMM, it is
//  necessary that i select a minimum neighbor j, rather than an arbitrary
//  neighbor. For if we were to omit this requirement, the algorithm may not
//  stabilize: Consider a four cycle, with all pointers initially null,
//  which repeatedly select their clockwise neighbor using rule R2, and then
//  execute rule R3."
//
// This program replays exactly that schedule and prints every
// configuration with its node-type classification (Figure 2), then shows
// the min-ID rule resolving the same instance. Output is a teaching aid —
// the machine-checked version lives in bench/exp_counterexample.
#include <iomanip>
#include <iostream>

#include "analysis/node_types.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace {

using namespace selfstab;

std::string show(const core::PointerState& s) {
  return s.isNull() ? "Λ" : std::to_string(s.ptr);
}

void printConfig(const graph::Graph& g, std::size_t round,
                 const std::vector<core::PointerState>& states) {
  const auto types = analysis::classifyNodes(g, states);
  std::cout << "  t=" << round << ":  ";
  for (graph::Vertex v = 0; v < states.size(); ++v) {
    std::cout << v << "→" << show(states[v]) << " ["
              << analysis::toString(types[v]) << "]  ";
  }
  std::cout << '\n';
}

void replay(const core::SmmProtocol& protocol, const graph::Graph& g,
            std::size_t rounds) {
  const auto ids = graph::IdAssignment::identity(g.order());
  engine::SyncRunner<core::PointerState> runner(protocol, g, ids);
  std::vector<core::PointerState> states(g.order());
  printConfig(g, 0, states);
  for (std::size_t r = 1; r <= rounds; ++r) {
    const std::size_t moves = runner.step(states);
    printConfig(g, r, states);
    if (moves == 0) {
      std::cout << "  -> fixpoint (no node privileged)\n";
      return;
    }
  }
}

}  // namespace

int main() {
  const graph::Graph c4 = graph::cycle(4);
  const auto ids = graph::IdAssignment::identity(4);

  std::cout << "The four-cycle 0-1-2-3-0, all pointers initially null.\n\n"
            << "1) R2 picks the CLOCKWISE neighbor (the paper's broken "
               "schedule):\n";
  const core::SmmProtocol broken = core::smmArbitrary(core::Choice::Successor);
  replay(broken, c4, 6);

  const auto certificate = engine::traceTrajectory(
      broken, c4, ids, std::vector<core::PointerState>(4), 1000);
  std::cout << "\n  certificate: configuration at t="
            << certificate.cycleStart << " recurs every "
            << certificate.cycleLength
            << " rounds -> the protocol NEVER stabilizes.\n"
            << "  (everyone proposes clockwise via R2; every pointer's "
               "target points elsewhere,\n   so everyone backs off via R3; "
               "repeat forever.)\n\n";

  std::cout << "2) R2 picks the MINIMUM-ID null neighbor (the paper's "
               "Algorithm SMM):\n";
  const core::SmmProtocol fixed = core::smmPaper();
  replay(fixed, c4, 8);
  std::cout << "\n  min-ID proposals collide pairwise (the smallest-ID "
               "node's proposal is mutual),\n  so matches lock in and the "
               "system stabilizes within n+1 rounds (Theorem 1).\n";
  return certificate.cycled ? 0 : 1;
}
