// Clusterhead election in a mobile ad hoc network.
//
// The paper's introduction motivates maintaining global predicates like
// dominating sets "to optimize the number and the locations of the resource
// centers in a network". A maximal independent set is the classic
// clusterhead criterion: every host either IS a clusterhead or hears one
// (domination), and no two clusterheads interfere (independence).
//
// This example runs Algorithm SIS over the discrete-event beacon simulator:
// hosts roam by random waypoint, the link layer discovers/expires neighbors
// from beacons, and the clusterhead set keeps re-stabilizing as the
// topology changes. We snapshot the system once per simulated 10 seconds.
#include <iomanip>
#include <iostream>

#include "adhoc/network.hpp"
#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace selfstab;
  using adhoc::kSecond;

  constexpr std::size_t kHosts = 24;

  adhoc::NetworkConfig config;
  config.seed = 42;
  config.radius = 0.35;
  config.beaconInterval = 100 * adhoc::kMillisecond;
  config.lossProbability = 0.05;  // flaky radios

  adhoc::RandomWaypoint::Config wp;
  wp.speedMin = 0.01;
  wp.speedMax = 0.04;
  wp.pause = 2 * kSecond;
  wp.stopTime = 80 * kSecond;  // hosts settle down near the end

  graph::Rng rng(7);
  adhoc::RandomWaypoint mobility(graph::randomPoints(kHosts, rng), wp, 99);
  const graph::IdAssignment ids = graph::IdAssignment::identity(kHosts);

  const core::SisProtocol sis;
  adhoc::NetworkSimulator<core::BitState> sim(sis, ids, mobility, config);

  std::cout << "t(s)  links  heads  dominated%  independent  moves(total)\n";
  std::cout << "-----------------------------------------------------------\n";
  for (int snapshot = 1; snapshot <= 12; ++snapshot) {
    sim.run(snapshot * 10 * kSecond);
    const graph::Graph topo = sim.currentTopology();
    const auto members = analysis::membersOf(sim.states());

    // Coverage: fraction of non-head hosts that hear at least one head.
    std::size_t covered = 0;
    std::size_t nonHeads = 0;
    std::vector<bool> isHead(kHosts, false);
    for (const auto v : members) isHead[v] = true;
    for (graph::Vertex v = 0; v < kHosts; ++v) {
      if (isHead[v]) continue;
      ++nonHeads;
      for (const graph::Vertex w : topo.neighbors(v)) {
        if (isHead[w]) {
          ++covered;
          break;
        }
      }
    }
    const double coverage =
        nonHeads == 0 ? 100.0
                      : 100.0 * static_cast<double>(covered) /
                            static_cast<double>(nonHeads);

    std::cout << std::setw(4) << snapshot * 10 << "  " << std::setw(5)
              << topo.size() << "  " << std::setw(5) << members.size()
              << "  " << std::setw(9) << std::fixed << std::setprecision(1)
              << coverage << "%  " << std::setw(11) << std::boolalpha
              << analysis::isIndependentSet(topo, members) << "  "
              << std::setw(12) << sim.stats().moves << '\n';
  }

  // After movement stops, let the election settle and verify it fully.
  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        sim.now() + 300 * kSecond);
  const graph::Graph finalTopo = sim.currentTopology();
  const auto finalHeads = analysis::membersOf(sim.states());
  std::cout << "-----------------------------------------------------------\n"
            << "final (quiet=" << std::boolalpha << result.quiet
            << "): " << finalHeads.size() << " clusterheads, maximal IS: "
            << analysis::isMaximalIndependentSet(finalTopo, finalHeads)
            << ", minimal dominating: "
            << analysis::isMinimalDominatingSet(finalTopo, finalHeads)
            << '\n';
  return 0;
}
