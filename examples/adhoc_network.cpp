// Full-stack demonstration of the paper's system model (Section 2).
//
// Everything at once: periodic jittered beacons, neighbor discovery with
// timeouts, message loss, random-waypoint mobility, AND a transient fault —
// halfway through, a memory fault scrambles every node's protocol state.
// Algorithm SMM shrugs both off and re-stabilizes. The example prints a
// narrated timeline so you can watch the link layer and the protocol layer
// interact.
#include <iomanip>
#include <iostream>

#include "adhoc/network.hpp"
#include "analysis/node_types.hpp"
#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace selfstab;
  using adhoc::kSecond;

  constexpr std::size_t kHosts = 20;

  adhoc::NetworkConfig config;
  config.seed = 2026;
  config.radius = 0.4;
  config.beaconInterval = 100 * adhoc::kMillisecond;
  config.jitterFraction = 0.1;
  config.lossProbability = 0.1;

  adhoc::RandomWaypoint::Config wp;
  wp.speedMin = 0.01;
  wp.speedMax = 0.03;
  wp.stopTime = 30 * kSecond;

  graph::Rng rng(11);
  adhoc::RandomWaypoint mobility(graph::randomPoints(kHosts, rng), wp, 5);
  const graph::IdAssignment ids = graph::IdAssignment::identity(kHosts);
  const core::SmmProtocol smm = core::smmPaper();
  adhoc::NetworkSimulator<core::PointerState> sim(smm, ids, mobility, config);

  const auto report = [&](const char* phase) {
    const graph::Graph topo = sim.currentTopology();
    const auto states = sim.states();
    const auto pairs = analysis::matchedEdges(topo, states);
    std::cout << std::setw(6) << sim.now() / kSecond << "s  " << std::setw(22)
              << phase << "  links=" << std::setw(3) << topo.size()
              << "  pairs=" << std::setw(2) << pairs.size()
              << "  beacons=" << std::setw(6) << sim.stats().beaconsSent
              << " (lost " << sim.stats().beaconsLost << ")"
              << "  moves=" << std::setw(4) << sim.stats().moves << '\n';
  };

  std::cout << "time   phase                   network / protocol counters\n"
            << "-------------------------------------------------------------"
               "---\n";

  // Phase 1: hosts roam for 30 simulated seconds.
  for (int tick = 1; tick <= 3; ++tick) {
    sim.run(tick * 10 * kSecond);
    report(tick == 3 ? "mobility stops" : "roaming");
  }

  // Phase 2: quiesce on the frozen topology.
  auto quiet = sim.runUntilQuiet(5 * config.beaconInterval,
                                 sim.now() + 120 * kSecond);
  report("stabilized");
  {
    const graph::Graph topo = sim.currentTopology();
    std::cout << "       -> maximal matching on the live topology: "
              << std::boolalpha
              << analysis::checkMatchingFixpoint(topo, sim.states()).ok()
              << " (quiet=" << quiet.quiet << ")\n";
  }

  // Phase 3: transient fault — scramble every pointer.
  {
    graph::Rng corruption(999);
    const graph::Graph topo = sim.currentTopology();
    auto scrambled = sim.states();
    for (graph::Vertex v = 0; v < kHosts; ++v) {
      scrambled[v] = core::wildPointerState(v, topo, corruption);
    }
    sim.setStates(std::move(scrambled));
    report("TRANSIENT FAULT");
  }

  // Phase 4: self-stabilization repairs it, no coordinator, no reset.
  quiet = sim.runUntilQuiet(5 * config.beaconInterval,
                            sim.now() + 120 * kSecond);
  report("recovered");
  const graph::Graph topo = sim.currentTopology();
  const bool ok = quiet.quiet &&
                  analysis::checkMatchingFixpoint(topo, sim.states()).ok();
  std::cout << "       -> recovered to a verified maximal matching: "
            << std::boolalpha << ok << '\n';

  // Node-type census of the final configuration (paper, Figure 2).
  const auto types = analysis::classifyNodes(topo, sim.states());
  const auto counts = analysis::countTypes(types);
  std::cout << "       -> final node types: M=" << counts.of(analysis::NodeType::M)
            << " A0=" << counts.of(analysis::NodeType::A0)
            << " (all others 0: "
            << (counts.of(analysis::NodeType::A1) +
                        counts.of(analysis::NodeType::PA) +
                        counts.of(analysis::NodeType::PM) +
                        counts.of(analysis::NodeType::PP) ==
                    0
                    ? "yes"
                    : "no")
            << ")\n";
  return ok ? 0 : 1;
}
