// Pairwise data exchange scheduling via maximal matching.
//
// A classic use of matchings in radio networks: in each "epoch", paired
// neighbors get a dedicated slot to exchange state (file chunks, routing
// tables, sensor aggregates) without contention — a node can talk to at
// most one partner at a time, which is exactly the matching constraint, and
// maximality means no two idle neighbors are left staring at each other.
//
// This example drives Algorithm SMM through repeated epochs on a changing
// topology: after every epoch a few links fail or appear (hosts drift), the
// protocol repairs the matching, and we account for the work every node got
// done. It runs on the abstract synchronous engine (rounds = beacon
// intervals in the deployed system).
#include <iomanip>
#include <iostream>

#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace selfstab;

  constexpr std::size_t kHosts = 40;
  constexpr int kEpochs = 12;
  constexpr std::size_t kChurnPerEpoch = 3;

  graph::Rng rng(1234);
  graph::Graph g = graph::connectedErdosRenyi(kHosts, 0.12, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(kHosts);
  const core::SmmProtocol smm = core::smmPaper();

  // Bytes exchanged per host across all epochs (one matched slot = 1 unit).
  std::vector<std::size_t> unitsExchanged(kHosts, 0);
  std::vector<core::PointerState> states(kHosts);  // all-null start

  std::cout << "epoch  links  repair-rounds  pairs  paired%  verified\n";
  std::cout << "------------------------------------------------------\n";

  std::size_t totalRepairRounds = 0;
  for (int epoch = 1; epoch <= kEpochs; ++epoch) {
    // Re-stabilize the matching on the current topology, reusing the state
    // left over from the previous epoch (self-stabilization does the
    // repair; no global reset needed).
    engine::SyncRunner<core::PointerState> runner(smm, g, ids);
    const auto result = runner.run(states, kHosts + 2);
    totalRepairRounds += result.rounds;

    const auto pairs = analysis::matchedEdges(g, states);
    const bool ok = result.stabilized &&
                    analysis::checkMatchingFixpoint(g, states).ok();
    for (const auto& e : pairs) {
      ++unitsExchanged[e.u];
      ++unitsExchanged[e.v];
    }

    std::cout << std::setw(5) << epoch << "  " << std::setw(5) << g.size()
              << "  " << std::setw(13) << result.rounds << "  "
              << std::setw(5) << pairs.size() << "  " << std::setw(6)
              << std::fixed << std::setprecision(1)
              << 100.0 * 2.0 * static_cast<double>(pairs.size()) / kHosts
              << "%  " << std::boolalpha << ok << '\n';

    // Hosts drift: a few links flip before the next epoch.
    engine::perturbTopology(g, rng, kChurnPerEpoch, /*keepConnected=*/true);
  }

  std::size_t busiest = 0;
  std::size_t idlest = unitsExchanged[0];
  for (const std::size_t u : unitsExchanged) {
    busiest = std::max(busiest, u);
    idlest = std::min(idlest, u);
  }
  std::cout << "------------------------------------------------------\n"
            << "total repair rounds over " << kEpochs
            << " epochs: " << totalRepairRounds << " (avg "
            << std::setprecision(2)
            << static_cast<double>(totalRepairRounds) / kEpochs
            << "/epoch)\n"
            << "slots per host: max " << busiest << ", min " << idlest
            << " of " << kEpochs << " epochs\n";
  return 0;
}
