// Multicast-tree maintenance over the beacon substrate.
//
// The paper's introduction opens with exactly this scenario: "a minimal
// spanning tree must be maintained to minimize latency and bandwidth
// requirements of multicast/broadcast messages" in an ad hoc network. We run
// the self-stabilizing BFS-tree protocol over the discrete-event beacon
// simulator with a gateway node as root, then:
//   1. disseminate a multicast along the stabilized tree and account for
//      per-hop latency against the optimal (BFS) depth,
//   2. scramble all routing state (transient fault) and show the tree heals,
//   3. re-run the multicast to show service is restored.
#include <deque>
#include <iostream>

#include "adhoc/network.hpp"
#include "analysis/verifiers.hpp"
#include "core/bfs_tree.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace {

using namespace selfstab;

// Delivers a multicast from `root` down the parent-pointer tree; returns
// (delivered count, max hops).
std::pair<std::size_t, std::size_t> multicast(
    const std::vector<core::TreeState>& states, graph::Vertex root) {
  // children lists from parent pointers
  std::vector<std::vector<graph::Vertex>> children(states.size());
  for (graph::Vertex v = 0; v < states.size(); ++v) {
    if (v != root && states[v].parent != graph::kNoVertex) {
      children[states[v].parent].push_back(v);
    }
  }
  std::size_t delivered = 0;
  std::size_t maxHops = 0;
  std::deque<std::pair<graph::Vertex, std::size_t>> queue{{root, 0}};
  while (!queue.empty()) {
    const auto [v, hops] = queue.front();
    queue.pop_front();
    ++delivered;
    maxHops = std::max(maxHops, hops);
    for (const graph::Vertex c : children[v]) queue.emplace_back(c, hops + 1);
  }
  return {delivered, maxHops};
}

}  // namespace

int main() {
  using adhoc::kSecond;
  constexpr std::size_t kHosts = 25;
  constexpr graph::Vertex kGateway = 0;

  adhoc::NetworkConfig config;
  config.seed = 77;
  config.radius = 0.32;
  config.lossProbability = 0.05;

  graph::Rng rng(3);
  std::vector<graph::Point> pts;
  const graph::Graph planned =
      graph::connectedRandomGeometric(kHosts, config.radius, rng, &pts);
  adhoc::StaticPlacement mobility(pts);
  const graph::IdAssignment ids = graph::IdAssignment::identity(kHosts);

  const core::BfsTreeProtocol bfs(ids.idOf(kGateway),
                                  static_cast<std::uint32_t>(kHosts));
  adhoc::NetworkSimulator<core::TreeState> sim(bfs, ids, mobility, config);

  const auto truth = graph::bfsDistances(planned, kGateway);
  std::size_t optimalDepth = 0;
  for (const std::size_t d : truth) {
    if (d != graph::kUnreachable) optimalDepth = std::max(optimalDepth, d);
  }
  std::cout << "deployment: " << kHosts << " hosts, " << planned.size()
            << " links, gateway=" << kGateway
            << ", optimal depth=" << optimalDepth << " hops\n\n";

  // Phase 1: build the tree from cold start.
  auto quiet = sim.runUntilQuiet(5 * config.beaconInterval, 300 * kSecond);
  const graph::Graph topo = sim.currentTopology();
  bool treeOk = analysis::isShortestPathTree(topo, ids, kGateway, kHosts,
                                             sim.states());
  std::cout << "tree built: quiet=" << std::boolalpha << quiet.quiet
            << " in ~" << sim.lastMoveTime() / config.beaconInterval
            << " beacon rounds, verified shortest-path tree: " << treeOk
            << '\n';

  auto [delivered, hops] = multicast(sim.states(), kGateway);
  std::cout << "multicast #1: delivered to " << delivered << "/" << kHosts
            << " hosts, max depth " << hops << " hops\n\n";

  // Phase 2: transient fault wipes all routing state.
  {
    graph::Rng corruption(13);
    auto scrambled = sim.states();
    for (graph::Vertex v = 0; v < kHosts; ++v) {
      scrambled[v] = core::randomTreeState(v, topo, corruption);
    }
    sim.setStates(std::move(scrambled));
    auto [lost, badHops] = multicast(sim.states(), kGateway);
    std::cout << "FAULT: routing state scrambled; multicast now reaches "
              << lost << "/" << kHosts << " hosts (depth " << badHops
              << ")\n";
  }

  // Phase 3: self-stabilization repairs the tree.
  quiet = sim.runUntilQuiet(5 * config.beaconInterval,
                            sim.now() + 300 * kSecond);
  treeOk = analysis::isShortestPathTree(sim.currentTopology(), ids, kGateway,
                                        kHosts, sim.states());
  std::tie(delivered, hops) = multicast(sim.states(), kGateway);
  std::cout << "healed: quiet=" << quiet.quiet
            << ", verified shortest-path tree: " << treeOk << '\n'
            << "multicast #2: delivered to " << delivered << "/" << kHosts
            << " hosts, max depth " << hops << " hops\n";

  return (quiet.quiet && treeOk && delivered == kHosts) ? 0 : 1;
}
