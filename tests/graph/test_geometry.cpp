#include "graph/geometry.hpp"

#include <gtest/gtest.h>

namespace selfstab::graph {
namespace {

TEST(Geometry, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, RandomPointsInUnitSquare) {
  Rng rng(1);
  const auto pts = randomPoints(200, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Geometry, UnitDiskGraphEdgesMatchRadius) {
  const std::vector<Point> pts{{0.0, 0.0}, {0.2, 0.0}, {0.5, 0.0}};
  const Graph g = unitDiskGraph(pts, 0.25);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(1, 2));
  EXPECT_EQ(g.size(), 1u);
}

TEST(Geometry, UnitDiskRadiusIsInclusive) {
  const std::vector<Point> pts{{0.0, 0.0}, {0.25, 0.0}};
  const Graph g = unitDiskGraph(pts, 0.25);
  EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(Geometry, FullRadiusGivesCompleteGraph) {
  Rng rng(2);
  const auto pts = randomPoints(20, rng);
  const Graph g = unitDiskGraph(pts, 2.0);  // > diagonal of unit square
  EXPECT_EQ(g.size(), 20u * 19u / 2);
}

}  // namespace
}  // namespace selfstab::graph
