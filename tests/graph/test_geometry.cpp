#include "graph/geometry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace selfstab::graph {
namespace {

TEST(Geometry, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(squaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(Geometry, RandomPointsInUnitSquare) {
  Rng rng(1);
  const auto pts = randomPoints(200, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const Point& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(Geometry, UnitDiskGraphEdgesMatchRadius) {
  const std::vector<Point> pts{{0.0, 0.0}, {0.2, 0.0}, {0.5, 0.0}};
  const Graph g = unitDiskGraph(pts, 0.25);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.hasEdge(1, 2));
  EXPECT_EQ(g.size(), 1u);
}

TEST(Geometry, UnitDiskRadiusIsInclusive) {
  const std::vector<Point> pts{{0.0, 0.0}, {0.25, 0.0}};
  const Graph g = unitDiskGraph(pts, 0.25);
  EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(Geometry, FullRadiusGivesCompleteGraph) {
  Rng rng(2);
  const auto pts = randomPoints(20, rng);
  const Graph g = unitDiskGraph(pts, 2.0);  // > diagonal of unit square
  EXPECT_EQ(g.size(), 20u * 19u / 2);
}

TEST(SpatialGrid, GatherIsASupersetOfTheDisk) {
  Rng rng(7);
  const auto pts = randomPoints(500, rng);
  SpatialGrid grid(pts.size(), 0.1);
  for (Vertex v = 0; v < pts.size(); ++v) grid.place(v, pts[v]);

  for (int trial = 0; trial < 50; ++trial) {
    const Point center{rng.real(), rng.real()};
    const double radius = rng.real(0.0, 0.3);
    std::vector<Vertex> got;
    grid.gather(center, radius, got);
    std::sort(got.begin(), got.end());
    // No duplicates: each vertex is recorded in exactly one cell.
    EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
    // Every vertex actually inside the disk must be among the candidates.
    for (Vertex v = 0; v < pts.size(); ++v) {
      if (squaredDistance(pts[v], center) <= radius * radius) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), v))
            << "trial " << trial << " missed vertex " << v;
      }
    }
  }
}

TEST(SpatialGrid, PlaceMovesVerticesBetweenCells) {
  SpatialGrid grid(16, 0.25);  // 4x4 grid
  grid.place(0, {0.1, 0.1});
  grid.place(1, {0.1, 0.15});
  grid.place(2, {0.9, 0.9});
  EXPECT_EQ(grid.cellMembers(grid.cellOf({0.1, 0.1})).size(), 2u);

  grid.place(0, {0.9, 0.92});  // far move: swap-popped out of the old cell
  EXPECT_EQ(grid.cellMembers(grid.cellOf({0.1, 0.1})).size(), 1u);
  EXPECT_EQ(grid.cellMembers(grid.cellOf({0.1, 0.1})).front(), 1u);
  EXPECT_EQ(grid.cellMembers(grid.cellOf({0.9, 0.9})).size(), 2u);

  std::vector<Vertex> got;
  grid.gather({0.9, 0.9}, 0.1, got);
  EXPECT_NE(std::find(got.begin(), got.end(), 0u), got.end());
  EXPECT_NE(std::find(got.begin(), got.end(), 2u), got.end());
}

TEST(SpatialGrid, OutOfSquareCoordinatesClampSafely) {
  SpatialGrid grid(4, 0.5);
  grid.place(0, {-0.3, 1.7});  // clamps into a border cell
  std::vector<Vertex> got;
  grid.gather({0.0, 1.0}, 0.8, got);  // query rectangle leaves the square too
  EXPECT_NE(std::find(got.begin(), got.end(), 0u), got.end());
}

TEST(SpatialGrid, TinyCellWidthIsCappedNearOrder) {
  // A minuscule radius must not allocate 1/width^2 cells; the grid caps at
  // ~order cells and stays correct because gather widens over more cells.
  SpatialGrid grid(100, 1e-6);
  EXPECT_LE(grid.cellCount(), 100u);
  grid.place(7, {0.5, 0.5});
  std::vector<Vertex> got;
  grid.gather({0.5001, 0.5001}, 0.001, got);
  EXPECT_NE(std::find(got.begin(), got.end(), 7u), got.end());
}

}  // namespace
}  // namespace selfstab::graph
