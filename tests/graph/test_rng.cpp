#include "graph/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace selfstab {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, InjectiveOnSmallSample) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    sawLo |= (x == -3);
    sawHi |= (x == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, RangeHandlesExtremeBounds) {
  Rng rng(7);
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < 1000; ++i) {
    // Full span: every value is legal; just must not trap/overflow.
    (void)rng.range(kMin, kMax);
    const auto nearMax = rng.range(kMax - 3, kMax);
    EXPECT_GE(nearMax, kMax - 3);
    const auto nearMin = rng.range(kMin, kMin + 3);
    EXPECT_LE(nearMin, kMin + 3);
    EXPECT_GE(nearMin, kMin);
  }
}

TEST(Rng, PickReturnsContainedElement) {
  Rng rng(31);
  const std::vector<int> items{10, 20, 30};
  std::array<int, 3> seen{};
  for (int i = 0; i < 300; ++i) {
    const int& x = rng.pick(std::span<const int>(items));
    ASSERT_TRUE(x == 10 || x == 20 || x == 30);
    ++seen[static_cast<std::size_t>(x / 10 - 1)];
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, RealMeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.real();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(29);
  std::array<int, 8> buckets{};
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[rng.below(8)];
  }
  for (const int count : buckets) {
    EXPECT_NEAR(count, kSamples / 8, kSamples / 80);
  }
}

}  // namespace
}  // namespace selfstab
