#include "graph/id_order.hpp"

#include <gtest/gtest.h>

namespace selfstab::graph {
namespace {

TEST(IdAssignment, IdentityMapsVertexToItself) {
  const auto ids = IdAssignment::identity(5);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(ids.idOf(v), v);
  EXPECT_TRUE(ids.isValid(5));
}

TEST(IdAssignment, ReversedMapsToComplement) {
  const auto ids = IdAssignment::reversed(4);
  EXPECT_EQ(ids.idOf(0), 3u);
  EXPECT_EQ(ids.idOf(3), 0u);
  EXPECT_TRUE(ids.isValid(4));
}

TEST(IdAssignment, RandomPermutationIsValid) {
  Rng rng(1);
  const auto ids = IdAssignment::randomPermutation(64, rng);
  EXPECT_TRUE(ids.isValid(64));
  // All IDs within 0..63.
  for (Vertex v = 0; v < 64; ++v) EXPECT_LT(ids.idOf(v), 64u);
}

TEST(IdAssignment, RandomSparseIsValid) {
  Rng rng(2);
  const auto ids = IdAssignment::randomSparse(100, rng);
  EXPECT_TRUE(ids.isValid(100));
}

TEST(IdAssignment, LessComparesIds) {
  const auto ids = IdAssignment::reversed(3);  // ids: 2 1 0
  EXPECT_TRUE(ids.less(2, 0));
  EXPECT_FALSE(ids.less(0, 2));
  EXPECT_FALSE(ids.less(1, 1));
}

TEST(IdAssignment, IsValidRejectsDuplicates) {
  const IdAssignment ids(std::vector<Id>{1, 2, 2});
  EXPECT_FALSE(ids.isValid(3));
}

TEST(IdAssignment, IsValidRejectsWrongSize) {
  const IdAssignment ids(std::vector<Id>{1, 2, 3});
  EXPECT_FALSE(ids.isValid(4));
}

}  // namespace
}  // namespace selfstab::graph
