#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace selfstab::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.order(), 0u);
  EXPECT_EQ(g.size(), 0u);
}

TEST(Graph, EdgelessGraph) {
  Graph g(5);
  EXPECT_EQ(g.order(), 5u);
  EXPECT_EQ(g.size(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(4);
  EXPECT_TRUE(g.addEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Graph, AddDuplicateEdgeFails) {
  Graph g(3);
  EXPECT_TRUE(g.addEdge(1, 2));
  EXPECT_FALSE(g.addEdge(1, 2));
  EXPECT_FALSE(g.addEdge(2, 1));
  EXPECT_EQ(g.size(), 1u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_FALSE(g.addEdge(1, 1));
  EXPECT_EQ(g.size(), 0u);
  EXPECT_FALSE(g.hasEdge(1, 1));
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  EXPECT_TRUE(g.removeEdge(0, 1));
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_FALSE(g.removeEdge(0, 1));
}

TEST(Graph, NeighborsSorted) {
  Graph g(6);
  g.addEdge(3, 5);
  g.addEdge(3, 0);
  g.addEdge(3, 4);
  g.addEdge(3, 1);
  const auto nbrs = g.neighbors(3);
  const std::vector<Vertex> expected{0, 1, 4, 5};
  EXPECT_EQ(std::vector<Vertex>(nbrs.begin(), nbrs.end()), expected);
}

TEST(Graph, EdgesEnumeratedOnceNormalized) {
  Graph g(4);
  g.addEdge(2, 1);
  g.addEdge(3, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 3}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
}

TEST(Graph, ToggleEdge) {
  Graph g(3);
  EXPECT_TRUE(g.toggleEdge(0, 2));   // added
  EXPECT_TRUE(g.hasEdge(0, 2));
  EXPECT_FALSE(g.toggleEdge(0, 2));  // removed
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.size(), 0u);
}

TEST(Graph, ClearEdges) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.clearEdges();
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.order(), 4u);
  EXPECT_FALSE(g.hasEdge(0, 1));
}

TEST(Graph, MinMaxDegree) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(0, 3);
  EXPECT_EQ(g.maxDegree(), 3u);
  EXPECT_EQ(g.minDegree(), 1u);
}

TEST(Graph, HasEdgeOutOfRangeIsFalse) {
  Graph g(2);
  g.addEdge(0, 1);
  EXPECT_FALSE(g.hasEdge(0, 5));
  EXPECT_FALSE(g.hasEdge(7, 9));
}

TEST(Graph, EqualityComparesStructure) {
  Graph a(3);
  Graph b(3);
  a.addEdge(0, 1);
  EXPECT_NE(a, b);
  b.addEdge(0, 1);
  EXPECT_EQ(a, b);
}

TEST(MakeEdge, NormalizesOrder) {
  EXPECT_EQ(makeEdge(5, 2), (Edge{2, 5}));
  EXPECT_EQ(makeEdge(2, 5), (Edge{2, 5}));
}

}  // namespace
}  // namespace selfstab::graph
