#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"

namespace selfstab::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = path(5);
  EXPECT_EQ(g.order(), 5u);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, SingletonAndEmptyPath) {
  EXPECT_EQ(path(1).size(), 0u);
  EXPECT_EQ(path(0).order(), 0u);
}

TEST(Generators, Cycle) {
  const Graph g = cycle(6);
  EXPECT_EQ(g.size(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.hasEdge(5, 0));
}

TEST(Generators, Complete) {
  const Graph g = complete(7);
  EXPECT_EQ(g.size(), 21u);
  EXPECT_EQ(g.minDegree(), 6u);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = completeBipartite(3, 4);
  EXPECT_EQ(g.order(), 7u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_TRUE(isBipartite(g));
  EXPECT_FALSE(g.hasEdge(0, 1));  // same side
  EXPECT_TRUE(g.hasEdge(0, 3));
}

TEST(Generators, Star) {
  const Graph g = star(6);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(g.maxDegree(), 5u);
  EXPECT_EQ(g.minDegree(), 1u);
}

TEST(Generators, Grid) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.order(), 12u);
  // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.size(), 17u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_TRUE(isBipartite(g));
}

TEST(Generators, Hypercube) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.order(), 16u);
  EXPECT_EQ(g.size(), 32u);  // d * 2^(d-1)
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(isBipartite(g));
}

TEST(Generators, BinaryTree) {
  const Graph g = binaryTree(15);
  EXPECT_EQ(g.size(), 14u);
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.degree(0), 2u);
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = randomTree(40, rng);
    EXPECT_EQ(g.size(), 39u);
    EXPECT_TRUE(isConnected(g));
  }
}

TEST(Generators, Caterpillar) {
  const Graph g = caterpillar(4, 2);
  EXPECT_EQ(g.order(), 12u);
  EXPECT_EQ(g.size(), 11u);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, Wheel) {
  const Graph g = wheel(7);  // hub + C6
  EXPECT_EQ(g.order(), 7u);
  EXPECT_EQ(g.size(), 12u);  // 6 spokes + 6 rim edges
  EXPECT_EQ(g.degree(0), 6u);
  for (Vertex v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_TRUE(g.hasEdge(6, 1));  // rim wraps
}

TEST(Generators, Petersen) {
  const Graph g = petersen();
  EXPECT_EQ(g.order(), 10u);
  EXPECT_EQ(g.size(), 15u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(triangleCount(g), 0u);  // girth 5
  EXPECT_FALSE(isBipartite(g));
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Generators, Barbell) {
  const Graph g = barbell(4, 2);
  EXPECT_EQ(g.order(), 10u);
  // 2 * C(4,2) + path edges (3) = 12 + 3.
  EXPECT_EQ(g.size(), 15u);
  EXPECT_TRUE(isConnected(g));

  const Graph direct = barbell(3, 0);  // cliques joined by one edge
  EXPECT_EQ(direct.order(), 6u);
  EXPECT_EQ(direct.size(), 7u);
  EXPECT_TRUE(direct.hasEdge(2, 3));
}

TEST(Generators, Lollipop) {
  const Graph g = lollipop(5, 3);
  EXPECT_EQ(g.order(), 8u);
  EXPECT_EQ(g.size(), 13u);  // C(5,2) + 3
  EXPECT_TRUE(isConnected(g));
  EXPECT_EQ(g.degree(7), 1u);  // tail end
}

TEST(Generators, RandomRegularIsRegular) {
  Rng rng(8);
  for (const std::size_t d : {2u, 3u, 4u}) {
    const Graph g = randomRegular(20, d, rng);
    EXPECT_EQ(g.order(), 20u);
    EXPECT_EQ(g.size(), 20u * d / 2);
    for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), d) << "d=" << d;
  }
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(2);
  EXPECT_EQ(erdosRenyi(10, 0.0, rng).size(), 0u);
  EXPECT_EQ(erdosRenyi(10, 1.0, rng).size(), 45u);
}

TEST(Generators, ErdosRenyiDensityRoughlyP) {
  Rng rng(3);
  const Graph g = erdosRenyi(100, 0.3, rng);
  const double maxEdges = 100.0 * 99.0 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.size()) / maxEdges, 0.3, 0.05);
}

TEST(Generators, ConnectedErdosRenyiIsConnected) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = connectedErdosRenyi(30, 0.02, rng);
    EXPECT_TRUE(isConnected(g));
  }
}

TEST(Generators, PreferentialAttachmentShapeAndDeterminism) {
  Rng rng(9);
  const Graph g = preferentialAttachment(60, 3, rng);
  EXPECT_EQ(g.order(), 60u);
  EXPECT_TRUE(isConnected(g));
  // Vertex v contributes min(v, m) fresh edges, all simple.
  std::size_t expected = 0;
  for (std::size_t v = 1; v < 60; ++v) expected += std::min<std::size_t>(v, 3);
  EXPECT_EQ(g.size(), expected);
  for (Vertex v = 3; v < 60; ++v) EXPECT_GE(g.degree(v), 3u);

  Rng rngA(10), rngB(10), rngC(11);
  const Graph a = preferentialAttachment(40, 2, rngA);
  EXPECT_EQ(a, preferentialAttachment(40, 2, rngB));
  EXPECT_NE(a, preferentialAttachment(40, 2, rngC));
}

TEST(Generators, PreferentialAttachmentSkewsDegrees) {
  // The rich-get-richer dynamic must produce a hub far above the mean degree
  // (this heavy tail is what the degree-weighted partitioner exists for).
  Rng rng(12);
  const Graph g = preferentialAttachment(400, 2, rng);
  std::size_t maxDeg = 0;
  for (Vertex v = 0; v < g.order(); ++v) {
    maxDeg = std::max<std::size_t>(maxDeg, g.degree(v));
  }
  const double mean = 2.0 * static_cast<double>(g.size()) / 400.0;
  EXPECT_GT(static_cast<double>(maxDeg), 4.0 * mean);
}

TEST(Generators, RandomGeometricReturnsPoints) {
  Rng rng(5);
  std::vector<Point> pts;
  const Graph g = randomGeometric(25, 0.3, rng, &pts);
  EXPECT_EQ(pts.size(), 25u);
  EXPECT_EQ(g, unitDiskGraph(pts, 0.3));
}

TEST(Generators, ConnectedRandomGeometricIsConnected) {
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = connectedRandomGeometric(30, 0.3, rng);
    EXPECT_TRUE(isConnected(g));
  }
}

TEST(Generators, ConnectedRandomGeometricFallbackStillConnected) {
  Rng rng(7);
  // Tiny radius: the unit-disk graph is essentially never connected, forcing
  // the spanning-tree fallback.
  const Graph g = connectedRandomGeometric(20, 0.01, rng, nullptr, 2);
  EXPECT_TRUE(isConnected(g));
}

}  // namespace
}  // namespace selfstab::graph
