#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace selfstab::graph {
namespace {

TEST(EdgeListIo, RoundTrip) {
  Rng rng(1);
  const Graph original = connectedErdosRenyi(20, 0.2, rng);
  std::stringstream ss;
  writeEdgeList(ss, original);
  const Graph parsed = readEdgeList(ss);
  EXPECT_EQ(parsed, original);
}

TEST(EdgeListIo, EmptyGraphRoundTrip) {
  std::stringstream ss;
  writeEdgeList(ss, Graph(4));
  const Graph parsed = readEdgeList(ss);
  EXPECT_EQ(parsed.order(), 4u);
  EXPECT_EQ(parsed.size(), 0u);
}

TEST(EdgeListIo, RejectsTruncatedInput) {
  std::stringstream ss("3 2\n0 1\n");
  EXPECT_THROW(readEdgeList(ss), ParseError);
}

TEST(EdgeListIo, RejectsOutOfRangeEndpoint) {
  std::stringstream ss("3 1\n0 7\n");
  EXPECT_THROW(readEdgeList(ss), ParseError);
}

TEST(EdgeListIo, RejectsSelfLoop) {
  std::stringstream ss("3 1\n1 1\n");
  EXPECT_THROW(readEdgeList(ss), ParseError);
}

TEST(EdgeListIo, RejectsDuplicateEdge) {
  std::stringstream ss("3 2\n0 1\n1 0\n");
  EXPECT_THROW(readEdgeList(ss), ParseError);
}

TEST(EdgeListIo, RejectsMissingHeader) {
  std::stringstream ss("");
  EXPECT_THROW(readEdgeList(ss), ParseError);
}

TEST(DimacsIo, RoundTrip) {
  Rng rng(2);
  const Graph original = connectedErdosRenyi(15, 0.3, rng);
  std::stringstream ss;
  writeDimacs(ss, original);
  const Graph parsed = readDimacs(ss);
  EXPECT_EQ(parsed, original);
}

TEST(DimacsIo, SkipsComments) {
  std::stringstream ss("c a comment\np edge 3 1\nc another\ne 1 2\n");
  const Graph g = readDimacs(ss);
  EXPECT_EQ(g.order(), 3u);
  EXPECT_TRUE(g.hasEdge(0, 1));
}

TEST(DimacsIo, RejectsEdgeBeforeHeader) {
  std::stringstream ss("e 1 2\np edge 3 1\n");
  EXPECT_THROW(readDimacs(ss), ParseError);
}

TEST(DimacsIo, RejectsCountMismatch) {
  std::stringstream ss("p edge 3 2\ne 1 2\n");
  EXPECT_THROW(readDimacs(ss), ParseError);
}

TEST(DimacsIo, RejectsZeroBasedVertex) {
  std::stringstream ss("p edge 3 1\ne 0 2\n");
  EXPECT_THROW(readDimacs(ss), ParseError);
}

TEST(DotOutput, ContainsAllEdges) {
  const Graph g = path(3);
  std::stringstream ss;
  writeDot(ss, g, "P3");
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("graph P3 {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

}  // namespace
}  // namespace selfstab::graph
