#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace selfstab::graph {
namespace {

TEST(BfsDistances, OnPath) {
  const Graph g = path(5);
  const auto dist = bfsDistances(g, 0);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsDistances, UnreachableMarked) {
  Graph g(4);
  g.addEdge(0, 1);
  const auto dist = bfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_EQ(dist[3], kUnreachable);
}

TEST(Connectivity, BasicCases) {
  EXPECT_TRUE(isConnected(Graph(0)));
  EXPECT_TRUE(isConnected(Graph(1)));
  EXPECT_FALSE(isConnected(Graph(2)));
  EXPECT_TRUE(isConnected(path(10)));
  EXPECT_TRUE(isConnected(cycle(10)));
}

TEST(Connectivity, ComponentCount) {
  Graph g(6);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  g.addEdge(3, 4);
  EXPECT_EQ(componentCount(g), 3u);  // {0,1}, {2,3,4}, {5}
  const auto comp = connectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[4]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[5], comp[0]);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path(10)), 9u);
  EXPECT_EQ(diameter(cycle(10)), 5u);
  EXPECT_EQ(diameter(complete(10)), 1u);
  EXPECT_EQ(diameter(star(10)), 2u);
  EXPECT_EQ(diameter(hypercube(5)), 5u);
}

TEST(Diameter, DisconnectedIsUnreachable) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Bipartite, KnownFamilies) {
  EXPECT_TRUE(isBipartite(path(7)));
  EXPECT_TRUE(isBipartite(cycle(8)));
  EXPECT_FALSE(isBipartite(cycle(7)));
  EXPECT_FALSE(isBipartite(complete(3)));
  EXPECT_TRUE(isBipartite(completeBipartite(4, 5)));
  EXPECT_TRUE(isBipartite(Graph(3)));  // edgeless
}

TEST(Degeneracy, KnownValues) {
  EXPECT_EQ(degeneracyOrder(path(10)).degeneracy, 1u);
  EXPECT_EQ(degeneracyOrder(cycle(10)).degeneracy, 2u);
  EXPECT_EQ(degeneracyOrder(complete(6)).degeneracy, 5u);
  EXPECT_EQ(degeneracyOrder(star(10)).degeneracy, 1u);
  EXPECT_EQ(degeneracyOrder(grid(4, 4)).degeneracy, 2u);
}

TEST(Degeneracy, OrderIsPermutation) {
  const Graph g = grid(3, 3);
  const auto result = degeneracyOrder(g);
  ASSERT_EQ(result.order.size(), 9u);
  std::vector<bool> seen(9, false);
  for (const Vertex v : result.order) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Triangles, KnownValues) {
  EXPECT_EQ(triangleCount(complete(4)), 4u);
  EXPECT_EQ(triangleCount(complete(5)), 10u);
  EXPECT_EQ(triangleCount(cycle(5)), 0u);
  EXPECT_EQ(triangleCount(path(10)), 0u);
  EXPECT_EQ(triangleCount(completeBipartite(3, 3)), 0u);
}

TEST(Triangles, SingleTriangle) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  g.addEdge(2, 3);
  EXPECT_EQ(triangleCount(g), 1u);
}

}  // namespace
}  // namespace selfstab::graph
