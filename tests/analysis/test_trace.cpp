#include "analysis/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace selfstab::analysis {
namespace {

TEST(RoundTrace, EmptyTraceWritesHeaderOnly) {
  RoundTrace trace({"round", "moves"});
  std::ostringstream out;
  trace.writeCsv(out);
  EXPECT_EQ(out.str(), "round,moves\n");
  EXPECT_EQ(trace.rowCount(), 0u);
}

TEST(RoundTrace, RowsRoundTrip) {
  RoundTrace trace({"round", "moves", "size"});
  trace.addRow({0, 5, 2});
  trace.addRow({1, 3, 4});
  trace.addRow({2, 0, 4});
  EXPECT_EQ(trace.rowCount(), 3u);

  std::ostringstream out;
  trace.writeCsv(out);
  EXPECT_EQ(out.str(),
            "round,moves,size\n"
            "0,5,2\n"
            "1,3,4\n"
            "2,0,4\n");
}

TEST(RoundTrace, ColumnExtraction) {
  RoundTrace trace({"round", "value"});
  trace.addRow({0, 1.5});
  trace.addRow({1, 2.5});
  const auto values = trace.column("value");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 1.5);
  EXPECT_DOUBLE_EQ(values[1], 2.5);
  EXPECT_TRUE(trace.column("missing").empty());
}

TEST(RoundTrace, RejectsRowsWithWrongArity) {
  RoundTrace trace({"round", "moves"});
  EXPECT_THROW(trace.addRow({1}), std::invalid_argument);
  EXPECT_THROW(trace.addRow({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(trace.addRow({}), std::invalid_argument);
  EXPECT_EQ(trace.rowCount(), 0u);
  // A well-formed row still lands after rejected ones.
  trace.addRow({1, 2});
  EXPECT_EQ(trace.rowCount(), 1u);
}

TEST(RoundTrace, NonIntegerValuesKeepFraction) {
  RoundTrace trace({"x"});
  trace.addRow({0.25});
  std::ostringstream out;
  trace.writeCsv(out);
  EXPECT_EQ(out.str(), "x\n0.25\n");
}

}  // namespace
}  // namespace selfstab::analysis
