#include "analysis/baselines.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "graph/generators.hpp"

namespace selfstab::analysis {
namespace {

using graph::Graph;
using graph::Vertex;

TEST(GreedyMatching, IsAlwaysMaximal) {
  graph::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(25, 0.15, rng);
    const auto matching = greedyMaximalMatching(g);
    EXPECT_TRUE(isMaximalMatching(g, matching));
  }
}

TEST(GreedyMatching, RespectsOrder) {
  const Graph g = graph::path(3);
  const std::vector<Vertex> fromRight{2, 1, 0};
  const auto matching = greedyMaximalMatching(g, fromRight);
  ASSERT_EQ(matching.size(), 1u);
  EXPECT_EQ(matching[0], (graph::Edge{1, 2}));
}

TEST(GreedyMis, IsAlwaysMaximal) {
  graph::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(25, 0.15, rng);
    const auto mis = greedyMaximalIndependentSet(g);
    EXPECT_TRUE(isMaximalIndependentSet(g, mis));
  }
}

TEST(GreedyMis, RespectsOrder) {
  const Graph g = graph::star(5);
  const auto centerFirst =
      greedyMaximalIndependentSet(g, std::vector<Vertex>{0, 1, 2, 3, 4});
  EXPECT_EQ(centerFirst, std::vector<Vertex>{0});
  const auto leavesFirst =
      greedyMaximalIndependentSet(g, std::vector<Vertex>{1, 2, 3, 4, 0});
  EXPECT_EQ(leavesFirst, (std::vector<Vertex>{1, 2, 3, 4}));
}

TEST(MaximumMatching, KnownValues) {
  EXPECT_EQ(maximumMatchingSize(graph::path(2)), 1u);
  EXPECT_EQ(maximumMatchingSize(graph::path(7)), 3u);
  EXPECT_EQ(maximumMatchingSize(graph::cycle(8)), 4u);
  EXPECT_EQ(maximumMatchingSize(graph::cycle(9)), 4u);
  EXPECT_EQ(maximumMatchingSize(graph::complete(6)), 3u);
  EXPECT_EQ(maximumMatchingSize(graph::complete(7)), 3u);
  EXPECT_EQ(maximumMatchingSize(graph::star(9)), 1u);
  EXPECT_EQ(maximumMatchingSize(graph::completeBipartite(3, 5)), 3u);
  EXPECT_EQ(maximumMatchingSize(Graph(5)), 0u);
}

TEST(MaximumMatching, GreedyIsAtLeastHalf) {
  graph::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::connectedErdosRenyi(14, 0.25, rng);
    const std::size_t greedy = greedyMaximalMatching(g).size();
    const std::size_t optimum = maximumMatchingSize(g);
    EXPECT_GE(2 * greedy, optimum);
    EXPECT_LE(greedy, optimum);
  }
}

TEST(MaximumIndependentSet, KnownValues) {
  EXPECT_EQ(maximumIndependentSetSize(graph::path(7)), 4u);
  EXPECT_EQ(maximumIndependentSetSize(graph::cycle(8)), 4u);
  EXPECT_EQ(maximumIndependentSetSize(graph::cycle(9)), 4u);
  EXPECT_EQ(maximumIndependentSetSize(graph::complete(9)), 1u);
  EXPECT_EQ(maximumIndependentSetSize(graph::star(9)), 8u);
  EXPECT_EQ(maximumIndependentSetSize(graph::completeBipartite(4, 6)), 6u);
  EXPECT_EQ(maximumIndependentSetSize(graph::hypercube(3)), 4u);
  EXPECT_EQ(maximumIndependentSetSize(Graph(5)), 5u);
}

TEST(MaximumIndependentSet, GreedyIsNeverLarger) {
  graph::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.15, rng);
    EXPECT_LE(greedyMaximalIndependentSet(g).size(),
              maximumIndependentSetSize(g));
  }
}

TEST(MinimumDominatingSet, KnownValues) {
  EXPECT_EQ(minimumDominatingSetSize(graph::star(9)), 1u);
  EXPECT_EQ(minimumDominatingSetSize(graph::complete(7)), 1u);
  EXPECT_EQ(minimumDominatingSetSize(graph::path(3)), 1u);
  EXPECT_EQ(minimumDominatingSetSize(graph::path(6)), 2u);
  EXPECT_EQ(minimumDominatingSetSize(graph::path(7)), 3u);
  EXPECT_EQ(minimumDominatingSetSize(graph::cycle(9)), 3u);
  EXPECT_EQ(minimumDominatingSetSize(graph::cycle(10)), 4u);
  EXPECT_EQ(minimumDominatingSetSize(Graph(4)), 4u);
}

TEST(MinimumDominatingSet, MisSizeIsAnUpperBoundWitness) {
  // Any maximal independent set dominates, so the optimum is at most the
  // greedy MIS size.
  graph::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::connectedErdosRenyi(20, 0.2, rng);
    EXPECT_LE(minimumDominatingSetSize(g),
              greedyMaximalIndependentSet(g).size());
  }
}

}  // namespace
}  // namespace selfstab::analysis
