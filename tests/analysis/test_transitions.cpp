// The Figure 3 transition diagram: legality matrix plus census bookkeeping.
#include <gtest/gtest.h>

#include "analysis/node_types.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::analysis {
namespace {

using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

TEST(TransitionLegality, MatchedIsAbsorbing) {
  EXPECT_TRUE(isLegalTransition(NodeType::M, NodeType::M));
  for (const NodeType to : {NodeType::A0, NodeType::A1, NodeType::PA,
                            NodeType::PM, NodeType::PP}) {
    EXPECT_FALSE(isLegalTransition(NodeType::M, to));
  }
}

TEST(TransitionLegality, PmAndPpMustBackOffToA0) {
  for (const NodeType from : {NodeType::PM, NodeType::PP}) {
    EXPECT_TRUE(isLegalTransition(from, NodeType::A0));
    for (const NodeType to : {NodeType::M, NodeType::A1, NodeType::PA,
                              NodeType::PM, NodeType::PP}) {
      EXPECT_FALSE(isLegalTransition(from, to));
    }
  }
}

TEST(TransitionLegality, PaReachesMatchedOrPm) {
  EXPECT_TRUE(isLegalTransition(NodeType::PA, NodeType::M));
  EXPECT_TRUE(isLegalTransition(NodeType::PA, NodeType::PM));
  EXPECT_FALSE(isLegalTransition(NodeType::PA, NodeType::A0));
  EXPECT_FALSE(isLegalTransition(NodeType::PA, NodeType::PP));
  EXPECT_FALSE(isLegalTransition(NodeType::PA, NodeType::PA));
  EXPECT_FALSE(isLegalTransition(NodeType::PA, NodeType::A1));
}

TEST(TransitionLegality, A1MustMatch) {
  EXPECT_TRUE(isLegalTransition(NodeType::A1, NodeType::M));
  for (const NodeType to : {NodeType::A0, NodeType::A1, NodeType::PA,
                            NodeType::PM, NodeType::PP}) {
    EXPECT_FALSE(isLegalTransition(NodeType::A1, to));
  }
}

TEST(TransitionLegality, A0HasFourSuccessors) {
  EXPECT_TRUE(isLegalTransition(NodeType::A0, NodeType::A0));
  EXPECT_TRUE(isLegalTransition(NodeType::A0, NodeType::M));
  EXPECT_TRUE(isLegalTransition(NodeType::A0, NodeType::PM));
  EXPECT_TRUE(isLegalTransition(NodeType::A0, NodeType::PP));
  EXPECT_FALSE(isLegalTransition(NodeType::A0, NodeType::A1));
  EXPECT_FALSE(isLegalTransition(NodeType::A0, NodeType::PA));
}

TEST(TransitionCensus, CountsAndFlagsIllegalMoves) {
  const Graph g = graph::path(2);
  TransitionCensus census(g);
  // Legal: both nodes A0 -> M (mutual proposals).
  std::vector<PointerState> before(2);
  std::vector<PointerState> after(2);
  after[0].ptr = 1;
  after[1].ptr = 0;
  census.record(0, before, after);
  EXPECT_EQ(census.transitionsRecorded(), 2u);
  EXPECT_EQ(census.illegalCount(), 0u);
  EXPECT_EQ(
      census.counts()[static_cast<std::size_t>(NodeType::A0)]
                     [static_cast<std::size_t>(NodeType::M)],
      2u);

  // Illegal: matched pair dissolving (never happens under SMM).
  census.record(1, after, before);
  EXPECT_EQ(census.illegalCount(), 2u);
}

TEST(TransitionCensus, FlagsLateA1AndPa) {
  const Graph g = graph::path(3);
  std::vector<PointerState> pa(3);
  pa[0].ptr = 1;  // 0 in PA, 1 in A1, 2 in A0
  const std::vector<PointerState> allNull(3);

  TransitionCensus early(g);
  early.record(0, pa, allNull);  // t=0 sources A1/PA are fine; targets A0
  EXPECT_EQ(early.lateA1PaCount(), 0u);

  TransitionCensus late(g);
  late.record(3, pa, allNull);  // the same sources at t=3 violate Lemma 7
  EXPECT_EQ(late.lateA1PaCount(), 2u);

  TransitionCensus target(g);
  target.record(0, allNull, pa);  // any *target* in A1/PA violates Lemma 7
  EXPECT_EQ(target.lateA1PaCount(), 2u);
}

TEST(TransitionCensus, CleanSmmRunFromAdversarialStartIsLegal) {
  // The paper's own algorithm must never trip the checker, even from states
  // engineered to populate PA and A1 at t=0.
  const Graph g = graph::path(8);
  const auto ids = IdAssignment::identity(8);
  const core::SmmProtocol smm = core::smmPaper();
  std::vector<PointerState> states(8);
  states[0].ptr = 1;  // PA/A1 pair
  states[3].ptr = 4;
  states[4].ptr = 3;  // matched pair
  states[2].ptr = 3;  // PM
  states[6].ptr = 5;
  states[5].ptr = 4;  // PP chain into the matched pair

  engine::SyncRunner<PointerState> runner(smm, g, ids);
  TransitionCensus census(g);
  const auto result = runner.run(
      states, 20,
      [&](std::size_t t, const std::vector<PointerState>& before,
          const std::vector<PointerState>& after, std::size_t) {
        census.record(t, before, after);
      });
  ASSERT_TRUE(result.stabilized);
  EXPECT_EQ(census.illegalCount(), 0u);
  EXPECT_EQ(census.lateA1PaCount(), 0u);
  EXPECT_GT(census.transitionsRecorded(), 0u);
}

}  // namespace
}  // namespace selfstab::analysis
