#include "analysis/stats.hpp"

#include <gtest/gtest.h>

namespace selfstab::analysis {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const std::vector<double> v{3.5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownMoments) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v{9, 1, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 9.0);
}

}  // namespace
}  // namespace selfstab::analysis
