// Node-type classification (paper Figure 2).
#include "analysis/node_types.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace selfstab::analysis {
namespace {

using core::PointerState;
using graph::Graph;

TEST(NodeTypes, AllSixTypesOnOnePath) {
  // Path 0-1-2-3-4-5-6:
  //   2 <-> 3 matched; 1 -> 2 gives PM; 0 -> 1 gives PP;
  //   5 -> 4 gives PA (4 aloof), 4 is A1 (pointed at), 6 is A0.
  const Graph g = graph::path(7);
  std::vector<PointerState> states(7);
  states[2].ptr = 3;
  states[3].ptr = 2;
  states[1].ptr = 2;
  states[0].ptr = 1;
  states[5].ptr = 4;
  ASSERT_TRUE(isTypeCorrect(g, states));
  const auto types = classifyNodes(g, states);
  EXPECT_EQ(types[0], NodeType::PP);
  EXPECT_EQ(types[1], NodeType::PM);
  EXPECT_EQ(types[2], NodeType::M);
  EXPECT_EQ(types[3], NodeType::M);
  EXPECT_EQ(types[4], NodeType::A1);
  EXPECT_EQ(types[5], NodeType::PA);
  EXPECT_EQ(types[6], NodeType::A0);
}

TEST(NodeTypes, AllNullIsAllA0) {
  const Graph g = graph::cycle(5);
  const std::vector<PointerState> states(5);
  const auto types = classifyNodes(g, states);
  for (const NodeType t : types) EXPECT_EQ(t, NodeType::A0);
}

TEST(NodeTypes, TypeCountsPartitionTheVertices) {
  const Graph g = graph::path(7);
  std::vector<PointerState> states(7);
  states[2].ptr = 3;
  states[3].ptr = 2;
  states[1].ptr = 2;
  const auto counts = countTypes(classifyNodes(g, states));
  std::size_t total = 0;
  for (std::size_t i = 0; i < kNodeTypeCount; ++i) total += counts.count[i];
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(counts.of(NodeType::M), 2u);
  EXPECT_EQ(counts.of(NodeType::PM), 1u);
}

TEST(NodeTypes, IsTypeCorrectRejectsDanglingPointer) {
  const Graph g = graph::path(3);
  std::vector<PointerState> states(3);
  states[0].ptr = 2;  // not a neighbor on the path
  EXPECT_FALSE(isTypeCorrect(g, states));
}

TEST(NodeTypes, IsTypeCorrectRejectsWrongSize) {
  const Graph g = graph::path(3);
  const std::vector<PointerState> states(2);
  EXPECT_FALSE(isTypeCorrect(g, states));
}

TEST(NodeTypes, ToStringCoversAll) {
  EXPECT_EQ(toString(NodeType::M), "M");
  EXPECT_EQ(toString(NodeType::A0), "A0");
  EXPECT_EQ(toString(NodeType::A1), "A1");
  EXPECT_EQ(toString(NodeType::PA), "PA");
  EXPECT_EQ(toString(NodeType::PM), "PM");
  EXPECT_EQ(toString(NodeType::PP), "PP");
}

TEST(NodeTypes, MutualPointersAcrossTriangle) {
  // Triangle: 0 -> 1, 1 -> 2, 2 -> 0: a rotating cycle, everyone PP.
  const Graph g = graph::complete(3);
  std::vector<PointerState> states(3);
  states[0].ptr = 1;
  states[1].ptr = 2;
  states[2].ptr = 0;
  const auto types = classifyNodes(g, states);
  for (const NodeType t : types) EXPECT_EQ(t, NodeType::PP);
}

}  // namespace
}  // namespace selfstab::analysis
