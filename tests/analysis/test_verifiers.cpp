#include "analysis/verifiers.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace selfstab::analysis {
namespace {

using core::BitState;
using core::ColorState;
using core::PointerState;
using graph::Edge;
using graph::Graph;
using graph::Vertex;

TEST(MatchedEdges, ExtractsMutualPairsOnly) {
  const Graph g = graph::path(4);
  std::vector<PointerState> states(4);
  states[0].ptr = 1;
  states[1].ptr = 0;  // mutual
  states[2].ptr = 3;  // one-directional
  const auto edges = matchedEdges(g, states);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
}

TEST(MatchedEdges, IgnoresNonEdgesEvenIfMutual) {
  Graph g(4);
  g.addEdge(0, 1);
  std::vector<PointerState> states(4);
  states[2].ptr = 3;
  states[3].ptr = 2;  // mutual but {2,3} is not an edge
  EXPECT_TRUE(matchedEdges(g, states).empty());
}

TEST(IsMatching, RejectsSharedVertex) {
  const Graph g = graph::path(4);
  const std::vector<Edge> bad{{0, 1}, {1, 2}};
  EXPECT_FALSE(isMatching(g, bad));
  const std::vector<Edge> good{{0, 1}, {2, 3}};
  EXPECT_TRUE(isMatching(g, good));
}

TEST(IsMatching, RejectsNonEdge) {
  const Graph g = graph::path(4);
  const std::vector<Edge> bad{{0, 2}};
  EXPECT_FALSE(isMatching(g, bad));
}

TEST(IsMaximalMatching, DetectsAugmentableEdge) {
  const Graph g = graph::path(5);  // edges 01 12 23 34
  const std::vector<Edge> notMaximal{{1, 2}};  // {3,4} could be added
  EXPECT_FALSE(isMaximalMatching(g, notMaximal));
  const std::vector<Edge> maximal{{1, 2}, {3, 4}};
  EXPECT_TRUE(isMaximalMatching(g, maximal));
}

TEST(IsMaximalMatching, EmptyMatchingOnEdgelessGraphIsMaximal) {
  const Graph g(4);
  EXPECT_TRUE(isMaximalMatching(g, std::vector<Edge>{}));
}

TEST(CheckMatchingFixpoint, AcceptsGoodFixpoint) {
  const Graph g = graph::path(5);
  std::vector<PointerState> states(5);
  states[0].ptr = 1;
  states[1].ptr = 0;
  states[2].ptr = 3;
  states[3].ptr = 2;
  const auto check = checkMatchingFixpoint(g, states);
  EXPECT_TRUE(check.ok());
}

TEST(CheckMatchingFixpoint, RejectsNonMaximal) {
  const Graph g = graph::path(5);
  std::vector<PointerState> states(5);
  states[1].ptr = 2;
  states[2].ptr = 1;
  // 0, 3, 4 all null; {3,4} addable.
  const auto check = checkMatchingFixpoint(g, states);
  EXPECT_TRUE(check.typeCorrect);
  EXPECT_TRUE(check.isMatching);
  EXPECT_FALSE(check.isMaximal);
  EXPECT_FALSE(check.ok());
}

TEST(CheckMatchingFixpoint, RejectsLingeringPointers) {
  const Graph g = graph::path(4);
  std::vector<PointerState> states(4);
  states[0].ptr = 1;
  states[1].ptr = 0;
  states[2].ptr = 1;  // PM node: not a legal fixpoint shape
  states[3].ptr = 2;
  const auto check = checkMatchingFixpoint(g, states);
  EXPECT_FALSE(check.unmatchedAreAloof);
  EXPECT_FALSE(check.ok());
}

TEST(CheckMatchingFixpoint, RejectsDanglingPointer) {
  const Graph g = graph::path(4);
  std::vector<PointerState> states(4);
  states[0].ptr = 3;
  const auto check = checkMatchingFixpoint(g, states);
  EXPECT_FALSE(check.typeCorrect);
  EXPECT_FALSE(check.ok());
}

TEST(IndependentSet, MembersOfReadsBits) {
  std::vector<BitState> states(5);
  states[1].in = true;
  states[4].in = true;
  const auto members = membersOf(states);
  EXPECT_EQ(members, (std::vector<Vertex>{1, 4}));
}

TEST(IndependentSet, ValidityAndMaximality) {
  const Graph g = graph::cycle(5);
  EXPECT_TRUE(isIndependentSet(g, std::vector<Vertex>{0, 2}));
  EXPECT_FALSE(isIndependentSet(g, std::vector<Vertex>{0, 1}));
  EXPECT_TRUE(isMaximalIndependentSet(g, std::vector<Vertex>{0, 2}));
  // {0} alone: 2 and 3 undominated.
  EXPECT_FALSE(isMaximalIndependentSet(g, std::vector<Vertex>{0}));
  // {0,2,3} is not independent.
  EXPECT_FALSE(isMaximalIndependentSet(g, std::vector<Vertex>{0, 2, 3}));
}

TEST(IndependentSet, EmptySetMaximalOnlyOnEdgelessEmptyGraph) {
  EXPECT_TRUE(isMaximalIndependentSet(Graph(0), std::vector<Vertex>{}));
  EXPECT_FALSE(isMaximalIndependentSet(Graph(3), std::vector<Vertex>{}));
}

TEST(DominatingSet, ValidityChecks) {
  const Graph g = graph::star(6);
  EXPECT_TRUE(isDominatingSet(g, std::vector<Vertex>{0}));
  EXPECT_FALSE(isDominatingSet(g, std::vector<Vertex>{1}));
  EXPECT_TRUE(isDominatingSet(g, std::vector<Vertex>{1, 2, 3, 4, 5}));
}

TEST(DominatingSet, MinimalityViaPrivateNeighbors) {
  const Graph g = graph::star(6);
  EXPECT_TRUE(isMinimalDominatingSet(g, std::vector<Vertex>{0}));
  EXPECT_TRUE(isMinimalDominatingSet(g, std::vector<Vertex>{1, 2, 3, 4, 5}));
  // Center plus a leaf: the leaf is redundant.
  EXPECT_FALSE(isMinimalDominatingSet(g, std::vector<Vertex>{0, 1}));
}

TEST(DominatingSet, PathCases) {
  const Graph g = graph::path(6);
  EXPECT_TRUE(isMinimalDominatingSet(g, std::vector<Vertex>{1, 4}));
  EXPECT_FALSE(isMinimalDominatingSet(g, std::vector<Vertex>{1, 2, 4}));
  EXPECT_FALSE(isDominatingSet(g, std::vector<Vertex>{1}));
}

TEST(Coloring, ProperAndImproper) {
  const Graph g = graph::cycle(4);
  EXPECT_TRUE(isProperColoring(g, std::vector<std::uint32_t>{0, 1, 0, 1}));
  EXPECT_FALSE(isProperColoring(g, std::vector<std::uint32_t>{0, 1, 1, 1}));
}

TEST(Coloring, ColorStateOverloadAndCount) {
  const Graph g = graph::path(3);
  std::vector<ColorState> states{{0}, {1}, {0}};
  EXPECT_TRUE(isProperColoring(g, states));
  EXPECT_EQ(colorCount(states), 2u);
  EXPECT_EQ(colorCount(std::vector<ColorState>{}), 0u);
}

}  // namespace
}  // namespace selfstab::analysis
