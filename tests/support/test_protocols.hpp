// Tiny synthetic protocols used by engine-level tests.
#pragma once

#include <algorithm>
#include <cstdint>

#include "engine/protocol.hpp"
#include "graph/rng.hpp"

namespace selfstab::testing {

struct ValueState {
  std::uint64_t value = 0;

  friend constexpr bool operator==(const ValueState&,
                                   const ValueState&) = default;

  friend constexpr std::uint64_t hashValue(const ValueState& s) noexcept {
    return mix64(s.value);
  }
};

/// Converges to the global maximum of the initial values (a classic
/// self-stabilizing "max flooding"): stabilizes within diameter rounds under
/// the synchronous model and under any fair daemon.
class MaxProtocol final : public engine::Protocol<ValueState> {
 public:
  [[nodiscard]] std::string_view name() const override { return "max"; }

  [[nodiscard]] std::optional<ValueState> onRound(
      const engine::LocalView<ValueState>& view) const override {
    std::uint64_t best = view.state().value;
    for (const auto& nbr : view.neighbors) {
      best = std::max(best, nbr.state->value);
    }
    if (best == view.state().value) return std::nullopt;
    return ValueState{best};
  }

  [[nodiscard]] ValueState initialState(graph::Vertex v) const override {
    return ValueState{v};  // distinct values; max is n-1
  }
};

/// Never stabilizes: every node toggles its bit every round. The global
/// trajectory under the synchronous model has period 2.
class BlinkerProtocol final : public engine::Protocol<ValueState> {
 public:
  [[nodiscard]] std::string_view name() const override { return "blinker"; }

  [[nodiscard]] std::optional<ValueState> onRound(
      const engine::LocalView<ValueState>& view) const override {
    return ValueState{view.state().value ^ 1};
  }
};

/// Never stabilizes and never revisits a configuration: counts up forever.
class CounterProtocol final : public engine::Protocol<ValueState> {
 public:
  [[nodiscard]] std::string_view name() const override { return "counter"; }

  [[nodiscard]] std::optional<ValueState> onRound(
      const engine::LocalView<ValueState>& view) const override {
    return ValueState{view.state().value + 1};
  }
};

}  // namespace selfstab::testing
