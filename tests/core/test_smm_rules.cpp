// Rule-level tests of Algorithm SMM (paper Figure 1): each test pins one
// guard/action combination against a hand-built local configuration.
#include "core/smm.hpp"

#include <gtest/gtest.h>

#include "engine/view_builder.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;
using graph::kNoVertex;

class SmmRules : public ::testing::Test {
 protected:
  // Star with center 0 and leaves 1..4: center sees several neighbors.
  Graph g_ = graph::star(5);
  IdAssignment ids_ = IdAssignment::identity(5);
  ViewBuilder<PointerState> builder_{g_, ids_};
  SmmProtocol smm_ = smmPaper();
};

TEST_F(SmmRules, R1AcceptsProposal) {
  // Leaf 2 points at center 0; center is null -> center accepts 2.
  std::vector<PointerState> states(5);
  states[2].ptr = 0;
  const auto move = smm_.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 2u);
}

TEST_F(SmmRules, R1PrefersMinIdProposerByDefault) {
  std::vector<PointerState> states(5);
  states[3].ptr = 0;
  states[1].ptr = 0;
  states[4].ptr = 0;
  const auto move = smm_.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 1u);
}

TEST_F(SmmRules, R1HasPriorityOverR2) {
  // Center both has a proposer (3) and a null neighbor (1): must accept,
  // not propose (R2's guard requires no proposers).
  std::vector<PointerState> states(5);
  states[3].ptr = 0;
  const auto move = smm_.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 3u);
}

TEST_F(SmmRules, R2ProposesToMinIdNullNeighbor) {
  // All leaves null; center null and unproposed-to: proposes to leaf 1.
  const std::vector<PointerState> states(5);
  const auto move = smm_.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 1u);
}

TEST_F(SmmRules, R2SkipsNonNullNeighbors) {
  // Leaves 1 and 2 point elsewhere (at center), so... make 1,2 point at 0?
  // That would trigger R1. Instead have leaf 1 non-null toward 0? A leaf's
  // only neighbor is 0. Use a path graph for this case instead.
  const Graph path = graph::path(4);  // 0-1-2-3
  const IdAssignment ids = IdAssignment::identity(4);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(4);
  states[0].ptr = 1;  // 0 proposes to 1
  // Node 1: has proposer 0 -> R1 fires, accepts 0 (min id proposer).
  const auto move = smm_.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 0u);
}

TEST_F(SmmRules, R2BlockedWhenNoNullNeighbor) {
  // Path 0-1-2: node 2 points at 1; node 1 points at 2 (matched);
  // node 0 is null, nobody points at it, and its only neighbor is non-null.
  const Graph path = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(3);
  states[1].ptr = 2;
  states[2].ptr = 1;
  EXPECT_FALSE(smm_.onRound(builder.build(0, states)).has_value());
}

TEST_F(SmmRules, R3BacksOffWhenTargetPointsElsewhere) {
  // Path 0-1-2: 0 points at 1, but 1 points at 2.
  const Graph path = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(3);
  states[0].ptr = 1;
  states[1].ptr = 2;
  states[2].ptr = 1;
  const auto move = smm_.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_TRUE(move->isNull());
}

TEST_F(SmmRules, MatchedPairIsStable) {
  const Graph path = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(3);
  states[0].ptr = 1;
  states[1].ptr = 0;
  EXPECT_FALSE(smm_.onRound(builder.build(0, states)).has_value());
  EXPECT_FALSE(smm_.onRound(builder.build(1, states)).has_value());
}

TEST_F(SmmRules, PointingAtAloofNodeWaits) {
  // 0 points at null 1: 0 must not move (no rule applies to it).
  const Graph path = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(3);
  states[0].ptr = 1;
  EXPECT_FALSE(smm_.onRound(builder.build(0, states)).has_value());
}

TEST_F(SmmRules, DanglingPointerResets) {
  // Node 1 points at 3, but on the path 0-1-2 vertex 3 is not its neighbor
  // (link lost to mobility / corrupted state): the hygiene reading of R3.
  const Graph path = graph::path(3);
  const IdAssignment ids = IdAssignment::identity(3);
  ViewBuilder<PointerState> builder(path, ids);
  std::vector<PointerState> states(3);
  states[1].ptr = 3;  // wild value: not a neighbor at all
  const auto move = smm_.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_TRUE(move->isNull());
}

TEST_F(SmmRules, IsolatedNullNodeIsStable) {
  const Graph lone(1);
  const IdAssignment ids = IdAssignment::identity(1);
  ViewBuilder<PointerState> builder(lone, ids);
  const std::vector<PointerState> states(1);
  EXPECT_FALSE(smm_.onRound(builder.build(0, states)).has_value());
}

TEST_F(SmmRules, MinIdUsesIdsNotVertexIndices) {
  // Reversed IDs on the star: vertex 4 has ID 0, so R2 proposes to vertex 4.
  const IdAssignment reversed = IdAssignment::reversed(5);
  ViewBuilder<PointerState> builder(g_, reversed);
  const std::vector<PointerState> states(5);
  const auto move = smm_.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 4u);
}

TEST_F(SmmRules, MaxIdAcceptPolicy) {
  const SmmProtocol smm(Choice::MinId, Choice::MaxId);
  std::vector<PointerState> states(5);
  states[1].ptr = 0;
  states[3].ptr = 0;
  const auto move = smm.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 3u);
}

TEST_F(SmmRules, FirstPolicyTakesAdjacencyOrder) {
  const SmmProtocol smm(Choice::First, Choice::First);
  const std::vector<PointerState> states(5);
  const auto move = smm.onRound(builder_.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->ptr, 1u);  // first neighbor in vertex order
}

TEST_F(SmmRules, SuccessorPolicyIsClockwiseOnCycle) {
  const Graph c4 = graph::cycle(4);
  const IdAssignment ids = IdAssignment::identity(4);
  ViewBuilder<PointerState> builder(c4, ids);
  const SmmProtocol smm = smmArbitrary(Choice::Successor);
  const std::vector<PointerState> states(4);
  for (graph::Vertex v = 0; v < 4; ++v) {
    const auto move = smm.onRound(builder.build(v, states));
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->ptr, (v + 1) % 4) << "node " << v;
  }
}

TEST_F(SmmRules, RandomPolicyIsDeterministicPerRoundKey) {
  const SmmProtocol smm(Choice::Random, Choice::Random);
  const std::vector<PointerState> states(5);
  const auto a = smm.onRound(builder_.build(0, states, /*roundKey=*/77));
  const auto b = smm.onRound(builder_.build(0, states, /*roundKey=*/77));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->ptr, b->ptr);
}

TEST_F(SmmRules, ProtocolNameReflectsPolicies) {
  EXPECT_EQ(smmPaper().name(), "smm(propose=min-id,accept=min-id)");
  EXPECT_EQ(hsuHuang().name(), "smm(propose=first,accept=first)");
}

}  // namespace
}  // namespace selfstab::core
