// Algorithm SIS (paper Figure 4): rule-level checks, Theorem 2 convergence
// (at most n rounds), maximality at fixpoint, and exhaustive small-instance
// verification over the full 2^n configuration space.
#include "core/sis.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/verifiers.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::isMaximalIndependentSet;
using analysis::membersOf;
using engine::SyncRunner;
using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;

TEST(SisRules, R1EntersWhenNoBiggerNeighborIn) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<BitState> builder(g, ids);
  const SisProtocol sis;
  std::vector<BitState> states(3);
  states[0].in = true;  // smaller neighbor in the set does not block node 1
  const auto move = sis.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_TRUE(move->in);
}

TEST(SisRules, R1BlockedByBiggerNeighborIn) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<BitState> builder(g, ids);
  const SisProtocol sis;
  std::vector<BitState> states(3);
  states[2].in = true;
  EXPECT_FALSE(sis.onRound(builder.build(1, states)).has_value());
}

TEST(SisRules, R2LeavesWhenBiggerNeighborIn) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<BitState> builder(g, ids);
  const SisProtocol sis;
  std::vector<BitState> states(3);
  states[1].in = true;
  states[2].in = true;
  const auto move = sis.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_FALSE(move->in);
}

TEST(SisRules, MemberWithOnlySmallerNeighborsInStays) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<BitState> builder(g, ids);
  const SisProtocol sis;
  std::vector<BitState> states(3);
  states[1].in = true;
  states[0].in = true;  // smaller; only node 0 should be privileged, not 1
  EXPECT_FALSE(sis.onRound(builder.build(1, states)).has_value());
  EXPECT_TRUE(sis.onRound(builder.build(0, states)).has_value());
}

TEST(SisRules, SmallerIdWinsSeniorityFlipsBehavior) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<BitState> builder(g, ids);
  const SisProtocol sis(Seniority::SmallerIdWins);
  std::vector<BitState> states(2);
  states[0].in = true;
  states[1].in = true;
  // Under SmallerIdWins, node 0 is "bigger": node 1 must leave, node 0 stays.
  EXPECT_FALSE(sis.onRound(builder.build(0, states)).has_value());
  const auto move = sis.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_FALSE(move->in);
}

TEST(SisConvergence, CleanStartMeetsTheoremBoundAcrossFamilies) {
  const SisProtocol sis;
  graph::Rng rng(31);
  const std::vector<Graph> graphs{
      graph::path(40),      graph::cycle(41),
      graph::complete(25),  graph::star(30),
      graph::grid(6, 7),    graph::binaryTree(31),
      graph::hypercube(5),  graph::connectedErdosRenyi(40, 0.1, rng),
      graph::connectedRandomGeometric(40, 0.3, rng)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    for (int order = 0; order < 3; ++order) {
      graph::Rng idRng(order);
      const IdAssignment ids =
          order == 0 ? IdAssignment::identity(g.order())
          : order == 1
              ? IdAssignment::reversed(g.order())
              : IdAssignment::randomPermutation(g.order(), idRng);
      SyncRunner<BitState> runner(sis, g, ids);
      auto states = runner.initialStates();
      const auto result = runner.run(states, g.order() + 1);
      EXPECT_TRUE(result.stabilized) << "graph " << i << " order " << order;
      EXPECT_LE(result.rounds, g.order()) << "graph " << i;
      EXPECT_TRUE(isMaximalIndependentSet(g, membersOf(states)))
          << "graph " << i << " order " << order;
    }
  }
}

TEST(SisConvergence, FromRandomConfigurations) {
  const SisProtocol sis;
  graph::Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.12, rng);
    const auto ids = IdAssignment::identity(30);
    auto states =
        engine::randomConfiguration<BitState>(g, rng, randomBitState);
    SyncRunner<BitState> runner(sis, g, ids);
    const auto result = runner.run(states, g.order() + 1);
    EXPECT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_LE(result.rounds, g.order()) << "trial " << trial;
    EXPECT_TRUE(isMaximalIndependentSet(g, membersOf(states)))
        << "trial " << trial;
  }
}

class SisExhaustive : public ::testing::TestWithParam<Graph> {};

TEST_P(SisExhaustive, EveryConfigurationStabilizesToMis) {
  const Graph& g = GetParam();
  const auto ids = IdAssignment::identity(g.order());
  const SisProtocol sis;
  std::vector<std::vector<BitState>> candidates(
      g.order(), {BitState{false}, BitState{true}});
  std::size_t configs = 0;
  engine::enumerateConfigurations(
      candidates, [&](const std::vector<BitState>& start) {
        SyncRunner<BitState> runner(sis, g, ids);
        auto states = start;
        const auto result = runner.run(states, g.order() + 1);
        ASSERT_TRUE(result.stabilized);
        ASSERT_LE(result.rounds, g.order());
        ASSERT_TRUE(isMaximalIndependentSet(g, membersOf(states)));
        ++configs;
      });
  EXPECT_EQ(configs, std::size_t{1} << g.order());
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, SisExhaustive,
    ::testing::Values(graph::path(6), graph::cycle(6), graph::cycle(7),
                      graph::complete(5), graph::star(6),
                      graph::completeBipartite(3, 3), graph::grid(2, 4),
                      graph::binaryTree(7)),
    [](const ::testing::TestParamInfo<Graph>& paramInfo) {
      return "g" + std::to_string(paramInfo.index) + "_n" +
             std::to_string(paramInfo.param.order()) + "_m" +
             std::to_string(paramInfo.param.size());
    });

TEST(SisProperties, LargestNodeAlwaysEndsInSet) {
  graph::Rng rng(37);
  const SisProtocol sis;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connectedErdosRenyi(20, 0.2, rng);
    const auto ids = IdAssignment::identity(20);
    auto states =
        engine::randomConfiguration<BitState>(g, rng, randomBitState);
    SyncRunner<BitState> runner(sis, g, ids);
    ASSERT_TRUE(runner.run(states, 30).stabilized);
    EXPECT_TRUE(states[19].in);  // vertex with the globally largest ID
  }
}

TEST(SisProperties, FixedPrefixNeverFlipsBack) {
  // Once the set of "decided" nodes (largest ID downwards) stabilizes, it
  // stays; check monotone stability of the largest node from round 1.
  const Graph g = graph::complete(12);
  const auto ids = IdAssignment::identity(12);
  const SisProtocol sis;
  SyncRunner<BitState> runner(sis, g, ids);
  auto states = runner.initialStates();
  bool largestSettled = false;
  const auto result = runner.run(
      states, 13,
      [&](std::size_t round, const std::vector<BitState>&,
          const std::vector<BitState>& after, std::size_t) {
        if (round >= 1) {
          EXPECT_TRUE(after[11].in);
          largestSettled = true;
        }
        if (round == 0) {
          EXPECT_TRUE(after[11].in);
        }
      });
  ASSERT_TRUE(result.stabilized);
  // On K_12 from all-zero: round 0 everyone enters, round 1 everyone but the
  // largest leaves, then quiet — exactly two productive rounds.
  EXPECT_LE(result.rounds, 2u);
  (void)largestSettled;
}

// The livelock certifier hashes whole configurations by folding
// hashValue(BitState) with hashCombine (engine/cycle_detection.hpp). A
// boolean state is maximally collision-prone under a weak per-state hash
// (e.g. 0/1 would cancel under xor-folds), so assert the two values are
// distinct, nonzero, and that the fold separates ALL 2^12 configurations
// of a 12-node vector — exhaustive collision-freedom at certifier scale.
TEST(SisState, HashValueSeparatesAllSmallConfigurations) {
  EXPECT_NE(hashValue(BitState{true}), 0u);
  EXPECT_NE(hashValue(BitState{false}), 0u);
  EXPECT_NE(hashValue(BitState{true}), hashValue(BitState{false}));

  const auto hashConfig = [](const std::vector<BitState>& config) {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (const BitState& s : config) h = hashCombine(h, hashValue(s));
    return h;
  };

  constexpr std::size_t kBits = 12;
  std::set<std::uint64_t> seen;
  for (std::uint32_t mask = 0; mask < (1u << kBits); ++mask) {
    std::vector<BitState> config(kBits);
    for (std::size_t b = 0; b < kBits; ++b) {
      config[b].in = ((mask >> b) & 1u) != 0;
    }
    const auto [it, inserted] = seen.insert(hashConfig(config));
    ASSERT_TRUE(inserted) << "configuration hash collision at mask " << mask;
  }
}

TEST(SisProperties, IndependenceCanBreakTransientlyButRepairs) {
  // Start with everything in the set: adjacent members coexist transiently,
  // then R2 clears them in waves.
  const Graph g = graph::path(10);
  const auto ids = IdAssignment::identity(10);
  const SisProtocol sis;
  std::vector<BitState> states(10, BitState{true});
  SyncRunner<BitState> runner(sis, g, ids);
  const auto result = runner.run(states, 11);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(isMaximalIndependentSet(g, membersOf(states)));
}

}  // namespace
}  // namespace selfstab::core
