// Extension: self-stabilizing convergecast over the leader tree (protocol
// composition; the introduction's "echo-based distributed algorithms").
#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "analysis/verifiers.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

std::vector<std::uint64_t> sequentialReadings(std::size_t n) {
  std::vector<std::uint64_t> readings(n);
  for (std::size_t v = 0; v < n; ++v) readings[v] = 100 + v;
  return readings;
}

// The leader of the component containing vertex 0 must publish the exact
// component-wide (sum, count).
void expectLeaderAggregate(const Graph& g, const IdAssignment& ids,
                           const std::vector<std::uint64_t>& readings,
                           const std::vector<AggregateState>& states) {
  const auto comp = graph::connectedComponents(g);
  const std::size_t components = graph::componentCount(g);
  for (std::size_t c = 0; c < components; ++c) {
    Vertex leader = graph::kNoVertex;
    std::uint64_t expectedSum = 0;
    std::uint32_t expectedCount = 0;
    for (Vertex v = 0; v < g.order(); ++v) {
      if (comp[v] != c) continue;
      expectedSum += readings[v];
      ++expectedCount;
      if (leader == graph::kNoVertex || ids.less(leader, v)) leader = v;
    }
    ASSERT_NE(leader, graph::kNoVertex);
    EXPECT_EQ(states[leader].sum, expectedSum) << "component " << c;
    EXPECT_EQ(states[leader].count, expectedCount) << "component " << c;
  }
}

TEST(Aggregation, CleanStartComputesComponentTotals) {
  graph::Rng rng(131);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
    const auto ids = IdAssignment::identity(g.order());
    const auto readings = sequentialReadings(g.order());
    const AggregationProtocol protocol(
        static_cast<std::uint32_t>(g.order()), &readings);
    SyncRunner<AggregateState> runner(protocol, g, ids);
    auto states = runner.initialStates();
    const auto result = runner.run(states, 4 * g.order());
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    expectLeaderAggregate(g, ids, readings, states);
  }
}

TEST(Aggregation, TreeLayerMatchesStandaloneLeaderTree) {
  graph::Rng rng(133);
  const Graph g = graph::connectedRandomGeometric(18, 0.35, rng);
  const auto ids = IdAssignment::identity(g.order());
  const auto readings = sequentialReadings(g.order());
  const auto cap = static_cast<std::uint32_t>(g.order());

  const AggregationProtocol agg(cap, &readings);
  SyncRunner<AggregateState> aggRunner(agg, g, ids);
  auto aggStates = aggRunner.initialStates();
  ASSERT_TRUE(aggRunner.run(aggStates, 4 * g.order()).stabilized);

  std::vector<LeaderState> treeStates(g.order());
  for (Vertex v = 0; v < g.order(); ++v) treeStates[v] = aggStates[v].tree;
  EXPECT_TRUE(analysis::isLeaderTree(g, ids, treeStates));
}

TEST(Aggregation, RecoversFromArbitraryCorruption) {
  graph::Rng rng(137);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::connectedErdosRenyi(16, 0.2, rng);
    const auto ids = IdAssignment::identity(g.order());
    const auto readings = sequentialReadings(g.order());
    const AggregationProtocol protocol(
        static_cast<std::uint32_t>(g.order()), &readings);
    auto states = engine::randomConfiguration<AggregateState>(
        g, rng, randomAggregateState);
    SyncRunner<AggregateState> runner(protocol, g, ids);
    const auto result = runner.run(states, 5 * g.order());
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    expectLeaderAggregate(g, ids, readings, states);
  }
}

TEST(Aggregation, TracksChangedReadings) {
  // Sensor values change after stabilization; only the sum layer must
  // re-run (the tree is already correct), and the new total appears.
  const Graph g = graph::binaryTree(15);
  const auto ids = IdAssignment::identity(g.order());
  auto readings = sequentialReadings(g.order());
  const AggregationProtocol protocol(
      static_cast<std::uint32_t>(g.order()), &readings);
  SyncRunner<AggregateState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 60).stabilized);
  expectLeaderAggregate(g, ids, readings, states);

  readings[3] += 1000;
  readings[7] = 0;
  const auto result = runner.run(states, 60);
  ASSERT_TRUE(result.stabilized);
  expectLeaderAggregate(g, ids, readings, states);
  // Repair is bounded by the distance from the changed sensors to the
  // leader (<= diameter = 6 on binaryTree(15), plus one settling round),
  // not by n.
  EXPECT_LE(result.rounds, 7u);
}

TEST(Aggregation, PerComponentTotalsOnDisconnectedGraph) {
  Graph g(7);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);  // second component
  // vertices 5, 6 isolated
  const auto ids = IdAssignment::identity(7);
  const auto readings = sequentialReadings(7);
  const AggregationProtocol protocol(7, &readings);
  SyncRunner<AggregateState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 40).stabilized);
  expectLeaderAggregate(g, ids, readings, states);
  EXPECT_EQ(states[2].sum, 100u + 101u + 102u);
  EXPECT_EQ(states[4].sum, 103u + 104u);
  EXPECT_EQ(states[5].sum, 105u);
  EXPECT_EQ(states[5].count, 1u);
}

TEST(Aggregation, SurvivesTopologyChange) {
  graph::Rng rng(139);
  Graph g = graph::connectedErdosRenyi(18, 0.15, rng);
  const auto ids = IdAssignment::identity(g.order());
  const auto readings = sequentialReadings(g.order());
  const AggregationProtocol protocol(
      static_cast<std::uint32_t>(g.order()), &readings);
  SyncRunner<AggregateState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 80).stabilized);

  engine::perturbTopology(g, rng, 5, /*keepConnected=*/true);
  SyncRunner<AggregateState> rerun(protocol, g, ids);
  ASSERT_TRUE(rerun.run(states, 80).stabilized);
  expectLeaderAggregate(g, ids, readings, states);
}

}  // namespace
}  // namespace selfstab::core
