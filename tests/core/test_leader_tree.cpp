// Extension: rootless leader election + spanning tree, including the
// classical hard case of fake (non-existent) root IDs left by corruption.
#include "core/leader_tree.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::isLeaderTree;
using engine::SyncRunner;
using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;

TEST(LeaderTreeRules, IsolatedNodeElectsItself) {
  const Graph g(1);
  const auto ids = IdAssignment::identity(1);
  ViewBuilder<LeaderState> builder(g, ids);
  const LeaderTreeProtocol protocol(1);
  std::vector<LeaderState> states{LeaderState{99, 3, 0}};
  const auto move = protocol.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->root, 0u);  // its own ID
  EXPECT_EQ(move->dist, 0u);
  EXPECT_EQ(move->parent, graph::kNoVertex);
}

TEST(LeaderTreeRules, AdoptsBiggerRootFromNeighbor) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<LeaderState> builder(g, ids);
  const LeaderTreeProtocol protocol(2);
  std::vector<LeaderState> states(2);
  states[1] = LeaderState{1, 0, graph::kNoVertex};  // node 1 is its own root
  const auto move = protocol.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->root, 1u);
  EXPECT_EQ(move->dist, 1u);
  EXPECT_EQ(move->parent, 1u);
}

TEST(LeaderTreeRules, PrefersOwnCandidacyOverSmallerRoots) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<LeaderState> builder(g, ids);
  const LeaderTreeProtocol protocol(2);
  std::vector<LeaderState> states(2);
  states[0] = LeaderState{0, 0, graph::kNoVertex};
  states[1] = LeaderState{0, 1, 0};  // currently following node 0
  const auto move = protocol.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->root, 1u);  // own ID beats the neighbor's offer
  EXPECT_EQ(move->dist, 0u);
}

TEST(LeaderTreeRules, CapDrainsFarOffers) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<LeaderState> builder(g, ids);
  const LeaderTreeProtocol protocol(/*cap=*/2);
  std::vector<LeaderState> states(2);
  states[0] = LeaderState{0, 5, 1};    // wrong dist/parent, forces a move
  states[1] = LeaderState{999, 1, 0};  // fake root at distance 1; +1 == cap
  const auto move = protocol.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->root, 0u);  // fake offer rejected, self-candidacy wins
  EXPECT_EQ(move->dist, 0u);
}

TEST(LeaderTreeConvergence, CleanStartElectsMaxAcrossFamilies) {
  graph::Rng rng(111);
  const std::vector<Graph> graphs{
      graph::path(20),   graph::cycle(21), graph::star(15),
      graph::grid(4, 5), graph::connectedErdosRenyi(25, 0.15, rng)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    const auto cap = static_cast<std::uint32_t>(g.order());
    for (int order = 0; order < 3; ++order) {
      graph::Rng idRng(order + 7);
      const IdAssignment ids =
          order == 0 ? IdAssignment::identity(g.order())
          : order == 1 ? IdAssignment::reversed(g.order())
                       : IdAssignment::randomSparse(g.order(), idRng);
      const LeaderTreeProtocol protocol(cap);
      SyncRunner<LeaderState> runner(protocol, g, ids);
      auto states = runner.initialStates();
      const auto result = runner.run(states, 3 * g.order());
      ASSERT_TRUE(result.stabilized) << "graph " << i << " order " << order;
      EXPECT_TRUE(isLeaderTree(g, ids, states))
          << "graph " << i << " order " << order;
    }
  }
}

TEST(LeaderTreeConvergence, FakeRootsAreFlushed) {
  // Every node starts claiming a random 64-bit root — essentially all fake.
  graph::Rng rng(113);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const auto cap = static_cast<std::uint32_t>(g.order());
    const auto ids = IdAssignment::identity(g.order());
    const LeaderTreeProtocol protocol(cap);
    auto states =
        engine::randomConfiguration<LeaderState>(g, rng, randomLeaderState);
    SyncRunner<LeaderState> runner(protocol, g, ids);
    const auto result = runner.run(states, 3 * g.order());
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_LE(result.rounds, 2 * g.order() + 2) << "trial " << trial;
    EXPECT_TRUE(isLeaderTree(g, ids, states)) << "trial " << trial;
  }
}

TEST(LeaderTreeConvergence, EachComponentElectsItsOwnLeader) {
  Graph g(7);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  g.addEdge(5, 6);
  const auto ids = IdAssignment::identity(7);
  const LeaderTreeProtocol protocol(7);
  SyncRunner<LeaderState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 30).stabilized);
  EXPECT_TRUE(isLeaderTree(g, ids, states));
  EXPECT_EQ(states[0].root, 2u);
  EXPECT_EQ(states[3].root, 4u);
  EXPECT_EQ(states[6].root, 6u);
}

TEST(LeaderTreeConvergence, LeaderLossTriggersReElection) {
  // Stabilize, then "kill" the leader by isolating it: the rest must elect
  // the runner-up.
  Graph g = graph::complete(6);
  const auto ids = IdAssignment::identity(6);
  const LeaderTreeProtocol protocol(6);
  SyncRunner<LeaderState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 20).stabilized);
  EXPECT_EQ(states[0].root, 5u);

  for (graph::Vertex v = 0; v < 5; ++v) g.removeEdge(v, 5);
  SyncRunner<LeaderState> rerun(protocol, g, ids);
  ASSERT_TRUE(rerun.run(states, 30).stabilized);
  EXPECT_TRUE(isLeaderTree(g, ids, states));
  EXPECT_EQ(states[0].root, 4u);  // runner-up takes over
  EXPECT_EQ(states[5].root, 5u);  // the isolated ex-leader leads itself
}

TEST(LeaderTreeConvergence, AgreesWithBfsTreeRootedAtLeader) {
  // Differential: the (dist, parent) part of the leader tree must equal
  // what BfsTreeProtocol computes when told the leader explicitly.
  graph::Rng rng(117);
  const Graph g = graph::connectedRandomGeometric(22, 0.35, rng);
  const auto cap = static_cast<std::uint32_t>(g.order());
  const auto ids = IdAssignment::identity(g.order());

  const LeaderTreeProtocol leaderProtocol(cap);
  SyncRunner<LeaderState> leaderRunner(leaderProtocol, g, ids);
  auto leaderStates = leaderRunner.initialStates();
  ASSERT_TRUE(leaderRunner.run(leaderStates, 3 * g.order()).stabilized);

  const graph::Vertex leader = static_cast<graph::Vertex>(g.order() - 1);
  const core::BfsTreeProtocol bfs(ids.idOf(leader), cap);
  SyncRunner<TreeState> bfsRunner(bfs, g, ids);
  auto bfsStates = bfsRunner.initialStates();
  ASSERT_TRUE(bfsRunner.run(bfsStates, 3 * g.order()).stabilized);

  for (graph::Vertex v = 0; v < g.order(); ++v) {
    EXPECT_EQ(leaderStates[v].dist, bfsStates[v].dist) << "v=" << v;
    EXPECT_EQ(leaderStates[v].parent, bfsStates[v].parent) << "v=" << v;
  }
}

}  // namespace
}  // namespace selfstab::core
