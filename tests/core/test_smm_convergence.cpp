// Convergence of Algorithm SMM under the synchronous model:
// Theorem 1 (at most n+1 rounds) and Lemma 8 (maximal matching at fixpoint),
// swept across graph families, sizes, and ID orders.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::checkMatchingFixpoint;
using engine::RunResult;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

struct FamilyCase {
  std::string label;
  std::function<Graph(std::size_t, graph::Rng&)> make;
};

class SmmFamilyConvergence
    : public ::testing::TestWithParam<std::tuple<FamilyCase, std::size_t>> {};

TEST_P(SmmFamilyConvergence, StabilizesWithinTheoremBoundToMaximalMatching) {
  const auto& [family, n] = GetParam();
  graph::Rng rng(hashCombine(n, 0xfeedULL));
  const Graph g = family.make(n, rng);
  const SmmProtocol smm = smmPaper();

  // Sweep ID orders: identity, reversed, and two random permutations.
  std::vector<IdAssignment> orders;
  orders.push_back(IdAssignment::identity(g.order()));
  orders.push_back(IdAssignment::reversed(g.order()));
  graph::Rng idRng(n);
  orders.push_back(IdAssignment::randomPermutation(g.order(), idRng));
  orders.push_back(IdAssignment::randomSparse(g.order(), idRng));

  for (std::size_t o = 0; o < orders.size(); ++o) {
    SyncRunner<PointerState> runner(smm, g, orders[o]);
    auto states = runner.initialStates();
    const RunResult result = runner.run(states, g.order() + 2);
    EXPECT_TRUE(result.stabilized) << family.label << " order " << o;
    EXPECT_LE(result.rounds, g.order() + 1) << family.label << " order " << o;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok())
        << family.label << " order " << o;
  }
}

const FamilyCase kFamilies[] = {
    {"path", [](std::size_t n, graph::Rng&) { return graph::path(n); }},
    {"cycle", [](std::size_t n, graph::Rng&) { return graph::cycle(n); }},
    {"complete", [](std::size_t n, graph::Rng&) { return graph::complete(n); }},
    {"star", [](std::size_t n, graph::Rng&) { return graph::star(n); }},
    {"bintree",
     [](std::size_t n, graph::Rng&) { return graph::binaryTree(n); }},
    {"grid",
     [](std::size_t n, graph::Rng&) { return graph::grid(n / 4 + 1, 4); }},
    {"gnp",
     [](std::size_t n, graph::Rng& rng) {
       return graph::connectedErdosRenyi(n, 0.15, rng);
     }},
    {"udg",
     [](std::size_t n, graph::Rng& rng) {
       return graph::connectedRandomGeometric(n, 0.35, rng);
     }},
};

std::string caseName(
    const ::testing::TestParamInfo<std::tuple<FamilyCase, std::size_t>>&
        info) {
  return std::get<0>(info.param).label + "_n" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Families, SmmFamilyConvergence,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values<std::size_t>(4, 9, 16, 33, 64)),
    caseName);

TEST(SmmConvergence, FromRandomTypeCorrectStates) {
  graph::Rng rng(11);
  const SmmProtocol smm = smmPaper();
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = graph::connectedErdosRenyi(24, 0.12, rng);
    const auto ids = IdAssignment::identity(24);
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    const RunResult result = runner.run(states, g.order() + 2);
    EXPECT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_LE(result.rounds, g.order() + 1) << "trial " << trial;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << "trial " << trial;
  }
}

TEST(SmmConvergence, FromWildCorruptedStates) {
  // Pointers may reference arbitrary vertices (or self) after corruption;
  // the hygiene reading of R3 must clean them up and still stabilize fast.
  graph::Rng rng(13);
  const SmmProtocol smm = smmPaper();
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
    const auto ids = IdAssignment::identity(20);
    auto states =
        engine::randomConfiguration<PointerState>(g, rng, wildPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    // One extra round for the initial cleanup sweep.
    const RunResult result = runner.run(states, g.order() + 3);
    EXPECT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << "trial " << trial;
  }
}

TEST(SmmConvergence, EdgelessGraphIsImmediatelyStable) {
  const Graph g(5);
  const auto ids = IdAssignment::identity(5);
  const SmmProtocol smm = smmPaper();
  SyncRunner<PointerState> runner(smm, g, ids);
  auto states = runner.initialStates();
  const RunResult result = runner.run(states, 10);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(SmmConvergence, SingleEdgeMatchesInTwoRounds) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  const SmmProtocol smm = smmPaper();
  SyncRunner<PointerState> runner(smm, g, ids);
  auto states = runner.initialStates();
  const RunResult result = runner.run(states, 10);
  EXPECT_TRUE(result.stabilized);
  // Round 1: both propose to each other (mutual min) -> matched at once.
  EXPECT_LE(result.rounds, 2u);
  EXPECT_EQ(states[0].ptr, 1u);
  EXPECT_EQ(states[1].ptr, 0u);
}

TEST(SmmConvergence, AcceptPolicyDoesNotAffectTheBound) {
  // The proofs are independent of the R1 choice; verify for all policies.
  graph::Rng rng(17);
  const Graph g = graph::connectedErdosRenyi(30, 0.1, rng);
  const auto ids = IdAssignment::identity(30);
  for (const Choice accept :
       {Choice::MinId, Choice::MaxId, Choice::First, Choice::Random}) {
    const SmmProtocol smm(Choice::MinId, accept);
    SyncRunner<PointerState> runner(smm, g, ids, /*runSeed=*/99);
    auto states = runner.initialStates();
    const RunResult result = runner.run(states, g.order() + 2);
    EXPECT_TRUE(result.stabilized) << toString(accept);
    EXPECT_LE(result.rounds, g.order() + 1) << toString(accept);
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << toString(accept);
  }
}

}  // namespace
}  // namespace selfstab::core
