// Extension: self-stabilizing minimal dominating set with published
// dominator counts, intended for central-daemon or Synchronized execution.
#include "core/dominating_set.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/local_mutex.hpp"
#include "engine/daemons.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::isMinimalDominatingSet;
using analysis::membersOf;
using engine::CentralDaemonRunner;
using engine::CentralPolicy;
using engine::SyncRunner;
using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;

TEST(DomRules, UndominatedNodeEnters) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<DomState> builder(g, ids);
  const DominatingSetProtocol dom;
  const std::vector<DomState> states(3);  // nobody in, counts 0
  const auto move = dom.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_TRUE(move->in);
  EXPECT_EQ(move->published, 1u);
}

TEST(DomRules, StaleCountRefreshesBeforeLeaving) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<DomState> builder(g, ids);
  const DominatingSetProtocol dom;
  std::vector<DomState> states(3);
  states[0] = DomState{true, 1};
  states[1] = DomState{true, 0};  // member with stale count (truly 2)
  states[2] = DomState{false, 1};
  const auto move = dom.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_TRUE(move->in);              // still a member
  EXPECT_EQ(move->published, 2u);     // just bookkeeping
}

TEST(DomRules, RedundantMemberWithoutPrivateNeighborLeaves) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<DomState> builder(g, ids);
  const DominatingSetProtocol dom;
  std::vector<DomState> states(3);
  // Both 0 and 1 in; 2 dominated twice (by 1 and... path 0-1-2: N(2)={1}).
  // Use: 0 in, 1 in. Node 1: fresh count = 2 (self + 0). Neighbor 0 is a
  // member, neighbor 2 is out with published count 1 -> 2 is 1's private
  // neighbor, so 1 must NOT leave.
  states[0] = DomState{true, 2};
  states[1] = DomState{true, 2};
  states[2] = DomState{false, 1};
  EXPECT_FALSE(dom.onRound(builder.build(1, states)).has_value());

  // Node 0: fresh count = 2 (self + 1); only neighbor is member 1 -> no
  // private neighbor: leaves.
  const auto move = dom.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_FALSE(move->in);
  EXPECT_EQ(move->published, 1u);
}

TEST(DomRules, SoleDominatorStays) {
  const Graph g = graph::star(5);
  const auto ids = IdAssignment::identity(5);
  ViewBuilder<DomState> builder(g, ids);
  const DominatingSetProtocol dom;
  std::vector<DomState> states(5);
  states[0] = DomState{true, 1};
  for (graph::Vertex leaf = 1; leaf < 5; ++leaf) {
    states[leaf] = DomState{false, 1};
  }
  EXPECT_FALSE(dom.onRound(builder.build(0, states)).has_value());
}

TEST(DomConvergence, CentralDaemonReachesMinimalDominatingSet) {
  graph::Rng rng(73);
  const DominatingSetProtocol dom;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(18, 0.18, rng);
    const auto ids = IdAssignment::identity(18);
    auto states =
        engine::randomConfiguration<DomState>(g, rng, randomDomState);
    CentralDaemonRunner<DomState> runner(dom, g, ids, CentralPolicy::Random,
                                         trial);
    const auto result = runner.run(states, 200000);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(isMinimalDominatingSet(g, membersOf(states)))
        << "trial " << trial;
  }
}

TEST(DomConvergence, SynchronizedWrapperReachesMinimalDominatingSet) {
  graph::Rng rng(79);
  const Synchronized<DominatingSetProtocol> dom;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(18, 0.18, rng);
    const auto ids = IdAssignment::identity(18);
    auto states =
        engine::randomConfiguration<DomState>(g, rng, randomDomState);
    SyncRunner<DomState> runner(dom, g, ids, trial);
    const auto result = runner.run(states, 20000);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(isMinimalDominatingSet(g, membersOf(states)))
        << "trial " << trial;
  }
}

TEST(DomConvergence, FixpointOnFamilies) {
  graph::Rng rng(83);
  const Synchronized<DominatingSetProtocol> dom;
  const std::vector<Graph> graphs{graph::path(20), graph::cycle(21),
                                  graph::star(15), graph::complete(10),
                                  graph::grid(4, 5)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    const auto ids = IdAssignment::identity(g.order());
    SyncRunner<DomState> runner(dom, g, ids, i);
    auto states = runner.initialStates();
    const auto result = runner.run(states, 20000);
    ASSERT_TRUE(result.stabilized) << "graph " << i;
    EXPECT_TRUE(isMinimalDominatingSet(g, membersOf(states)))
        << "graph " << i;
  }
}

TEST(DomConvergence, StarSettlesOnCenterOrLeaves) {
  const Graph g = graph::star(8);
  const auto ids = IdAssignment::identity(8);
  const Synchronized<DominatingSetProtocol> dom;
  SyncRunner<DomState> runner(dom, g, ids, 11);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 10000).stabilized);
  const auto members = membersOf(states);
  EXPECT_TRUE(isMinimalDominatingSet(g, members));
  // Minimal dominating sets of a star: {center} or all leaves.
  EXPECT_TRUE(members.size() == 1 || members.size() == 7);
}

}  // namespace
}  // namespace selfstab::core
