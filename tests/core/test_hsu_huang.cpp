// The Hsu–Huang [15] baseline: same three rules as SMM with arbitrary
// selections, correct under a central daemon from any initial configuration.
#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/daemons.hpp"
#include "engine/fault.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::checkMatchingFixpoint;
using engine::CentralDaemonRunner;
using engine::CentralPolicy;
using graph::Graph;
using graph::IdAssignment;

TEST(HsuHuang, ConvergesUnderEveryCentralPolicyFromRandomStates) {
  graph::Rng rng(41);
  const SmmProtocol hh = hsuHuang();
  for (const CentralPolicy policy :
       {CentralPolicy::Random, CentralPolicy::MinId, CentralPolicy::MaxId,
        CentralPolicy::RoundRobin}) {
    for (int trial = 0; trial < 10; ++trial) {
      const Graph g = graph::connectedErdosRenyi(18, 0.18, rng);
      const auto ids = IdAssignment::identity(18);
      auto states = engine::randomConfiguration<PointerState>(
          g, rng, randomPointerState);
      CentralDaemonRunner<PointerState> runner(hh, g, ids, policy,
                                               trial + 100);
      const auto result = runner.run(states, 100000);
      ASSERT_TRUE(result.stabilized)
          << "policy " << static_cast<int>(policy) << " trial " << trial;
      EXPECT_TRUE(checkMatchingFixpoint(g, states).ok());
    }
  }
}

TEST(HsuHuang, MoveCountIsPolynomiallyBounded) {
  // Hsu & Huang proved O(n^3) moves (later sharpened to O(n*m)); check a
  // generous polynomial envelope empirically.
  graph::Rng rng(43);
  const SmmProtocol hh = hsuHuang();
  for (const std::size_t n : {10u, 20u, 40u}) {
    std::size_t worst = 0;
    for (int trial = 0; trial < 10; ++trial) {
      const Graph g = graph::connectedErdosRenyi(n, 0.2, rng);
      const auto ids = IdAssignment::identity(n);
      auto states = engine::randomConfiguration<PointerState>(
          g, rng, randomPointerState);
      CentralDaemonRunner<PointerState> runner(
          hh, g, ids, CentralPolicy::Random, trial);
      const auto result = runner.run(states, n * n * n);
      ASSERT_TRUE(result.stabilized);
      worst = std::max(worst, result.moves);
    }
    EXPECT_LE(worst, n * n * n);
  }
}

TEST(HsuHuang, NaiveSynchronousExecutionCanCycle) {
  // Running the central-daemon algorithm unmodified under the synchronous
  // model is exactly the broken variant of the Section 3 remark: on C4 from
  // all-null it livelocks. (This is why the paper's R2 needs min-ID, and why
  // the [16]-style transformation exists — see test_local_mutex.cpp.)
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const SmmProtocol broken = smmArbitrary(Choice::Successor);
  const std::vector<PointerState> start(4);
  const auto result = engine::traceTrajectory(broken, g, ids, start, 1000);
  EXPECT_FALSE(result.stabilized);
  EXPECT_TRUE(result.cycled);
  EXPECT_EQ(result.cycleLength % 2, 0u);  // propose/back-off alternation
}

TEST(HsuHuang, PaperSmmStabilizesOnTheSameInstance) {
  // Contrast with the test above: min-ID proposals stabilize on C4.
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const SmmProtocol smm = smmPaper();
  const std::vector<PointerState> start(4);
  const auto result = engine::traceTrajectory(smm, g, ids, start, 1000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_FALSE(result.cycled);
  EXPECT_LE(result.rounds, 5u);  // Theorem 1: n+1
}

TEST(HsuHuang, RandomDistributedDaemonEscapesTheC4Livelock) {
  // The livelock needs *perfect* synchrony: everyone proposes and backs off
  // in lockstep. A distributed daemon that activates random subsets breaks
  // the symmetry almost surely, so the same broken rule converges.
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const SmmProtocol broken = smmArbitrary(Choice::Successor);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    engine::DistributedDaemonRunner<PointerState> runner(broken, g, ids, 0.5,
                                                         seed);
    std::vector<PointerState> states(4);
    const auto result = runner.run(states, 100000);
    ASSERT_TRUE(result.stabilized) << "seed " << seed;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << "seed " << seed;
  }
}

TEST(HsuHuang, ArbitraryChoiceUnderCentralDaemonIsStillCorrect) {
  // The min-ID requirement matters only for the synchronous model; under a
  // central daemon even the Successor policy stabilizes.
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const SmmProtocol broken = smmArbitrary(Choice::Successor);
  CentralDaemonRunner<PointerState> runner(broken, g, ids,
                                           CentralPolicy::Random, 5);
  std::vector<PointerState> states(4);
  const auto result = runner.run(states, 10000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(checkMatchingFixpoint(g, states).ok());
}

}  // namespace
}  // namespace selfstab::core
