// Extension: synchronous self-stabilizing Grundy-style coloring (in the
// style of the paper's reference [7]).
#include "core/coloring.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::colorCount;
using analysis::isProperColoring;
using engine::SyncRunner;
using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;

TEST(ColoringRules, NodeAdoptsMexOverBiggerNeighbors) {
  const Graph g = graph::star(4);  // center 0, leaves 1..3
  const auto ids = IdAssignment::identity(4);
  ViewBuilder<ColorState> builder(g, ids);
  const ColoringProtocol coloring;
  std::vector<ColorState> states(4);
  states[1].color = 0;
  states[2].color = 1;
  states[3].color = 2;
  // Center (smallest ID) sees bigger neighbors with {0,1,2}: mex = 3.
  const auto move = coloring.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->color, 3u);
}

TEST(ColoringRules, BiggestNodeTakesColorZero) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<ColorState> builder(g, ids);
  const ColoringProtocol coloring;
  std::vector<ColorState> states(3);
  states[2].color = 5;  // garbage; no bigger neighbors -> mex {} = 0
  const auto move = coloring.onRound(builder.build(2, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->color, 0u);
}

TEST(ColoringRules, SmallerNeighborsColorsAreIgnored) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<ColorState> builder(g, ids);
  const ColoringProtocol coloring;
  std::vector<ColorState> states(2);
  states[0].color = 0;
  states[1].color = 0;
  // Node 1 is bigger: its mex over bigger neighbors is mex{} = 0, already
  // holds 0 -> stable even though its smaller neighbor clashes (node 0 will
  // move instead).
  EXPECT_FALSE(coloring.onRound(builder.build(1, states)).has_value());
  EXPECT_TRUE(coloring.onRound(builder.build(0, states)).has_value());
}

TEST(ColoringConvergence, ProperColoringWithinNRoundsAcrossFamilies) {
  graph::Rng rng(61);
  const ColoringProtocol coloring;
  const std::vector<Graph> graphs{
      graph::path(30),     graph::cycle(31),
      graph::complete(15), graph::star(25),
      graph::grid(5, 6),   graph::connectedErdosRenyi(30, 0.15, rng)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    const auto ids = IdAssignment::identity(g.order());
    SyncRunner<ColorState> runner(coloring, g, ids);
    auto states = runner.initialStates();
    const auto result = runner.run(states, g.order() + 1);
    ASSERT_TRUE(result.stabilized) << "graph " << i;
    EXPECT_LE(result.rounds, g.order()) << "graph " << i;
    EXPECT_TRUE(isProperColoring(g, states)) << "graph " << i;
    EXPECT_LE(colorCount(states), g.maxDegree() + 1) << "graph " << i;
  }
}

TEST(ColoringConvergence, FromCorruptedColors) {
  graph::Rng rng(67);
  const ColoringProtocol coloring;
  for (int trial = 0; trial < 50; ++trial) {
    const Graph g = graph::connectedErdosRenyi(25, 0.15, rng);
    const auto ids = IdAssignment::identity(25);
    auto states =
        engine::randomConfiguration<ColorState>(g, rng, randomColorState);
    SyncRunner<ColorState> runner(coloring, g, ids);
    const auto result = runner.run(states, g.order() + 1);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(isProperColoring(g, states)) << "trial " << trial;
    EXPECT_LE(colorCount(states), g.maxDegree() + 1);
  }
}

TEST(ColoringConvergence, CompleteGraphUsesExactlyNColors) {
  const Graph g = graph::complete(8);
  const auto ids = IdAssignment::identity(8);
  const ColoringProtocol coloring;
  SyncRunner<ColorState> runner(coloring, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 20).stabilized);
  EXPECT_TRUE(isProperColoring(g, states));
  EXPECT_EQ(colorCount(states), 8u);
}

TEST(ColoringConvergence, BipartiteGetsFewColorsWithGoodIdOrder) {
  // On K_{a,b} with identity IDs the algorithm 2-colors: every right vertex
  // is bigger than every left vertex.
  const Graph g = graph::completeBipartite(5, 5);
  const auto ids = IdAssignment::identity(10);
  const ColoringProtocol coloring;
  SyncRunner<ColorState> runner(coloring, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 20).stabilized);
  EXPECT_TRUE(isProperColoring(g, states));
  EXPECT_LE(colorCount(states), 2u);
}

TEST(ColoringConvergence, IdOrderSweepStaysProper) {
  graph::Rng rng(71);
  const Graph g = graph::grid(4, 5);
  const ColoringProtocol coloring;
  for (int order = 0; order < 5; ++order) {
    graph::Rng idRng(order);
    const auto ids = IdAssignment::randomPermutation(g.order(), idRng);
    SyncRunner<ColorState> runner(coloring, g, ids);
    auto states =
        engine::randomConfiguration<ColorState>(g, rng, randomColorState);
    const auto result = runner.run(states, g.order() + 1);
    ASSERT_TRUE(result.stabilized);
    EXPECT_TRUE(isProperColoring(g, states));
  }
}

}  // namespace
}  // namespace selfstab::core
