// The Synchronized<> daemon-refinement wrapper (paper reference [16]):
// central-daemon algorithms made safe for the synchronous model via
// per-round randomized neighborhood locks.
#include "core/local_mutex.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::checkMatchingFixpoint;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

TEST(Synchronized, NameWrapsInnerName) {
  const Synchronized<SmmProtocol> wrapped(Choice::First, Choice::First);
  EXPECT_EQ(wrapped.name(), "synchronized[smm(propose=first,accept=first)]");
}

TEST(Synchronized, MakesTheC4CounterexampleStabilize) {
  // Unwrapped, successor-choice SMM cycles forever on C4 (see
  // test_hsu_huang.cpp). The lock wrapper serializes neighborhoods, so the
  // central-daemon correctness of the rules carries over.
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const Synchronized<SmmProtocol> wrapped(Choice::Successor, Choice::First);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SyncRunner<PointerState> runner(wrapped, g, ids, seed);
    std::vector<PointerState> states(4);
    const auto result = runner.run(states, 1000);
    ASSERT_TRUE(result.stabilized) << "seed " << seed;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << "seed " << seed;
  }
}

TEST(Synchronized, MoversFormAnIndependentSetEveryRound) {
  graph::Rng rng(47);
  const Graph g = graph::connectedErdosRenyi(25, 0.15, rng);
  const auto ids = IdAssignment::identity(25);
  const Synchronized<SmmProtocol> wrapped(Choice::First, Choice::First);
  SyncRunner<PointerState> runner(wrapped, g, ids, 7);
  auto states = engine::randomConfiguration<PointerState>(
      g, rng, randomPointerState);
  const auto result = runner.run(
      states, 5000,
      [&](std::size_t, const std::vector<PointerState>& before,
          const std::vector<PointerState>& after, std::size_t) {
        std::vector<graph::Vertex> movers;
        for (graph::Vertex v = 0; v < before.size(); ++v) {
          if (!(before[v] == after[v])) movers.push_back(v);
        }
        EXPECT_TRUE(analysis::isIndependentSet(g, movers));
      });
  ASSERT_TRUE(result.stabilized);
}

TEST(Synchronized, ConvergesOnRandomGraphsFromRandomStates) {
  graph::Rng rng(53);
  const Synchronized<SmmProtocol> wrapped(Choice::First, Choice::First);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
    const auto ids = IdAssignment::identity(20);
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    SyncRunner<PointerState> runner(wrapped, g, ids, trial);
    const auto result = runner.run(states, 5000);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(checkMatchingFixpoint(g, states).ok()) << "trial " << trial;
  }
}

TEST(Synchronized, IsSlowerThanNativeSmm) {
  // The paper's motivation for designing SMM directly: the transformed
  // protocol "is not as fast". Compare average rounds over seeds.
  graph::Rng rng(59);
  const Graph g = graph::connectedErdosRenyi(40, 0.1, rng);
  const auto ids = IdAssignment::identity(40);
  const SmmProtocol native = smmPaper();
  const Synchronized<SmmProtocol> transformed(Choice::First, Choice::First);

  double nativeRounds = 0;
  double transformedRounds = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    auto statesCopy = states;

    SyncRunner<PointerState> a(native, g, ids, trial);
    const auto ra = a.run(states, 10000);
    ASSERT_TRUE(ra.stabilized);
    nativeRounds += static_cast<double>(ra.rounds);

    SyncRunner<PointerState> b(transformed, g, ids, trial);
    const auto rb = b.run(statesCopy, 10000);
    ASSERT_TRUE(rb.stabilized);
    transformedRounds += static_cast<double>(rb.rounds);
  }
  EXPECT_GT(transformedRounds, nativeRounds);
}

TEST(Synchronized, InitialStateDelegatesToInner) {
  const Synchronized<SmmProtocol> wrapped(Choice::MinId, Choice::MinId);
  EXPECT_TRUE(wrapped.initialState(3).isNull());
  EXPECT_EQ(wrapped.inner().proposePolicy(), Choice::MinId);
}

}  // namespace
}  // namespace selfstab::core
