// Extension: self-stabilizing BFS spanning tree (the multicast-tree
// substrate motivating the paper's introduction; refs [13, 14]).
#include "core/bfs_tree.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "engine/view_builder.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::isShortestPathTree;
using engine::SyncRunner;
using engine::ViewBuilder;
using graph::Graph;
using graph::IdAssignment;

TEST(BfsTreeRules, RootRepairsItself) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<TreeState> builder(g, ids);
  const BfsTreeProtocol bfs(/*rootId=*/0, /*cap=*/3);
  std::vector<TreeState> states(3, TreeState{7, 2});
  const auto move = bfs.onRound(builder.build(0, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->dist, 0u);
  EXPECT_EQ(move->parent, graph::kNoVertex);
}

TEST(BfsTreeRules, NodeAdoptsMinNeighborPlusOne) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<TreeState> builder(g, ids);
  const BfsTreeProtocol bfs(0, 3);
  std::vector<TreeState> states(3);
  states[0] = TreeState{0, graph::kNoVertex};
  states[2] = TreeState{3, graph::kNoVertex};
  states[1] = TreeState{3, graph::kNoVertex};
  const auto move = bfs.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->dist, 1u);
  EXPECT_EQ(move->parent, 0u);
}

TEST(BfsTreeRules, TieBreaksByMinId) {
  // Diamond: 1 and 2 both at distance 1; node 3 must pick min-ID parent.
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  g.addEdge(1, 3);
  g.addEdge(2, 3);
  const auto ids = IdAssignment::identity(4);
  ViewBuilder<TreeState> builder(g, ids);
  const BfsTreeProtocol bfs(0, 4);
  std::vector<TreeState> states(4);
  states[1] = TreeState{1, 0};
  states[2] = TreeState{1, 0};
  states[3] = TreeState{4, graph::kNoVertex};
  const auto move = bfs.onRound(builder.build(3, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->dist, 2u);
  EXPECT_EQ(move->parent, 1u);

  // With reversed IDs the other branch wins.
  const auto reversed = IdAssignment::reversed(4);
  ViewBuilder<TreeState> rbuilder(g, reversed);
  const BfsTreeProtocol rbfs(reversed.idOf(0), 4);
  const auto rmove = rbfs.onRound(rbuilder.build(3, states));
  ASSERT_TRUE(rmove.has_value());
  EXPECT_EQ(rmove->parent, 2u);
}

TEST(BfsTreeRules, CorruptHugeDistanceCannotOverflow) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<TreeState> builder(g, ids);
  const BfsTreeProtocol bfs(0, 2);
  std::vector<TreeState> states(2);
  states[0] = TreeState{0xFFFFFFFFu, 1};  // corrupt root state
  states[1] = TreeState{0xFFFFFFFFu, 0};
  const auto move = bfs.onRound(builder.build(1, states));
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->dist, 2u);  // clamped to cap
  EXPECT_EQ(move->parent, graph::kNoVertex);
}

TEST(BfsTreeConvergence, CleanStartStabilizesToTrueBfsTree) {
  graph::Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.12, rng);
    const auto n = static_cast<std::uint32_t>(g.order());
    const auto ids = IdAssignment::identity(g.order());
    const BfsTreeProtocol bfs(/*rootId=*/0, n);
    SyncRunner<TreeState> runner(bfs, g, ids);
    auto states = runner.initialStates();
    const auto result = runner.run(states, 3 * g.order());
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    // Clean start: distances only decrease, so diameter-ish rounds suffice.
    EXPECT_LE(result.rounds, graph::diameter(g) + 2) << "trial " << trial;
    EXPECT_TRUE(isShortestPathTree(g, ids, 0, n, states));
  }
}

TEST(BfsTreeConvergence, ArbitraryStartStabilizesWithinLinearRounds) {
  graph::Rng rng(93);
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const auto n = static_cast<std::uint32_t>(g.order());
    const auto ids = IdAssignment::identity(g.order());
    const BfsTreeProtocol bfs(0, n);
    auto states =
        engine::randomConfiguration<TreeState>(g, rng, randomTreeState);
    SyncRunner<TreeState> runner(bfs, g, ids);
    const auto result = runner.run(states, 3 * g.order());
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_LE(result.rounds, 2 * g.order()) << "trial " << trial;
    EXPECT_TRUE(isShortestPathTree(g, ids, 0, n, states));
  }
}

TEST(BfsTreeConvergence, NonTrivialRootWorks) {
  const Graph g = graph::grid(4, 5);
  const auto n = static_cast<std::uint32_t>(g.order());
  graph::Rng idRng(5);
  const auto ids = IdAssignment::randomPermutation(g.order(), idRng);
  const graph::Vertex root = 13;
  const BfsTreeProtocol bfs(ids.idOf(root), n);
  SyncRunner<TreeState> runner(bfs, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 3 * g.order()).stabilized);
  EXPECT_TRUE(isShortestPathTree(g, ids, root, n, states));
}

TEST(BfsTreeConvergence, DisconnectedComponentSaturates) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);  // island without the root
  const auto ids = IdAssignment::identity(5);
  const BfsTreeProtocol bfs(0, 5);
  SyncRunner<TreeState> runner(bfs, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 20).stabilized);
  EXPECT_TRUE(isShortestPathTree(g, ids, 0, 5, states));
  EXPECT_EQ(states[3].dist, 5u);
  EXPECT_EQ(states[4].dist, 5u);
}

TEST(BfsTreeConvergence, RecoversAfterLinkFailureOnTreeEdge) {
  // Break the path edge nearest the root; the far side must re-route /
  // saturate. On a cycle, breaking one edge re-routes around.
  Graph g = graph::cycle(10);
  const auto ids = IdAssignment::identity(10);
  const BfsTreeProtocol bfs(0, 10);
  SyncRunner<TreeState> runner(bfs, g, ids);
  auto states = runner.initialStates();
  ASSERT_TRUE(runner.run(states, 40).stabilized);
  ASSERT_TRUE(isShortestPathTree(g, ids, 0, 10, states));

  g.removeEdge(0, 1);  // now a path 1-2-...-9-0
  SyncRunner<TreeState> rerun(bfs, g, ids);
  ASSERT_TRUE(rerun.run(states, 40).stabilized);
  EXPECT_TRUE(isShortestPathTree(g, ids, 0, 10, states));
  EXPECT_EQ(states[1].dist, 9u);  // all the way around
}

TEST(BfsTreeConvergence, ParentPointersReachRootWithoutCycles) {
  graph::Rng rng(97);
  const Graph g = graph::connectedRandomGeometric(25, 0.35, rng);
  const auto n = static_cast<std::uint32_t>(g.order());
  const auto ids = IdAssignment::identity(g.order());
  const BfsTreeProtocol bfs(0, n);
  auto states =
      engine::randomConfiguration<TreeState>(g, rng, randomTreeState);
  SyncRunner<TreeState> runner(bfs, g, ids);
  ASSERT_TRUE(runner.run(states, 3 * g.order()).stabilized);
  // Walk up from every node; must reach the root in <= n hops.
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    graph::Vertex cur = v;
    std::size_t hops = 0;
    while (cur != 0) {
      cur = states[cur].parent;
      ASSERT_NE(cur, graph::kNoVertex);
      ASSERT_LE(++hops, g.order());
    }
  }
}

}  // namespace
}  // namespace selfstab::core
