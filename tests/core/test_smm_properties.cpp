// Property-level reproduction of the paper's lemmas:
//   Lemma 1  — matched nodes stay matched (M_t ⊆ M_{t+1})
//   Lemma 7  — A¹ and PA are empty from round 1 on
//   Lemma 10 — while moves occur, |M| grows by >= 2 every 2 rounds
// plus exhaustive verification of Theorem 1 over the *entire* configuration
// space of small graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/node_types.hpp"
#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::core {
namespace {

using analysis::matchedEdges;
using analysis::NodeType;
using analysis::TransitionCensus;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

// Set of matched (unordered) pairs in a configuration.
std::set<graph::Edge> matchedSet(const Graph& g,
                                 const std::vector<PointerState>& states) {
  const auto edges = matchedEdges(g, states);
  return {edges.begin(), edges.end()};
}

TEST(SmmLemmas, MatchedStaysMatchedAndGrowthHolds) {
  graph::Rng rng(21);
  const SmmProtocol smm = smmPaper();
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connectedErdosRenyi(26, 0.12, rng);
    const auto ids = IdAssignment::identity(g.order());
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);

    std::vector<std::size_t> matchedCounts;  // |M_t| in nodes (2 per edge)
    std::set<graph::Edge> prevMatched = matchedSet(g, states);
    matchedCounts.push_back(prevMatched.size() * 2);

    const auto result = runner.run(
        states, g.order() + 2,
        [&](std::size_t, const std::vector<PointerState>& before,
            const std::vector<PointerState>& after, std::size_t) {
          const auto beforeSet = matchedSet(g, before);
          const auto afterSet = matchedSet(g, after);
          // Lemma 1: every matched pair survives.
          EXPECT_TRUE(std::includes(afterSet.begin(), afterSet.end(),
                                    beforeSet.begin(), beforeSet.end()));
          matchedCounts.push_back(afterSet.size() * 2);
        });
    ASSERT_TRUE(result.stabilized);

    // Lemma 10: for t >= 1, if a move happens at t+1 then
    // |M_{t+2}| >= |M_t| + 2. Equivalently, among counts m_1.. (the last
    // entry is the post-fixpoint count) every window of 2 productive rounds
    // gains >= 2 nodes. result.rounds is the number of productive rounds.
    // Productive rounds have indices 0..rounds-1, so "a move is made at
    // time t+1" holds exactly when t+2 <= result.rounds.
    for (std::size_t t = 1; t + 2 < matchedCounts.size(); ++t) {
      if (t + 2 <= result.rounds) {
        EXPECT_GE(matchedCounts[t + 2], matchedCounts[t] + 2)
            << "trial " << trial << " t=" << t;
      }
    }
  }
}

TEST(SmmLemmas, A1AndPaEmptyAfterRoundOne) {
  graph::Rng rng(23);
  const SmmProtocol smm = smmPaper();
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connectedErdosRenyi(22, 0.15, rng);
    const auto ids = IdAssignment::identity(g.order());
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    const auto result = runner.run(
        states, g.order() + 2,
        [&](std::size_t, const std::vector<PointerState>&,
            const std::vector<PointerState>& after, std::size_t) {
          // Every post-round configuration has index >= 1.
          const auto types = analysis::classifyNodes(g, after);
          const auto counts = analysis::countTypes(types);
          EXPECT_EQ(counts.of(NodeType::A1), 0u);
          EXPECT_EQ(counts.of(NodeType::PA), 0u);
        });
    ASSERT_TRUE(result.stabilized);
  }
}

TEST(SmmLemmas, TransitionDiagramHoldsOnRandomRuns) {
  graph::Rng rng(25);
  const SmmProtocol smm = smmPaper();
  std::size_t transitions = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::connectedErdosRenyi(22, 0.15, rng);
    const auto ids = IdAssignment::identity(g.order());
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    TransitionCensus census(g);
    const auto result = runner.run(
        states, g.order() + 2,
        [&](std::size_t t, const std::vector<PointerState>& before,
            const std::vector<PointerState>& after, std::size_t) {
          census.record(t, before, after);
        });
    ASSERT_TRUE(result.stabilized);
    EXPECT_EQ(census.illegalCount(), 0u) << "trial " << trial;
    EXPECT_EQ(census.lateA1PaCount(), 0u) << "trial " << trial;
    transitions += census.transitionsRecorded();
  }
  EXPECT_GT(transitions, 0u);
}

// Exhaustive Theorem 1 check: every configuration of every small instance.
class SmmExhaustive : public ::testing::TestWithParam<Graph> {};

TEST_P(SmmExhaustive, EveryConfigurationStabilizesWithinBound) {
  const Graph& g = GetParam();
  const auto ids = IdAssignment::identity(g.order());
  const SmmProtocol smm = smmPaper();

  // Candidate states per vertex: Λ plus each neighbor.
  std::vector<std::vector<PointerState>> candidates(g.order());
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    candidates[v].push_back(PointerState{});
    for (const graph::Vertex w : g.neighbors(v)) {
      candidates[v].push_back(PointerState{w});
    }
  }

  std::size_t configs = 0;
  std::size_t worstRounds = 0;
  engine::enumerateConfigurations(
      candidates, [&](const std::vector<PointerState>& start) {
        SyncRunner<PointerState> runner(smm, g, ids);
        auto states = start;
        const auto result = runner.run(states, g.order() + 2);
        ASSERT_TRUE(result.stabilized);
        ASSERT_LE(result.rounds, g.order() + 1);
        ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
        worstRounds = std::max(worstRounds, result.rounds);
        ++configs;
      });
  EXPECT_GT(configs, 0u);
  // Sanity: some configuration actually needs work.
  EXPECT_GE(worstRounds, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SmallGraphs, SmmExhaustive,
    ::testing::Values(graph::path(4), graph::path(5), graph::cycle(4),
                      graph::cycle(5), graph::cycle(6), graph::complete(4),
                      graph::star(5), graph::completeBipartite(2, 3)),
    [](const ::testing::TestParamInfo<Graph>& paramInfo) {
      return "g" + std::to_string(paramInfo.index) + "_n" +
             std::to_string(paramInfo.param.order()) + "_m" +
             std::to_string(paramInfo.param.size());
    });

TEST(SmmProperties, StabilizationRoundsCanReachOrderOfN) {
  // The n+1 bound is asymptotically tight: on a path with identity IDs and
  // all-null start, matches form left to right a couple of vertices per
  // two rounds. Check rounds grow linearly with n.
  const SmmProtocol smm = smmPaper();
  std::size_t rounds16 = 0;
  std::size_t rounds64 = 0;
  for (const std::size_t n : {16u, 64u}) {
    const Graph g = graph::path(n);
    const auto ids = IdAssignment::identity(n);
    SyncRunner<PointerState> runner(smm, g, ids);
    auto states = runner.initialStates();
    const auto result = runner.run(states, n + 2);
    ASSERT_TRUE(result.stabilized);
    (n == 16 ? rounds16 : rounds64) = result.rounds;
  }
  EXPECT_GT(rounds64, rounds16);
  EXPECT_GE(rounds64, 16u);  // linear-ish growth, not O(1) or O(log n)
}

}  // namespace
}  // namespace selfstab::core
