#include "telemetry/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace selfstab::telemetry {
namespace {

TEST(JsonEscaping, PassesPlainTextThrough) {
  EXPECT_EQ(jsonEscaped("hello world_42"), "hello world_42");
}

TEST(JsonEscaping, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(jsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscaped("line1\nline2"), "line1\\nline2");
  EXPECT_EQ(jsonEscaped("tab\there"), "tab\\there");
  EXPECT_EQ(jsonEscaped(std::string("nul\x01""end")), "nul\\u0001end");
  EXPECT_EQ(jsonEscaped("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("name").value("run");
  w.key("count").value(std::uint64_t{42});
  w.key("ok").value(true);
  w.key("items").beginArray();
  w.value(1).value(2).value(3);
  w.endArray();
  w.key("nested").beginObject();
  w.key("x").value(0.5);
  w.endObject();
  w.endObject();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(),
            "{\"name\":\"run\",\"count\":42,\"ok\":true,"
            "\"items\":[1,2,3],\"nested\":{\"x\":0.5}}");
}

TEST(JsonWriter, EscapesKeysAndStringValues) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("we\"ird").value("v\nv");
  w.endObject();
  EXPECT_EQ(out.str(), "{\"we\\\"ird\":\"v\\nv\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginArray();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.endArray();
  EXPECT_EQ(out.str(), "[null,null,null]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  std::ostringstream out;
  JsonWriter w(out);
  w.value(0.1);
  const double parsed = std::stod(out.str());
  EXPECT_DOUBLE_EQ(parsed, 0.1);
}

TEST(JsonWriter, NegativeIntegers) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginArray();
  w.value(-7);
  w.value(std::int64_t{-1234567890123});
  w.endArray();
  EXPECT_EQ(out.str(), "[-7,-1234567890123]");
}

TEST(JsonWriter, EmptyContainers) {
  std::ostringstream out;
  JsonWriter w(out);
  w.beginObject();
  w.key("a").beginArray().endArray();
  w.key("o").beginObject().endObject();
  w.endObject();
  EXPECT_EQ(out.str(), "{\"a\":[],\"o\":{}}");
  EXPECT_TRUE(w.complete());
}

}  // namespace
}  // namespace selfstab::telemetry
