#include "telemetry/event_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace selfstab::telemetry {
namespace {

TEST(EventLog, EmitsOneJsonObjectPerLine) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("round", {{"executor", "sync"}, {"round", 3}, {"moves", 7u}});
  log.emit("reboot", {{"node", 12}, {"t_us", 2'500'000LL}});
  EXPECT_EQ(out.str(),
            "{\"type\":\"round\",\"executor\":\"sync\",\"round\":3,"
            "\"moves\":7}\n"
            "{\"type\":\"reboot\",\"node\":12,\"t_us\":2500000}\n");
  EXPECT_EQ(log.lineCount(), 2u);
}

TEST(EventLog, EscapesTypeKeysAndStringValues) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("we\"ird", {{"k\ney", "v\\al"}});
  EXPECT_EQ(out.str(), "{\"type\":\"we\\\"ird\",\"k\\ney\":\"v\\\\al\"}\n");
}

TEST(EventLog, RendersScalarFieldTypes) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("t", {{"d", 0.5},
                 {"neg", -42},
                 {"big", 9'000'000'000ULL},
                 {"flag", true},
                 {"nan", std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_EQ(out.str(),
            "{\"type\":\"t\",\"d\":0.5,\"neg\":-42,\"big\":9000000000,"
            "\"flag\":true,\"nan\":null}\n");
}

TEST(EventLog, EmptyFieldListIsJustTheType) {
  std::ostringstream out;
  EventLog log(out);
  log.emit("tick", {});
  EXPECT_EQ(out.str(), "{\"type\":\"tick\"}\n");
}

TEST(EventLog, ConcurrentEmittersNeverInterleaveLines) {
  std::ostringstream out;
  EventLog log(out);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.emit("evt", {{"worker", t}, {"i", i}});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(log.lineCount(),
            static_cast<std::size_t>(kThreads * kPerThread));

  // Every line must be a complete record: starts with {"type":"evt",
  // ends with }, and there are exactly kThreads*kPerThread of them.
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_EQ(line.rfind("{\"type\":\"evt\",", 0), 0u) << line;
    ASSERT_EQ(line.back(), '}') << line;
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace selfstab::telemetry
