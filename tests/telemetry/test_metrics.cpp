#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/registry.hpp"

namespace selfstab::telemetry {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 1.75);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (inclusive edge, Prometheus convention)
  h.observe(1.5);   // <= 2
  h.observe(5.0);   // <= 5
  h.observe(100.0); // +Inf
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 5.0 + 100.0);
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ConcurrentObservationsAreLossless) {
  Histogram h({0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(t % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const auto counts = h.counts();
  EXPECT_EQ(counts[0], 2u * kPerThread);
  EXPECT_EQ(counts[1], 2u * kPerThread);
}

TEST(DefaultBuckets, AreSortedAndNonEmpty) {
  const auto d = durationBuckets();
  ASSERT_FALSE(d.empty());
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  const auto s = sizeBuckets();
  ASSERT_FALSE(s.empty());
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Registry, GetOrCreateReturnsStableInstances) {
  Registry r;
  Counter& a = r.counter("moves_total");
  a.inc(3);
  Counter& b = r.counter("moves_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(r.counterValue("moves_total"), 3u);
  EXPECT_EQ(r.counterValue("never_registered"), 0u);

  Histogram& h1 = r.histogram("latency", {1.0, 2.0});
  Histogram& h2 = r.histogram("latency", {999.0});  // bounds ignored on reuse
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, RejectsMalformedNames) {
  Registry r;
  EXPECT_THROW(r.counter(""), std::invalid_argument);
  EXPECT_THROW(r.counter("1starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(r.counter("has space"), std::invalid_argument);
  EXPECT_THROW(r.gauge("has-dash"), std::invalid_argument);
  EXPECT_THROW(r.histogram("quo\"te", {1.0}), std::invalid_argument);
  EXPECT_NO_THROW(r.counter("_ok_Name_42"));
}

TEST(Registry, WriteJsonEmitsAllInstrumentKinds) {
  Registry r;
  r.counter("beacons_sent_total").inc(7);
  r.gauge("worker_imbalance_ratio").set(1.25);
  Histogram& h = r.histogram("round_duration_seconds", {0.001, 0.01});
  h.observe(0.0005);
  h.observe(0.5);

  std::ostringstream out;
  r.writeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"counters\":{\"beacons_sent_total\":7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"worker_imbalance_ratio\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"round_duration_seconds\":{\"bounds\":[0.001,0.01],"
                      "\"counts\":[1,0,1]"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  // One complete document, newline-terminated.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(Registry, WritePrometheusUsesCumulativeBuckets) {
  Registry r;
  r.counter("rounds_total").inc(3);
  Histogram& h = r.histogram("round_duration_seconds", {1.0, 2.0});
  h.observe(0.5);
  h.observe(1.5);
  h.observe(10.0);

  std::ostringstream out;
  r.writePrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("rounds_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE round_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_sum 12"), std::string::npos);
}

TEST(Registry, ManyThreadsShareOneCounter) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // Resolve inside the thread: registration itself must be thread-safe.
    threads.emplace_back([&r] {
      Counter& c = r.counter("moves_total");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counterValue("moves_total"), kThreads * kPerThread);
}

}  // namespace
}  // namespace selfstab::telemetry
