// Satellite: telemetry must be purely observational. The parallel executor
// with telemetry attached must produce bit-identical trajectories to the
// serial executor, and both must report identical rounds_total/moves_total.
#include <gtest/gtest.h>

#include <sstream>

#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab::engine {
namespace {

using core::PointerState;
using graph::Graph;
using graph::IdAssignment;
namespace names = telemetry::names;

TEST(ExecutorParity, ParallelWithTelemetryMatchesSerialBitForBit) {
  graph::Rng rng(701);
  const Graph g = graph::connectedErdosRenyi(72, 0.09, rng);
  const auto ids = IdAssignment::identity(72);
  const core::SmmProtocol smm = core::smmPaper();

  auto serialStates = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  auto parallelStates = serialStates;

  telemetry::Registry serialReg;
  telemetry::Registry parallelReg;

  SyncRunner<PointerState> serial(smm, g, ids, /*runSeed=*/13);
  serial.attachTelemetry(&serialReg);
  ParallelSyncRunner<PointerState> parallel(smm, g, ids, /*threads=*/4,
                                            /*runSeed=*/13);
  parallel.attachTelemetry(&parallelReg);

  const auto ra = serial.run(serialStates, 300);
  const auto rb = parallel.run(parallelStates, 300);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(parallelStates, serialStates);

  // Both executors executed the same step() calls, so the counters agree
  // exactly — including the final zero-move verification round.
  EXPECT_EQ(parallelReg.counterValue(names::kRoundsTotal),
            serialReg.counterValue(names::kRoundsTotal));
  EXPECT_EQ(parallelReg.counterValue(names::kMovesTotal),
            serialReg.counterValue(names::kMovesTotal));
  EXPECT_EQ(serialReg.counterValue(names::kMovesTotal), ra.totalMoves);
  EXPECT_GE(serialReg.counterValue(names::kRoundsTotal), ra.rounds);
}

TEST(ExecutorParity, AttachedTelemetryDoesNotPerturbTrajectory) {
  graph::Rng rng(703);
  const Graph g = graph::connectedErdosRenyi(48, 0.12, rng);
  const auto ids = IdAssignment::identity(48);
  const core::SmmProtocol smm = core::smmPaper();
  const auto start = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);

  auto bare = start;
  SyncRunner<PointerState> plainRunner(smm, g, ids, /*runSeed=*/99);
  const auto plainResult = plainRunner.run(bare, 200);

  auto instrumented = start;
  telemetry::Registry registry;
  std::ostringstream events;
  telemetry::EventLog log(events);
  SyncRunner<PointerState> wiredRunner(smm, g, ids, /*runSeed=*/99);
  wiredRunner.attachTelemetry(&registry, &log);
  const auto wiredResult = wiredRunner.run(instrumented, 200);

  EXPECT_EQ(wiredResult, plainResult);
  EXPECT_EQ(instrumented, bare);
  // One "round" event per executed step (counted rounds + verification).
  EXPECT_EQ(log.lineCount(), registry.counterValue(names::kRoundsTotal));
}

TEST(ExecutorParity, PerPhaseHistogramsArePopulated) {
  graph::Rng rng(705);
  const Graph g = graph::connectedErdosRenyi(40, 0.15, rng);
  const auto ids = IdAssignment::identity(40);
  const core::SmmProtocol smm = core::smmPaper();

  telemetry::Registry serialReg;
  {
    SyncRunner<PointerState> runner(smm, g, ids);
    runner.attachTelemetry(&serialReg);
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    runner.run(states, 200);
  }
  const std::uint64_t serialRounds =
      serialReg.counterValue(names::kRoundsTotal);
  ASSERT_GT(serialRounds, 0u);
  for (const char* name : {names::kRoundDuration, names::kSnapshotDuration,
                           names::kEvaluateDuration, names::kCommitDuration}) {
    const telemetry::Histogram* h = serialReg.findHistogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->count(), serialRounds) << name;
  }
  // The serial executor has no workers to report on.
  EXPECT_EQ(serialReg.findHistogram(names::kWorkerChunkDuration), nullptr);

  telemetry::Registry parallelReg;
  {
    ParallelSyncRunner<PointerState> runner(smm, g, ids, /*threads=*/3);
    runner.attachTelemetry(&parallelReg);
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    runner.run(states, 200);
  }
  const std::uint64_t parallelRounds =
      parallelReg.counterValue(names::kRoundsTotal);
  ASSERT_GT(parallelRounds, 0u);
  const telemetry::Histogram* chunks =
      parallelReg.findHistogram(names::kWorkerChunkDuration);
  ASSERT_NE(chunks, nullptr);
  // Every round dispatches every worker once.
  EXPECT_EQ(chunks->count(), parallelRounds * 3);
  EXPECT_GE(parallelReg.gaugeValue(names::kWorkerImbalance), 0.0);
}

TEST(ExecutorParity, ParallelEventsCarryExecutorTag) {
  const Graph g = graph::cycle(16);
  const auto ids = IdAssignment::identity(16);
  const core::SmmProtocol smm = core::smmPaper();

  std::ostringstream events;
  telemetry::EventLog log(events);
  ParallelSyncRunner<PointerState> runner(smm, g, ids, /*threads=*/2);
  runner.attachTelemetry(nullptr, &log);
  auto states = SyncRunner<PointerState>(smm, g, ids).initialStates();
  runner.run(states, 100);

  ASSERT_GT(log.lineCount(), 0u);
  std::istringstream in(events.str());
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"executor\":\"parallel\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"workers\":2"), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace selfstab::engine
