// Self-stabilization property suite: the paper's convergence theorems as
// executable properties.
//
// Self-stabilization is a universally-quantified claim — from EVERY initial
// configuration the protocol reaches a legitimate configuration within a
// bounded number of rounds. This suite samples that quantifier: adversarial
// (type-garbage) initial states over randomized connected topologies and ID
// orders, asserting both the round bound and verifier-checked legitimacy:
//
//   * SMM stabilizes to a maximal matching in at most 2n+1 synchronous
//     rounds (Theorem 1),
//   * SIS stabilizes to a maximal independent set in at most n rounds
//     (Theorem 2),
//
// under BOTH schedules (the Active runs double as end-to-end evidence that
// scheduling does not stretch the bounds). Failures print the seed needed
// to replay the exact (graph, IDs, initial state) combination.
//
// SELFSTAB_STRESS_ITERS scales the per-theorem iteration count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using engine::Schedule;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

std::size_t stressIters(std::size_t fallback) {
  if (const char* env = std::getenv("SELFSTAB_STRESS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// Connected topologies only: the paper's system model assumes the ad hoc
// network stays connected.
Graph makeConnectedGraph(std::size_t family, graph::Rng& rng) {
  switch (family % 7) {
    case 0:
      return graph::connectedErdosRenyi(6 + rng.below(30), 0.15, rng);
    case 1:
      return graph::connectedRandomGeometric(6 + rng.below(30), 0.35, rng);
    case 2:
      return graph::path(2 + rng.below(30));
    case 3:
      return graph::star(2 + rng.below(30));
    case 4:
      return graph::complete(2 + rng.below(12));
    case 5:
      return graph::cycle(3 + rng.below(24));
    default:
      return graph::randomTree(2 + rng.below(30), rng);
  }
}

IdAssignment makeIds(const Graph& g, std::uint64_t choice, graph::Rng& rng) {
  switch (choice % 4) {
    case 0:
      return IdAssignment::identity(g.order());
    case 1:
      return IdAssignment::reversed(g.order());
    case 2:
      return IdAssignment::randomPermutation(g.order(), rng);
    default:
      return IdAssignment::randomSparse(g.order(), rng);
  }
}

TEST(SelfStabilizationProperties, SmmConvergesWithin2nPlus1Rounds) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(40);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(0x51110000 + seed);
    const Graph g = makeConnectedGraph(static_cast<std::size_t>(seed), rng);
    const IdAssignment ids = makeIds(g, seed / 7, rng);
    // Adversarial start: wild pointers, including self-loops and values that
    // do not name any neighbor.
    const auto start = engine::randomConfiguration<core::PointerState>(
        g, rng, core::wildPointerState);
    const std::size_t bound = 2 * g.order() + 1;

    for (const Schedule schedule : {Schedule::Dense, Schedule::Active}) {
      SyncRunner<core::PointerState> runner(smm, g, ids, seed, schedule);
      auto states = start;
      const engine::RunResult result = runner.run(states, bound);
      ASSERT_TRUE(result.stabilized)
          << "SMM failed to stabilize within 2n+1=" << bound
          << " rounds; schedule=" << toString(schedule) << " n=" << g.order()
          << " m=" << g.size() << " replay seed=" << seed;
      ASSERT_LE(result.rounds, bound);
      ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok())
          << "SMM fixpoint is not a maximal matching; schedule="
          << toString(schedule) << " replay seed=" << seed;
    }
  }
}

TEST(SelfStabilizationProperties, SisConvergesWithinNRounds) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(40);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(0x51520000 + seed);
    const Graph g = makeConnectedGraph(static_cast<std::size_t>(seed), rng);
    const IdAssignment ids = makeIds(g, seed / 7, rng);
    const auto start = engine::randomConfiguration<core::BitState>(
        g, rng, core::randomBitState);
    const std::size_t bound = g.order();

    for (const Schedule schedule : {Schedule::Dense, Schedule::Active}) {
      SyncRunner<core::BitState> runner(sis, g, ids, seed, schedule);
      auto states = start;
      const engine::RunResult result = runner.run(states, bound);
      ASSERT_TRUE(result.stabilized)
          << "SIS failed to stabilize within n=" << bound
          << " rounds; schedule=" << toString(schedule) << " m=" << g.size()
          << " replay seed=" << seed;
      ASSERT_LE(result.rounds, bound);
      ASSERT_TRUE(
          analysis::isMaximalIndependentSet(g, analysis::membersOf(states)))
          << "SIS fixpoint is not a maximal independent set; schedule="
          << toString(schedule) << " replay seed=" << seed;
    }
  }
}

TEST(SelfStabilizationProperties, SmmRecoversFromFaultBurstsWithinBound) {
  // Stabilize, corrupt a fraction of nodes, and demand re-stabilization
  // within the same 2n+1 bound — the "self" in self-stabilizing. Exercises
  // corruptAndReschedule on both schedules.
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(20);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(0x5fa10000 + seed);
    const Graph g = makeConnectedGraph(static_cast<std::size_t>(seed), rng);
    const IdAssignment ids = makeIds(g, seed / 7, rng);
    const std::size_t bound = 2 * g.order() + 1;

    for (const Schedule schedule : {Schedule::Dense, Schedule::Active}) {
      SyncRunner<core::PointerState> runner(smm, g, ids, seed, schedule);
      auto states = runner.initialStates();
      ASSERT_TRUE(runner.run(states, bound).stabilized);

      graph::Rng faultRng(seed * 977 + 5);
      engine::corruptAndReschedule(runner, states, g, faultRng, 0.3,
                                   core::wildPointerState);
      const engine::RunResult recovery = runner.run(states, bound);
      ASSERT_TRUE(recovery.stabilized)
          << "SMM failed to re-stabilize after a fault burst; schedule="
          << toString(schedule) << " n=" << g.order()
          << " replay seed=" << seed;
      ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok())
          << "schedule=" << toString(schedule) << " replay seed=" << seed;
    }
  }
}

TEST(SelfStabilizationProperties, SisFaultRecoveryLandsOnTheUniqueFixpoint) {
  // SIS has a unique fixpoint per (graph, IDs); recovery must land exactly
  // there regardless of what the fault burst scrambled.
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(20);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(0x5fa20000 + seed);
    const Graph g = makeConnectedGraph(static_cast<std::size_t>(seed), rng);
    const IdAssignment ids = makeIds(g, seed / 7, rng);
    const std::size_t bound = g.order();

    std::vector<core::BitState> reference(g.order());
    SyncRunner<core::BitState> refRunner(sis, g, ids, seed, Schedule::Dense);
    ASSERT_TRUE(refRunner.run(reference, bound).stabilized);

    for (const Schedule schedule : {Schedule::Dense, Schedule::Active}) {
      SyncRunner<core::BitState> runner(sis, g, ids, seed, schedule);
      std::vector<core::BitState> states(g.order());
      ASSERT_TRUE(runner.run(states, bound).stabilized);
      graph::Rng faultRng(seed * 31 + 9);
      engine::corruptAndReschedule(runner, states, g, faultRng, 0.5,
                                   core::randomBitState);
      ASSERT_TRUE(runner.run(states, bound).stabilized)
          << "schedule=" << toString(schedule) << " replay seed=" << seed;
      ASSERT_TRUE(states == reference)
          << "schedule=" << toString(schedule) << " replay seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace selfstab
