#include "engine/view_builder.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using graph::Graph;
using graph::IdAssignment;
using testing::ValueState;

TEST(ViewBuilder, ViewCarriesSelfAndNeighbors) {
  const Graph g = graph::star(4);
  const auto ids = IdAssignment::reversed(4);  // vertex v has ID 3-v
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states{{10}, {11}, {12}, {13}};

  const auto view = builder.build(0, states, /*roundKey=*/55);
  EXPECT_EQ(view.self, 0u);
  EXPECT_EQ(view.selfId, 3u);
  EXPECT_EQ(view.state().value, 10u);
  EXPECT_EQ(view.roundKey, 55u);
  ASSERT_EQ(view.neighbors.size(), 3u);
  // Neighbors in increasing vertex order, carrying their IDs and states.
  EXPECT_EQ(view.neighbors[0].vertex, 1u);
  EXPECT_EQ(view.neighbors[0].id, 2u);
  EXPECT_EQ(view.neighbors[0].state->value, 11u);
  EXPECT_EQ(view.neighbors[2].vertex, 3u);
  EXPECT_EQ(view.neighbors[2].id, 0u);
}

TEST(ViewBuilder, LeafSeesOnlyTheCenter) {
  const Graph g = graph::star(4);
  const auto ids = IdAssignment::identity(4);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(4);
  const auto view = builder.build(2, states);
  ASSERT_EQ(view.neighbors.size(), 1u);
  EXPECT_EQ(view.neighbors[0].vertex, 0u);
}

TEST(ViewBuilder, FindLocatesNeighborsOnly) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(3);
  const auto view = builder.build(1, states);
  EXPECT_NE(view.find(0), nullptr);
  EXPECT_NE(view.find(2), nullptr);
  EXPECT_EQ(view.find(1), nullptr);   // self is not a neighbor
  EXPECT_EQ(view.find(99), nullptr);  // nonexistent
}

TEST(ViewBuilder, IsolatedVertexHasEmptyView) {
  const Graph g(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(2);
  const auto view = builder.build(0, states);
  EXPECT_TRUE(view.neighbors.empty());
}

TEST(ViewBuilder, ReflectsGraphMutation) {
  Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(3);
  EXPECT_EQ(builder.build(0, states).neighbors.size(), 1u);
  g.addEdge(0, 2);
  EXPECT_EQ(builder.build(0, states).neighbors.size(), 2u);
  g.removeEdge(0, 1);
  EXPECT_EQ(builder.build(0, states).neighbors.size(), 1u);
  EXPECT_EQ(builder.build(0, states).neighbors[0].vertex, 2u);
}

// Regression for the LocalView::find rewrite (linear scan -> lower_bound):
// on every vertex of a random graph, find() must agree exactly with the
// adjacency — hit every true neighbor, miss self and every non-neighbor,
// and return the entry carrying the right ID and state pointer.
TEST(ViewBuilder, FindMatchesAdjacencyExhaustively) {
  graph::Rng rng(811);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.2, rng);
    graph::Rng idRng(trial);
    const auto ids = IdAssignment::randomSparse(g.order(), idRng);
    ViewBuilder<ValueState> builder(g, ids);
    std::vector<ValueState> states(g.order());
    for (graph::Vertex v = 0; v < g.order(); ++v) {
      states[v].value = v;
    }
    for (graph::Vertex v = 0; v < g.order(); ++v) {
      const auto view = builder.build(v, states);
      for (graph::Vertex w = 0; w < g.order(); ++w) {
        const auto* entry = view.find(w);
        if (g.hasEdge(v, w)) {
          ASSERT_NE(entry, nullptr) << "v=" << v << " w=" << w;
          EXPECT_EQ(entry->vertex, w);
          EXPECT_EQ(entry->id, ids.idOf(w));
          EXPECT_EQ(entry->state->value, w);
        } else {
          ASSERT_EQ(entry, nullptr) << "v=" << v << " w=" << w;
        }
      }
      // Out-of-range probes (binary search must not walk off the span).
      EXPECT_EQ(view.find(graph::kNoVertex), nullptr);
      EXPECT_EQ(view.find(static_cast<graph::Vertex>(g.order() + 5)), nullptr);
    }
  }
}

// Targeted binary-search boundaries for LocalView::find: the empty span,
// the first and last entries, probes that land in gaps between entries,
// and probes beyond both ends.
TEST(ViewBuilder, FindBinarySearchEdgeCases) {
  Graph g(12);
  g.addEdge(4, 0);
  g.addEdge(4, 5);
  g.addEdge(4, 9);
  const auto ids = IdAssignment::identity(12);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(12);

  const auto empty = builder.build(11, states);  // isolated: empty span
  EXPECT_EQ(empty.find(0), nullptr);
  EXPECT_EQ(empty.find(11), nullptr);

  const auto view = builder.build(4, states);  // neighbors {0, 5, 9}
  ASSERT_EQ(view.neighbors.size(), 3u);
  EXPECT_NE(view.find(0), nullptr);  // first entry
  EXPECT_NE(view.find(5), nullptr);  // middle entry
  EXPECT_NE(view.find(9), nullptr);  // last entry
  EXPECT_EQ(view.find(1), nullptr);  // gap after first
  EXPECT_EQ(view.find(4), nullptr);  // self, in a gap
  EXPECT_EQ(view.find(6), nullptr);  // gap before last
  EXPECT_EQ(view.find(10), nullptr); // past the last entry
  EXPECT_EQ(view.find(graph::kNoVertex), nullptr);
}

// The CSR mirror exposed via neighborsOf must equal Graph::neighbors and
// revalidate across arbitrary mutation sequences (Graph::version bumps).
TEST(ViewBuilder, NeighborsOfMirrorsGraphAcrossMutations) {
  graph::Rng rng(813);
  Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
  const auto ids = IdAssignment::identity(g.order());
  ViewBuilder<ValueState> builder(g, ids);

  const auto check = [&] {
    for (graph::Vertex v = 0; v < g.order(); ++v) {
      const auto mirrored = builder.neighborsOf(v);
      const auto truth = g.neighbors(v);
      ASSERT_EQ(mirrored.size(), truth.size()) << "v=" << v;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        EXPECT_EQ(mirrored[i], truth[i]) << "v=" << v << " slot " << i;
      }
    }
  };

  check();
  for (int round = 0; round < 30; ++round) {
    const auto u = static_cast<graph::Vertex>(rng.below(g.order()));
    const auto w = static_cast<graph::Vertex>(rng.below(g.order()));
    if (u != w) g.toggleEdge(u, w);
    check();
  }
  g.clearEdges();
  check();
}

}  // namespace
}  // namespace selfstab::engine
