#include "engine/view_builder.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using graph::Graph;
using graph::IdAssignment;
using testing::ValueState;

TEST(ViewBuilder, ViewCarriesSelfAndNeighbors) {
  const Graph g = graph::star(4);
  const auto ids = IdAssignment::reversed(4);  // vertex v has ID 3-v
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states{{10}, {11}, {12}, {13}};

  const auto view = builder.build(0, states, /*roundKey=*/55);
  EXPECT_EQ(view.self, 0u);
  EXPECT_EQ(view.selfId, 3u);
  EXPECT_EQ(view.state().value, 10u);
  EXPECT_EQ(view.roundKey, 55u);
  ASSERT_EQ(view.neighbors.size(), 3u);
  // Neighbors in increasing vertex order, carrying their IDs and states.
  EXPECT_EQ(view.neighbors[0].vertex, 1u);
  EXPECT_EQ(view.neighbors[0].id, 2u);
  EXPECT_EQ(view.neighbors[0].state->value, 11u);
  EXPECT_EQ(view.neighbors[2].vertex, 3u);
  EXPECT_EQ(view.neighbors[2].id, 0u);
}

TEST(ViewBuilder, LeafSeesOnlyTheCenter) {
  const Graph g = graph::star(4);
  const auto ids = IdAssignment::identity(4);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(4);
  const auto view = builder.build(2, states);
  ASSERT_EQ(view.neighbors.size(), 1u);
  EXPECT_EQ(view.neighbors[0].vertex, 0u);
}

TEST(ViewBuilder, FindLocatesNeighborsOnly) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(3);
  const auto view = builder.build(1, states);
  EXPECT_NE(view.find(0), nullptr);
  EXPECT_NE(view.find(2), nullptr);
  EXPECT_EQ(view.find(1), nullptr);   // self is not a neighbor
  EXPECT_EQ(view.find(99), nullptr);  // nonexistent
}

TEST(ViewBuilder, IsolatedVertexHasEmptyView) {
  const Graph g(2);
  const auto ids = IdAssignment::identity(2);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(2);
  const auto view = builder.build(0, states);
  EXPECT_TRUE(view.neighbors.empty());
}

TEST(ViewBuilder, ReflectsGraphMutation) {
  Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  ViewBuilder<ValueState> builder(g, ids);
  const std::vector<ValueState> states(3);
  EXPECT_EQ(builder.build(0, states).neighbors.size(), 1u);
  g.addEdge(0, 2);
  EXPECT_EQ(builder.build(0, states).neighbors.size(), 2u);
}

}  // namespace
}  // namespace selfstab::engine
