#include "engine/cycle_detection.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using graph::Graph;
using graph::IdAssignment;
using testing::BlinkerProtocol;
using testing::CounterProtocol;
using testing::MaxProtocol;
using testing::ValueState;

TEST(TraceTrajectory, DetectsStabilization) {
  const Graph g = graph::path(6);
  const auto ids = IdAssignment::identity(6);
  MaxProtocol protocol;
  std::vector<ValueState> states;
  for (graph::Vertex v = 0; v < 6; ++v) states.push_back(ValueState{v});
  const TrajectoryResult result =
      traceTrajectory(protocol, g, ids, states, 100);
  EXPECT_TRUE(result.stabilized);
  EXPECT_FALSE(result.cycled);
  EXPECT_LE(result.rounds, 5u);
}

TEST(TraceTrajectory, DetectsPeriodTwoCycle) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  BlinkerProtocol protocol;
  const std::vector<ValueState> states(2, ValueState{0});
  const TrajectoryResult result =
      traceTrajectory(protocol, g, ids, states, 100);
  EXPECT_FALSE(result.stabilized);
  EXPECT_TRUE(result.cycled);
  EXPECT_EQ(result.cycleStart, 0u);
  EXPECT_EQ(result.cycleLength, 2u);
}

TEST(TraceTrajectory, BudgetExhaustionIsNeither) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  CounterProtocol protocol;
  const std::vector<ValueState> states(2, ValueState{0});
  const TrajectoryResult result =
      traceTrajectory(protocol, g, ids, states, 50);
  EXPECT_FALSE(result.stabilized);
  EXPECT_FALSE(result.cycled);
  EXPECT_EQ(result.rounds, 50u);
}

TEST(TraceTrajectory, FixpointAtStartIsRoundZero) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  const std::vector<ValueState> states(3, ValueState{9});
  const TrajectoryResult result =
      traceTrajectory(protocol, g, ids, states, 100);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(TraceTrajectory, CycleWithPrefix) {
  // Nodes far from equal values converge (max flooding) — build a protocol
  // trajectory with a transient prefix followed by a blinker cycle by
  // composing: counter until value 3, then toggle between 3 and 4.
  class PrefixBlinker final : public Protocol<ValueState> {
   public:
    [[nodiscard]] std::string_view name() const override { return "pb"; }
    [[nodiscard]] std::optional<ValueState> onRound(
        const LocalView<ValueState>& view) const override {
      const std::uint64_t v = view.state().value;
      if (v < 3) return ValueState{v + 1};
      return ValueState{v == 3 ? 4u : 3u};
    }
  };
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  PrefixBlinker protocol;
  const std::vector<ValueState> states(2, ValueState{0});
  const TrajectoryResult result =
      traceTrajectory(protocol, g, ids, states, 100);
  EXPECT_TRUE(result.cycled);
  EXPECT_EQ(result.cycleStart, 3u);
  EXPECT_EQ(result.cycleLength, 2u);
}

}  // namespace
}  // namespace selfstab::engine
