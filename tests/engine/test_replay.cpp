#include "engine/replay.hpp"

#include <gtest/gtest.h>

#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using core::BitState;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

TEST(Replay, ReproducesTheRecordedTrajectory) {
  graph::Rng rng(501);
  const Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
  const auto ids = IdAssignment::identity(20);
  const core::SmmProtocol smm = core::smmPaper();

  auto states = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  const auto recording = recordRun(smm, g, ids, states, 30);
  ASSERT_TRUE(recording.result.stabilized);

  auto replayed = recording.initialStates;
  const std::size_t applied =
      replaySchedule(smm, g, ids, replayed, recording.schedule);
  EXPECT_EQ(replayed, states);
  EXPECT_EQ(applied, recording.result.totalMoves);
}

TEST(Replay, ScheduleLengthMatchesProductiveRounds) {
  const Graph g = graph::path(10);
  const auto ids = IdAssignment::identity(10);
  const core::SisProtocol sis;
  std::vector<BitState> states(10);
  const auto recording = recordRun(sis, g, ids, states, 20);
  ASSERT_TRUE(recording.result.stabilized);
  EXPECT_EQ(recording.schedule.size(), recording.result.rounds);
  for (const auto& movers : recording.schedule) {
    EXPECT_FALSE(movers.empty());
  }
}

TEST(Replay, RandomizedWrapperReplaysWithSameSeed) {
  graph::Rng rng(503);
  const Graph g = graph::connectedErdosRenyi(15, 0.2, rng);
  const auto ids = IdAssignment::identity(15);
  const core::Synchronized<core::SmmProtocol> wrapped(core::Choice::First,
                                                      core::Choice::First);
  auto states = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  const auto recording = recordRun(wrapped, g, ids, states, 5000,
                                   /*runSeed=*/77);
  ASSERT_TRUE(recording.result.stabilized);

  auto replayed = recording.initialStates;
  replaySchedule(wrapped, g, ids, replayed, recording.schedule,
                 /*runSeed=*/77);
  EXPECT_EQ(replayed, states);
}

TEST(Replay, TruncatedScheduleGivesPrefixConfiguration) {
  const Graph g = graph::path(12);
  const auto ids = IdAssignment::identity(12);
  const core::SmmProtocol smm = core::smmPaper();
  std::vector<PointerState> states(12);
  const auto recording = recordRun(smm, g, ids, states, 20);
  ASSERT_GE(recording.schedule.size(), 2u);

  // Replaying the first k rounds must equal stepping the runner k times.
  MoverSchedule prefix(recording.schedule.begin(),
                  recording.schedule.begin() + 2);
  auto viaReplay = recording.initialStates;
  replaySchedule(smm, g, ids, viaReplay, prefix);

  auto viaRunner = recording.initialStates;
  SyncRunner<PointerState> runner(smm, g, ids);
  runner.step(viaRunner);
  runner.step(viaRunner);
  EXPECT_EQ(viaReplay, viaRunner);
}

TEST(Replay, EmptyScheduleIsNoop) {
  const Graph g = graph::path(5);
  const auto ids = IdAssignment::identity(5);
  const core::SmmProtocol smm = core::smmPaper();
  std::vector<PointerState> states(5);
  const auto original = states;
  EXPECT_EQ(replaySchedule(smm, g, ids, states, MoverSchedule{}), 0u);
  EXPECT_EQ(states, original);
}

}  // namespace
}  // namespace selfstab::engine
