#include "engine/daemons.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "analysis/verifiers.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using analysis::checkMatchingFixpoint;
using core::PointerState;
using core::SmmProtocol;
using graph::Graph;
using graph::IdAssignment;
using testing::MaxProtocol;
using testing::ValueState;

TEST(CentralDaemon, MaxProtocolConvergesUnderEveryPolicy) {
  graph::Rng rng(1);
  const Graph g = graph::connectedErdosRenyi(15, 0.2, rng);
  const auto ids = IdAssignment::identity(15);
  MaxProtocol protocol;
  for (const CentralPolicy policy :
       {CentralPolicy::Random, CentralPolicy::MinId, CentralPolicy::MaxId,
        CentralPolicy::RoundRobin}) {
    CentralDaemonRunner<ValueState> runner(protocol, g, ids, policy, 42);
    std::vector<ValueState> states;
    for (graph::Vertex v = 0; v < 15; ++v) {
      states.push_back(protocol.initialState(v));
    }
    const DaemonResult result = runner.run(states, 10000);
    EXPECT_TRUE(result.stabilized) << "policy " << static_cast<int>(policy);
    for (const ValueState& s : states) EXPECT_EQ(s.value, 14u);
  }
}

TEST(CentralDaemon, HsuHuangProducesMaximalMatching) {
  graph::Rng rng(2);
  const Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
  const auto ids = IdAssignment::identity(20);
  const SmmProtocol protocol = core::hsuHuang();
  CentralDaemonRunner<PointerState> runner(protocol, g, ids,
                                           CentralPolicy::Random, 7);
  std::vector<PointerState> states(20);
  const DaemonResult result = runner.run(states, 100000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(checkMatchingFixpoint(g, states).ok());
}

TEST(CentralDaemon, StepReturnsFalseAtFixpoint) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  CentralDaemonRunner<ValueState> runner(protocol, g, ids,
                                         CentralPolicy::Random, 1);
  std::vector<ValueState> states(3, ValueState{5});
  EXPECT_FALSE(runner.step(states));
}

TEST(CentralDaemon, MinIdPolicyPicksSmallestEnabled) {
  // Path 0-1-2 with values 0,1,2: nodes 0 and 1 are enabled.
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  CentralDaemonRunner<ValueState> runner(protocol, g, ids,
                                         CentralPolicy::MinId, 1);
  std::vector<ValueState> states{{0}, {1}, {2}};
  ASSERT_TRUE(runner.step(states));
  EXPECT_EQ(states[0].value, 1u);  // node 0 moved
  EXPECT_EQ(states[1].value, 1u);  // node 1 did not
}

TEST(CentralDaemon, MaxIdPolicyPicksLargestEnabled) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  CentralDaemonRunner<ValueState> runner(protocol, g, ids,
                                         CentralPolicy::MaxId, 1);
  std::vector<ValueState> states{{0}, {1}, {2}};
  ASSERT_TRUE(runner.step(states));
  EXPECT_EQ(states[1].value, 2u);  // node 1 moved
  EXPECT_EQ(states[0].value, 0u);
}

TEST(CentralDaemon, RoundRobinIsFair) {
  // Blinker on an edgeless graph: every node always enabled; round-robin
  // must cycle through all of them.
  const Graph g(4);
  const auto ids = IdAssignment::identity(4);
  testing::BlinkerProtocol protocol;
  CentralDaemonRunner<ValueState> runner(protocol, g, ids,
                                         CentralPolicy::RoundRobin, 1);
  std::vector<ValueState> states(4, ValueState{0});
  for (int step = 0; step < 4; ++step) ASSERT_TRUE(runner.step(states));
  for (const ValueState& s : states) EXPECT_EQ(s.value, 1u);
}

TEST(CentralDaemon, AdversarialStillTerminatesOnHsuHuang) {
  // Hsu & Huang stabilizes under *any* central daemon; the adversary that
  // greedily minimizes the matched count can delay but not prevent it.
  const Graph g = graph::cycle(8);
  const auto ids = IdAssignment::identity(8);
  const SmmProtocol protocol = core::hsuHuang();
  CentralDaemonRunner<PointerState> runner(protocol, g, ids,
                                           CentralPolicy::Adversarial, 3);
  runner.setPotential([&](const std::vector<PointerState>& states) {
    return static_cast<double>(analysis::matchedEdges(g, states).size());
  });
  std::vector<PointerState> states(8);
  const DaemonResult result = runner.run(states, 100000);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(checkMatchingFixpoint(g, states).ok());
}

TEST(DistributedDaemon, MaxProtocolConverges) {
  graph::Rng rng(3);
  const Graph g = graph::connectedErdosRenyi(15, 0.2, rng);
  const auto ids = IdAssignment::identity(15);
  MaxProtocol protocol;
  DistributedDaemonRunner<ValueState> runner(protocol, g, ids, 0.5, 9);
  std::vector<ValueState> states;
  for (graph::Vertex v = 0; v < 15; ++v) {
    states.push_back(protocol.initialState(v));
  }
  const DaemonResult result = runner.run(states, 10000);
  EXPECT_TRUE(result.stabilized);
  for (const ValueState& s : states) EXPECT_EQ(s.value, 14u);
}

TEST(DistributedDaemon, AlwaysMovesAtLeastOneNode) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  MaxProtocol protocol;
  // moveProbability 0: the forced pick keeps the daemon live.
  DistributedDaemonRunner<ValueState> runner(protocol, g, ids, 0.0, 5);
  std::vector<ValueState> states{{0}, {1}};
  EXPECT_EQ(runner.step(states), 1u);
}

}  // namespace
}  // namespace selfstab::engine
