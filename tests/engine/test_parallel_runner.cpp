#include "engine/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/test_protocols.hpp"
#include "analysis/verifiers.hpp"
#include "core/kernels.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using core::BitState;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;
using testing::MaxProtocol;
using testing::ValueState;

TEST(ParallelRunner, StepMatchesSerialExactly) {
  graph::Rng rng(601);
  const Graph g = graph::connectedErdosRenyi(64, 0.1, rng);
  const auto ids = IdAssignment::identity(64);
  const core::SmmProtocol smm = core::smmPaper();

  auto serialStates = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  auto parallelStates = serialStates;

  SyncRunner<PointerState> serial(smm, g, ids, /*runSeed=*/5);
  ParallelSyncRunner<PointerState> parallel(smm, g, ids, /*threads=*/4,
                                            /*runSeed=*/5);
  for (int r = 0; r < 10; ++r) {
    const std::size_t serialMoves = serial.step(serialStates);
    const std::size_t parallelMoves = parallel.step(parallelStates);
    EXPECT_EQ(parallelMoves, serialMoves) << "round " << r;
    EXPECT_EQ(parallelStates, serialStates) << "round " << r;
  }
}

TEST(ParallelRunner, RunMatchesSerialForSeveralProtocols) {
  graph::Rng rng(603);
  const Graph g = graph::connectedErdosRenyi(80, 0.08, rng);
  const auto ids = IdAssignment::identity(80);

  {
    const core::SmmProtocol smm = core::smmPaper();
    auto a = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    auto b = a;
    SyncRunner<PointerState> serial(smm, g, ids);
    ParallelSyncRunner<PointerState> parallel(smm, g, ids, 3);
    const auto ra = serial.run(a, 200);
    const auto rb = parallel.run(b, 200);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, b).ok());
  }
  {
    const core::SisProtocol sis;
    auto a = engine::randomConfiguration<BitState>(g, rng,
                                                   core::randomBitState);
    auto b = a;
    SyncRunner<BitState> serial(sis, g, ids);
    ParallelSyncRunner<BitState> parallel(sis, g, ids, 5);
    EXPECT_EQ(serial.run(a, 200), parallel.run(b, 200));
    EXPECT_EQ(a, b);
  }
}

TEST(ParallelRunner, ThreadCountSweepIsInvariant) {
  graph::Rng rng(605);
  const Graph g = graph::connectedErdosRenyi(48, 0.12, rng);
  const auto ids = IdAssignment::identity(48);
  const core::SmmProtocol smm = core::smmPaper();
  const auto start = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);

  std::vector<PointerState> reference;
  for (const std::size_t threads : {1u, 2u, 3u, 7u, 16u}) {
    auto states = start;
    ParallelSyncRunner<PointerState> runner(smm, g, ids, threads);
    const auto result = runner.run(states, 100);
    ASSERT_TRUE(result.stabilized) << threads << " threads";
    if (reference.empty()) {
      reference = states;
    } else {
      EXPECT_EQ(states, reference) << threads << " threads";
    }
  }
}

TEST(ParallelRunner, MoreThreadsThanVerticesIsFine) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  ParallelSyncRunner<ValueState> runner(protocol, g, ids, 8);
  std::vector<ValueState> states{{0}, {1}, {2}};
  const auto result = runner.run(states, 10);
  EXPECT_TRUE(result.stabilized);
  for (const ValueState& s : states) EXPECT_EQ(s.value, 2u);
}

TEST(ParallelRunner, ZeroThreadRequestClampsToOne) {
  const Graph g = graph::path(4);
  const auto ids = IdAssignment::identity(4);
  MaxProtocol protocol;
  ParallelSyncRunner<ValueState> runner(protocol, g, ids, 0);
  EXPECT_EQ(runner.threadCount(), 1u);
  std::vector<ValueState> states{{3}, {0}, {0}, {0}};
  EXPECT_TRUE(runner.run(states, 10).stabilized);
  EXPECT_EQ(states[3].value, 3u);
}

TEST(ParallelRunner, FixpointDetectionUsesIsStable) {
  // A wrapped (randomized) protocol: the parallel runner must not mistake
  // an all-blocked round for stabilization. (Synchronized has no mutable
  // scratch state, so it is safe to evaluate concurrently.)
  graph::Rng rng(607);
  const Graph g = graph::cycle(12);
  const auto ids = IdAssignment::identity(12);
  const core::Synchronized<core::SmmProtocol> wrapped(core::Choice::First,
                                                      core::Choice::First);
  auto states = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  ParallelSyncRunner<PointerState> runner(wrapped, g, ids, 4, 9);
  const auto result = runner.run(states, 5000);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
}

// Regression for the pooled isFixpoint sweep (formerly a serial scan on the
// calling thread): it must agree with SyncRunner::isFixpoint on arbitrary
// configurations — stable, unstable-at-one-vertex, and unstable-only-at-the-
// last-vertex (the early-exit flag must not skip trailing chunks' verdicts).
TEST(ParallelRunner, PooledFixpointMatchesSerial) {
  graph::Rng rng(617);
  const core::SmmProtocol smm = core::smmPaper();
  const core::SisProtocol sis;
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.15, rng);
    const auto ids = IdAssignment::identity(g.order());
    SyncRunner<PointerState> serial(smm, g, ids, 5);
    ParallelSyncRunner<PointerState> pooled(smm, g, ids, 4, 5);

    // Arbitrary (mostly unstable) configuration.
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::wildPointerState);
    EXPECT_EQ(serial.isFixpoint(states), pooled.isFixpoint(states))
        << "trial " << trial;

    // Converged configuration: both must report a fixpoint.
    serial.run(states, 2 * g.order() + 1);
    ASSERT_TRUE(serial.isFixpoint(states)) << "trial " << trial;
    EXPECT_TRUE(pooled.isFixpoint(states)) << "trial " << trial;

    // Perturb exactly one vertex — including the very last one, which only
    // the final worker's chunk sees.
    for (const graph::Vertex v :
         {graph::Vertex{0}, static_cast<graph::Vertex>(g.order() - 1)}) {
      auto poked = states;
      poked[v].ptr = poked[v].ptr == graph::kNoVertex ? v : graph::kNoVertex;
      EXPECT_EQ(serial.isFixpoint(poked), pooled.isFixpoint(poked))
          << "trial " << trial << " vertex " << v;
    }
  }
  // SIS spot-check with the flat kernel installed: the stability sweep must
  // stay on the generic view path (external states may not match the mirror).
  const Graph g = graph::star(17);
  const auto ids = IdAssignment::identity(g.order());
  SyncRunner<BitState> serial(sis, g, ids, 5);
  ParallelSyncRunner<BitState> pooled(sis, g, ids, 4, 5);
  pooled.setKernel(core::makeFlatKernel<BitState>(sis, g, ids));
  std::vector<BitState> all(g.order(), BitState{true});
  EXPECT_EQ(serial.isFixpoint(all), pooled.isFixpoint(all));
  std::vector<BitState> none(g.order(), BitState{false});
  EXPECT_EQ(serial.isFixpoint(none), pooled.isFixpoint(none));
}

// Degree-weighted partition boundaries: monotone, covering, degenerate-safe,
// and actually balancing weight (not count) across parts.
TEST(ParallelRunner, WeightedBoundaries) {
  // Zero items.
  const auto none = weightedBoundaries(0, 4, [](std::size_t) { return 1; });
  ASSERT_EQ(none.size(), 5u);
  for (const std::size_t b : none) EXPECT_EQ(b, 0u);

  // Zero parts clamps to one.
  const auto one = weightedBoundaries(5, 0, [](std::size_t) { return 2; });
  ASSERT_EQ(one.size(), 2u);
  EXPECT_EQ(one.front(), 0u);
  EXPECT_EQ(one.back(), 5u);

  // All-zero weights fall back to equal-count chunks.
  const auto flat = weightedBoundaries(8, 4, [](std::size_t) { return 0; });
  const std::vector<std::size_t> expectFlat{0, 2, 4, 6, 8};
  EXPECT_EQ(flat, expectFlat);

  // One heavy item: it lands alone in the first part, the light tail is
  // spread over the rest.
  const auto skew = weightedBoundaries(
      9, 3, [](std::size_t i) { return i == 0 ? std::size_t{100} : 1; });
  ASSERT_EQ(skew.size(), 4u);
  EXPECT_EQ(skew.front(), 0u);
  EXPECT_EQ(skew.back(), 9u);
  EXPECT_EQ(skew[1], 1u);  // the hub fills part 0 on its own

  // Property sweep: boundaries are sorted, cover [0, count], and no part's
  // weight exceeds total/parts + the heaviest single item (the prefix rule's
  // worst case).
  graph::Rng rng(907);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t count = rng.below(200);
    const std::size_t parts = 1 + rng.below(8);
    std::vector<std::size_t> weights(count);
    std::size_t total = 0;
    std::size_t heaviest = 0;
    for (auto& w : weights) {
      w = rng.below(20);
      total += w;
      heaviest = std::max(heaviest, w);
    }
    const auto bounds =
        weightedBoundaries(count, parts, [&](std::size_t i) { return weights[i]; });
    ASSERT_EQ(bounds.size(), parts + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), count);
    for (std::size_t p = 0; p < parts; ++p) {
      ASSERT_LE(bounds[p], bounds[p + 1]) << "trial " << trial;
      if (total == 0) continue;
      std::size_t partWeight = 0;
      for (std::size_t i = bounds[p]; i < bounds[p + 1]; ++i) {
        partWeight += weights[i];
      }
      EXPECT_LE(partWeight, total / parts + heaviest + 1)
          << "trial " << trial << " part " << p;
    }
  }
}

// The flat kernel on the pool must match the serial generic runner through
// full runs — the narrow regression companion to the KernelDifferential
// stress suite.
TEST(ParallelRunner, FlatKernelRunMatchesSerialGeneric) {
  graph::Rng rng(619);
  const core::SmmProtocol smm = core::smmPaper();
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::preferentialAttachment(40, 3, rng);
    const auto ids = IdAssignment::identity(g.order());
    auto serialStates = engine::randomConfiguration<PointerState>(
        g, rng, core::wildPointerState);
    auto pooledStates = serialStates;

    SyncRunner<PointerState> serial(smm, g, ids, 7);
    ParallelSyncRunner<PointerState> pooled(smm, g, ids, 4, 7);
    pooled.setKernel(core::makeFlatKernel<PointerState>(smm, g, ids));
    const auto sr = serial.run(serialStates, 2 * g.order() + 8);
    const auto pr = pooled.run(pooledStates, 2 * g.order() + 8);
    EXPECT_TRUE(sr == pr) << "trial " << trial;
    EXPECT_TRUE(serialStates == pooledStates) << "trial " << trial;
  }
}

}  // namespace
}  // namespace selfstab::engine
