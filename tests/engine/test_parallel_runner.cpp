#include "engine/parallel_runner.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "analysis/verifiers.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using core::BitState;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;
using testing::MaxProtocol;
using testing::ValueState;

TEST(ParallelRunner, StepMatchesSerialExactly) {
  graph::Rng rng(601);
  const Graph g = graph::connectedErdosRenyi(64, 0.1, rng);
  const auto ids = IdAssignment::identity(64);
  const core::SmmProtocol smm = core::smmPaper();

  auto serialStates = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  auto parallelStates = serialStates;

  SyncRunner<PointerState> serial(smm, g, ids, /*runSeed=*/5);
  ParallelSyncRunner<PointerState> parallel(smm, g, ids, /*threads=*/4,
                                            /*runSeed=*/5);
  for (int r = 0; r < 10; ++r) {
    const std::size_t serialMoves = serial.step(serialStates);
    const std::size_t parallelMoves = parallel.step(parallelStates);
    EXPECT_EQ(parallelMoves, serialMoves) << "round " << r;
    EXPECT_EQ(parallelStates, serialStates) << "round " << r;
  }
}

TEST(ParallelRunner, RunMatchesSerialForSeveralProtocols) {
  graph::Rng rng(603);
  const Graph g = graph::connectedErdosRenyi(80, 0.08, rng);
  const auto ids = IdAssignment::identity(80);

  {
    const core::SmmProtocol smm = core::smmPaper();
    auto a = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    auto b = a;
    SyncRunner<PointerState> serial(smm, g, ids);
    ParallelSyncRunner<PointerState> parallel(smm, g, ids, 3);
    const auto ra = serial.run(a, 200);
    const auto rb = parallel.run(b, 200);
    EXPECT_EQ(ra, rb);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, b).ok());
  }
  {
    const core::SisProtocol sis;
    auto a = engine::randomConfiguration<BitState>(g, rng,
                                                   core::randomBitState);
    auto b = a;
    SyncRunner<BitState> serial(sis, g, ids);
    ParallelSyncRunner<BitState> parallel(sis, g, ids, 5);
    EXPECT_EQ(serial.run(a, 200), parallel.run(b, 200));
    EXPECT_EQ(a, b);
  }
}

TEST(ParallelRunner, ThreadCountSweepIsInvariant) {
  graph::Rng rng(605);
  const Graph g = graph::connectedErdosRenyi(48, 0.12, rng);
  const auto ids = IdAssignment::identity(48);
  const core::SmmProtocol smm = core::smmPaper();
  const auto start = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);

  std::vector<PointerState> reference;
  for (const std::size_t threads : {1u, 2u, 3u, 7u, 16u}) {
    auto states = start;
    ParallelSyncRunner<PointerState> runner(smm, g, ids, threads);
    const auto result = runner.run(states, 100);
    ASSERT_TRUE(result.stabilized) << threads << " threads";
    if (reference.empty()) {
      reference = states;
    } else {
      EXPECT_EQ(states, reference) << threads << " threads";
    }
  }
}

TEST(ParallelRunner, MoreThreadsThanVerticesIsFine) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  ParallelSyncRunner<ValueState> runner(protocol, g, ids, 8);
  std::vector<ValueState> states{{0}, {1}, {2}};
  const auto result = runner.run(states, 10);
  EXPECT_TRUE(result.stabilized);
  for (const ValueState& s : states) EXPECT_EQ(s.value, 2u);
}

TEST(ParallelRunner, ZeroThreadRequestClampsToOne) {
  const Graph g = graph::path(4);
  const auto ids = IdAssignment::identity(4);
  MaxProtocol protocol;
  ParallelSyncRunner<ValueState> runner(protocol, g, ids, 0);
  EXPECT_EQ(runner.threadCount(), 1u);
  std::vector<ValueState> states{{3}, {0}, {0}, {0}};
  EXPECT_TRUE(runner.run(states, 10).stabilized);
  EXPECT_EQ(states[3].value, 3u);
}

TEST(ParallelRunner, FixpointDetectionUsesIsStable) {
  // A wrapped (randomized) protocol: the parallel runner must not mistake
  // an all-blocked round for stabilization. (Synchronized has no mutable
  // scratch state, so it is safe to evaluate concurrently.)
  graph::Rng rng(607);
  const Graph g = graph::cycle(12);
  const auto ids = IdAssignment::identity(12);
  const core::Synchronized<core::SmmProtocol> wrapped(core::Choice::First,
                                                      core::Choice::First);
  auto states = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);
  ParallelSyncRunner<PointerState> runner(wrapped, g, ids, 4, 9);
  const auto result = runner.run(states, 5000);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
}

}  // namespace
}  // namespace selfstab::engine
