// Property-based differential harness for active-set scheduling.
//
// The active scheduler's whole claim is semantic transparency: for every
// protocol, graph, ID order, seed, and (arbitrary, possibly corrupt) initial
// configuration, the Active schedule must produce the SAME trajectory as the
// Dense reference — identical per-round state vectors, identical per-round
// move counts, identical RunResult — on both the serial and the parallel
// executor. This suite hammers that claim with randomized combinations over
// every registered protocol in src/core/ and fails with a replayable seed.
//
// Iteration count scales with the SELFSTAB_STRESS_ITERS env var (per-protocol
// iterations; default keeps the whole suite in the hundreds of combinations).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/bfs_tree.hpp"
#include "core/coloring.hpp"
#include "core/dominating_set.hpp"
#include "core/leader_tree.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using engine::ParallelSyncRunner;
using engine::Schedule;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

// Per-protocol iteration count; SELFSTAB_STRESS_ITERS overrides so CI can
// dial stress up (nightly) or down (sanitizer runs).
std::size_t stressIters(std::size_t fallback) {
  if (const char* env = std::getenv("SELFSTAB_STRESS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// Random topology spanning the families the paper's bounds quantify over:
// random (G(n,p), geometric) plus the structured corner cases (path, star,
// clique, cycle, tree) that historically break dirty-set bookkeeping (leaf
// explosions in stars, all-to-all invalidation in cliques, long dependency
// chains in paths).
Graph makeGraph(std::size_t family, graph::Rng& rng) {
  switch (family % 7) {
    case 0:
      return graph::connectedErdosRenyi(8 + rng.below(25), 0.15, rng);
    case 1:
      return graph::connectedRandomGeometric(8 + rng.below(25), 0.35, rng);
    case 2:
      return graph::path(1 + rng.below(24));
    case 3:
      return graph::star(2 + rng.below(24));
    case 4:
      return graph::complete(2 + rng.below(12));
    case 5:
      return graph::cycle(3 + rng.below(20));
    default:
      return graph::randomTree(2 + rng.below(25), rng);
  }
}

IdAssignment makeIds(const Graph& g, std::uint64_t choice, graph::Rng& rng) {
  switch (choice % 4) {
    case 0:
      return IdAssignment::identity(g.order());
    case 1:
      return IdAssignment::reversed(g.order());
    case 2:
      return IdAssignment::randomPermutation(g.order(), rng);
    default:
      return IdAssignment::randomSparse(g.order(), rng);
  }
}

template <typename State>
std::string label(std::string_view protocol, std::uint64_t seed,
                  const Graph& g, std::size_t round) {
  std::ostringstream ss;
  ss << protocol << " seed=" << seed << " n=" << g.order()
     << " m=" << g.size() << " round=" << round
     << " (replay: SELFSTAB_STRESS_ITERS + this seed)";
  return ss.str();
}

// Lockstep comparison on the serial executor: same start, two runners, one
// dense and one active, stepping in parallel. Also asserts RunResult parity
// from fresh runners over the same start.
template <typename State, typename Sampler>
void checkSerial(const engine::Protocol<State>& protocol, Sampler sampler,
                 std::uint64_t seed) {
  graph::Rng rng(seed);
  const Graph g = makeGraph(static_cast<std::size_t>(seed), rng);
  const IdAssignment ids = makeIds(g, seed / 7, rng);
  const auto start = engine::randomConfiguration<State>(g, rng, sampler);
  const std::size_t maxRounds = 4 * g.order() + 8;

  SyncRunner<State> dense(protocol, g, ids, seed, Schedule::Dense);
  SyncRunner<State> active(protocol, g, ids, seed, Schedule::Active);
  auto denseStates = start;
  auto activeStates = start;
  for (std::size_t r = 0; r < maxRounds; ++r) {
    const std::size_t dm = dense.step(denseStates);
    const std::size_t am = active.step(activeStates);
    ASSERT_EQ(dm, am) << label<State>(protocol.name(), seed, g, r);
    ASSERT_TRUE(denseStates == activeStates)
        << label<State>(protocol.name(), seed, g, r);
    if (dm == 0 && dense.isFixpoint(denseStates)) break;
  }

  auto ds = start;
  auto as = start;
  SyncRunner<State> dense2(protocol, g, ids, seed, Schedule::Dense);
  SyncRunner<State> active2(protocol, g, ids, seed, Schedule::Active);
  const engine::RunResult dr = dense2.run(ds, maxRounds);
  const engine::RunResult ar = active2.run(as, maxRounds);
  EXPECT_TRUE(dr == ar) << label<State>(protocol.name(), seed, g, dr.rounds);
  EXPECT_TRUE(ds == as) << label<State>(protocol.name(), seed, g, dr.rounds);
}

// Lockstep comparison on the parallel executor (dense vs active), checked
// against the serial dense reference as ground truth each round.
template <typename State, typename Sampler>
void checkParallel(const engine::Protocol<State>& protocol, Sampler sampler,
                   std::uint64_t seed) {
  graph::Rng rng(seed);
  const Graph g = makeGraph(static_cast<std::size_t>(seed), rng);
  const IdAssignment ids = makeIds(g, seed / 7, rng);
  const auto start = engine::randomConfiguration<State>(g, rng, sampler);
  const std::size_t maxRounds = 4 * g.order() + 8;

  SyncRunner<State> reference(protocol, g, ids, seed, Schedule::Dense);
  ParallelSyncRunner<State> dense(protocol, g, ids, 4, seed, Schedule::Dense);
  ParallelSyncRunner<State> active(protocol, g, ids, 4, seed,
                                   Schedule::Active);
  auto refStates = start;
  auto denseStates = start;
  auto activeStates = start;
  for (std::size_t r = 0; r < maxRounds; ++r) {
    const std::size_t rm = reference.step(refStates);
    const std::size_t dm = dense.step(denseStates);
    const std::size_t am = active.step(activeStates);
    ASSERT_EQ(rm, dm) << label<State>(protocol.name(), seed, g, r);
    ASSERT_EQ(rm, am) << label<State>(protocol.name(), seed, g, r);
    ASSERT_TRUE(refStates == denseStates)
        << label<State>(protocol.name(), seed, g, r);
    ASSERT_TRUE(refStates == activeStates)
        << label<State>(protocol.name(), seed, g, r);
    if (rm == 0 && reference.isFixpoint(refStates)) break;
  }
}

// Mid-run fault bursts: corrupt both trajectories identically (same Rng
// stream) and reschedule; the active runner must absorb the invalidation
// and stay bit-identical through recovery.
template <typename State, typename Sampler>
void checkSerialWithFaults(const engine::Protocol<State>& protocol,
                           Sampler sampler, std::uint64_t seed) {
  graph::Rng rng(seed);
  const Graph g = makeGraph(static_cast<std::size_t>(seed), rng);
  const IdAssignment ids = makeIds(g, seed / 7, rng);
  auto denseStates = engine::randomConfiguration<State>(g, rng, sampler);
  auto activeStates = denseStates;
  const std::size_t maxRounds = 4 * g.order() + 8;

  SyncRunner<State> dense(protocol, g, ids, seed, Schedule::Dense);
  SyncRunner<State> active(protocol, g, ids, seed, Schedule::Active);
  for (std::size_t r = 0; r < maxRounds; ++r) {
    if (r == g.order() / 2 + 1) {
      // One burst, replayed onto both trajectories from identical Rng state
      // so the corrupted configurations match.
      graph::Rng faultRngA(seed ^ 0xfau);
      graph::Rng faultRngB(seed ^ 0xfau);
      engine::corruptAndReschedule(dense, denseStates, g, faultRngA, 0.4,
                                   sampler);
      engine::corruptAndReschedule(active, activeStates, g, faultRngB, 0.4,
                                   sampler);
      ASSERT_TRUE(denseStates == activeStates);
    }
    const std::size_t dm = dense.step(denseStates);
    const std::size_t am = active.step(activeStates);
    ASSERT_EQ(dm, am) << label<State>(protocol.name(), seed, g, r);
    ASSERT_TRUE(denseStates == activeStates)
        << label<State>(protocol.name(), seed, g, r);
  }
}

// ---- per-protocol drivers ----------------------------------------------

TEST(ScheduleDifferential, SmmPaperSerial) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::PointerState>(smm, core::wildPointerState, 1000 + i);
  }
}

TEST(ScheduleDifferential, SmmArbitrarySerial) {
  // The broken successor-choice variant livelocks on odd cycles — exactly
  // the kind of perpetual-motion trajectory whose dirty set never drains.
  const core::SmmProtocol broken = core::smmArbitrary();
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::PointerState>(broken, core::wildPointerState, 2000 + i);
  }
}

TEST(ScheduleDifferential, SisSerial) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::BitState>(sis, core::randomBitState, 3000 + i);
  }
}

TEST(ScheduleDifferential, ColoringSerial) {
  const core::ColoringProtocol coloring;
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::ColorState>(coloring, core::randomColorState, 4000 + i);
  }
}

TEST(ScheduleDifferential, BfsTreeSerial) {
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    // Root at ID 0 under identity/reversed orders; under random orders some
    // other vertex holds it — either way the protocol must agree with dense.
    const core::BfsTreeProtocol bfs(0, 64);
    checkSerial<core::TreeState>(bfs, core::randomTreeState, 5000 + i);
  }
}

TEST(ScheduleDifferential, LeaderTreeSerial) {
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    const core::LeaderTreeProtocol leader(64);
    checkSerial<core::LeaderState>(leader, core::randomLeaderState, 6000 + i);
  }
}

TEST(ScheduleDifferential, DominatingSetSynchronizedSerial) {
  // Synchronized wrappers draw per-round lottery priorities from roundKey:
  // usesRoundEntropy() forces the active scheduler into evaluate-everything
  // mode, which must STILL be bit-identical (it shares the incremental
  // snapshot path, not the dense one).
  const core::Synchronized<core::DominatingSetProtocol> domset;
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::DomState>(domset, core::randomDomState, 7000 + i);
  }
}

TEST(ScheduleDifferential, HsuHuangSynchronizedSerial) {
  const core::Synchronized<core::SmmProtocol> hh(core::Choice::First,
                                                 core::Choice::First);
  const std::size_t iters = stressIters(28);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerial<core::PointerState>(hh, core::wildPointerState, 8000 + i);
  }
}

TEST(ScheduleDifferential, FaultInjectionSerial) {
  const core::SmmProtocol smm = core::smmPaper();
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(16);
  for (std::size_t i = 0; i < iters; ++i) {
    checkSerialWithFaults<core::PointerState>(smm, core::wildPointerState,
                                              9000 + i);
    checkSerialWithFaults<core::BitState>(sis, core::randomBitState,
                                          9500 + i);
  }
}

// ---- parallel executor --------------------------------------------------
// LeaderTreeProtocol is excluded: its onRound uses a mutable scratch buffer
// and is documented as not thread-compatible (see parallel_runner.hpp).

TEST(ScheduleDifferentialParallel, SmmPaper) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(10);
  for (std::size_t i = 0; i < iters; ++i) {
    checkParallel<core::PointerState>(smm, core::wildPointerState, 1100 + i);
  }
}

TEST(ScheduleDifferentialParallel, Sis) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(10);
  for (std::size_t i = 0; i < iters; ++i) {
    checkParallel<core::BitState>(sis, core::randomBitState, 3100 + i);
  }
}

TEST(ScheduleDifferentialParallel, Coloring) {
  const core::ColoringProtocol coloring;
  const std::size_t iters = stressIters(10);
  for (std::size_t i = 0; i < iters; ++i) {
    checkParallel<core::ColorState>(coloring, core::randomColorState,
                                    4100 + i);
  }
}

TEST(ScheduleDifferentialParallel, BfsTree) {
  const std::size_t iters = stressIters(10);
  for (std::size_t i = 0; i < iters; ++i) {
    const core::BfsTreeProtocol bfs(0, 64);
    checkParallel<core::TreeState>(bfs, core::randomTreeState, 5100 + i);
  }
}

TEST(ScheduleDifferentialParallel, DominatingSetSynchronized) {
  const core::Synchronized<core::DominatingSetProtocol> domset;
  const std::size_t iters = stressIters(10);
  for (std::size_t i = 0; i < iters; ++i) {
    checkParallel<core::DomState>(domset, core::randomDomState, 7100 + i);
  }
}

// Topology churn through the runner's own graph reference is detected via
// Graph::version() without an explicit invalidateSchedule() call.
TEST(ScheduleDifferential, TopologyChurnAutoInvalidates) {
  const core::SisProtocol sis;
  for (std::uint64_t seed = 0; seed < stressIters(8); ++seed) {
    graph::Rng rng(90000 + seed);
    Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
    const IdAssignment ids = IdAssignment::identity(g.order());
    auto denseStates = engine::randomConfiguration<core::BitState>(
        g, rng, core::randomBitState);
    auto activeStates = denseStates;
    SyncRunner<core::BitState> dense(sis, g, ids, seed, Schedule::Dense);
    SyncRunner<core::BitState> active(sis, g, ids, seed, Schedule::Active);
    for (std::size_t r = 0; r < 40; ++r) {
      if (r == 5 || r == 17) {
        engine::perturbTopology(g, rng, 4, /*keepConnected=*/false);
      }
      const std::size_t dm = dense.step(denseStates);
      const std::size_t am = active.step(activeStates);
      ASSERT_EQ(dm, am) << "seed " << seed << " round " << r;
      ASSERT_TRUE(denseStates == activeStates)
          << "seed " << seed << " round " << r;
    }
  }
}

}  // namespace
}  // namespace selfstab
