#include "engine/sync_runner.hpp"

#include <gtest/gtest.h>

#include "../support/test_protocols.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using graph::Graph;
using graph::IdAssignment;
using testing::BlinkerProtocol;
using testing::CounterProtocol;
using testing::MaxProtocol;
using testing::ValueState;

TEST(SyncRunner, InitialStatesComeFromProtocol) {
  const Graph g = graph::path(4);
  const auto ids = IdAssignment::identity(4);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  const auto states = runner.initialStates();
  ASSERT_EQ(states.size(), 4u);
  for (graph::Vertex v = 0; v < 4; ++v) EXPECT_EQ(states[v].value, v);
}

TEST(SyncRunner, StepMovesAllEnabledSimultaneously) {
  const Graph g = graph::path(3);  // values 0-1-2
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  // Round 1: node 0 takes 1 (its neighbor's old value), node 1 takes 2.
  EXPECT_EQ(runner.step(states), 2u);
  EXPECT_EQ(states[0].value, 1u);  // snapshot semantics: not 2
  EXPECT_EQ(states[1].value, 2u);
  EXPECT_EQ(states[2].value, 2u);
}

TEST(SyncRunner, MaxConvergesWithinDiameterRounds) {
  graph::Rng rng(1);
  const Graph g = graph::connectedErdosRenyi(30, 0.1, rng);
  const auto ids = IdAssignment::identity(30);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  const RunResult result = runner.run(states, 100);
  EXPECT_TRUE(result.stabilized);
  EXPECT_LE(result.rounds, graph::diameter(g));
  for (const ValueState& s : states) EXPECT_EQ(s.value, 29u);
}

TEST(SyncRunner, FixpointDetectedImmediately) {
  const Graph g = graph::path(5);
  const auto ids = IdAssignment::identity(5);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  std::vector<ValueState> states(5, ValueState{7});  // already uniform
  EXPECT_TRUE(runner.isFixpoint(states));
  const RunResult result = runner.run(states, 100);
  EXPECT_TRUE(result.stabilized);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.totalMoves, 0u);
}

TEST(SyncRunner, BudgetExhaustionReported) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  BlinkerProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  std::vector<ValueState> states(2, ValueState{0});
  const RunResult result = runner.run(states, 10);
  EXPECT_FALSE(result.stabilized);
  EXPECT_EQ(result.rounds, 10u);
  EXPECT_EQ(result.totalMoves, 20u);
}

TEST(SyncRunner, ObserverSeesEveryRound) {
  const Graph g = graph::path(4);
  const auto ids = IdAssignment::identity(4);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  std::size_t calls = 0;
  std::size_t observedMoves = 0;
  const RunResult result = runner.run(
      states, 100,
      [&](std::size_t round, const std::vector<ValueState>& before,
          const std::vector<ValueState>& after, std::size_t moves) {
        EXPECT_EQ(round, calls);
        EXPECT_EQ(before.size(), 4u);
        EXPECT_EQ(after.size(), 4u);
        ++calls;
        observedMoves += moves;
      });
  // Observer also sees the final zero-move verification round.
  EXPECT_EQ(calls, result.rounds + 1);
  EXPECT_EQ(observedMoves, result.totalMoves);
}

TEST(SyncRunner, EnabledVerticesMatchesMoves) {
  const Graph g = graph::path(3);
  const auto ids = IdAssignment::identity(3);
  MaxProtocol protocol;
  SyncRunner<ValueState> runner(protocol, g, ids);
  auto states = runner.initialStates();
  const auto enabled = runner.enabledVertices(states);
  const std::vector<graph::Vertex> expected{0, 1};
  EXPECT_EQ(enabled, expected);
}

TEST(SyncRunner, RoundKeysDifferAcrossRoundsAndSeeds) {
  const Graph g = graph::path(2);
  const auto ids = IdAssignment::identity(2);
  MaxProtocol protocol;
  SyncRunner<ValueState> a(protocol, g, ids, 1);
  SyncRunner<ValueState> b(protocol, g, ids, 2);
  EXPECT_NE(a.roundKey(0), a.roundKey(1));
  EXPECT_NE(a.roundKey(0), b.roundKey(0));
}

TEST(RunFromClean, ReturnsFinalStates) {
  const Graph g = graph::cycle(6);
  const auto ids = IdAssignment::identity(6);
  MaxProtocol protocol;
  std::vector<ValueState> finalStates;
  const RunResult result = runFromClean(protocol, g, ids, 100, &finalStates);
  EXPECT_TRUE(result.stabilized);
  ASSERT_EQ(finalStates.size(), 6u);
  for (const ValueState& s : finalStates) EXPECT_EQ(s.value, 5u);
}

}  // namespace
}  // namespace selfstab::engine
