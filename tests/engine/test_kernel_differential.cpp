// Property-based differential harness for the flat protocol kernels.
//
// The flat kernels (src/core/sis_kernel.hpp, src/core/smm_kernel.hpp) claim
// *bit-identical* trajectories against the generic LocalView + virtual
// onRound path: same per-round state vectors, same move counts, same
// RunResult, same fixpoint behavior — for every SMM choice-policy
// combination, both SIS seniorities, both executors, both schedules,
// arbitrary (possibly corrupt) starts, mid-run fault bursts, topology
// churn, and full chaos campaigns. This suite hammers that claim with
// randomized combinations and fails with a replayable seed.
//
// Iteration count scales with the SELFSTAB_STRESS_ITERS env var.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adhoc/mobility.hpp"
#include "adhoc/network.hpp"
#include "chaos/campaign.hpp"
#include "chaos/monitors.hpp"
#include "chaos/plan.hpp"
#include "core/kernels.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::Choice;
using core::PointerState;
using core::Seniority;
using engine::ParallelSyncRunner;
using engine::Schedule;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

std::size_t stressIters(std::size_t fallback) {
  if (const char* env = std::getenv("SELFSTAB_STRESS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// Topology mix: the random families plus the structured corner cases that
// stress the kernels specifically — stars (one giant bigger-neighbor
// slice), cliques (every word of the bitset probed), paths (chains of
// single-bit groups), and hub-heavy preferential attachment (the
// degree-weighted partitioner's target regime).
Graph makeGraph(std::size_t family, graph::Rng& rng) {
  switch (family % 8) {
    case 0:
      return graph::connectedErdosRenyi(8 + rng.below(60), 0.15, rng);
    case 1:
      return graph::connectedRandomGeometric(8 + rng.below(60), 0.3, rng);
    case 2:
      return graph::path(1 + rng.below(70));
    case 3:
      return graph::star(2 + rng.below(70));
    case 4:
      return graph::complete(2 + rng.below(16));
    case 5:
      return graph::cycle(3 + rng.below(64));
    case 6:
      return graph::preferentialAttachment(8 + rng.below(60),
                                           1 + rng.below(4), rng);
    default:
      return graph::randomTree(2 + rng.below(70), rng);
  }
}

IdAssignment makeIds(const Graph& g, std::uint64_t choice, graph::Rng& rng) {
  switch (choice % 4) {
    case 0:
      return IdAssignment::identity(g.order());
    case 1:
      return IdAssignment::reversed(g.order());
    case 2:
      return IdAssignment::randomPermutation(g.order(), rng);
    default:
      return IdAssignment::randomSparse(g.order(), rng);
  }
}

std::string label(std::string_view protocol, std::uint64_t seed,
                  const Graph& g, std::size_t round) {
  std::ostringstream ss;
  ss << protocol << " seed=" << seed << " n=" << g.order()
     << " m=" << g.size() << " round=" << round
     << " (replay: SELFSTAB_STRESS_ITERS + this seed)";
  return ss.str();
}

template <typename State>
void attachFlat(SyncRunner<State>& runner,
                const engine::Protocol<State>& protocol, const Graph& g,
                const IdAssignment& ids) {
  auto kernel = core::makeFlatKernel<State>(protocol, g, ids);
  ASSERT_NE(kernel, nullptr) << protocol.name();
  runner.setKernel(std::move(kernel));
}

// Lockstep flat-vs-generic on the serial executor under `schedule`, with a
// mid-run fault burst replayed identically onto both trajectories. Also
// asserts isFixpoint parity every round.
template <typename State, typename Sampler>
void checkSerial(const engine::Protocol<State>& protocol, Sampler sampler,
                 Schedule schedule, std::uint64_t seed) {
  graph::Rng rng(seed);
  const Graph g = makeGraph(static_cast<std::size_t>(seed), rng);
  const IdAssignment ids = makeIds(g, seed / 7, rng);
  auto genericStates = engine::randomConfiguration<State>(g, rng, sampler);
  auto flatStates = genericStates;
  const std::size_t maxRounds = 4 * g.order() + 8;

  SyncRunner<State> generic(protocol, g, ids, seed, schedule);
  SyncRunner<State> flat(protocol, g, ids, seed, schedule);
  attachFlat(flat, protocol, g, ids);

  for (std::size_t r = 0; r < maxRounds; ++r) {
    if (r == g.order() / 2 + 1) {
      graph::Rng faultRngA(seed ^ 0xfau);
      graph::Rng faultRngB(seed ^ 0xfau);
      engine::corruptAndReschedule(generic, genericStates, g, faultRngA, 0.3,
                                   sampler);
      engine::corruptAndReschedule(flat, flatStates, g, faultRngB, 0.3,
                                   sampler);
      ASSERT_TRUE(genericStates == flatStates);
    }
    const std::size_t gm = generic.step(genericStates);
    const std::size_t fm = flat.step(flatStates);
    ASSERT_EQ(gm, fm) << label(protocol.name(), seed, g, r);
    ASSERT_TRUE(genericStates == flatStates)
        << label(protocol.name(), seed, g, r);
    if (gm == 0) {
      ASSERT_EQ(generic.isFixpoint(genericStates),
                flat.isFixpoint(flatStates))
          << label(protocol.name(), seed, g, r);
      if (generic.isFixpoint(genericStates)) break;
    }
  }

  // RunResult parity from fresh runners over the same start.
  auto gs = engine::randomConfiguration<State>(g, rng, sampler);
  auto fs = gs;
  SyncRunner<State> generic2(protocol, g, ids, seed, schedule);
  SyncRunner<State> flat2(protocol, g, ids, seed, schedule);
  attachFlat(flat2, protocol, g, ids);
  const engine::RunResult gr = generic2.run(gs, maxRounds);
  const engine::RunResult fr = flat2.run(fs, maxRounds);
  EXPECT_TRUE(gr == fr) << label(protocol.name(), seed, g, gr.rounds);
  EXPECT_TRUE(gs == fs) << label(protocol.name(), seed, g, gr.rounds);
}

// Flat kernels on the worker pool, dense and active, against the serial
// generic dense reference as ground truth each round.
template <typename State, typename Sampler>
void checkParallel(const engine::Protocol<State>& protocol, Sampler sampler,
                   std::uint64_t seed) {
  graph::Rng rng(seed);
  const Graph g = makeGraph(static_cast<std::size_t>(seed), rng);
  const IdAssignment ids = makeIds(g, seed / 7, rng);
  const auto start = engine::randomConfiguration<State>(g, rng, sampler);
  const std::size_t maxRounds = 4 * g.order() + 8;

  SyncRunner<State> reference(protocol, g, ids, seed, Schedule::Dense);
  ParallelSyncRunner<State> dense(protocol, g, ids, 4, seed, Schedule::Dense);
  ParallelSyncRunner<State> active(protocol, g, ids, 4, seed,
                                   Schedule::Active);
  dense.setKernel(core::makeFlatKernel<State>(protocol, g, ids));
  active.setKernel(core::makeFlatKernel<State>(protocol, g, ids));

  auto refStates = start;
  auto denseStates = start;
  auto activeStates = start;
  for (std::size_t r = 0; r < maxRounds; ++r) {
    const std::size_t rm = reference.step(refStates);
    const std::size_t dm = dense.step(denseStates);
    const std::size_t am = active.step(activeStates);
    ASSERT_EQ(rm, dm) << label(protocol.name(), seed, g, r);
    ASSERT_EQ(rm, am) << label(protocol.name(), seed, g, r);
    ASSERT_TRUE(refStates == denseStates)
        << label(protocol.name(), seed, g, r);
    ASSERT_TRUE(refStates == activeStates)
        << label(protocol.name(), seed, g, r);
    if (rm == 0 && reference.isFixpoint(refStates)) {
      ASSERT_TRUE(dense.isFixpoint(denseStates))
          << label(protocol.name(), seed, g, r);
      ASSERT_TRUE(active.isFixpoint(activeStates))
          << label(protocol.name(), seed, g, r);
      break;
    }
  }
}

// Full chaos campaign (crash/partition/corruption template plan) run twice,
// generic vs flat; the campaign mutates its own copy of the topology, so
// this also covers kernel topology-mirror invalidation under edge masking.
template <typename State, typename Sampler>
void checkChaosCampaign(const engine::Protocol<State>& protocol,
                        Sampler sampler, const char* planTemplate,
                        std::uint64_t seed) {
  graph::Rng rng(seed);
  Graph base = makeGraph(static_cast<std::size_t>(seed), rng);
  if (base.order() < 6) base = graph::connectedErdosRenyi(12, 0.3, rng);
  const IdAssignment ids = makeIds(base, seed / 7, rng);
  const auto start = engine::randomConfiguration<State>(base, rng, sampler);
  const chaos::FaultPlan plan = chaos::parseChaosSpec(
      std::string(planTemplate) + ":" + std::to_string(seed % 16),
      base.order());

  const auto runOnce = [&](bool flat, std::vector<State>& states) {
    Graph effective = base;
    SyncRunner<State> runner(protocol, effective, ids, seed, Schedule::Active);
    if (flat) attachFlat(runner, protocol, effective, ids);
    return chaos::runEngineCampaign(runner, protocol, effective, ids, states,
                                    plan, hashCombine(seed, 0xC4A05ULL),
                                    /*recoveryBudget=*/0, sampler);
  };

  auto genericStates = start;
  auto flatStates = start;
  const chaos::CampaignResult gr = runOnce(false, genericStates);
  const chaos::CampaignResult fr = runOnce(true, flatStates);
  EXPECT_TRUE(genericStates == flatStates)
      << label(protocol.name(), seed, base, gr.roundsExecuted);
  EXPECT_EQ(gr.roundsExecuted, fr.roundsExecuted);
  EXPECT_EQ(gr.totalMoves, fr.totalMoves);
  EXPECT_EQ(gr.recoveredAll, fr.recoveredAll);
  EXPECT_EQ(gr.finalFixpoint, fr.finalFixpoint);
}

// Every SMM choice-policy pair exercises a distinct select() branch in the
// flat kernel (including Successor's wrap-around disjunct and Random's
// roundKey-derived draw).
const Choice kChoices[] = {Choice::MinId, Choice::MaxId, Choice::First,
                           Choice::Successor, Choice::Random};

// ---- serial executor ----------------------------------------------------

TEST(KernelDifferential, SmmAllPoliciesDense) {
  const std::size_t iters = stressIters(4);
  std::uint64_t seed = 10'000;
  for (const Choice propose : kChoices) {
    for (const Choice accept : kChoices) {
      const core::SmmProtocol smm(propose, accept);
      for (std::size_t i = 0; i < iters; ++i) {
        checkSerial<PointerState>(smm, core::wildPointerState,
                                  Schedule::Dense, seed++);
      }
    }
  }
}

TEST(KernelDifferential, SmmAllPoliciesActive) {
  const std::size_t iters = stressIters(4);
  std::uint64_t seed = 20'000;
  for (const Choice propose : kChoices) {
    for (const Choice accept : kChoices) {
      const core::SmmProtocol smm(propose, accept);
      for (std::size_t i = 0; i < iters; ++i) {
        checkSerial<PointerState>(smm, core::wildPointerState,
                                  Schedule::Active, seed++);
      }
    }
  }
}

TEST(KernelDifferential, SisBothSenioritiesDense) {
  const std::size_t iters = stressIters(24);
  std::uint64_t seed = 30'000;
  for (const Seniority s : {Seniority::LargerIdWins, Seniority::SmallerIdWins}) {
    const core::SisProtocol sis(s);
    for (std::size_t i = 0; i < iters; ++i) {
      checkSerial<BitState>(sis, core::randomBitState, Schedule::Dense,
                            seed++);
    }
  }
}

TEST(KernelDifferential, SisBothSenioritiesActive) {
  const std::size_t iters = stressIters(24);
  std::uint64_t seed = 40'000;
  for (const Seniority s : {Seniority::LargerIdWins, Seniority::SmallerIdWins}) {
    const core::SisProtocol sis(s);
    for (std::size_t i = 0; i < iters; ++i) {
      checkSerial<BitState>(sis, core::randomBitState, Schedule::Active,
                            seed++);
    }
  }
}

// Synchronized wrappers must NOT match the kernel factory: their state
// carries scheduling fields the flat mirrors don't model.
TEST(KernelDifferential, WrappedProtocolsHaveNoKernel) {
  const core::Synchronized<core::SmmProtocol> hh(Choice::First, Choice::First);
  const Graph g = graph::path(4);
  const IdAssignment ids = IdAssignment::identity(4);
  EXPECT_EQ(core::makeFlatKernel<PointerState>(hh, g, ids), nullptr);
  EXPECT_EQ(core::makeViewKernel<PointerState>(hh), nullptr);

  const core::SmmProtocol smm = core::smmPaper();
  const core::SisProtocol sis;
  EXPECT_NE(core::makeFlatKernel<PointerState>(smm, g, ids), nullptr);
  EXPECT_NE(core::makeFlatKernel<BitState>(sis, g, ids), nullptr);
  EXPECT_NE(core::makeViewKernel<PointerState>(smm), nullptr);
  EXPECT_NE(core::makeViewKernel<BitState>(sis), nullptr);
}

// Topology churn through the runner's shared graph reference: the kernel's
// CSR mirror must refresh off Graph::version() exactly like ViewBuilder.
TEST(KernelDifferential, TopologyChurnRefreshesMirror) {
  const core::SisProtocol sis;
  for (std::uint64_t seed = 0; seed < stressIters(8); ++seed) {
    graph::Rng rng(91'000 + seed);
    Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const IdAssignment ids = IdAssignment::identity(g.order());
    auto genericStates = engine::randomConfiguration<BitState>(
        g, rng, core::randomBitState);
    auto flatStates = genericStates;
    SyncRunner<BitState> generic(sis, g, ids, seed, Schedule::Active);
    SyncRunner<BitState> flat(sis, g, ids, seed, Schedule::Active);
    flat.setKernel(core::makeFlatKernel<BitState>(sis, g, ids));
    for (std::size_t r = 0; r < 40; ++r) {
      if (r == 5 || r == 17) {
        engine::perturbTopology(g, rng, 4, /*keepConnected=*/false);
      }
      const std::size_t gm = generic.step(genericStates);
      const std::size_t fm = flat.step(flatStates);
      ASSERT_EQ(gm, fm) << "seed " << seed << " round " << r;
      ASSERT_TRUE(genericStates == flatStates)
          << "seed " << seed << " round " << r;
    }
  }
}

// Chaos template plans (crash storms, rolling partitions, churn) drive edge
// masking, frozen nodes, and state corruption through both paths.
TEST(KernelDifferential, ChaosCampaignSmm) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(6);
  const char* templates[] = {"churn", "crash-storm", "rolling-partition"};
  std::uint64_t seed = 50'000;
  for (const char* t : templates) {
    for (std::size_t i = 0; i < iters; ++i) {
      checkChaosCampaign<PointerState>(smm, core::wildPointerState, t, seed++);
    }
  }
}

TEST(KernelDifferential, ChaosCampaignSis) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(6);
  const char* templates[] = {"churn", "crash-storm", "rolling-partition"};
  std::uint64_t seed = 60'000;
  for (const char* t : templates) {
    for (std::size_t i = 0; i < iters; ++i) {
      checkChaosCampaign<BitState>(sis, core::randomBitState, t, seed++);
    }
  }
}

// Beacon simulator with the view-level kernel tier: bit-identical states
// and stats against the protocol-object path under loss and both schedules.
TEST(KernelDifferential, SimulatorViewKernel) {
  const std::size_t iters = stressIters(8);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(70'000 + seed);
    const std::size_t nodes = 10 + rng.below(30);
    adhoc::NetworkConfig config;
    config.seed = seed;
    config.radius = 0.3 + 0.2 * rng.real();
    config.lossProbability = (seed % 3 == 0) ? 0.1 : 0.0;
    config.schedule =
        (seed % 2 == 0) ? Schedule::Dense : Schedule::Active;
    const IdAssignment ids = IdAssignment::identity(nodes);
    const auto points = graph::randomPoints(nodes, rng);

    const core::SisProtocol sis;
    const auto kernel = core::makeViewKernel<BitState>(sis);
    ASSERT_NE(kernel, nullptr);

    adhoc::StaticPlacement mobilityA(points);
    adhoc::StaticPlacement mobilityB(points);
    adhoc::NetworkConfig configB = config;
    adhoc::NetworkSimulator<BitState> generic(sis, ids, mobilityA, config);
    adhoc::NetworkSimulator<BitState> flat(sis, ids, mobilityB, configB);
    flat.setViewKernel(kernel.get());
    EXPECT_EQ(flat.kernel(), engine::Kernel::Flat);
    EXPECT_EQ(generic.kernel(), engine::Kernel::Generic);

    for (int chunk = 1; chunk <= 10; ++chunk) {
      const adhoc::SimTime t = chunk * 5 * config.beaconInterval;
      generic.run(t);
      flat.run(t);
      ASSERT_TRUE(generic.states() == flat.states())
          << "seed " << seed << " t " << t;
      ASSERT_EQ(generic.stats().moves, flat.stats().moves)
          << "seed " << seed << " t " << t;
    }
  }
}

// ---- parallel executor --------------------------------------------------

TEST(KernelDifferentialParallel, SmmAllPolicies) {
  const std::size_t iters = stressIters(2);
  std::uint64_t seed = 80'000;
  for (const Choice propose : kChoices) {
    for (const Choice accept : kChoices) {
      const core::SmmProtocol smm(propose, accept);
      for (std::size_t i = 0; i < iters; ++i) {
        checkParallel<PointerState>(smm, core::wildPointerState, seed++);
      }
    }
  }
}

TEST(KernelDifferentialParallel, SisBothSeniorities) {
  const std::size_t iters = stressIters(12);
  std::uint64_t seed = 90'000;
  for (const Seniority s : {Seniority::LargerIdWins, Seniority::SmallerIdWins}) {
    const core::SisProtocol sis(s);
    for (std::size_t i = 0; i < iters; ++i) {
      checkParallel<BitState>(sis, core::randomBitState, seed++);
    }
  }
}

// Chaos campaigns on the pooled executor with flat kernels: covers the
// degree-weighted partition recomputation under topology masking plus the
// pooled fixpoint sweep used by maskedStable.
TEST(KernelDifferentialParallel, ChaosCampaign) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(4);
  for (std::uint64_t seed = 0; seed < iters; ++seed) {
    graph::Rng rng(95'000 + seed);
    Graph base = graph::connectedErdosRenyi(20 + rng.below(20), 0.15, rng);
    const IdAssignment ids = makeIds(base, seed, rng);
    const auto start = engine::randomConfiguration<PointerState>(
        base, rng, core::wildPointerState);
    const chaos::FaultPlan plan =
        chaos::parseChaosSpec("churn:" + std::to_string(seed), base.order());

    const auto runOnce = [&](bool flat, bool parallel,
                             std::vector<PointerState>& states) {
      Graph effective = base;
      if (parallel) {
        ParallelSyncRunner<PointerState> runner(smm, effective, ids, 4, seed,
                                                Schedule::Active);
        if (flat) {
          runner.setKernel(
              core::makeFlatKernel<PointerState>(smm, effective, ids));
        }
        return chaos::runEngineCampaign(runner, smm, effective, ids, states,
                                        plan, hashCombine(seed, 0xC4A05ULL),
                                        0, core::wildPointerState);
      }
      SyncRunner<PointerState> runner(smm, effective, ids, seed,
                                      Schedule::Active);
      return chaos::runEngineCampaign(runner, smm, effective, ids, states,
                                      plan, hashCombine(seed, 0xC4A05ULL), 0,
                                      core::wildPointerState);
    };

    auto refStates = start;
    auto flatStates = start;
    const chaos::CampaignResult ref = runOnce(false, false, refStates);
    const chaos::CampaignResult par = runOnce(true, true, flatStates);
    EXPECT_TRUE(refStates == flatStates) << "seed " << seed;
    EXPECT_EQ(ref.roundsExecuted, par.roundsExecuted) << "seed " << seed;
    EXPECT_EQ(ref.totalMoves, par.totalMoves) << "seed " << seed;
    EXPECT_EQ(ref.finalFixpoint, par.finalFixpoint) << "seed " << seed;
  }
}

}  // namespace
}  // namespace selfstab
