#include "engine/fault.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../support/test_protocols.hpp"
#include "core/matching_state.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::engine {
namespace {

using core::PointerState;
using core::randomPointerState;
using graph::Graph;
using testing::ValueState;

TEST(RandomConfiguration, SamplesEveryVertex) {
  const Graph g = graph::cycle(10);
  Rng rng(1);
  const auto states = randomConfiguration<PointerState>(
      g, rng, [](graph::Vertex v, const Graph& gg, Rng& r) {
        return randomPointerState(v, gg, r);
      });
  ASSERT_EQ(states.size(), 10u);
  for (graph::Vertex v = 0; v < 10; ++v) {
    const PointerState& s = states[v];
    EXPECT_TRUE(s.isNull() || g.hasEdge(v, s.ptr));
  }
}

TEST(CorruptConfiguration, FractionZeroChangesNothing) {
  const Graph g = graph::path(8);
  Rng rng(2);
  std::vector<ValueState> states(8, ValueState{7});
  const auto original = states;
  const std::size_t corrupted = corruptConfiguration(
      states, g, rng, 0.0,
      [](graph::Vertex, const Graph&, Rng& r) { return ValueState{r.next()}; });
  EXPECT_EQ(corrupted, 0u);
  EXPECT_EQ(states, original);
}

TEST(CorruptConfiguration, FractionOneHitsEveryone) {
  const Graph g = graph::path(8);
  Rng rng(3);
  std::vector<ValueState> states(8, ValueState{7});
  const std::size_t corrupted = corruptConfiguration(
      states, g, rng, 1.0,
      [](graph::Vertex, const Graph&, Rng& r) { return ValueState{r.next()}; });
  EXPECT_EQ(corrupted, 8u);
}

TEST(EnumerateConfigurations, VisitsFullProduct) {
  std::vector<std::vector<int>> candidates{{0, 1}, {0, 1, 2}, {5}};
  EXPECT_EQ(configurationCount(candidates), 6u);
  std::set<std::vector<int>> seen;
  enumerateConfigurations(candidates, [&](const std::vector<int>& config) {
    seen.insert(config);
  });
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count({1, 2, 5}));
  EXPECT_TRUE(seen.count({0, 0, 5}));
}

TEST(EnumerateConfigurations, EmptyCandidateListProducesNothing) {
  std::vector<std::vector<int>> candidates{{0, 1}, {}};
  int calls = 0;
  enumerateConfigurations(candidates,
                          [&](const std::vector<int>&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(PerturbTopology, TogglesRequestedCount) {
  Graph g = graph::complete(6);
  Rng rng(4);
  const std::size_t before = g.size();
  const std::size_t applied = perturbTopology(g, rng, 5, false);
  EXPECT_EQ(applied, 5u);
  EXPECT_NE(g.size(), before);  // complete graph: all toggles are removals
}

TEST(PerturbTopology, KeepConnectedPreservesConnectivity) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = graph::randomTree(12, rng);  // trees: every removal disconnects
    perturbTopology(g, rng, 10, true);
    EXPECT_TRUE(graph::isConnected(g));
  }
}

TEST(PerturbTopology, TinyGraphIsNoop) {
  Graph g(1);
  Rng rng(6);
  EXPECT_EQ(perturbTopology(g, rng, 5, true), 0u);
}

}  // namespace
}  // namespace selfstab::engine
