// Fault-plan parsing, validation, and the built-in campaign templates.
#include "chaos/plan.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace selfstab::chaos {
namespace {

FaultPlan parse(const std::string& text) {
  std::istringstream in(text);
  return parsePlanJson(in);
}

TEST(PlanJson, ParsesEveryKindAndField) {
  const FaultPlan plan = parse(R"({"events":[
    {"at":4,"kind":"corrupt","fraction":0.25},
    {"at":10,"kind":"corrupt","nodes":[1,3,5]},
    {"at":20,"kind":"crash","node":2},
    {"at":30,"kind":"loss_burst","p":0.9,"duration":7},
    {"at":40,"kind":"rejoin","node":2},
    {"at":50,"kind":"partition_cut","nodes":[0,1,2]},
    {"at":60,"kind":"partition_heal"},
    {"at":70,"kind":"clock_drift","node":4,"factor":1.5},
    {"at":80,"kind":"stuck","node":6},
    {"at":90,"kind":"release","node":6},
    {"at":100,"kind":"garble","node":7}
  ]})");
  ASSERT_EQ(plan.events.size(), 11u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::Corrupt);
  EXPECT_DOUBLE_EQ(plan.events[0].fraction, 0.25);
  EXPECT_EQ(plan.events[1].nodes, (std::vector<graph::Vertex>{1, 3, 5}));
  EXPECT_EQ(plan.events[2].kind, FaultKind::Crash);
  EXPECT_EQ(plan.events[2].node, 2u);
  EXPECT_DOUBLE_EQ(plan.events[3].p, 0.9);
  EXPECT_EQ(plan.events[3].duration, 7);
  EXPECT_EQ(plan.events[5].kind, FaultKind::PartitionCut);
  EXPECT_DOUBLE_EQ(plan.events[7].factor, 1.5);
  EXPECT_EQ(plan.events[10].kind, FaultKind::Garble);
  EXPECT_NO_THROW(validatePlan(plan, 8));
  // Round-trip the kind spellings through toString/faultKindFromString.
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(faultKindFromString(toString(ev.kind)), ev.kind);
  }
}

TEST(PlanJson, AppliesDefaultsAndSortsByRound) {
  const FaultPlan plan = parse(
      R"({"events":[{"at":30,"kind":"garble","node":0},
                    {"at":5,"kind":"corrupt"}]})");
  ASSERT_EQ(plan.events.size(), 2u);
  // Sorted by `at` even when the file lists them out of order.
  EXPECT_EQ(plan.events[0].at, 5);
  EXPECT_EQ(plan.events[0].kind, FaultKind::Corrupt);
  EXPECT_DOUBLE_EQ(plan.events[0].fraction, 0.3);  // default
  EXPECT_EQ(plan.events[1].at, 30);
}

TEST(PlanJson, LastEventRoundCoversLossBurstTail) {
  const FaultPlan plan = parse(
      R"({"events":[{"at":10,"kind":"loss_burst","p":0.5,"duration":20},
                    {"at":12,"kind":"garble","node":0}]})");
  EXPECT_EQ(plan.lastEventRound(), 30);
  EXPECT_EQ(FaultPlan{}.lastEventRound(), -1);
}

TEST(PlanJson, MaxDriftFactorScansClockDriftEvents) {
  const FaultPlan plan = parse(
      R"({"events":[{"at":1,"kind":"clock_drift","node":0,"factor":2.5},
                    {"at":2,"kind":"clock_drift","node":1,"factor":0.5}]})");
  EXPECT_DOUBLE_EQ(plan.maxDriftFactor(), 2.5);
  EXPECT_DOUBLE_EQ(FaultPlan{}.maxDriftFactor(), 1.0);
}

TEST(PlanJson, RejectsMalformedDocuments) {
  EXPECT_THROW(parse("[]"), PlanError);                       // not an object
  EXPECT_THROW(parse("{}"), PlanError);                       // no events
  EXPECT_THROW(parse(R"({"events":[]} trailing)"), PlanError);
  EXPECT_THROW(parse(R"({"events":[{"kind":"meteor"}]})"), PlanError);
  EXPECT_THROW(parse(R"({"events":[{"kind":"crash"}]})"), PlanError);
  EXPECT_THROW(parse(R"({"events":[{"at":1.5,"kind":"corrupt"}]})"),
               PlanError);  // non-integer round
  EXPECT_THROW(parse(R"({"events":[{"kind":"crash","node":-1}]})"),
               PlanError);
  EXPECT_THROW(parse(R"({"events":[{"kind":"corrupt","nodes":"all"}]})"),
               PlanError);
  EXPECT_THROW(parse(R"({"events":[{"kind":"corrupt","fraction":"x"}]})"),
               PlanError);
}

TEST(PlanValidate, CatchesStructuralMistakes) {
  const auto reject = [](const std::string& text, std::size_t n) {
    const FaultPlan plan = parse(text);
    EXPECT_THROW(validatePlan(plan, n), PlanError) << text;
  };
  // Vertex out of range.
  reject(R"({"events":[{"at":1,"kind":"crash","node":5}]})", 5);
  reject(R"({"events":[{"at":1,"kind":"corrupt","nodes":[9]}]})", 5);
  // Double crash / rejoin of a live node.
  reject(R"({"events":[{"at":1,"kind":"crash","node":0},
                       {"at":2,"kind":"crash","node":0}]})",
         5);
  reject(R"({"events":[{"at":1,"kind":"rejoin","node":0}]})", 5);
  // Partition bookkeeping.
  reject(R"({"events":[{"at":1,"kind":"partition_heal"}]})", 5);
  reject(R"({"events":[{"at":1,"kind":"partition_cut","nodes":[0]},
                       {"at":2,"kind":"partition_cut","nodes":[1]}]})",
         5);
  reject(R"({"events":[{"at":1,"kind":"partition_cut",
                        "nodes":[0,1,2,3,4]}]})",
         5);  // not a proper subset
  // Parameter ranges.
  reject(R"({"events":[{"at":1,"kind":"corrupt","fraction":1.5}]})", 5);
  reject(R"({"events":[{"at":1,"kind":"loss_burst","p":2.0}]})", 5);
  reject(R"({"events":[{"at":1,"kind":"loss_burst","p":0.5,
                        "duration":0}]})",
         5);
  reject(R"({"events":[{"at":1,"kind":"clock_drift","node":0,
                        "factor":0.0}]})",
         5);
  reject(R"({"events":[{"at":1,"kind":"release","node":0}]})", 5);
  // Ordering.
  {
    FaultPlan plan = parse(
        R"({"events":[{"at":1,"kind":"corrupt"},{"at":5,"kind":"corrupt"}]})");
    std::swap(plan.events[0], plan.events[1]);
    EXPECT_THROW(validatePlan(plan, 5), PlanError);
  }
  {
    FaultPlan plan;
    plan.events.push_back(FaultEvent{});
    plan.events.back().at = -3;
    EXPECT_THROW(validatePlan(plan, 5), PlanError);
  }
}

TEST(PlanTemplates, KnownNamesOnly) {
  EXPECT_TRUE(isCampaignTemplate("churn"));
  EXPECT_TRUE(isCampaignTemplate("crash-storm"));
  EXPECT_TRUE(isCampaignTemplate("rolling-partition"));
  EXPECT_FALSE(isCampaignTemplate("meteor"));
  EXPECT_THROW(makeCampaign("meteor", 1, 10), PlanError);
  EXPECT_THROW(makeCampaign("churn", 1, 0), PlanError);
}

TEST(PlanTemplates, DeterministicInSeedAndN) {
  for (const char* name : {"churn", "crash-storm", "rolling-partition"}) {
    const FaultPlan a = makeCampaign(name, 42, 20);
    const FaultPlan b = makeCampaign(name, 42, 20);
    EXPECT_EQ(a.events, b.events) << name;
  }
  // Different seeds pick different victims for at least one template.
  bool anyDifferent = false;
  for (std::uint64_t seed = 1; seed <= 4 && !anyDifferent; ++seed) {
    anyDifferent = !(makeCampaign("churn", 0, 20).events ==
                     makeCampaign("churn", seed, 20).events);
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(PlanTemplates, ValidateCleanAcrossSizes) {
  for (const char* name : {"churn", "crash-storm", "rolling-partition"}) {
    for (const std::size_t n : {1u, 2u, 5u, 13u, 40u}) {
      const FaultPlan plan = makeCampaign(name, 7, n);
      // makeCampaign validates internally; re-check from the outside and
      // confirm the template ends clean: no node left crashed or stuck, no
      // partition left cut, all drift factors restored.
      ASSERT_NO_THROW(validatePlan(plan, n)) << name << " n=" << n;
      std::size_t crashes = 0;
      std::size_t rejoins = 0;
      std::size_t stuck = 0;
      std::size_t released = 0;
      std::size_t cuts = 0;
      std::size_t heals = 0;
      double lastFactor = 1.0;
      for (const FaultEvent& ev : plan.events) {
        switch (ev.kind) {
          case FaultKind::Crash: ++crashes; break;
          case FaultKind::Rejoin: ++rejoins; break;
          case FaultKind::Stuck: ++stuck; break;
          case FaultKind::Release: ++released; break;
          case FaultKind::PartitionCut: ++cuts; break;
          case FaultKind::PartitionHeal: ++heals; break;
          case FaultKind::ClockDrift: lastFactor = ev.factor; break;
          default: break;
        }
      }
      EXPECT_EQ(crashes, rejoins) << name << " n=" << n;
      EXPECT_EQ(stuck, released) << name << " n=" << n;
      EXPECT_EQ(cuts, heals) << name << " n=" << n;
      EXPECT_DOUBLE_EQ(lastFactor, 1.0) << name << " n=" << n;
      // Consecutive events leave the paper-bound recovery window open.
      const auto gap = static_cast<std::int64_t>(2 * n + 8);
      for (std::size_t i = 1; i < plan.events.size(); ++i) {
        EXPECT_GE(plan.events[i].at - plan.events[i - 1].at, gap);
      }
    }
  }
}

TEST(PlanSpec, TemplateSpecMatchesMakeCampaign) {
  const FaultPlan fromSpec = parseChaosSpec("churn:42", 16);
  const FaultPlan direct = makeCampaign("churn", 42, 16);
  EXPECT_EQ(fromSpec.events, direct.events);
  EXPECT_THROW(parseChaosSpec("churn:not-a-seed", 16), PlanError);
  // Unknown file (and not a template) -> plan-file error.
  EXPECT_THROW(parseChaosSpec("/nonexistent/plan.json", 16), PlanError);
}

TEST(PlanSpec, ReadsAndValidatesJsonFiles) {
  const std::string path =
      testing::TempDir() + "/selfstab_chaos_plan_test.json";
  {
    std::ofstream out(path);
    out << R"({"events":[{"at":3,"kind":"crash","node":1},
                         {"at":20,"kind":"rejoin","node":1}]})";
  }
  const FaultPlan plan = parseChaosSpec(path, 4);
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::Crash);
  // The same file fails validation against a system too small for node 1.
  EXPECT_THROW(parseChaosSpec(path, 1), PlanError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace selfstab::chaos
