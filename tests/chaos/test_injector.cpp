// SimChaosController: fault plans injected into the beacon-model simulator.
#include "chaos/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analysis/verifiers.hpp"
#include "chaos/plan.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab::chaos {
namespace {

using adhoc::NetworkConfig;
using adhoc::NetworkSimulator;
using adhoc::SimTime;
using adhoc::StaticPlacement;
using core::PointerState;

constexpr std::uint64_t kChaosSeed = 0xC4A05ULL;

std::vector<graph::Point> connectedPoints(std::size_t n, double radius,
                                          std::uint64_t seed) {
  graph::Rng rng(seed);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(n, radius, rng, &pts);
  return pts;
}

struct SimOutcome {
  std::vector<PointerState> states;
  adhoc::NetworkStats stats;
  std::vector<RecoveryMonitor::Record> records;
  bool quiet = false;
  double lossAfter = 0.0;
  graph::Graph topo{0};
};

/// Runs SMM under `plan` over a static placement; the run continues past
/// the plan tail until the network is quiet (or the generous budget ends).
SimOutcome runSmmSim(const FaultPlan& plan, std::size_t n, std::uint64_t seed,
                     adhoc::IndexMode index = adhoc::IndexMode::Grid,
                     adhoc::QueueMode queue = adhoc::QueueMode::Calendar) {
  NetworkConfig config;
  config.seed = seed;
  config.index = index;
  config.queue = queue;
  StaticPlacement mobility(connectedPoints(n, config.radius, seed));
  const auto ids = graph::IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  RecoveryMonitor monitor;
  SimChaosController<PointerState, decltype(&core::randomPointerState)>
      controller(sim, plan, kChaosSeed, &core::randomPointerState,
                 config.beaconInterval, monitor);

  const SimTime budget =
      controller.noQuietBefore() + 4000 * config.beaconInterval;
  const auto result = sim.runUntilQuiet(5 * config.beaconInterval, budget,
                                        controller.noQuietBefore());
  controller.finalize();

  SimOutcome out;
  out.states = sim.states();
  out.stats = sim.stats();
  out.records = monitor.records();
  out.quiet = result.quiet;
  out.lossAfter = sim.lossProbability();
  out.topo = sim.currentTopology();
  return out;
}

TEST(SimInjector, EmptyPlanLeavesTrajectoryUntouched) {
  const std::size_t n = 18;
  // Reference: no chaos machinery at all.
  NetworkConfig config;
  config.seed = 31;
  StaticPlacement mobility(connectedPoints(n, config.radius, 31));
  const auto ids = graph::IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> plain(smm, ids, mobility, config);
  const auto plainResult = plain.runUntilQuiet(5 * config.beaconInterval,
                                               1000 * config.beaconInterval);
  ASSERT_TRUE(plainResult.quiet);

  // Same run with an inert (empty-plan) controller, and — separately — with
  // the chaos state block attached but no events: both must be bit-identical.
  {
    const auto out = runSmmSim(FaultPlan{}, n, 31);
    EXPECT_TRUE(out.quiet);
    EXPECT_EQ(out.states, plain.states());
    EXPECT_EQ(out.stats, plainResult.stats);
    EXPECT_TRUE(out.records.empty());
  }
  {
    StaticPlacement mobility2(connectedPoints(n, config.radius, 31));
    NetworkSimulator<PointerState> attached(smm, ids, mobility2, config);
    attached.chaosAttach(1.0);
    const auto attachedResult = attached.runUntilQuiet(
        5 * config.beaconInterval, 1000 * config.beaconInterval);
    EXPECT_TRUE(attachedResult.quiet);
    EXPECT_EQ(attached.states(), plain.states());
    EXPECT_EQ(attachedResult.stats, plainResult.stats);
  }
}

TEST(SimInjector, ChurnCampaignRecoversAndReconverges) {
  const std::size_t n = 16;
  const FaultPlan plan = makeCampaign("churn", 9, n);
  const auto out = runSmmSim(plan, n, 9);
  EXPECT_TRUE(out.quiet);
  // Every fault window closed, recovered, one record per event (loss-burst
  // restore ticks do not open windows of their own).
  ASSERT_EQ(out.records.size(), plan.events.size());
  for (const auto& r : out.records) {
    EXPECT_TRUE(r.recovered) << r.kind << " at round " << r.at;
  }
  // The loss burst restored the base probability.
  EXPECT_DOUBLE_EQ(out.lossAfter, 0.0);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(out.topo, out.states).ok());
}

TEST(SimInjector, DeterministicAcrossIndexAndQueueModes) {
  const std::size_t n = 16;
  const FaultPlan plan = makeCampaign("churn", 12, n);
  const auto gridCal = runSmmSim(plan, n, 12, adhoc::IndexMode::Grid,
                                 adhoc::QueueMode::Calendar);
  const auto scanHeap = runSmmSim(plan, n, 12, adhoc::IndexMode::Scan,
                                  adhoc::QueueMode::Heap);
  const auto gridHeap = runSmmSim(plan, n, 12, adhoc::IndexMode::Grid,
                                  adhoc::QueueMode::Heap);
  EXPECT_EQ(gridCal.states, scanHeap.states);
  EXPECT_EQ(gridCal.states, gridHeap.states);
  EXPECT_EQ(gridCal.stats, scanHeap.stats);
  EXPECT_EQ(gridCal.stats, gridHeap.stats);
  ASSERT_EQ(gridCal.records.size(), scanHeap.records.size());
  for (std::size_t i = 0; i < gridCal.records.size(); ++i) {
    EXPECT_EQ(gridCal.records[i].recoveryRounds,
              scanHeap.records[i].recoveryRounds);
    EXPECT_EQ(gridCal.records[i].containmentRadius,
              scanHeap.records[i].containmentRadius);
    EXPECT_EQ(gridCal.records[i].recovered, scanHeap.records[i].recovered);
  }
}

TEST(SimInjector, DeterministicAcrossRepeatedRuns) {
  const std::size_t n = 14;
  const FaultPlan plan = makeCampaign("crash-storm", 3, n);
  const auto a = runSmmSim(plan, n, 3);
  const auto b = runSmmSim(plan, n, 3);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.stats, b.stats);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].recoveryRounds, b.records[i].recoveryRounds);
    EXPECT_EQ(a.records[i].containmentRadius, b.records[i].containmentRadius);
  }
}

TEST(SimInjector, CrashSilencesNodeUntilRejoin) {
  // Crash node 0 and never rejoin it: its neighbors age it out of their
  // caches and restabilize without it, while its own state stays frozen.
  const std::size_t n = 12;
  NetworkConfig config;
  config.seed = 23;
  StaticPlacement mobility(connectedPoints(n, config.radius, 23));
  const auto ids = graph::IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  // Controller first: ticks must be scheduled in the queue's future.
  FaultPlan plan;
  FaultEvent crash;
  crash.at = 200;
  crash.kind = FaultKind::Crash;
  crash.node = 0;
  plan.events.push_back(crash);
  RecoveryMonitor monitor;
  SimChaosController<PointerState, decltype(&core::randomPointerState)>
      controller(sim, plan, kChaosSeed, &core::randomPointerState,
                 config.beaconInterval, monitor);

  // Phase 1: converge well before the crash fires; static placement and
  // zero loss mean the state is then unchanged until the fault tick.
  ASSERT_TRUE(sim.runUntilQuiet(5 * config.beaconInterval,
                                190 * config.beaconInterval)
                  .quiet);
  const PointerState frozen = sim.states()[0];

  sim.runUntilQuiet(5 * config.beaconInterval,
                    400 * config.beaconInterval,
                    controller.noQuietBefore());
  controller.finalize();

  EXPECT_TRUE(sim.chaosCrashed(0));
  EXPECT_EQ(sim.states()[0], frozen);
  // Survivors form a valid matching among themselves: no live pointer may
  // still target the crashed node after its cache entries expired.
  for (graph::Vertex v = 1; v < n; ++v) {
    EXPECT_NE(sim.states()[v].ptr, 0u) << "node " << v;
  }
}

TEST(SimInjector, SisSurvivesRollingPartition) {
  const std::size_t n = 15;
  NetworkConfig config;
  config.seed = 41;
  StaticPlacement mobility(connectedPoints(n, config.radius, 41));
  const auto ids = graph::IdAssignment::identity(n);
  const core::SisProtocol sis;
  NetworkSimulator<core::BitState> sim(sis, ids, mobility, config);

  const FaultPlan plan = makeCampaign("rolling-partition", 2, n);
  RecoveryMonitor monitor;
  SimChaosController<core::BitState, decltype(&core::randomBitState)>
      controller(sim, plan, kChaosSeed, &core::randomBitState,
                 config.beaconInterval, monitor);
  const auto result = sim.runUntilQuiet(
      5 * config.beaconInterval,
      controller.noQuietBefore() + 4000 * config.beaconInterval,
      controller.noQuietBefore());
  controller.finalize();

  ASSERT_TRUE(result.quiet);
  EXPECT_EQ(monitor.records().size(), plan.events.size());
  EXPECT_TRUE(analysis::isMaximalIndependentSet(
      sim.currentTopology(), analysis::membersOf(sim.states())));
}

}  // namespace
}  // namespace selfstab::chaos
