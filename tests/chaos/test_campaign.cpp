// runEngineCampaign: fault plans over the abstract synchronous executors.
#include "chaos/campaign.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "analysis/verifiers.hpp"
#include "chaos/safety.hpp"
#include "core/matching_state.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "graph/id_order.hpp"

namespace selfstab::chaos {
namespace {

constexpr std::uint64_t kChaosSeed = 0xC4A05ULL;

graph::Graph testGraph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return graph::connectedRandomGeometric(n, 0.35, rng);
}

struct SmmCampaignOutcome {
  CampaignResult result;
  std::vector<core::PointerState> states;
  std::vector<RecoveryMonitor::Record> records;
};

/// One SMM campaign under the serial executor; recovery budget 2n+1, the
/// paper's stabilization bound.
SmmCampaignOutcome runSmm(const FaultPlan& plan, std::size_t n,
                          std::uint64_t seed,
                          engine::Schedule schedule = engine::Schedule::Dense) {
  const core::SmmProtocol protocol = core::smmPaper();
  graph::Graph g = testGraph(n, seed);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  engine::SyncRunner<core::PointerState> runner(protocol, g, ids, seed,
                                                schedule);
  std::vector<core::PointerState> states = runner.initialStates();
  RecoveryMonitor monitor;
  SmmCampaignOutcome out;
  out.result = runEngineCampaign(runner, protocol, g, ids, states, plan,
                                 kChaosSeed, 2 * n + 1,
                                 core::randomPointerState, &monitor,
                                 smmSafetyCheck());
  out.states = std::move(states);
  out.records = monitor.records();
  return out;
}

TEST(EngineCampaign, EmptyPlanDrainsToFixpoint) {
  const auto out = runSmm(FaultPlan{}, 24, 3);
  EXPECT_TRUE(out.result.finalFixpoint);
  EXPECT_TRUE(out.result.recoveredAll);
  EXPECT_TRUE(out.records.empty());
  EXPECT_EQ(out.result.safetyViolations, 0u);
  const graph::Graph g = testGraph(24, 3);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, out.states).ok());
}

TEST(EngineCampaign, ChurnRecoversWithinPaperBoundSmm) {
  const std::size_t n = 20;
  const auto out = runSmm(makeCampaign("churn", 11, n), n, 11);
  EXPECT_TRUE(out.result.finalFixpoint);
  EXPECT_TRUE(out.result.recoveredAll);
  EXPECT_FALSE(out.records.empty());
  for (const auto& r : out.records) {
    EXPECT_TRUE(r.recovered) << r.kind << " at round " << r.at;
    EXPECT_LE(r.recoveryRounds, 2 * n + 1) << r.kind;
    EXPECT_LE(r.containmentRadius, n) << r.kind;
  }
  // SMM never breaks a matched edge between two healthy nodes (Manne et
  // al.'s "married nodes stay married"), so the safety counter stays zero.
  EXPECT_EQ(out.result.safetyViolations, 0u);
  const graph::Graph g = testGraph(n, 11);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, out.states).ok());
}

TEST(EngineCampaign, CrashStormAndPartitionTemplatesEndAtFixpoint) {
  for (const char* name : {"crash-storm", "rolling-partition"}) {
    for (const std::uint64_t seed : {2ull, 9ull}) {
      const std::size_t n = 16;
      const auto out = runSmm(makeCampaign(name, seed, n), n, seed);
      EXPECT_TRUE(out.result.finalFixpoint) << name << " seed " << seed;
      EXPECT_TRUE(out.result.recoveredAll) << name << " seed " << seed;
      const graph::Graph g = testGraph(n, seed);
      EXPECT_TRUE(analysis::checkMatchingFixpoint(g, out.states).ok())
          << name << " seed " << seed;
    }
  }
}

TEST(EngineCampaign, SisRecoversWithinPaperBound) {
  const std::size_t n = 18;
  const core::SisProtocol protocol;
  graph::Graph g = testGraph(n, 5);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  engine::SyncRunner<core::BitState> runner(protocol, g, ids, 5);
  std::vector<core::BitState> states = runner.initialStates();
  RecoveryMonitor monitor;
  const CampaignResult result = runEngineCampaign(
      runner, protocol, g, ids, states, makeCampaign("churn", 4, n),
      kChaosSeed, n, core::randomBitState, &monitor, sisSafetyCheck());
  EXPECT_TRUE(result.finalFixpoint);
  EXPECT_TRUE(result.recoveredAll);
  for (const auto& r : monitor.records()) {
    EXPECT_LE(r.recoveryRounds, n) << r.kind << " at round " << r.at;
  }
  const graph::Graph base = testGraph(n, 5);
  EXPECT_TRUE(
      analysis::isMaximalIndependentSet(base, analysis::membersOf(states)));
}

TEST(EngineCampaign, DeterministicAcrossRuns) {
  const std::size_t n = 15;
  const FaultPlan plan = makeCampaign("churn", 21, n);
  const auto a = runSmm(plan, n, 21);
  const auto b = runSmm(plan, n, 21);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.result.roundsExecuted, b.result.roundsExecuted);
  EXPECT_EQ(a.result.totalMoves, b.result.totalMoves);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].at, b.records[i].at);
    EXPECT_EQ(a.records[i].kind, b.records[i].kind);
    EXPECT_EQ(a.records[i].injected, b.records[i].injected);
    EXPECT_EQ(a.records[i].recoveryRounds, b.records[i].recoveryRounds);
    EXPECT_EQ(a.records[i].containmentRadius, b.records[i].containmentRadius);
    EXPECT_EQ(a.records[i].recovered, b.records[i].recovered);
  }
}

TEST(EngineCampaign, DenseAndActiveSchedulesAgree) {
  const std::size_t n = 15;
  const FaultPlan plan = makeCampaign("crash-storm", 6, n);
  const auto dense = runSmm(plan, n, 6, engine::Schedule::Dense);
  const auto active = runSmm(plan, n, 6, engine::Schedule::Active);
  EXPECT_EQ(dense.states, active.states);
  EXPECT_EQ(dense.result.roundsExecuted, active.result.roundsExecuted);
  EXPECT_EQ(dense.result.totalMoves, active.result.totalMoves);
}

TEST(EngineCampaign, SerialAndParallelExecutorsAgree) {
  const std::size_t n = 15;
  const FaultPlan plan = makeCampaign("churn", 8, n);
  const auto serial = runSmm(plan, n, 8);

  const core::SmmProtocol protocol = core::smmPaper();
  graph::Graph g = testGraph(n, 8);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  const std::size_t threads =
      std::max<std::size_t>(2, std::thread::hardware_concurrency() / 2);
  engine::ParallelSyncRunner<core::PointerState> runner(protocol, g, ids,
                                                        threads, 8);
  std::vector<core::PointerState> states;
  for (graph::Vertex v = 0; v < n; ++v) {
    states.push_back(protocol.initialState(v));
  }
  RecoveryMonitor monitor;
  const CampaignResult result = runEngineCampaign(
      runner, protocol, g, ids, states, plan, kChaosSeed, 2 * n + 1,
      core::randomPointerState, &monitor, smmSafetyCheck());

  EXPECT_EQ(states, serial.states);
  EXPECT_EQ(result.roundsExecuted, serial.result.roundsExecuted);
  EXPECT_EQ(result.totalMoves, serial.result.totalMoves);
  EXPECT_EQ(result.finalFixpoint, serial.result.finalFixpoint);
  ASSERT_EQ(monitor.records().size(), serial.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(monitor.records()[i].recoveryRounds,
              serial.records[i].recoveryRounds);
    EXPECT_EQ(monitor.records()[i].containmentRadius,
              serial.records[i].containmentRadius);
  }
}

TEST(EngineCampaign, StuckNodeStatePinnedUntilRelease) {
  // One node is stuck with a corrupted pointer; the rest must route around
  // it (masked stability) and the system still reaches a global fixpoint
  // after release.
  const std::size_t n = 12;
  const core::SmmProtocol protocol = core::smmPaper();
  graph::Graph g = testGraph(n, 13);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  engine::SyncRunner<core::PointerState> runner(protocol, g, ids, 13);
  std::vector<core::PointerState> states = runner.initialStates();

  // Template-style 2n+8 spacing: each fault gets a full recovery window
  // (an event landing inside the previous window truncates it and the
  // monitor rightly reports recovered=false). Node 0 is frozen first, the
  // corruption lands while it is stuck, and release comes last.
  const std::int64_t gap = static_cast<std::int64_t>(2 * n + 8);
  FaultPlan plan;
  FaultEvent stuck;
  stuck.at = 4;
  stuck.kind = FaultKind::Stuck;
  stuck.node = 0;
  plan.events.push_back(stuck);
  FaultEvent corrupt;
  corrupt.at = 4 + gap;
  corrupt.kind = FaultKind::Corrupt;
  corrupt.fraction = 0.5;
  plan.events.push_back(corrupt);
  FaultEvent release;
  release.at = 4 + 2 * gap;
  release.kind = FaultKind::Release;
  release.node = 0;
  plan.events.push_back(release);

  RecoveryMonitor monitor;
  const CampaignResult result = runEngineCampaign(
      runner, protocol, g, ids, states, plan, kChaosSeed, std::size_t{0},
      core::randomPointerState, &monitor, smmSafetyCheck());
  EXPECT_TRUE(result.finalFixpoint);
  EXPECT_TRUE(result.recoveredAll);
  const graph::Graph base = testGraph(n, 13);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(base, states).ok());
}

TEST(EngineCampaign, RestoresCallerGraphTopologyAfterCleanPlan) {
  // Crash/rejoin and partition/heal must leave the shared Graph equal to
  // the base topology once the plan has played out.
  const std::size_t n = 14;
  graph::Graph g = testGraph(n, 17);
  const graph::Graph base = g;
  const core::SmmProtocol protocol = core::smmPaper();
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  engine::SyncRunner<core::PointerState> runner(protocol, g, ids, 17);
  std::vector<core::PointerState> states = runner.initialStates();
  const CampaignResult result = runEngineCampaign(
      runner, protocol, g, ids, states, makeCampaign("rolling-partition", 1, n),
      kChaosSeed, std::size_t{0}, core::randomPointerState);
  EXPECT_TRUE(result.finalFixpoint);
  EXPECT_EQ(g.edges(), base.edges());
}

}  // namespace
}  // namespace selfstab::chaos
