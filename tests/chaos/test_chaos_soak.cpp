// Chaos soak (stress tier): randomized fault campaigns against the engine
// executors, gated on the paper's stabilization bounds per fault window —
// SMM re-stabilizes within 2n+1 rounds and SIS within n rounds of every
// injected fault, under both schedules.
//
// SELFSTAB_STRESS_ITERS scales the number of (template, seed) campaigns.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "analysis/verifiers.hpp"
#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "chaos/safety.hpp"
#include "core/matching_state.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "graph/id_order.hpp"

namespace selfstab::chaos {
namespace {

constexpr const char* kTemplates[] = {"churn", "crash-storm",
                                      "rolling-partition"};

std::size_t stressIters(std::size_t fallback) {
  if (const char* env = std::getenv("SELFSTAB_STRESS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

graph::Graph soakGraph(std::size_t n, std::uint64_t seed) {
  Rng rng(hashCombine(seed, 0x50A4ULL));
  return graph::connectedRandomGeometric(n, 0.35, rng);
}

template <typename State, typename Protocol, typename Sampler>
void soakProtocol(const Protocol& protocol, Sampler sampler,
                  const SafetyCheck<State>& safety,
                  std::size_t (*bound)(std::size_t),
                  bool expectNoViolations) {
  const std::size_t iters = stressIters(6);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::uint64_t seed = 1000 + iter * 7919;
    const std::size_t n = 10 + (iter * 5) % 21;  // 10..30 nodes
    const char* name = kTemplates[iter % 3];
    const FaultPlan plan = makeCampaign(name, seed, n);
    for (const engine::Schedule schedule :
         {engine::Schedule::Dense, engine::Schedule::Active}) {
      graph::Graph g = soakGraph(n, seed);
      const graph::IdAssignment ids = graph::IdAssignment::identity(n);
      engine::SyncRunner<State> runner(protocol, g, ids, seed, schedule);
      // Random start: faults land on a mid-convergence trajectory.
      Rng startRng(hashCombine(seed, 0x57A7ULL));
      std::vector<State> states;
      for (graph::Vertex v = 0; v < n; ++v) {
        states.push_back(sampler(v, g, startRng));
      }
      RecoveryMonitor monitor;
      const CampaignResult result = runEngineCampaign(
          runner, protocol, g, ids, states, plan,
          hashCombine(seed, 0xC4A05ULL), bound(n), sampler, &monitor,
          safety);
      const auto label = [&] {
        return std::string(name) + " seed=" + std::to_string(seed) +
               " n=" + std::to_string(n) +
               (schedule == engine::Schedule::Active ? " active" : " dense");
      };
      EXPECT_TRUE(result.recoveredAll) << label();
      EXPECT_TRUE(result.finalFixpoint) << label();
      for (const auto& r : monitor.records()) {
        EXPECT_LE(r.recoveryRounds, bound(n))
            << label() << " " << r.kind << "@" << r.at;
        EXPECT_LE(r.containmentRadius, n) << label() << " " << r.kind;
      }
      if (expectNoViolations) {
        EXPECT_EQ(result.safetyViolations, 0u) << label();
      }
    }
  }
}

TEST(ChaosSoak, SmmRecoversWithinPaperBoundEverywhere) {
  soakProtocol<core::PointerState>(
      core::smmPaper(), &core::randomPointerState, smmSafetyCheck(),
      [](std::size_t n) { return 2 * n + 1; }, /*expectNoViolations=*/true);
}

TEST(ChaosSoak, SisRecoversWithinPaperBoundEverywhere) {
  soakProtocol<core::BitState>(
      core::SisProtocol(), &core::randomBitState, sisSafetyCheck(),
      [](std::size_t n) { return n; }, /*expectNoViolations=*/false);
}

}  // namespace
}  // namespace selfstab::chaos
