#include "adhoc/mobility.hpp"

#include <gtest/gtest.h>

namespace selfstab::adhoc {
namespace {

using graph::Point;

TEST(StaticPlacement, NeverMoves) {
  StaticPlacement mobility({{0.1, 0.2}, {0.3, 0.4}});
  EXPECT_EQ(mobility.order(), 2u);
  for (const SimTime t : {SimTime{0}, 5 * kSecond, 500 * kSecond}) {
    EXPECT_EQ(mobility.position(0, t), (Point{0.1, 0.2}));
    EXPECT_EQ(mobility.position(1, t), (Point{0.3, 0.4}));
  }
}

TEST(RandomWaypoint, StaysInUnitSquare) {
  graph::Rng rng(1);
  RandomWaypoint mobility(graph::randomPoints(10, rng), {}, 42);
  for (SimTime t = 0; t <= 200 * kSecond; t += kSecond) {
    for (graph::Vertex v = 0; v < 10; ++v) {
      const Point p = mobility.position(v, t);
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
  }
}

TEST(RandomWaypoint, MovesContinuously) {
  graph::Rng rng(2);
  RandomWaypoint::Config config;
  config.speedMin = config.speedMax = 0.1;  // 0.1 units per second
  RandomWaypoint mobility(graph::randomPoints(4, rng), config, 7);
  for (graph::Vertex v = 0; v < 4; ++v) {
    Point prev = mobility.position(v, 0);
    for (SimTime t = kSecond / 10; t <= 20 * kSecond; t += kSecond / 10) {
      const Point cur = mobility.position(v, t);
      // At 0.1 units/s, a 0.1 s step moves at most ~0.01 units.
      EXPECT_LE(graph::distance(prev, cur), 0.0101);
      prev = cur;
    }
  }
}

TEST(RandomWaypoint, ActuallyTravels) {
  graph::Rng rng(3);
  RandomWaypoint::Config config;
  config.speedMin = 0.2;
  config.speedMax = 0.3;
  RandomWaypoint mobility(graph::randomPoints(4, rng), config, 9);
  std::size_t moved = 0;
  for (graph::Vertex v = 0; v < 4; ++v) {
    const Point start = mobility.position(v, 0);
    const Point later = mobility.position(v, 10 * kSecond);
    if (graph::distance(start, later) > 0.05) ++moved;
  }
  EXPECT_GE(moved, 3u);  // essentially everyone goes somewhere
}

TEST(RandomWaypoint, StopTimeFreezesMotion) {
  graph::Rng rng(4);
  RandomWaypoint::Config config;
  config.speedMin = 0.2;
  config.speedMax = 0.3;
  config.stopTime = 5 * kSecond;
  RandomWaypoint mobility(graph::randomPoints(4, rng), config, 11);
  for (graph::Vertex v = 0; v < 4; ++v) {
    const Point frozen = mobility.position(v, 5 * kSecond);
    EXPECT_EQ(mobility.position(v, 50 * kSecond), frozen);
    EXPECT_EQ(mobility.position(v, 500 * kSecond), frozen);
  }
}

TEST(RandomWaypoint, PauseLegsDwell) {
  graph::Rng rng(5);
  RandomWaypoint::Config config;
  config.speedMin = config.speedMax = 10.0;  // teleport-fast travel legs
  config.pause = 100 * kSecond;              // then long dwells
  RandomWaypoint mobility(graph::randomPoints(2, rng), config, 13);
  // After the first (fast) travel leg the node sits still for a long time;
  // sample two nearby instants well inside a pause window.
  const Point a = mobility.position(0, 50 * kSecond);
  const Point b = mobility.position(0, 51 * kSecond);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace selfstab::adhoc
