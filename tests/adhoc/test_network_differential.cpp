// Property-based differential harness for the beacon simulator's fast paths.
//
// The spatial grid index and the calendar event queue claim *bit-identical*
// trajectories against the reference full-scan / binary-heap simulator: the
// same RNG draw order, the same event tie-breaking, therefore the same
// per-node states, the same NetworkStats, and byte-identical event-log
// streams. This suite hammers that claim with randomized scenarios — both
// mobility models (including fast hosts, to stress the staleness slack),
// loss, MAC collisions, heterogeneous per-node radii, both schedules, ID
// permutations, and mid-run reboot faults — and fails with a replayable
// seed.
//
// Iteration count scales with the SELFSTAB_STRESS_ITERS env var.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adhoc/mobility.hpp"
#include "adhoc/network.hpp"
#include "core/leader_tree.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"
#include "graph/id_order.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab::adhoc {
namespace {

std::size_t stressIters(std::size_t fallback) {
  if (const char* env = std::getenv("SELFSTAB_STRESS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

// One randomized deployment: network config (sans index/queue modes, which
// the caller picks), starting points, and a recipe for the mobility model.
// Mobility objects are stateful, so each simulator instance gets a fresh
// one; position(v, t) purity guarantees identical trajectories.
struct Scenario {
  std::size_t nodes = 0;
  NetworkConfig config;
  std::vector<graph::Point> start;
  bool waypoint = false;
  RandomWaypoint::Config wp;
  std::uint64_t mobilitySeed = 0;
  graph::IdAssignment ids;

  [[nodiscard]] std::unique_ptr<Mobility> makeMobility() const {
    if (!waypoint) {
      return std::make_unique<StaticPlacement>(start);
    }
    return std::make_unique<RandomWaypoint>(start, wp, mobilitySeed);
  }
};

Scenario makeScenario(std::uint64_t seed) {
  graph::Rng rng(seed);
  Scenario s;
  s.nodes = 8 + rng.below(40);

  s.config.seed = seed;
  s.config.beaconInterval =
      static_cast<SimTime>(20 + rng.below(130)) * kMillisecond;
  s.config.jitterFraction = rng.real(0.0, 0.2);
  s.config.radius = 0.15 + 0.35 * rng.real();
  switch (rng.below(3)) {
    case 0: s.config.lossProbability = 0.0; break;
    case 1: s.config.lossProbability = 0.05; break;
    default: s.config.lossProbability = 0.3; break;
  }
  switch (rng.below(3)) {
    case 0: s.config.collisionWindow = 0; break;
    case 1: s.config.collisionWindow = s.config.beaconInterval / 20; break;
    default: s.config.collisionWindow = s.config.beaconInterval / 4; break;
  }
  s.config.schedule =
      rng.chance(0.5) ? engine::Schedule::Dense : engine::Schedule::Active;
  if (rng.chance(0.3)) {
    // Heterogeneous (asymmetric-link) radio ranges.
    s.config.perNodeRadius.reserve(s.nodes);
    for (std::size_t v = 0; v < s.nodes; ++v) {
      s.config.perNodeRadius.push_back(0.08 + 0.4 * rng.real());
    }
  }

  s.start = graph::randomPoints(s.nodes, rng);
  s.waypoint = rng.chance(0.5);
  if (s.waypoint) {
    // Speeds up to ~0.3 unit-widths/s: hosts cross several cells per beacon
    // interval, which is exactly what stresses the grid's staleness slack.
    s.wp.speedMin = 0.01 + 0.09 * rng.real();
    s.wp.speedMax = s.wp.speedMin + 0.2 * rng.real();
    s.wp.pause = rng.chance(0.3)
                     ? static_cast<SimTime>(rng.below(200)) * kMillisecond
                     : 0;
    s.wp.stopTime =
        rng.chance(0.3) ? 10 * s.config.beaconInterval : SimTime{-1};
    s.mobilitySeed = hashCombine(seed, 0x776179ULL);
  }

  switch (rng.below(3)) {
    case 0:
      s.ids = graph::IdAssignment::identity(s.nodes);
      break;
    case 1:
      s.ids = graph::IdAssignment::reversed(s.nodes);
      break;
    default:
      s.ids = graph::IdAssignment::randomPermutation(s.nodes, rng);
      break;
  }
  return s;
}

std::string label(std::string_view protocol, std::uint64_t seed,
                  const Scenario& s, SimTime t) {
  std::ostringstream ss;
  ss << protocol << " seed=" << seed << " n=" << s.nodes
     << " loss=" << s.config.lossProbability
     << " collision_us=" << s.config.collisionWindow
     << " waypoint=" << s.waypoint
     << " hetero=" << !s.config.perNodeRadius.empty() << " t_us=" << t
     << " (replay: SELFSTAB_STRESS_ITERS + this seed)";
  return ss.str();
}

// Lockstep run: Grid+Calendar vs Scan+Heap over the same scenario, states
// compared every few beacon intervals, one reboot fault injected at a slice
// boundary, event logs and NetworkStats compared byte- and field-exactly at
// the end.
template <typename State>
void checkScenario(const engine::Protocol<State>& protocol,
                   std::uint64_t seed) {
  const Scenario s = makeScenario(seed);

  NetworkConfig fastCfg = s.config;
  fastCfg.index = IndexMode::Grid;
  fastCfg.queue = QueueMode::Calendar;
  NetworkConfig refCfg = s.config;
  refCfg.index = IndexMode::Scan;
  refCfg.queue = QueueMode::Heap;

  const auto fastMobility = s.makeMobility();
  const auto refMobility = s.makeMobility();
  NetworkSimulator<State> fast(protocol, s.ids, *fastMobility, fastCfg);
  NetworkSimulator<State> ref(protocol, s.ids, *refMobility, refCfg);

  std::ostringstream fastEvents;
  std::ostringstream refEvents;
  telemetry::EventLog fastLog(fastEvents);
  telemetry::EventLog refLog(refEvents);
  fast.attachTelemetry(nullptr, &fastLog);
  ref.attachTelemetry(nullptr, &refLog);

  const SimTime interval = s.config.beaconInterval;
  const SimTime slice = 3 * interval;
  std::size_t sliceIndex = 0;
  for (SimTime t = slice; t <= 30 * interval; t += slice, ++sliceIndex) {
    fast.run(t);
    ref.run(t);
    ASSERT_EQ(fast.now(), ref.now()) << label(protocol.name(), seed, s, t);
    ASSERT_TRUE(fast.states() == ref.states())
        << label(protocol.name(), seed, s, t);
    if (sliceIndex == 3) {
      // Transient crash-restart of one node, injected into both runs.
      const auto victim = static_cast<graph::Vertex>(seed % s.nodes);
      fast.rebootNode(victim);
      ref.rebootNode(victim);
    }
  }
  ASSERT_TRUE(fast.stats() == ref.stats())
      << label(protocol.name(), seed, s, fast.now());
  ASSERT_EQ(fastEvents.str(), refEvents.str())
      << label(protocol.name(), seed, s, fast.now());
  // Candidate counts are mode-dependent by design, but collidesAt is
  // invoked once per (in-range, not-lost) receiver in both modes, so the
  // invocation count itself must agree.
  ASSERT_EQ(fast.indexStats().collisionChecks, ref.indexStats().collisionChecks)
      << label(protocol.name(), seed, s, fast.now());
}

TEST(NetworkDifferential, SmmGridMatchesScan) {
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t iters = stressIters(12);
  for (std::size_t i = 0; i < iters; ++i) {
    checkScenario<core::PointerState>(smm, 20'000 + i);
  }
}

TEST(NetworkDifferential, SisGridMatchesScan) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(12);
  for (std::size_t i = 0; i < iters; ++i) {
    checkScenario<core::BitState>(sis, 21'000 + i);
  }
}

TEST(NetworkDifferential, LeaderTreeGridMatchesScan) {
  const core::LeaderTreeProtocol leader(64);
  const std::size_t iters = stressIters(12);
  for (std::size_t i = 0; i < iters; ++i) {
    checkScenario<core::LeaderState>(leader, 22'000 + i);
  }
}

// All four (index, queue) combinations, not just the two extremes: the grid
// must be identical under either queue and vice versa.
TEST(NetworkDifferential, AllModeCombinationsAgree) {
  const core::SisProtocol sis;
  const std::size_t iters = stressIters(6);
  for (std::size_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = 23'000 + i;
    const Scenario s = makeScenario(seed);
    std::vector<std::vector<core::BitState>> finals;
    std::vector<NetworkStats> stats;
    for (const IndexMode index : {IndexMode::Grid, IndexMode::Scan}) {
      for (const QueueMode queue : {QueueMode::Calendar, QueueMode::Heap}) {
        NetworkConfig cfg = s.config;
        cfg.index = index;
        cfg.queue = queue;
        const auto mobility = s.makeMobility();
        NetworkSimulator<core::BitState> sim(sis, s.ids, *mobility, cfg);
        sim.run(20 * s.config.beaconInterval);
        finals.push_back(sim.states());
        stats.push_back(sim.stats());
      }
    }
    for (std::size_t k = 1; k < finals.size(); ++k) {
      ASSERT_TRUE(finals[k] == finals[0])
          << "combo " << k << " " << label(sis.name(), seed, s, 0);
      ASSERT_TRUE(stats[k] == stats[0])
          << "combo " << k << " " << label(sis.name(), seed, s, 0);
    }
  }
}

// The ground-truth topology query has its own grid fast path above 256
// nodes; pin it against the quadratic reference on a larger deployment.
TEST(NetworkDifferential, CurrentTopologyGridMatchesScanAtScale) {
  const core::SisProtocol sis;
  for (std::uint64_t seed = 0; seed < stressIters(3); ++seed) {
    graph::Rng rng(24'000 + seed);
    const std::size_t n = 300 + rng.below(200);
    NetworkConfig cfg;
    cfg.seed = seed + 1;
    cfg.radius = 0.1;
    if (rng.chance(0.5)) {
      for (std::size_t v = 0; v < n; ++v) {
        cfg.perNodeRadius.push_back(0.05 + 0.1 * rng.real());
      }
    }
    const auto ids = graph::IdAssignment::identity(n);
    auto points = graph::randomPoints(n, rng);
    StaticPlacement gridMobility(points);
    StaticPlacement scanMobility(std::move(points));

    NetworkConfig scanCfg = cfg;
    scanCfg.index = IndexMode::Scan;
    NetworkSimulator<core::BitState> grid(sis, ids, gridMobility, cfg);
    NetworkSimulator<core::BitState> scan(sis, ids, scanMobility, scanCfg);
    grid.run(2 * cfg.beaconInterval);
    scan.run(2 * cfg.beaconInterval);
    EXPECT_TRUE(grid.currentTopology() == scan.currentTopology())
        << "seed " << seed << " n=" << n;
  }
}

}  // namespace
}  // namespace selfstab::adhoc
