#include "adhoc/event_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace selfstab::adhoc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.schedule(30, 3);
  q.schedule(10, 1);
  q.schedule(20, 2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue<std::string> q;
  q.schedule(5, "first");
  q.schedule(5, "second");
  q.schedule(5, "third");
  EXPECT_EQ(q.pop(), "first");
  EXPECT_EQ(q.pop(), "second");
  EXPECT_EQ(q.pop(), "third");
}

TEST(EventQueue, NowAdvancesWithPops) {
  EventQueue<int> q;
  EXPECT_EQ(q.now(), 0);
  q.schedule(7, 1);
  q.schedule(15, 2);
  EXPECT_EQ(q.nextTime(), 7);
  q.pop();
  EXPECT_EQ(q.now(), 7);
  q.pop();
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueue, SchedulingWhileDrainingInterleaves) {
  EventQueue<int> q;
  q.schedule(10, 1);
  EXPECT_EQ(q.pop(), 1);
  q.schedule(12, 2);  // scheduled "from within" event 1
  q.schedule(11, 3);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 2);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  q.schedule(1, 0);
  q.schedule(2, 0);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace selfstab::adhoc
