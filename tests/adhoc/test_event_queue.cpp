#include "adhoc/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/rng.hpp"

namespace selfstab::adhoc {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.schedule(30, 3);
  q.schedule(10, 1);
  q.schedule(20, 2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue<std::string> q;
  q.schedule(5, "first");
  q.schedule(5, "second");
  q.schedule(5, "third");
  EXPECT_EQ(q.pop(), "first");
  EXPECT_EQ(q.pop(), "second");
  EXPECT_EQ(q.pop(), "third");
}

TEST(EventQueue, NowAdvancesWithPops) {
  EventQueue<int> q;
  EXPECT_EQ(q.now(), 0);
  q.schedule(7, 1);
  q.schedule(15, 2);
  EXPECT_EQ(q.nextTime(), 7);
  q.pop();
  EXPECT_EQ(q.now(), 7);
  q.pop();
  EXPECT_EQ(q.now(), 15);
}

TEST(EventQueue, SchedulingWhileDrainingInterleaves) {
  EventQueue<int> q;
  q.schedule(10, 1);
  EXPECT_EQ(q.pop(), 1);
  q.schedule(12, 2);  // scheduled "from within" event 1
  q.schedule(11, 3);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 2);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  q.schedule(1, 0);
  q.schedule(2, 0);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(CalendarQueue, PopsInTimeOrderWithTies) {
  CalendarQueue<std::string> q(/*bucketWidth=*/10);
  q.schedule(30, "late");
  q.schedule(5, "first");
  q.schedule(5, "second");  // same timestamp: insertion order wins
  q.schedule(12, "mid");
  EXPECT_EQ(q.nextTime(), 5);
  EXPECT_EQ(q.pop(), "first");
  EXPECT_EQ(q.pop(), "second");
  EXPECT_EQ(q.pop(), "mid");
  EXPECT_EQ(q.pop(), "late");
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, WidthZeroDegeneratesToHeap) {
  CalendarQueue<int> q(/*bucketWidth=*/0);
  q.schedule(30, 3);
  q.schedule(10, 1);
  q.schedule(20, 2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(CalendarQueue, FarFutureEventsOverflowAndReturn) {
  // Tiny wheel: 4 buckets of width 10 = one revolution of 40 time units,
  // so the far event must round-trip through the overflow heap.
  CalendarQueue<int> q(/*bucketWidth=*/10, /*bucketCount=*/4);
  q.schedule(1'000'000, 9);
  q.schedule(3, 1);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.nextTime(), 1'000'000);
  EXPECT_EQ(q.pop(), 9);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ScheduleBehindSettledCursorStaysOrdered) {
  CalendarQueue<int> q(/*bucketWidth=*/10, /*bucketCount=*/4);
  q.schedule(10, 1);
  EXPECT_EQ(q.pop(), 1);       // now = 10
  q.schedule(1'000'000, 9);
  EXPECT_EQ(q.nextTime(), 1'000'000);  // cursor jumps to the far bucket
  q.schedule(11, 2);           // legal (>= now) but behind the cursor
  q.schedule(500, 3);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 9);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MoveOnlyPayloadsNeverCopy) {
  CalendarQueue<std::unique_ptr<int>> q(/*bucketWidth=*/8, /*bucketCount=*/4);
  q.schedule(100, std::make_unique<int>(2));
  q.schedule(4, std::make_unique<int>(1));
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);

  EventQueue<std::unique_ptr<int>> heap;
  heap.schedule(9, std::make_unique<int>(4));
  heap.schedule(2, std::make_unique<int>(3));
  EXPECT_EQ(*heap.pop(), 3);
  EXPECT_EQ(*heap.pop(), 4);
}

TEST(CalendarQueue, MatchesHeapOnRandomWorkload) {
  // Differential: random interleaving of schedules and pops, with ties,
  // near-periodic clustering, and occasional far-future bursts. Both queues
  // must produce the identical event sequence.
  Rng rng(2026'08'07);
  for (int round = 0; round < 20; ++round) {
    EventQueue<int> reference;
    // Deliberately small wheel so overflow migration and cursor rewinds
    // happen constantly.
    CalendarQueue<int> calendar(
        /*bucketWidth=*/static_cast<SimTime>(1 + rng.below(7)),
        /*bucketCount=*/1 + static_cast<std::size_t>(rng.below(8)));
    int payload = 0;
    for (int step = 0; step < 400; ++step) {
      const bool push = reference.empty() || rng.chance(0.55);
      if (push) {
        SimTime at = reference.now();
        if (rng.chance(0.1)) {
          at += static_cast<SimTime>(rng.below(10'000));  // far future
        } else {
          at += static_cast<SimTime>(rng.below(30));  // near-periodic
        }
        reference.schedule(at, payload);
        calendar.schedule(at, payload);
        ++payload;
      } else {
        ASSERT_EQ(calendar.nextTime(), reference.nextTime())
            << "round " << round << " step " << step;
        ASSERT_EQ(calendar.pop(), reference.pop())
            << "round " << round << " step " << step;
        ASSERT_EQ(calendar.now(), reference.now());
      }
      ASSERT_EQ(calendar.size(), reference.size());
    }
    while (!reference.empty()) {
      ASSERT_EQ(calendar.pop(), reference.pop()) << "round " << round;
    }
    EXPECT_TRUE(calendar.empty());
  }
}

}  // namespace
}  // namespace selfstab::adhoc
