// The beacon-model simulator: protocols running over actual periodic
// messages, neighbor discovery, loss, and mobility.
#include "adhoc/network.hpp"

#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab::adhoc {
namespace {

using analysis::checkMatchingFixpoint;
using analysis::isMaximalIndependentSet;
using analysis::membersOf;
using core::BitState;
using core::PointerState;
using graph::IdAssignment;

std::vector<graph::Point> connectedPoints(std::size_t n, double radius,
                                          std::uint64_t seed) {
  graph::Rng rng(seed);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(n, radius, rng, &pts);
  return pts;
}

TEST(Network, SmmStabilizesOverBeacons) {
  const std::size_t n = 20;
  NetworkConfig config;
  config.seed = 101;
  StaticPlacement mobility(connectedPoints(n, config.radius, 1));
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        1000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
  EXPECT_GT(result.stats.beaconsSent, 0u);
  EXPECT_GT(result.stats.beaconsDelivered, 0u);
  EXPECT_EQ(result.stats.beaconsLost, 0u);
}

TEST(Network, SisStabilizesOverBeacons) {
  const std::size_t n = 25;
  NetworkConfig config;
  config.seed = 103;
  StaticPlacement mobility(connectedPoints(n, config.radius, 2));
  const auto ids = IdAssignment::identity(n);
  const core::SisProtocol sis;
  NetworkSimulator<BitState> sim(sis, ids, mobility, config);

  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        1000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(
      isMaximalIndependentSet(sim.currentTopology(), membersOf(sim.states())));
}

TEST(Network, StabilizesDespiteBeaconLoss) {
  const std::size_t n = 15;
  NetworkConfig config;
  config.seed = 107;
  config.lossProbability = 0.2;
  StaticPlacement mobility(connectedPoints(n, config.radius, 3));
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  const auto result = sim.runUntilQuiet(8 * config.beaconInterval,
                                        5000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_GT(result.stats.beaconsLost, 0u);
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
}

TEST(Network, RecoversAfterStateCorruption) {
  const std::size_t n = 16;
  NetworkConfig config;
  config.seed = 109;
  StaticPlacement mobility(connectedPoints(n, config.radius, 4));
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  ASSERT_TRUE(sim.runUntilQuiet(5 * config.beaconInterval,
                                1000 * config.beaconInterval)
                  .quiet);

  // Transient fault: scramble every node's pointer arbitrarily.
  graph::Rng rng(55);
  auto corrupted = sim.states();
  const auto topo = sim.currentTopology();
  for (graph::Vertex v = 0; v < n; ++v) {
    corrupted[v] = core::wildPointerState(v, topo, rng);
  }
  sim.setStates(std::move(corrupted));

  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        5000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
}

TEST(Network, RestabilizesAfterMobilityStops) {
  const std::size_t n = 15;
  NetworkConfig config;
  config.seed = 113;
  config.radius = 0.45;
  RandomWaypoint::Config wpConfig;
  wpConfig.speedMin = 0.02;
  wpConfig.speedMax = 0.05;
  wpConfig.stopTime = 60 * kSecond;
  graph::Rng rng(5);
  RandomWaypoint mobility(graph::randomPoints(n, rng), wpConfig, 77);
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  // Let it run through the mobile phase, then wait for quiet afterwards.
  sim.run(wpConfig.stopTime);
  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        wpConfig.stopTime + 500 * kSecond);
  ASSERT_TRUE(result.quiet);
  // On the now-frozen topology the matching must be a valid maximal
  // matching of each connected component (the graph may be disconnected;
  // matching maximality is a per-edge condition, so one check suffices).
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
}

TEST(Network, CollisionsOccurAndProtocolsStillConverge) {
  const std::size_t n = 15;
  NetworkConfig config;
  config.seed = 307;
  // A wide collision window on a dense deployment guarantees plenty of MAC
  // collisions; jittered beacon phases still let every link through often
  // enough for convergence.
  config.collisionWindow = config.beaconInterval / 20;
  config.radius = 0.5;
  StaticPlacement mobility(connectedPoints(n, config.radius, 12));
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  const auto result = sim.runUntilQuiet(8 * config.beaconInterval,
                                        5000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_GT(result.stats.beaconsCollided, 0u);
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
}

TEST(Network, ZeroCollisionWindowDisablesTheModel) {
  NetworkConfig config;
  config.seed = 311;
  config.collisionWindow = 0;
  StaticPlacement mobility(connectedPoints(10, config.radius, 13));
  const auto ids = IdAssignment::identity(10);
  const core::SisProtocol sis;
  NetworkSimulator<BitState> sim(sis, ids, mobility, config);
  sim.run(100 * config.beaconInterval);
  EXPECT_EQ(sim.stats().beaconsCollided, 0u);
}

TEST(Network, RecoversAfterNodeReboots) {
  const std::size_t n = 14;
  NetworkConfig config;
  config.seed = 211;
  StaticPlacement mobility(connectedPoints(n, config.radius, 8));
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  ASSERT_TRUE(sim.runUntilQuiet(5 * config.beaconInterval,
                                1000 * config.beaconInterval)
                  .quiet);

  // Crash-restart a third of the hosts: state wiped, neighbor caches lost.
  for (graph::Vertex v = 0; v < n; v += 3) sim.rebootNode(v);

  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        5000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(checkMatchingFixpoint(sim.currentTopology(), sim.states()).ok());
}

TEST(Network, RebootedNodeRelearnsNeighbors) {
  // After a reboot the node knows nobody; one beacon interval later it has
  // heard its neighbors again and can participate (it may transiently
  // propose based on an empty cache, which self-stabilization absorbs).
  NetworkConfig config;
  config.seed = 223;
  StaticPlacement mobility(connectedPoints(6, config.radius, 9));
  const auto ids = IdAssignment::identity(6);
  const core::SisProtocol sis;
  NetworkSimulator<BitState> sim(sis, ids, mobility, config);
  ASSERT_TRUE(sim.runUntilQuiet(5 * config.beaconInterval,
                                1000 * config.beaconInterval)
                  .quiet);
  sim.rebootNode(0);
  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        2000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(
      isMaximalIndependentSet(sim.currentTopology(), membersOf(sim.states())));
}

TEST(Network, AsymmetricLinksCanWedgeSmm) {
  // Assumption ablation: the paper requires bidirectional links. With
  // heterogeneous transmit powers, A can hear B while B never hears A; A
  // then proposes to the (apparently aloof) B and waits forever — a quiet
  // but non-clean terminal state. This documents what the bidirectionality
  // assumption buys.
  NetworkConfig config;
  config.seed = 401;
  config.perNodeRadius = {0.2, 0.4};  // dist 0.3: only B's beacons carry
  StaticPlacement mobility({{0.0, 0.0}, {0.3, 0.0}});
  const auto ids = IdAssignment::identity(2);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);

  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        200 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  const auto states = sim.states();
  EXPECT_EQ(states[0].ptr, 1u);      // A wedged: points at B forever
  EXPECT_TRUE(states[1].isNull());   // B never heard the proposal
  // On the bidirectional core (which is empty here) this is not a clean
  // fixpoint shape — the pointer dangles.
  EXPECT_FALSE(
      analysis::checkMatchingFixpoint(sim.currentTopology(), states).ok());
}

TEST(Network, SymmetricRangesKeepTheGuarantees) {
  // Control for the test above: same geometry, both radios strong enough,
  // SMM matches the pair.
  NetworkConfig config;
  config.seed = 403;
  config.perNodeRadius = {0.4, 0.4};
  StaticPlacement mobility({{0.0, 0.0}, {0.3, 0.0}});
  const auto ids = IdAssignment::identity(2);
  const core::SmmProtocol smm = core::smmPaper();
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
  const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                        200 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);
  EXPECT_TRUE(
      analysis::checkMatchingFixpoint(sim.currentTopology(), sim.states())
          .ok());
  EXPECT_EQ(sim.states()[0].ptr, 1u);
  EXPECT_EQ(sim.states()[1].ptr, 0u);
}

TEST(Network, RoundsElapsedTracksBeaconIntervals) {
  NetworkConfig config;
  config.seed = 127;
  StaticPlacement mobility(connectedPoints(5, config.radius, 6));
  const auto ids = IdAssignment::identity(5);
  const core::SisProtocol sis;
  NetworkSimulator<BitState> sim(sis, ids, mobility, config);
  sim.run(10 * config.beaconInterval);
  EXPECT_NEAR(sim.roundsElapsed(), 10.0, 0.5);
}

TEST(Network, RebootChurnBitIdenticalAcrossIndexAndQueueModes) {
  // Regression for the churn path: reboots interleaved with chaos
  // crash/rejoin must stay bit-identical between the grid spatial index and
  // the O(n^2) reference scan (and between the two event queues). A reboot
  // touches the neighbor cache and dirty bits; a crash orphans the node's
  // beacon-timer chain via the epoch counter; a rejoin re-places the node
  // in the grid. Any RNG-stream or index desynchronization in those paths
  // shows up here as diverging states or stats.
  const std::size_t n = 16;
  const auto pts = connectedPoints(n, 0.35, 11);
  const auto ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();

  NetworkConfig gridConfig;
  gridConfig.seed = 503;
  gridConfig.index = IndexMode::Grid;
  gridConfig.queue = QueueMode::Calendar;
  NetworkConfig scanConfig = gridConfig;
  scanConfig.index = IndexMode::Scan;
  scanConfig.queue = QueueMode::Heap;

  StaticPlacement mobilityA(pts);
  StaticPlacement mobilityB(pts);
  NetworkSimulator<PointerState> grid(smm, ids, mobilityA, gridConfig);
  NetworkSimulator<PointerState> scan(smm, ids, mobilityB, scanConfig);
  grid.chaosAttach(1.0);
  scan.chaosAttach(1.0);

  const SimTime interval = gridConfig.beaconInterval;
  const auto both = [&](auto&& mutate) {
    mutate(grid);
    mutate(scan);
  };
  SimTime t = 0;
  const auto advance = [&](SimTime dt) {
    t += dt;
    grid.run(t);
    scan.run(t);
    ASSERT_EQ(grid.states(), scan.states()) << "t=" << t;
    ASSERT_EQ(grid.stats(), scan.stats()) << "t=" << t;
  };

  advance(20 * interval);
  both([](auto& sim) { sim.rebootNode(3); });
  advance(15 * interval);
  both([](auto& sim) { sim.chaosCrash(7); });
  advance(15 * interval);
  // Reboot a neighbor while 7 is down, then bring 7 back mid-churn with a
  // fixed restart phase so both sims replay the same timeline.
  both([](auto& sim) { sim.rebootNode(0); });
  advance(10 * interval);
  both([&](auto& sim) { sim.chaosRejoin(7, interval / 3); });
  both([](auto& sim) { sim.rebootNode(7); });
  advance(40 * interval);

  EXPECT_FALSE(grid.chaosCrashed(7));
  // Long clean tail: both sims must re-stabilize to the same matching.
  advance(300 * interval);
  EXPECT_GE(grid.now() - grid.lastMoveTime(), 5 * interval);
  EXPECT_TRUE(
      checkMatchingFixpoint(grid.currentTopology(), grid.states()).ok());
}

TEST(Network, DeterministicForFixedSeed) {
  NetworkConfig config;
  config.seed = 131;
  const auto ids = IdAssignment::identity(10);
  const core::SmmProtocol smm = core::smmPaper();

  const auto pts = connectedPoints(10, config.radius, 7);
  StaticPlacement mobilityA(pts);
  StaticPlacement mobilityB(pts);
  NetworkSimulator<PointerState> simA(smm, ids, mobilityA, config);
  NetworkSimulator<PointerState> simB(smm, ids, mobilityB, config);
  simA.run(50 * config.beaconInterval);
  simB.run(50 * config.beaconInterval);
  EXPECT_EQ(simA.states(), simB.states());
  EXPECT_EQ(simA.stats().beaconsSent, simB.stats().beaconsSent);
  EXPECT_EQ(simA.stats().moves, simB.stats().moves);
}

}  // namespace
}  // namespace selfstab::adhoc
