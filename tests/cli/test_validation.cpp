// Input validation: NetworkConfig::validate and the CLI flags that feed it.
// Bad physical parameters must fail fast with a clear message, not produce
// a silently degenerate simulation.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "adhoc/network.hpp"
#include "cli/options.hpp"
#include "cli/sim_options.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

TEST(NetworkConfigValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(adhoc::NetworkConfig{}.validate());
}

TEST(NetworkConfigValidate, RejectsOutOfRangeParameters) {
  const auto rejects = [](auto mutate) {
    adhoc::NetworkConfig config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  rejects([](auto& c) { c.beaconInterval = 0; });
  rejects([](auto& c) { c.beaconInterval = -5; });
  rejects([](auto& c) { c.lossProbability = -0.1; });
  rejects([](auto& c) { c.lossProbability = 1.5; });
  rejects([](auto& c) {
    c.lossProbability = std::numeric_limits<double>::quiet_NaN();
  });
  rejects([](auto& c) { c.collisionWindow = -1; });
  rejects([](auto& c) { c.timeoutFactor = 0.0; });
  rejects([](auto& c) { c.timeoutFactor = -2.0; });
  rejects([](auto& c) { c.jitterFraction = -0.01; });
  rejects([](auto& c) { c.jitterFraction = 1.0; });
  rejects([](auto& c) { c.propagationDelay = -1; });
  rejects([](auto& c) { c.radius = 0.0; });
  rejects([](auto& c) { c.perNodeRadius = {0.3, 0.0, 0.2}; });
}

TEST(NetworkConfigValidate, MessagesNameTheField) {
  adhoc::NetworkConfig config;
  config.lossProbability = 2.0;
  try {
    config.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lossProbability"),
              std::string::npos)
        << e.what();
  }
}

TEST(NetworkConfigValidate, SimulatorConstructorEnforcesIt) {
  graph::Rng rng(7);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(5, 0.4, rng, &pts);
  adhoc::StaticPlacement mobility(std::move(pts));
  const auto ids = graph::IdAssignment::identity(5);
  const core::SmmProtocol smm = core::smmPaper();

  adhoc::NetworkConfig bad;
  bad.beaconInterval = 0;
  EXPECT_THROW(adhoc::NetworkSimulator<core::PointerState>(smm, ids, mobility,
                                                           bad),
               std::invalid_argument);

  // perNodeRadius must match the node count — checked at construction,
  // where the node count is first known.
  adhoc::NetworkConfig mismatched;
  mismatched.perNodeRadius = {0.3, 0.3};
  EXPECT_THROW(adhoc::NetworkSimulator<core::PointerState>(smm, ids, mobility,
                                                           mismatched),
               std::invalid_argument);
}

TEST(SimOptionsValidation, RejectsDegeneratePhysics) {
  using cli::CliError;
  using cli::parseSimOptions;
  EXPECT_THROW((void)parseSimOptions({"--loss", "1.5"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--loss", "-0.2"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--loss", "nan"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--beacon-ms", "0"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--collision-us", "-5"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--timeout-factor", "0"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--radius", "0"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--nodes", "0"}), CliError);
}

TEST(ChaosFlag, ParsedOnBothClis) {
  EXPECT_EQ(cli::parseSimOptions({"--chaos", "churn:7"}).chaosSpec,
            "churn:7");
  EXPECT_EQ(cli::parseOptions({"--chaos", "plan.json"}).chaosSpec,
            "plan.json");
  EXPECT_TRUE(cli::parseSimOptions({}).chaosSpec.empty());
  EXPECT_THROW((void)cli::parseSimOptions({"--chaos"}), cli::CliError);
  EXPECT_THROW((void)cli::parseOptions({"--chaos", ""}), cli::CliError);
}

}  // namespace
}  // namespace selfstab
