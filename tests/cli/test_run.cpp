#include "cli/run.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/io.hpp"

namespace selfstab::cli {
namespace {

Options makeOptions(ProtocolKind protocol, const std::string& graphSpec) {
  Options o;
  o.protocol = protocol;
  o.graph = parseGraphSpec(graphSpec);
  return o;
}

TEST(BuildGraph, GeneratorsHonorSpec) {
  EXPECT_EQ(buildGraph(parseGraphSpec("path:10"), 1).size(), 9u);
  EXPECT_EQ(buildGraph(parseGraphSpec("cycle:10"), 1).size(), 10u);
  EXPECT_EQ(buildGraph(parseGraphSpec("complete:6"), 1).size(), 15u);
  EXPECT_EQ(buildGraph(parseGraphSpec("grid:3x4"), 1).order(), 12u);
  EXPECT_EQ(buildGraph(parseGraphSpec("tree:20"), 1).size(), 19u);
  EXPECT_TRUE(
      graph::isConnected(buildGraph(parseGraphSpec("gnp:30:0.05"), 2)));
  EXPECT_TRUE(
      graph::isConnected(buildGraph(parseGraphSpec("udg:30:0.3"), 2)));
}

TEST(BuildGraph, DeterministicForSeed) {
  const auto a = buildGraph(parseGraphSpec("gnp:30:0.2"), 7);
  const auto b = buildGraph(parseGraphSpec("gnp:30:0.2"), 7);
  const auto c = buildGraph(parseGraphSpec("gnp:30:0.2"), 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(BuildGraph, ReadsEdgeListFiles) {
  const std::string path = ::testing::TempDir() + "/cli_topo.txt";
  {
    std::ofstream out(path);
    out << "3 2\n0 1\n1 2\n";
  }
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::File;
  spec.path = path;
  const auto g = buildGraph(spec, 1);
  EXPECT_EQ(g.order(), 3u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  std::remove(path.c_str());
}

TEST(BuildGraph, MissingFileThrows) {
  GraphSpec spec;
  spec.kind = GraphSpec::Kind::File;
  spec.path = "/nonexistent/nope.txt";
  EXPECT_THROW(buildGraph(spec, 1), CliError);
}

TEST(BuildIds, AllKindsValid) {
  EXPECT_TRUE(buildIds(IdOrderKind::Identity, 10, 1).isValid(10));
  EXPECT_TRUE(buildIds(IdOrderKind::Reversed, 10, 1).isValid(10));
  EXPECT_TRUE(buildIds(IdOrderKind::Random, 10, 1).isValid(10));
}

TEST(Execute, SmmOnUdg) {
  std::ostringstream out;
  const Report r = execute(makeOptions(ProtocolKind::Smm, "udg:25:0.3"), out);
  EXPECT_TRUE(r.stabilized);
  EXPECT_TRUE(r.predicateOk);
  EXPECT_EQ(r.n, 25u);
  EXPECT_NE(r.summary.find("matching"), std::string::npos);
}

TEST(Execute, EveryStabilizingProtocolVerifies) {
  for (const ProtocolKind kind :
       {ProtocolKind::Smm, ProtocolKind::HsuHuangSync, ProtocolKind::Sis,
        ProtocolKind::Coloring, ProtocolKind::DominatingSet,
        ProtocolKind::BfsTree, ProtocolKind::LeaderTree}) {
    std::ostringstream out;
    Options options = makeOptions(kind, "gnp:20:0.15");
    options.start = StartKind::Random;
    options.seed = 11;
    const Report r = execute(options, out);
    EXPECT_TRUE(r.stabilized) << toString(kind);
    EXPECT_TRUE(r.predicateOk) << toString(kind);
  }
}

TEST(Execute, CounterexampleCertifiesLivelock) {
  std::ostringstream out;
  const Report r =
      execute(makeOptions(ProtocolKind::SmmArbitrary, "cycle:4"), out);
  EXPECT_FALSE(r.stabilized);
  EXPECT_TRUE(r.livelockCertified);
  EXPECT_FALSE(r.predicateOk);
}

TEST(Execute, TraceEmitsRoundLines) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "path:12");
  options.trace = true;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.stabilized);
  EXPECT_NE(out.str().find("round 0:"), std::string::npos);
}

TEST(Execute, RespectsMaxRounds) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::SmmArbitrary, "cycle:4");
  options.maxRounds = 3;
  const Report r = execute(options, out);
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.rounds, 3u);
}

TEST(Execute, WritesDotFile) {
  const std::string path = ::testing::TempDir() + "/cli_out.dot";
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Smm, "path:6");
  options.dotPath = path;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.predicateOk);
  std::ifstream dot(path);
  ASSERT_TRUE(dot.good());
  std::stringstream content;
  content << dot.rdbuf();
  EXPECT_NE(content.str().find("graph selfstab {"), std::string::npos);
  EXPECT_NE(content.str().find("penwidth=3"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Execute, BfsTreeRootsAtSmallestId) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::BfsTree, "path:8");
  options.idOrder = IdOrderKind::Reversed;  // smallest ID sits at vertex 7
  const Report r = execute(options, out);
  EXPECT_TRUE(r.predicateOk);
  EXPECT_NE(r.summary.find("rooted at 7"), std::string::npos);
}

TEST(Execute, WritesCsvTrace) {
  const std::string path = ::testing::TempDir() + "/cli_trace.csv";
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Smm, "path:10");
  options.csvPath = path;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.predicateOk);
  std::ifstream csv(path);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "round,moves,size");
  std::size_t lines = 0;
  std::string line;
  while (std::getline(csv, line)) ++lines;
  // One row per executed round plus the round-0 snapshot and the final
  // verification round.
  EXPECT_EQ(lines, r.rounds + 2);
  std::remove(path.c_str());
}

TEST(Execute, CsvToUnwritablePathThrows) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "path:5");
  options.csvPath = "/nonexistent/dir/trace.csv";
  EXPECT_THROW(execute(options, out), CliError);
}

TEST(Execute, SaveGraphRoundTripsThroughFileSpec) {
  const std::string path = ::testing::TempDir() + "/cli_saved.txt";
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "gnp:15:0.2");
  options.seed = 5;
  options.saveGraphPath = path;
  const Report first = execute(options, out);
  EXPECT_TRUE(first.predicateOk);

  // Re-run on the saved topology via file: the graph is identical, and SIS
  // has a unique fixpoint, so the report matches exactly.
  Options replay = makeOptions(ProtocolKind::Sis, "file:" + path);
  replay.seed = 5;
  const Report second = execute(replay, out);
  EXPECT_EQ(second.n, first.n);
  EXPECT_EQ(second.m, first.m);
  EXPECT_EQ(second.summary, first.summary);
  std::remove(path.c_str());
}

TEST(Execute, MetricsFileHoldsJsonAndPrometheus) {
  const std::string path = ::testing::TempDir() + "/cli_metrics.txt";
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Smm, "gnp:20:0.15");
  options.start = StartKind::Random;
  options.seed = 11;
  options.metricsPath = path;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.stabilized);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  // The executor's counters agree with the report: moves exactly; rounds
  // plus the final zero-move verification round.
  EXPECT_NE(text.find("\"moves_total\":" + std::to_string(r.moves)),
            std::string::npos);
  EXPECT_NE(text.find("\"rounds_total\":" + std::to_string(r.rounds + 1)),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE round_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("round_snapshot_duration_seconds_count"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Execute, MetricsDashWritesToReportStream) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "path:12");
  options.metricsPath = "-";
  const Report r = execute(options, out);
  EXPECT_TRUE(r.stabilized);
  EXPECT_NE(out.str().find("\"counters\":{"), std::string::npos);
  EXPECT_NE(out.str().find("rounds_total"), std::string::npos);
}

TEST(Execute, EventsFileIsOneRecordPerRound) {
  const std::string path = ::testing::TempDir() + "/cli_events.jsonl";
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "cycle:15");
  options.eventsPath = path;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.stabilized);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("{\"type\":\"round\",\"executor\":\"sync\",", 0), 0u)
        << line;
    ++lines;
  }
  // Counted rounds plus the final verification round.
  EXPECT_EQ(lines, r.rounds + 1);
  std::remove(path.c_str());
}

TEST(Execute, MetricsToUnwritablePathThrows) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "path:5");
  options.metricsPath = "/nonexistent/dir/metrics.txt";
  EXPECT_THROW(execute(options, out), CliError);
}

TEST(Execute, FlatKernelMatchesGenericExactly) {
  // The flat kernels promise bit-identical trajectories, so the whole report
  // (rounds, moves, summary) must agree between --kernel generic and flat,
  // for both protocols and both schedules.
  for (const ProtocolKind kind : {ProtocolKind::Smm, ProtocolKind::Sis}) {
    for (const engine::Schedule schedule :
         {engine::Schedule::Dense, engine::Schedule::Active}) {
      std::ostringstream out;
      Options generic = makeOptions(kind, "gnp:30:0.12");
      generic.start = StartKind::Random;
      generic.seed = 23;
      generic.schedule = schedule;
      generic.kernel = engine::KernelMode::Generic;
      Options flat = generic;
      flat.kernel = engine::KernelMode::Flat;

      const Report a = execute(generic, out);
      const Report b = execute(flat, out);
      EXPECT_EQ(a.kernel, "generic") << toString(kind);
      EXPECT_EQ(b.kernel, "flat") << toString(kind);
      EXPECT_EQ(a.rounds, b.rounds) << toString(kind);
      EXPECT_EQ(a.moves, b.moves) << toString(kind);
      EXPECT_EQ(a.stabilized, b.stabilized) << toString(kind);
      EXPECT_EQ(a.summary, b.summary) << toString(kind);
    }
  }
}

TEST(Execute, AutoKernelSelectsFlatWhereAvailable) {
  std::ostringstream out;
  EXPECT_EQ(execute(makeOptions(ProtocolKind::Smm, "path:10"), out).kernel,
            "flat");
  EXPECT_EQ(execute(makeOptions(ProtocolKind::Sis, "path:10"), out).kernel,
            "flat");
  // Protocols without a flat kernel silently fall back under auto.
  EXPECT_EQ(execute(makeOptions(ProtocolKind::Coloring, "path:10"), out).kernel,
            "generic");
}

TEST(Execute, ForcedFlatKernelThrowsWhereUnavailable) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Coloring, "path:10");
  options.kernel = engine::KernelMode::Flat;
  EXPECT_THROW(execute(options, out), CliError);
}

TEST(Execute, JsonReportCarriesKernelAndRate) {
  std::ostringstream out;
  Options options = makeOptions(ProtocolKind::Sis, "gnp:25:0.15");
  options.json = true;
  const Report r = execute(options, out);
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.kernel, "flat");
  EXPECT_GE(r.evaluationsPerSecond, 0.0);

  std::ostringstream json;
  printReportJson(r, json);
  const std::string text = json.str();
  EXPECT_NE(text.find("\"kernel\":\"flat\""), std::string::npos);
  EXPECT_NE(text.find("\"schedule\":"), std::string::npos);
  EXPECT_NE(text.find("\"evaluationsPerSecond\":"), std::string::npos);
  EXPECT_NE(text.find("\"rounds\":" + std::to_string(r.rounds)),
            std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(PrintReport, RendersAllFields) {
  Report r;
  r.protocol = "smm";
  r.n = 5;
  r.m = 4;
  r.rounds = 3;
  r.moves = 7;
  r.stabilized = true;
  r.predicateOk = true;
  r.summary = "matching: 2 pair(s)";
  std::ostringstream out;
  printReport(r, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("protocol    : smm"), std::string::npos);
  EXPECT_NE(text.find("5 nodes, 4 edges"), std::string::npos);
  EXPECT_NE(text.find("stabilized  : yes"), std::string::npos);
  EXPECT_NE(text.find("matching: 2 pair(s)"), std::string::npos);
}

}  // namespace
}  // namespace selfstab::cli
