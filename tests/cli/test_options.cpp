#include "cli/options.hpp"

#include <gtest/gtest.h>

namespace selfstab::cli {
namespace {

TEST(ParseGraphSpec, SimpleFamilies) {
  const GraphSpec p = parseGraphSpec("path:10");
  EXPECT_EQ(p.kind, GraphSpec::Kind::Path);
  EXPECT_EQ(p.n, 10u);

  const GraphSpec c = parseGraphSpec("cycle:7");
  EXPECT_EQ(c.kind, GraphSpec::Kind::Cycle);
  EXPECT_EQ(c.n, 7u);

  EXPECT_EQ(parseGraphSpec("star:5").kind, GraphSpec::Kind::Star);
  EXPECT_EQ(parseGraphSpec("complete:5").kind, GraphSpec::Kind::Complete);
  EXPECT_EQ(parseGraphSpec("tree:5").kind, GraphSpec::Kind::Tree);
}

TEST(ParseGraphSpec, Grid) {
  const GraphSpec g = parseGraphSpec("grid:3x4");
  EXPECT_EQ(g.kind, GraphSpec::Kind::Grid);
  EXPECT_EQ(g.n, 3u);
  EXPECT_EQ(g.cols, 4u);
}

TEST(ParseGraphSpec, RandomFamilies) {
  const GraphSpec gnp = parseGraphSpec("gnp:64:0.25");
  EXPECT_EQ(gnp.kind, GraphSpec::Kind::Gnp);
  EXPECT_EQ(gnp.n, 64u);
  EXPECT_DOUBLE_EQ(gnp.param, 0.25);

  const GraphSpec udg = parseGraphSpec("udg:50:0.3");
  EXPECT_EQ(udg.kind, GraphSpec::Kind::Udg);
  EXPECT_DOUBLE_EQ(udg.param, 0.3);
}

TEST(ParseGraphSpec, File) {
  const GraphSpec f = parseGraphSpec("file:topo.txt");
  EXPECT_EQ(f.kind, GraphSpec::Kind::File);
  EXPECT_EQ(f.path, "topo.txt");
}

TEST(ParseGraphSpec, Rejections) {
  EXPECT_THROW(parseGraphSpec("pathological:3"), CliError);
  EXPECT_THROW(parseGraphSpec("path:"), CliError);
  EXPECT_THROW(parseGraphSpec("path:abc"), CliError);
  EXPECT_THROW(parseGraphSpec("path:3:4"), CliError);
  EXPECT_THROW(parseGraphSpec("cycle:2"), CliError);
  EXPECT_THROW(parseGraphSpec("grid:3"), CliError);
  EXPECT_THROW(parseGraphSpec("gnp:10"), CliError);
  EXPECT_THROW(parseGraphSpec("gnp:10:1.5"), CliError);
  EXPECT_THROW(parseGraphSpec("udg:10:-0.5"), CliError);
  EXPECT_THROW(parseGraphSpec("file:"), CliError);
}

TEST(ParseOptions, Defaults) {
  const Options o = parseOptions({});
  EXPECT_EQ(o.protocol, ProtocolKind::Smm);
  EXPECT_EQ(o.graph.kind, GraphSpec::Kind::Gnp);
  EXPECT_EQ(o.idOrder, IdOrderKind::Identity);
  EXPECT_EQ(o.start, StartKind::Clean);
  EXPECT_EQ(o.seed, 1u);
  EXPECT_EQ(o.maxRounds, 0u);
  EXPECT_EQ(o.schedule, engine::Schedule::Dense);
  EXPECT_FALSE(o.trace);
  EXPECT_FALSE(o.help);
}

TEST(ParseOptions, AllFlags) {
  const Options o = parseOptions({"-p", "sis", "-g", "cycle:9", "--ids",
                                  "random", "--start", "random", "--seed",
                                  "99", "--max-rounds", "500", "--trace",
                                  "--dot", "out.dot"});
  EXPECT_EQ(o.protocol, ProtocolKind::Sis);
  EXPECT_EQ(o.graph.kind, GraphSpec::Kind::Cycle);
  EXPECT_EQ(o.graph.n, 9u);
  EXPECT_EQ(o.idOrder, IdOrderKind::Random);
  EXPECT_EQ(o.start, StartKind::Random);
  EXPECT_EQ(o.seed, 99u);
  EXPECT_EQ(o.maxRounds, 500u);
  EXPECT_TRUE(o.trace);
  EXPECT_EQ(o.dotPath, "out.dot");
}

TEST(ParseOptions, EveryProtocolName) {
  EXPECT_EQ(parseOptions({"-p", "smm"}).protocol, ProtocolKind::Smm);
  EXPECT_EQ(parseOptions({"-p", "smm-arbitrary"}).protocol,
            ProtocolKind::SmmArbitrary);
  EXPECT_EQ(parseOptions({"-p", "hh-sync"}).protocol,
            ProtocolKind::HsuHuangSync);
  EXPECT_EQ(parseOptions({"-p", "sis"}).protocol, ProtocolKind::Sis);
  EXPECT_EQ(parseOptions({"-p", "coloring"}).protocol,
            ProtocolKind::Coloring);
  EXPECT_EQ(parseOptions({"-p", "domset"}).protocol,
            ProtocolKind::DominatingSet);
  EXPECT_EQ(parseOptions({"-p", "bfstree"}).protocol, ProtocolKind::BfsTree);
  EXPECT_EQ(parseOptions({"-p", "leadertree"}).protocol,
            ProtocolKind::LeaderTree);
}

TEST(ParseOptions, TelemetryFlags) {
  const Options o =
      parseOptions({"--metrics", "run.prom", "--events", "run.jsonl"});
  EXPECT_EQ(o.metricsPath, "run.prom");
  EXPECT_EQ(o.eventsPath, "run.jsonl");
  EXPECT_TRUE(parseOptions({}).metricsPath.empty());
  EXPECT_TRUE(parseOptions({}).eventsPath.empty());
  EXPECT_THROW(parseOptions({"--metrics"}), CliError);
  EXPECT_THROW(parseOptions({"--events"}), CliError);
}

TEST(ParseOptions, Schedule) {
  EXPECT_EQ(parseOptions({"--schedule", "dense"}).schedule,
            engine::Schedule::Dense);
  EXPECT_EQ(parseOptions({"--schedule", "active"}).schedule,
            engine::Schedule::Active);
  EXPECT_THROW(parseOptions({"--schedule", "lazy"}), CliError);
  EXPECT_THROW(parseOptions({"--schedule"}), CliError);  // missing value
}

TEST(ParseOptions, Kernel) {
  EXPECT_EQ(parseOptions({}).kernel, engine::KernelMode::Auto);
  EXPECT_EQ(parseOptions({"--kernel", "auto"}).kernel,
            engine::KernelMode::Auto);
  EXPECT_EQ(parseOptions({"--kernel", "generic"}).kernel,
            engine::KernelMode::Generic);
  EXPECT_EQ(parseOptions({"--kernel", "flat"}).kernel,
            engine::KernelMode::Flat);
  EXPECT_THROW(parseOptions({"--kernel", "vectorized"}), CliError);
  EXPECT_THROW(parseOptions({"--kernel"}), CliError);  // missing value
}

TEST(ParseOptions, Json) {
  EXPECT_FALSE(parseOptions({}).json);
  EXPECT_TRUE(parseOptions({"--json"}).json);
}

TEST(ParseOptions, Help) {
  EXPECT_TRUE(parseOptions({"--help"}).help);
  EXPECT_TRUE(parseOptions({"-h"}).help);
  EXPECT_FALSE(usage().empty());
}

TEST(ParseOptions, Rejections) {
  EXPECT_THROW(parseOptions({"--protocol"}), CliError);       // missing value
  EXPECT_THROW(parseOptions({"-p", "nope"}), CliError);       // bad protocol
  EXPECT_THROW(parseOptions({"--ids", "alphabetical"}), CliError);
  EXPECT_THROW(parseOptions({"--start", "warm"}), CliError);
  EXPECT_THROW(parseOptions({"--seed", "xyz"}), CliError);
  EXPECT_THROW(parseOptions({"--frobnicate"}), CliError);     // unknown flag
}

TEST(ProtocolToString, RoundTripsNames) {
  EXPECT_EQ(toString(ProtocolKind::Smm), "smm");
  EXPECT_EQ(toString(ProtocolKind::SmmArbitrary), "smm-arbitrary");
  EXPECT_EQ(toString(ProtocolKind::HsuHuangSync), "hh-sync");
  EXPECT_EQ(toString(ProtocolKind::Sis), "sis");
  EXPECT_EQ(toString(ProtocolKind::Coloring), "coloring");
  EXPECT_EQ(toString(ProtocolKind::DominatingSet), "domset");
  EXPECT_EQ(toString(ProtocolKind::BfsTree), "bfstree");
  EXPECT_EQ(toString(ProtocolKind::LeaderTree), "leadertree");
}

}  // namespace
}  // namespace selfstab::cli
