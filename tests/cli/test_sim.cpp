#include "cli/sim_options.hpp"
#include "cli/sim_run.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace selfstab::cli {
namespace {

TEST(ParseSimOptions, Defaults) {
  const SimOptions o = parseSimOptions({});
  EXPECT_EQ(o.protocol, SimProtocolKind::Smm);
  EXPECT_EQ(o.nodes, 25u);
  EXPECT_DOUBLE_EQ(o.radius, 0.35);
  EXPECT_EQ(o.beaconInterval, 100 * adhoc::kMillisecond);
  EXPECT_DOUBLE_EQ(o.lossProbability, 0.0);
  EXPECT_EQ(o.collisionWindow, 0);
  EXPECT_EQ(o.schedule, engine::Schedule::Dense);
  EXPECT_EQ(o.mobility, MobilityKind::Static);
  EXPECT_TRUE(o.untilQuiet);
  EXPECT_FALSE(o.help);
}

TEST(ParseSimOptions, AllFlags) {
  const SimOptions o = parseSimOptions(
      {"-p", "sis", "-n", "40", "--radius", "0.5", "--seed", "9",
       "--beacon-ms", "50", "--loss", "0.2", "--collision-us", "500",
       "--timeout-factor", "4", "--mobility", "waypoint", "--speed",
       "0.02:0.06", "--stop-sec", "30", "--duration-sec", "90",
       "--report-sec", "5", "--no-early-stop"});
  EXPECT_EQ(o.protocol, SimProtocolKind::Sis);
  EXPECT_EQ(o.nodes, 40u);
  EXPECT_DOUBLE_EQ(o.radius, 0.5);
  EXPECT_EQ(o.seed, 9u);
  EXPECT_EQ(o.beaconInterval, 50 * adhoc::kMillisecond);
  EXPECT_DOUBLE_EQ(o.lossProbability, 0.2);
  EXPECT_EQ(o.collisionWindow, 500);
  EXPECT_DOUBLE_EQ(o.timeoutFactor, 4.0);
  EXPECT_EQ(o.mobility, MobilityKind::Waypoint);
  EXPECT_DOUBLE_EQ(o.speedMin, 0.02);
  EXPECT_DOUBLE_EQ(o.speedMax, 0.06);
  EXPECT_EQ(o.stopTime, 30 * adhoc::kSecond);
  EXPECT_EQ(o.duration, 90 * adhoc::kSecond);
  EXPECT_EQ(o.reportEvery, 5 * adhoc::kSecond);
  EXPECT_FALSE(o.untilQuiet);
}

TEST(ParseSimOptions, Schedule) {
  EXPECT_EQ(parseSimOptions({"--schedule", "active"}).schedule,
            engine::Schedule::Active);
  EXPECT_EQ(parseSimOptions({"--schedule", "dense"}).schedule,
            engine::Schedule::Dense);
  EXPECT_THROW((void)parseSimOptions({"--schedule", "eager"}), CliError);
}

TEST(ParseSimOptions, IndexAndQueueModes) {
  EXPECT_EQ(parseSimOptions({}).index, adhoc::IndexMode::Grid);
  EXPECT_EQ(parseSimOptions({}).queue, adhoc::QueueMode::Calendar);
  EXPECT_EQ(parseSimOptions({"--index", "scan"}).index, adhoc::IndexMode::Scan);
  EXPECT_EQ(parseSimOptions({"--index", "grid"}).index, adhoc::IndexMode::Grid);
  EXPECT_EQ(parseSimOptions({"--queue", "heap"}).queue, adhoc::QueueMode::Heap);
  EXPECT_EQ(parseSimOptions({"--queue", "calendar"}).queue,
            adhoc::QueueMode::Calendar);
  EXPECT_THROW((void)parseSimOptions({"--index", "tree"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--queue", "list"}), CliError);
}

TEST(ExecuteSim, ReferenceModesMatchFastModes) {
  SimOptions fast;
  fast.nodes = 15;
  fast.seed = 3;
  fast.duration = 120 * adhoc::kSecond;
  fast.collisionWindow = 2000;
  fast.mobility = MobilityKind::Waypoint;
  fast.stopTime = 30 * adhoc::kSecond;
  SimOptions reference = fast;
  reference.index = adhoc::IndexMode::Scan;
  reference.queue = adhoc::QueueMode::Heap;

  std::ostringstream fastOut;
  std::ostringstream referenceOut;
  const SimReport fastReport = executeSim(fast, fastOut);
  const SimReport referenceReport = executeSim(reference, referenceOut);

  // Identical trajectories: every stat and the rendered timeline agree.
  EXPECT_EQ(fastReport.summary, referenceReport.summary);
  EXPECT_EQ(fastReport.endTime, referenceReport.endTime);
  EXPECT_EQ(fastReport.beaconsSent, referenceReport.beaconsSent);
  EXPECT_EQ(fastReport.beaconsDelivered, referenceReport.beaconsDelivered);
  EXPECT_EQ(fastReport.beaconsLost, referenceReport.beaconsLost);
  EXPECT_EQ(fastReport.beaconsCollided, referenceReport.beaconsCollided);
  EXPECT_EQ(fastReport.moves, referenceReport.moves);
  EXPECT_EQ(fastOut.str(), referenceOut.str());
}

TEST(ParseSimOptions, Kernel) {
  EXPECT_EQ(parseSimOptions({}).kernel, engine::KernelMode::Auto);
  EXPECT_EQ(parseSimOptions({"--kernel", "auto"}).kernel,
            engine::KernelMode::Auto);
  EXPECT_EQ(parseSimOptions({"--kernel", "generic"}).kernel,
            engine::KernelMode::Generic);
  EXPECT_EQ(parseSimOptions({"--kernel", "flat"}).kernel,
            engine::KernelMode::Flat);
  EXPECT_THROW(parseSimOptions({"--kernel", "simd"}), CliError);
  EXPECT_THROW(parseSimOptions({"--kernel"}), CliError);  // missing value
}

TEST(ExecuteSim, KernelFlatMatchesGenericAndReportsPath) {
  // Same deployment and seed: the view kernel promises bit-identical
  // decisions, so every deterministic report field must match the generic
  // path exactly.
  for (const SimProtocolKind kind :
       {SimProtocolKind::Smm, SimProtocolKind::Sis}) {
    SimOptions generic;
    generic.protocol = kind;
    generic.nodes = 15;
    generic.seed = 3;
    generic.duration = 120 * adhoc::kSecond;
    generic.kernel = engine::KernelMode::Generic;
    SimOptions flat = generic;
    flat.kernel = engine::KernelMode::Flat;

    std::ostringstream genericOut;
    std::ostringstream flatOut;
    const SimReport g = executeSim(generic, genericOut);
    const SimReport f = executeSim(flat, flatOut);
    EXPECT_EQ(g.kernel, "generic");
    EXPECT_EQ(f.kernel, "flat");
    EXPECT_EQ(f.moves, g.moves);
    EXPECT_EQ(f.rounds, g.rounds);
    EXPECT_EQ(f.ruleEvaluations, g.ruleEvaluations);
    EXPECT_EQ(f.beaconsSent, g.beaconsSent);
    EXPECT_EQ(f.summary, g.summary);
    EXPECT_EQ(flatOut.str(), genericOut.str());
  }
}

TEST(ExecuteSim, KernelAutoFallsBackForLeaderTree) {
  SimOptions options;
  options.protocol = SimProtocolKind::LeaderTree;
  options.nodes = 10;
  options.duration = 120 * adhoc::kSecond;
  std::ostringstream out;
  EXPECT_EQ(executeSim(options, out).kernel, "generic");

  options.kernel = engine::KernelMode::Flat;
  std::ostringstream out2;
  EXPECT_THROW(executeSim(options, out2), CliError);
}

TEST(ParseSimOptions, Rejections) {
  EXPECT_THROW((void)parseSimOptions({"-p", "bogus"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"-n", "0"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--loss", "1.5"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--radius", "-1"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--speed", "0.05"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--speed", "0.06:0.02"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--whatever"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--duration-sec"}), CliError);
}

TEST(ParseSimOptions, HelpAndNames) {
  EXPECT_TRUE(parseSimOptions({"-h"}).help);
  EXPECT_FALSE(simUsage().empty());
  EXPECT_EQ(toString(SimProtocolKind::Smm), "smm");
  EXPECT_EQ(toString(SimProtocolKind::Sis), "sis");
  EXPECT_EQ(toString(SimProtocolKind::LeaderTree), "leadertree");
}

TEST(ExecuteSim, SmmStaticDeploymentVerifies) {
  SimOptions options;
  options.nodes = 15;
  options.seed = 3;
  options.duration = 120 * adhoc::kSecond;
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  EXPECT_TRUE(report.quiet);
  EXPECT_TRUE(report.predicateOk);
  EXPECT_GT(report.beaconsSent, 0u);
  EXPECT_NE(report.summary.find("matching"), std::string::npos);
  EXPECT_NE(out.str().find("time(s)"), std::string::npos);
}

TEST(ExecuteSim, ActiveScheduleSkipsEvaluationsAndStillVerifies) {
  SimOptions dense;
  dense.nodes = 15;
  dense.seed = 3;
  dense.duration = 120 * adhoc::kSecond;
  SimOptions active = dense;
  active.schedule = engine::Schedule::Active;

  std::ostringstream denseOut;
  std::ostringstream activeOut;
  const SimReport denseReport = executeSim(dense, denseOut);
  const SimReport activeReport = executeSim(active, activeOut);

  EXPECT_TRUE(activeReport.quiet);
  EXPECT_TRUE(activeReport.predicateOk);
  // Same deployment, same seed: the protocol outcome is unaffected by the
  // schedule, but the quiescent tail of the run stops evaluating rules.
  EXPECT_EQ(activeReport.summary, denseReport.summary);
  EXPECT_EQ(denseReport.evaluationsSkipped, 0u);
  EXPECT_GT(activeReport.evaluationsSkipped, 0u);
  EXPECT_LT(activeReport.ruleEvaluations, denseReport.ruleEvaluations);
}

TEST(ExecuteSim, SisWithLossVerifies) {
  SimOptions options;
  options.protocol = SimProtocolKind::Sis;
  options.nodes = 15;
  options.seed = 5;
  options.lossProbability = 0.1;
  options.duration = 240 * adhoc::kSecond;
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  EXPECT_TRUE(report.quiet);
  EXPECT_TRUE(report.predicateOk);
  EXPECT_GT(report.beaconsLost, 0u);
}

TEST(ExecuteSim, LeaderTreeWithWaypointFreezeVerifies) {
  SimOptions options;
  options.protocol = SimProtocolKind::LeaderTree;
  options.nodes = 12;
  options.seed = 7;
  options.radius = 0.5;
  options.mobility = MobilityKind::Waypoint;
  options.stopTime = 20 * adhoc::kSecond;
  options.duration = 300 * adhoc::kSecond;
  options.reportEvery = 20 * adhoc::kSecond;
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  EXPECT_TRUE(report.quiet);
  EXPECT_TRUE(report.predicateOk);
  EXPECT_NE(report.summary.find("leader"), std::string::npos);
}

TEST(ExecuteSim, NoEarlyStopRunsFullDuration) {
  SimOptions options;
  options.nodes = 8;
  options.seed = 11;
  options.untilQuiet = false;
  options.duration = 30 * adhoc::kSecond;
  options.reportEvery = 10 * adhoc::kSecond;
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  EXPECT_GE(report.endTime, 30 * adhoc::kSecond - adhoc::kSecond);
  EXPECT_TRUE(report.predicateOk);
}

TEST(ParseSimOptions, TelemetryFlags) {
  const SimOptions o = parseSimOptions(
      {"--json", "--metrics", "m.prom", "--events", "e.jsonl"});
  EXPECT_TRUE(o.json);
  EXPECT_EQ(o.metricsPath, "m.prom");
  EXPECT_EQ(o.eventsPath, "e.jsonl");
  EXPECT_FALSE(parseSimOptions({}).json);
  EXPECT_THROW((void)parseSimOptions({"--metrics"}), CliError);
  EXPECT_THROW((void)parseSimOptions({"--events"}), CliError);
}

TEST(ExecuteSim, MetricsDumpMatchesReportExactly) {
  SimOptions options;
  options.nodes = 15;
  options.seed = 3;
  options.duration = 120 * adhoc::kSecond;
  options.metricsPath = "-";
  options.json = true;  // suppress the human timeline
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  const std::string text = out.str();

  const auto expectCounter = [&](const std::string& name, std::size_t v) {
    // JSON form…
    EXPECT_NE(text.find('"' + name + "\":" + std::to_string(v)),
              std::string::npos)
        << name << " = " << v;
    // …and Prometheus form, from the same registry.
    EXPECT_NE(text.find(name + ' ' + std::to_string(v) + '\n'),
              std::string::npos)
        << name << " = " << v;
  };
  expectCounter("beacons_sent_total", report.beaconsSent);
  expectCounter("beacons_delivered_total", report.beaconsDelivered);
  expectCounter("beacons_lost_total", report.beaconsLost);
  expectCounter("beacons_collided_total", report.beaconsCollided);
  expectCounter("moves_total", report.moves);
  expectCounter("rounds_total", report.rounds);
  EXPECT_GT(report.rounds, 0u);
  EXPECT_NE(text.find("# TYPE round_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("round_duration_seconds_count"), std::string::npos);
}

TEST(ExecuteSim, EventsStreamIsJsonl) {
  SimOptions options;
  options.nodes = 10;
  options.seed = 13;
  options.duration = 60 * adhoc::kSecond;
  options.eventsPath = "-";
  options.json = true;
  std::ostringstream out;
  const SimReport report = executeSim(options, out);
  EXPECT_GT(report.moves, 0u);
  // One "move" record per state change.
  const std::string text = out.str();
  std::size_t moveLines = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("{\"type\":\"move\",", 0) == 0) ++moveLines;
  }
  EXPECT_EQ(moveLines, report.moves);
}

TEST(PrintSimReportJson, EmitsOneParsableObject) {
  SimReport report;
  report.protocol = "smm";
  report.kernel = "flat";
  report.nodes = 25;
  report.endTime = 7 * adhoc::kSecond;
  report.rounds = 70;
  report.quiet = true;
  report.predicateOk = true;
  report.beaconsSent = 1750;
  report.beaconsDelivered = 6902;
  report.moves = 31;
  report.ruleEvaluations = 1740;
  report.evaluationsSkipped = 10;
  report.rangeChecks = 42000;
  report.summary = "matching: 12 pair(s)";
  std::ostringstream out;
  printSimReportJson(report, out);
  const std::string json = out.str();
  EXPECT_EQ(json,
            "{\"protocol\":\"smm\",\"kernel\":\"flat\",\"nodes\":25,"
            "\"endTimeUs\":7000000,"
            "\"rounds\":70,\"quiet\":true,\"predicateOk\":true,"
            "\"beaconsSent\":1750,\"beaconsDelivered\":6902,"
            "\"beaconsLost\":0,\"beaconsCollided\":0,\"moves\":31,"
            "\"ruleEvaluations\":1740,\"evaluationsSkipped\":10,"
            "\"rangeChecks\":42000,"
            "\"summary\":\"matching: 12 pair(s)\"}\n");
}

TEST(PrintSimReport, RendersCounters) {
  SimReport report;
  report.protocol = "sis";
  report.nodes = 10;
  report.endTime = 12 * adhoc::kSecond;
  report.quiet = true;
  report.predicateOk = true;
  report.beaconsSent = 1200;
  report.beaconsDelivered = 5000;
  report.beaconsLost = 17;
  report.beaconsCollided = 3;
  report.moves = 42;
  report.summary = "independent set: 4 member(s)";
  std::ostringstream out;
  printSimReport(report, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("1200 sent"), std::string::npos);
  EXPECT_NE(text.find("17 lost"), std::string::npos);
  EXPECT_NE(text.find("3 collided"), std::string::npos);
  EXPECT_NE(text.find("verified    : yes"), std::string::npos);
}

}  // namespace
}  // namespace selfstab::cli
