// The fault-tolerance story of Sections 1-2: the protocols detect link
// failures / creations (mobility) and transient state corruption, and
// re-stabilize. Exercised through the abstract engine with explicit
// topology perturbation and state corruption.
#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/leader_tree.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

TEST(FaultRecovery, SmmRestabilizesAfterTopologyChurn) {
  graph::Rng rng(301);
  const core::SmmProtocol smm = core::smmPaper();
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const auto ids = IdAssignment::identity(24);
    std::vector<PointerState> states;
    ASSERT_TRUE(engine::runFromClean(smm, g, ids, 100, &states).stabilized);

    // Mobility event: a burst of link creations/failures.
    engine::perturbTopology(g, rng, 6, /*keepConnected=*/true);

    SyncRunner<PointerState> runner(smm, g, ids);
    const auto result = runner.run(states, g.order() + 3);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok())
        << "trial " << trial;
  }
}

TEST(FaultRecovery, SmmSurvivesDisconnection) {
  // The paper assumes the network stays connected, but the protocol itself
  // does not need that: each component stabilizes independently.
  graph::Rng rng(303);
  const core::SmmProtocol smm = core::smmPaper();
  Graph g = graph::connectedErdosRenyi(20, 0.15, rng);
  const auto ids = IdAssignment::identity(20);
  std::vector<PointerState> states;
  ASSERT_TRUE(engine::runFromClean(smm, g, ids, 100, &states).stabilized);

  engine::perturbTopology(g, rng, 12, /*keepConnected=*/false);

  SyncRunner<PointerState> runner(smm, g, ids);
  const auto result = runner.run(states, g.order() + 3);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
}

TEST(FaultRecovery, LocalizedCorruptionHealsQuickly) {
  // Corrupt a handful of nodes in a large stabilized system; convergence
  // restarts from a nearly-legal configuration and must finish well under
  // the worst-case bound.
  graph::Rng rng(305);
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t n = 100;
  const Graph g = graph::connectedErdosRenyi(n, 0.05, rng);
  const auto ids = IdAssignment::identity(n);
  std::vector<PointerState> states;
  ASSERT_TRUE(engine::runFromClean(smm, g, ids, 200, &states).stabilized);

  for (int burst = 0; burst < 10; ++burst) {
    const std::size_t corrupted = engine::corruptConfiguration(
        states, g, rng, 0.05, core::randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    const auto result = runner.run(states, n + 2);
    ASSERT_TRUE(result.stabilized) << "burst " << burst;
    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
    // Recovery cost should scale with the damage, not with n: generous
    // envelope of 4 rounds per corrupted node plus slack.
    EXPECT_LE(result.rounds, 4 * corrupted + 6) << "burst " << burst;
  }
}

TEST(FaultRecovery, SisRestabilizesAfterTopologyChurn) {
  graph::Rng rng(307);
  const core::SisProtocol sis;
  for (int trial = 0; trial < 15; ++trial) {
    Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const auto ids = IdAssignment::identity(24);
    std::vector<BitState> states;
    ASSERT_TRUE(engine::runFromClean(sis, g, ids, 100, &states).stabilized);

    engine::perturbTopology(g, rng, 6, /*keepConnected=*/true);

    SyncRunner<BitState> runner(sis, g, ids);
    const auto result = runner.run(states, g.order() + 1);
    ASSERT_TRUE(result.stabilized) << "trial " << trial;
    EXPECT_TRUE(
        analysis::isMaximalIndependentSet(g, analysis::membersOf(states)))
        << "trial " << trial;
  }
}

TEST(FaultRecovery, SingleLinkFailureInsideMatchedPair) {
  // Targeted scenario: break exactly one matched edge; both endpoints hold
  // dangling pointers, must back off, and may re-match with someone else.
  const Graph original = graph::path(6);
  const auto ids = IdAssignment::identity(6);
  const core::SmmProtocol smm = core::smmPaper();
  std::vector<PointerState> states;
  ASSERT_TRUE(
      engine::runFromClean(smm, original, ids, 20, &states).stabilized);
  const auto edges = analysis::matchedEdges(original, states);
  ASSERT_FALSE(edges.empty());

  Graph g = original;
  g.removeEdge(edges[0].u, edges[0].v);

  SyncRunner<PointerState> runner(smm, g, ids);
  const auto result = runner.run(states, 10);
  ASSERT_TRUE(result.stabilized);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
}

TEST(FaultRecovery, NewLinkBetweenUnmatchedNodesGetsUsed) {
  // Star: center matches one leaf, the rest are aloof. Adding an edge
  // between two aloof leaves must produce a new matched pair (maximality is
  // re-established).
  Graph g = graph::star(6);
  const auto ids = IdAssignment::identity(6);
  const core::SmmProtocol smm = core::smmPaper();
  std::vector<PointerState> states;
  ASSERT_TRUE(engine::runFromClean(smm, g, ids, 20, &states).stabilized);
  const auto before = analysis::matchedEdges(g, states);
  ASSERT_EQ(before.size(), 1u);

  // Find two unmatched leaves and connect them.
  std::vector<graph::Vertex> unmatched;
  for (graph::Vertex v = 1; v < 6; ++v) {
    if (states[v].isNull()) unmatched.push_back(v);
  }
  ASSERT_GE(unmatched.size(), 2u);
  g.addEdge(unmatched[0], unmatched[1]);

  SyncRunner<PointerState> runner(smm, g, ids);
  ASSERT_TRUE(runner.run(states, 10).stabilized);
  EXPECT_EQ(analysis::matchedEdges(g, states).size(), 2u);
  EXPECT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
}

// ---------------------------------------------------------------------------
// Mid-convergence fault injection. The theorems bound convergence from an
// *arbitrary* configuration, so the clock restarts at the last fault: a burst
// that lands while the protocol is still converging must not push the total
// past <paper bound> rounds measured from that burst. Exercised for each
// protocol under both schedules, with several bursts back to back.

template <typename State, typename Protocol, typename Sampler, typename Verify>
void midConvergenceBursts(const Protocol& protocol, Sampler sampler,
                          Verify verify, std::size_t (*boundFor)(std::size_t),
                          std::uint64_t seed) {
  graph::Rng rng(seed);
  for (const engine::Schedule schedule :
       {engine::Schedule::Dense, engine::Schedule::Active}) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t n = 12 + 4 * static_cast<std::size_t>(trial % 4);
      const Graph g = graph::connectedErdosRenyi(n, 0.18, rng);
      const auto ids = IdAssignment::identity(n);
      const std::size_t bound = boundFor(n);
      SyncRunner<State> runner(protocol, g, ids, seed, schedule);
      auto states = engine::randomConfiguration<State>(g, rng, sampler);
      runner.invalidateSchedule();

      // Interrupt convergence after a few rounds with another burst, three
      // times, then require stabilization within the bound from the *last*
      // burst only.
      for (int burst = 0; burst < 3; ++burst) {
        for (std::size_t r = 0; r < 3; ++r) runner.step(states);
        engine::corruptAndReschedule(runner, states, g, rng, 0.4, sampler);
      }
      const auto result = runner.run(states, bound);
      ASSERT_TRUE(result.stabilized)
          << "n=" << n << " trial=" << trial << " schedule="
          << (schedule == engine::Schedule::Active ? "active" : "dense");
      EXPECT_LE(result.rounds, bound);
      EXPECT_TRUE(verify(g, states)) << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(FaultRecovery, SmmMidConvergenceBurstsBoundedFromLastFault) {
  midConvergenceBursts<PointerState>(
      core::smmPaper(), &core::randomPointerState,
      [](const Graph& g, const std::vector<PointerState>& states) {
        return analysis::checkMatchingFixpoint(g, states).ok();
      },
      [](std::size_t n) { return 2 * n + 1; }, 601);
}

TEST(FaultRecovery, SisMidConvergenceBurstsBoundedFromLastFault) {
  midConvergenceBursts<BitState>(
      core::SisProtocol(), &core::randomBitState,
      [](const Graph& g, const std::vector<BitState>& states) {
        return analysis::isMaximalIndependentSet(g,
                                                 analysis::membersOf(states));
      },
      [](std::size_t n) { return n; }, 603);
}

TEST(FaultRecovery, LeaderTreeMidConvergenceBurstsRestabilize) {
  // LeaderTree is not one of the paper's two protocols, so no tight bound
  // is claimed — only that mid-convergence bursts cannot wedge it and that
  // a generous O(n) envelope from the last fault suffices.
  const core::LeaderTreeProtocol protocol(/*cap=*/28);
  midConvergenceBursts<core::LeaderState>(
      protocol, &core::randomLeaderState,
      [](const Graph& g, const std::vector<core::LeaderState>& states) {
        return analysis::isLeaderTree(g, IdAssignment::identity(g.order()),
                                      states);
      },
      [](std::size_t n) { return 6 * n + 10; }, 605);
}

}  // namespace
}  // namespace selfstab
