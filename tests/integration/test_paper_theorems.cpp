// End-to-end checks of the paper's headline claims, crossing every module:
// Theorem 1, Theorem 2, the Section 3 counterexample, and the "converted
// central-daemon protocol is not as fast" comparison.
#include <gtest/gtest.h>

#include "analysis/baselines.hpp"
#include "analysis/verifiers.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

TEST(Theorem1, HoldsOverBroadRandomSweep) {
  graph::Rng rng(201);
  const core::SmmProtocol smm = core::smmPaper();
  std::size_t trials = 0;
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    for (int t = 0; t < 10; ++t) {
      const Graph g = graph::connectedErdosRenyi(n, 4.0 / static_cast<double>(n), rng);
      graph::Rng idRng(trials);
      const auto ids = IdAssignment::randomPermutation(n, idRng);
      auto states = engine::randomConfiguration<PointerState>(
          g, rng, core::randomPointerState);
      SyncRunner<PointerState> runner(smm, g, ids);
      const auto result = runner.run(states, n + 2);
      ASSERT_TRUE(result.stabilized);
      ASSERT_LE(result.rounds, n + 1);
      ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
      ++trials;
    }
  }
  EXPECT_EQ(trials, 40u);
}

TEST(Theorem2, HoldsOverBroadRandomSweep) {
  graph::Rng rng(203);
  const core::SisProtocol sis;
  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    for (int t = 0; t < 10; ++t) {
      const Graph g = graph::connectedErdosRenyi(n, 4.0 / static_cast<double>(n), rng);
      graph::Rng idRng(n + static_cast<std::size_t>(t));
      const auto ids = IdAssignment::randomPermutation(n, idRng);
      auto states =
          engine::randomConfiguration<BitState>(g, rng, core::randomBitState);
      SyncRunner<BitState> runner(sis, g, ids);
      const auto result = runner.run(states, n + 1);
      ASSERT_TRUE(result.stabilized);
      ASSERT_LE(result.rounds, n);
      ASSERT_TRUE(
          analysis::isMaximalIndependentSet(g, analysis::membersOf(states)));
    }
  }
}

TEST(Counterexample, FourCycleOscillatesForeverWithArbitraryR2) {
  // "Consider a four cycle, with all pointers initially null, which
  //  repeatedly select their clockwise neighbor using rule R2, and then
  //  execute rule R3."
  const Graph g = graph::cycle(4);
  const auto ids = IdAssignment::identity(4);
  const core::SmmProtocol broken = core::smmArbitrary(core::Choice::Successor);
  const std::vector<PointerState> allNull(4);
  const auto result = engine::traceTrajectory(broken, g, ids, allNull, 10000);
  EXPECT_FALSE(result.stabilized);
  EXPECT_TRUE(result.cycled);
  EXPECT_EQ(result.cycleStart, 0u);
  EXPECT_EQ(result.cycleLength, 2u);  // propose-all / back-off-all
}

TEST(Counterexample, LargerEvenCyclesOscillateToo) {
  for (const std::size_t n : {6u, 8u, 10u}) {
    const Graph g = graph::cycle(n);
    const auto ids = IdAssignment::identity(n);
    const core::SmmProtocol broken =
        core::smmArbitrary(core::Choice::Successor);
    const std::vector<PointerState> allNull(n);
    const auto result =
        engine::traceTrajectory(broken, g, ids, allNull, 10000);
    EXPECT_TRUE(result.cycled) << "n=" << n;
    EXPECT_FALSE(result.stabilized) << "n=" << n;
  }
}

TEST(Counterexample, MinIdSelectionRescuesTheSameInstances) {
  for (const std::size_t n : {4u, 6u, 8u, 10u}) {
    const Graph g = graph::cycle(n);
    const auto ids = IdAssignment::identity(n);
    const core::SmmProtocol smm = core::smmPaper();
    const std::vector<PointerState> allNull(n);
    const auto result = engine::traceTrajectory(smm, g, ids, allNull, 10000);
    EXPECT_TRUE(result.stabilized) << "n=" << n;
    EXPECT_LE(result.rounds, n + 1) << "n=" << n;
  }
}

TEST(BaselineComparison, NativeSmmBeatsSynchronizedHsuHuang) {
  // Section 3: converting [15] with daemon refinement works but "is not as
  // fast". Average over instances; the transformed variant must cost more
  // rounds in aggregate.
  graph::Rng rng(207);
  const core::SmmProtocol native = core::smmPaper();
  const core::Synchronized<core::SmmProtocol> transformed(
      core::Choice::First, core::Choice::First);
  double nativeTotal = 0;
  double transformedTotal = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::connectedErdosRenyi(30, 0.12, rng);
    const auto ids = IdAssignment::identity(30);
    const auto start = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);

    auto a = start;
    SyncRunner<PointerState> runnerA(native, g, ids, trial);
    const auto ra = runnerA.run(a, 100000);
    ASSERT_TRUE(ra.stabilized);
    nativeTotal += static_cast<double>(ra.rounds);

    auto b = start;
    SyncRunner<PointerState> runnerB(transformed, g, ids, trial);
    const auto rb = runnerB.run(b, 100000);
    ASSERT_TRUE(rb.stabilized);
    transformedTotal += static_cast<double>(rb.rounds);

    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, a).ok());
    EXPECT_TRUE(analysis::checkMatchingFixpoint(g, b).ok());
  }
  EXPECT_GT(transformedTotal, nativeTotal);
}

TEST(SolutionQuality, MaximalMatchingIsAtLeastHalfOptimal) {
  graph::Rng rng(211);
  const core::SmmProtocol smm = core::smmPaper();
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::connectedErdosRenyi(16, 0.25, rng);
    const auto ids = IdAssignment::identity(16);
    std::vector<PointerState> states;
    const auto result =
        engine::runFromClean(smm, g, ids, 100, &states);
    ASSERT_TRUE(result.stabilized);
    const std::size_t smmSize = analysis::matchedEdges(g, states).size();
    const std::size_t optimum = analysis::maximumMatchingSize(g);
    EXPECT_GE(2 * smmSize, optimum) << "trial " << trial;
    EXPECT_LE(smmSize, optimum);
  }
}

TEST(SolutionQuality, MisIsMinimalDominatingSet) {
  // The classical fact connecting the two protocols: any MIS dominates
  // minimally. SIS output must pass the dominating-set verifier.
  graph::Rng rng(213);
  const core::SisProtocol sis;
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
    const auto ids = IdAssignment::identity(24);
    std::vector<BitState> states;
    const auto result = engine::runFromClean(sis, g, ids, 100, &states);
    ASSERT_TRUE(result.stabilized);
    const auto members = analysis::membersOf(states);
    EXPECT_TRUE(analysis::isMaximalIndependentSet(g, members));
    EXPECT_TRUE(analysis::isMinimalDominatingSet(g, members));
  }
}

}  // namespace
}  // namespace selfstab
