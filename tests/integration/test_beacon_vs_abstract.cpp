// Fidelity: the discrete-event beacon simulator and the abstract synchronous
// engine run the *same* Protocol objects and must agree on the outcomes —
// same predicates at quiescence, comparable convergence in rounds.
#include <gtest/gtest.h>

#include "adhoc/network.hpp"
#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using adhoc::NetworkConfig;
using adhoc::NetworkSimulator;
using adhoc::StaticPlacement;
using core::BitState;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

struct Deployment {
  std::vector<graph::Point> points;
  Graph g;
};

Deployment makeDeployment(std::size_t n, double radius, std::uint64_t seed) {
  graph::Rng rng(seed);
  Deployment d;
  d.g = graph::connectedRandomGeometric(n, radius, rng, &d.points);
  return d;
}

TEST(BeaconVsAbstract, SameMatchingPredicateAtQuiescence) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    NetworkConfig config;
    config.seed = seed;
    const auto deployment = makeDeployment(18, config.radius, seed);
    const auto ids = IdAssignment::identity(18);
    const core::SmmProtocol smm = core::smmPaper();

    // Abstract engine on the same topology.
    std::vector<PointerState> abstractStates;
    ASSERT_TRUE(engine::runFromClean(smm, deployment.g, ids, 100,
                                     &abstractStates)
                    .stabilized);
    ASSERT_TRUE(
        analysis::checkMatchingFixpoint(deployment.g, abstractStates).ok());

    // Beacon simulator.
    StaticPlacement mobility(deployment.points);
    NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
    const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                          2000 * config.beaconInterval);
    ASSERT_TRUE(result.quiet) << "seed " << seed;
    EXPECT_TRUE(
        analysis::checkMatchingFixpoint(deployment.g, sim.states()).ok())
        << "seed " << seed;
  }
}

TEST(BeaconVsAbstract, BeaconRoundsAreSameOrderAsAbstractRounds) {
  // The paper's round = one beacon interval. The event-driven execution is
  // only approximately synchronous (jitter, phase offsets), so allow a
  // constant-factor envelope plus the quiet-detection window.
  NetworkConfig config;
  config.seed = 99;
  const auto deployment = makeDeployment(24, config.radius, 21);
  const auto ids = IdAssignment::identity(24);
  const core::SmmProtocol smm = core::smmPaper();

  std::vector<PointerState> abstractStates;
  const auto abstractResult =
      engine::runFromClean(smm, deployment.g, ids, 100, &abstractStates);
  ASSERT_TRUE(abstractResult.stabilized);

  StaticPlacement mobility(deployment.points);
  NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
  const adhoc::SimTime quietWindow = 5 * config.beaconInterval;
  const auto result =
      sim.runUntilQuiet(quietWindow, 2000 * config.beaconInterval);
  ASSERT_TRUE(result.quiet);

  const double beaconRounds =
      static_cast<double>(sim.lastMoveTime()) /
      static_cast<double>(config.beaconInterval);
  const double abstractRounds = static_cast<double>(abstractResult.rounds);
  // Same order of magnitude: within [0, 4x + 5] of the abstract count.
  EXPECT_LE(beaconRounds, 4.0 * abstractRounds + 5.0);
}

TEST(BeaconVsAbstract, SisAgreesOnMisPredicate) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    NetworkConfig config;
    config.seed = seed;
    const auto deployment = makeDeployment(20, config.radius, seed);
    const auto ids = IdAssignment::identity(20);
    const core::SisProtocol sis;

    std::vector<BitState> abstractStates;
    ASSERT_TRUE(
        engine::runFromClean(sis, deployment.g, ids, 100, &abstractStates)
            .stabilized);

    StaticPlacement mobility(deployment.points);
    NetworkSimulator<BitState> sim(sis, ids, mobility, config);
    const auto result = sim.runUntilQuiet(5 * config.beaconInterval,
                                          2000 * config.beaconInterval);
    ASSERT_TRUE(result.quiet) << "seed " << seed;
    EXPECT_TRUE(analysis::isMaximalIndependentSet(
        deployment.g, analysis::membersOf(sim.states())))
        << "seed " << seed;
  }
}

TEST(BeaconVsAbstract, MessageCountMatchesBeaconBudget) {
  // Beacons are periodic regardless of protocol activity: the send count
  // over T seconds must be close to n * T / beaconInterval.
  NetworkConfig config;
  config.seed = 7;
  config.jitterFraction = 0.0;
  const auto deployment = makeDeployment(10, config.radius, 31);
  const auto ids = IdAssignment::identity(10);
  const core::SisProtocol sis;
  StaticPlacement mobility(deployment.points);
  NetworkSimulator<BitState> sim(sis, ids, mobility, config);
  sim.run(100 * config.beaconInterval);
  EXPECT_NEAR(static_cast<double>(sim.stats().beaconsSent), 10.0 * 100.0,
              15.0);
}

}  // namespace
}  // namespace selfstab
