// Cross-protocol soak matrix: every protocol x several topology families x
// sizes x seeds, each run starting from an adversarial random configuration
// and checked against its predicate verifier. One TEST_P instance per cell,
// so a regression pinpoints exactly which (protocol, topology) combination
// broke.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "analysis/verifiers.hpp"
#include "core/aggregation.hpp"
#include "core/bfs_tree.hpp"
#include "core/coloring.hpp"
#include "core/dominating_set.hpp"
#include "core/leader_tree.hpp"
#include "core/local_mutex.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

// Type-erased protocol cell: builds a protocol for (graph, ids), runs it
// from a random configuration, returns whether it stabilized to a verified
// predicate within the budget.
struct ProtocolCase {
  std::string name;
  std::function<bool(const Graph&, const IdAssignment&, std::uint64_t seed)>
      run;
};

template <typename State, typename MakeProtocol, typename Sampler,
          typename Verify>
ProtocolCase makeCase(std::string name, MakeProtocol make, Sampler sampler,
                      std::size_t budgetPerNode, Verify verify) {
  ProtocolCase pc;
  pc.name = std::move(name);
  pc.run = [make, sampler, budgetPerNode, verify](
               const Graph& g, const IdAssignment& ids, std::uint64_t seed) {
    const auto protocol = make(g, ids);
    graph::Rng rng(seed);
    auto states = engine::randomConfiguration<State>(g, rng, sampler);
    SyncRunner<State> runner(*protocol, g, ids, seed);
    const auto result =
        runner.run(states, budgetPerNode * g.order() + 64);
    return result.stabilized && verify(g, ids, states);
  };
  return pc;
}

// Readings shared by the aggregation adapter (protocol holds a pointer).
std::vector<std::uint64_t>& sharedReadings() {
  static std::vector<std::uint64_t> readings;
  return readings;
}

std::vector<ProtocolCase> allProtocols() {
  using core::AggregateState;
  using core::BitState;
  using core::ColorState;
  using core::DomState;
  using core::LeaderState;
  using core::PointerState;
  using core::TreeState;

  std::vector<ProtocolCase> cases;

  cases.push_back(makeCase<PointerState>(
      "smm",
      [](const Graph&, const IdAssignment&) {
        return std::make_unique<core::SmmProtocol>(core::Choice::MinId,
                                                   core::Choice::MinId);
      },
      core::randomPointerState, 2,
      [](const Graph& g, const IdAssignment&,
         const std::vector<PointerState>& states) {
        return analysis::checkMatchingFixpoint(g, states).ok();
      }));

  cases.push_back(makeCase<PointerState>(
      "hh-sync",
      [](const Graph&, const IdAssignment&) {
        return std::make_unique<core::Synchronized<core::SmmProtocol>>(
            core::Choice::First, core::Choice::First);
      },
      core::randomPointerState, 64,
      [](const Graph& g, const IdAssignment&,
         const std::vector<PointerState>& states) {
        return analysis::checkMatchingFixpoint(g, states).ok();
      }));

  cases.push_back(makeCase<BitState>(
      "sis",
      [](const Graph&, const IdAssignment&) {
        return std::make_unique<core::SisProtocol>();
      },
      core::randomBitState, 2,
      [](const Graph& g, const IdAssignment&,
         const std::vector<BitState>& states) {
        return analysis::isMaximalIndependentSet(
            g, analysis::membersOf(states));
      }));

  cases.push_back(makeCase<ColorState>(
      "coloring",
      [](const Graph&, const IdAssignment&) {
        return std::make_unique<core::ColoringProtocol>();
      },
      core::randomColorState, 2,
      [](const Graph& g, const IdAssignment&,
         const std::vector<ColorState>& states) {
        return analysis::isProperColoring(g, states);
      }));

  cases.push_back(makeCase<DomState>(
      "domset",
      [](const Graph&, const IdAssignment&) {
        return std::make_unique<
            core::Synchronized<core::DominatingSetProtocol>>();
      },
      core::randomDomState, 64,
      [](const Graph& g, const IdAssignment&,
         const std::vector<DomState>& states) {
        return analysis::isMinimalDominatingSet(
            g, analysis::membersOf(states));
      }));

  cases.push_back(makeCase<TreeState>(
      "bfstree",
      [](const Graph& g, const IdAssignment& ids) {
        return std::make_unique<core::BfsTreeProtocol>(
            ids.idOf(0), static_cast<std::uint32_t>(g.order()));
      },
      core::randomTreeState, 3,
      [](const Graph& g, const IdAssignment& ids,
         const std::vector<TreeState>& states) {
        return analysis::isShortestPathTree(
            g, ids, 0, static_cast<std::uint32_t>(g.order()), states);
      }));

  cases.push_back(makeCase<LeaderState>(
      "leadertree",
      [](const Graph& g, const IdAssignment&) {
        return std::make_unique<core::LeaderTreeProtocol>(
            static_cast<std::uint32_t>(g.order()));
      },
      core::randomLeaderState, 3,
      [](const Graph& g, const IdAssignment& ids,
         const std::vector<LeaderState>& states) {
        return analysis::isLeaderTree(g, ids, states);
      }));

  cases.push_back(makeCase<AggregateState>(
      "aggregation",
      [](const Graph& g, const IdAssignment&) {
        auto& readings = sharedReadings();
        readings.assign(g.order(), 0);
        for (std::size_t v = 0; v < g.order(); ++v) readings[v] = 10 + v;
        return std::make_unique<core::AggregationProtocol>(
            static_cast<std::uint32_t>(g.order()), &readings);
      },
      core::randomAggregateState, 5,
      [](const Graph& g, const IdAssignment& ids,
         const std::vector<AggregateState>& states) {
        // The max-ID node of each component publishes the exact totals.
        const auto comp = graph::connectedComponents(g);
        const std::size_t k = graph::componentCount(g);
        for (std::size_t c = 0; c < k; ++c) {
          graph::Vertex leader = graph::kNoVertex;
          std::uint64_t sum = 0;
          std::uint32_t count = 0;
          for (graph::Vertex v = 0; v < g.order(); ++v) {
            if (comp[v] != c) continue;
            sum += sharedReadings()[v];
            ++count;
            if (leader == graph::kNoVertex || ids.less(leader, v)) leader = v;
          }
          if (states[leader].sum != sum || states[leader].count != count) {
            return false;
          }
        }
        return true;
      }));

  return cases;
}

struct TopologyCase {
  std::string name;
  std::function<Graph(std::size_t, graph::Rng&)> make;
};

std::vector<TopologyCase> topologies() {
  return {
      {"path", [](std::size_t n, graph::Rng&) { return graph::path(n); }},
      {"cycle", [](std::size_t n, graph::Rng&) { return graph::cycle(n); }},
      {"wheel", [](std::size_t n, graph::Rng&) { return graph::wheel(n); }},
      {"gnp",
       [](std::size_t n, graph::Rng& rng) {
         return graph::connectedErdosRenyi(
             n, 4.0 / static_cast<double>(n), rng);
       }},
      {"udg",
       [](std::size_t n, graph::Rng& rng) {
         return graph::connectedRandomGeometric(n, 0.35, rng);
       }},
      {"regular3",
       [](std::size_t n, graph::Rng& rng) {
         return graph::randomRegular(n % 2 == 0 ? n : n + 1, 3, rng);
       }},
  };
}

using SoakParam =
    std::tuple<ProtocolCase, TopologyCase, std::size_t, std::uint64_t>;

class ProtocolSoak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(ProtocolSoak, StabilizesToVerifiedPredicate) {
  const auto& [protocol, topology, n, seed] = GetParam();
  graph::Rng rng(hashCombine(seed, n));
  const Graph g = topology.make(n, rng);
  graph::Rng idRng(seed * 31 + n);
  const IdAssignment ids =
      IdAssignment::randomPermutation(g.order(), idRng);
  EXPECT_TRUE(protocol.run(g, ids, seed));
}

std::string soakName(const ::testing::TestParamInfo<SoakParam>& info) {
  std::string name = std::get<0>(info.param).name + "_" +
                     std::get<1>(info.param).name + "_n" +
                     std::to_string(std::get<2>(info.param)) + "_s" +
                     std::to_string(std::get<3>(info.param));
  // gtest parameter names must be alphanumeric/underscore only.
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ProtocolSoak,
    ::testing::Combine(::testing::ValuesIn(allProtocols()),
                       ::testing::ValuesIn(topologies()),
                       ::testing::Values<std::size_t>(12, 28),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    soakName);

}  // namespace
}  // namespace selfstab
