// Differential testing: several of the protocols have *unique* fixpoints
// characterized by simple sequential algorithms, so the distributed run can
// be checked against an independent implementation bit-for-bit.
//
//   * SIS: a configuration is stable iff x(i) = [no bigger neighbor with
//     x=1], and that recurrence has exactly one solution — the greedy MIS in
//     decreasing ID order. So SIS must land on that set from EVERY start.
//   * Grundy coloring: same argument; unique fixpoint = greedy coloring in
//     decreasing ID order.
//   * BFS tree: unique fixpoint = BFS distances + min-ID parents (already
//     covered by the verifier; here we add cross-protocol agreement).
//   * SMM: the fixpoint is NOT unique, but under a central daemon the same
//     rules (Hsu-Huang) must land in the same *predicate* class.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/baselines.hpp"
#include "analysis/verifiers.hpp"
#include "core/coloring.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::ColorState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

// Sequential reference: greedy MIS scanning vertices in decreasing ID order.
std::vector<Vertex> greedyMisByDescendingId(const Graph& g,
                                            const IdAssignment& ids) {
  std::vector<Vertex> order(g.order());
  for (Vertex v = 0; v < g.order(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](Vertex a, Vertex b) { return ids.less(b, a); });
  return analysis::greedyMaximalIndependentSet(g, order);
}

// Sequential reference: greedy coloring in decreasing ID order, each vertex
// taking the mex of its already-colored (i.e. bigger) neighbors.
std::vector<std::uint32_t> greedyColoringByDescendingId(
    const Graph& g, const IdAssignment& ids) {
  std::vector<Vertex> order(g.order());
  for (Vertex v = 0; v < g.order(); ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](Vertex a, Vertex b) { return ids.less(b, a); });
  std::vector<std::uint32_t> color(g.order(), 0);
  std::vector<bool> done(g.order(), false);
  for (const Vertex v : order) {
    std::vector<bool> used(g.degree(v) + 1, false);
    for (const Vertex w : g.neighbors(v)) {
      if (done[w] && color[w] < used.size()) used[color[w]] = true;
    }
    std::uint32_t c = 0;
    while (c < used.size() && used[c]) ++c;
    color[v] = c;
    done[v] = true;
  }
  return color;
}

TEST(Differential, SisFixpointEqualsGreedyDescendingMisFromAnyStart) {
  graph::Rng rng(401);
  const core::SisProtocol sis;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = graph::connectedErdosRenyi(25, 0.15, rng);
    graph::Rng idRng(trial);
    const IdAssignment ids =
        IdAssignment::randomSparse(g.order(), idRng);
    const auto expected = greedyMisByDescendingId(g, ids);

    // Three very different starting configurations.
    for (int start = 0; start < 3; ++start) {
      std::vector<BitState> states(g.order());
      if (start == 1) {
        states.assign(g.order(), BitState{true});
      } else if (start == 2) {
        states = engine::randomConfiguration<BitState>(
            g, rng, core::randomBitState);
      }
      SyncRunner<BitState> runner(sis, g, ids);
      ASSERT_TRUE(runner.run(states, g.order() + 1).stabilized);
      EXPECT_EQ(analysis::membersOf(states), expected)
          << "trial " << trial << " start " << start;
    }
  }
}

TEST(Differential, ColoringFixpointEqualsGreedyDescendingColoring) {
  graph::Rng rng(403);
  const core::ColoringProtocol coloring;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = graph::connectedErdosRenyi(22, 0.18, rng);
    graph::Rng idRng(trial + 50);
    const IdAssignment ids = IdAssignment::randomSparse(g.order(), idRng);
    const auto expected = greedyColoringByDescendingId(g, ids);

    auto states = engine::randomConfiguration<ColorState>(
        g, rng, core::randomColorState);
    SyncRunner<ColorState> runner(coloring, g, ids);
    ASSERT_TRUE(runner.run(states, g.order() + 1).stabilized);
    for (Vertex v = 0; v < g.order(); ++v) {
      EXPECT_EQ(states[v].color, expected[v]) << "trial " << trial
                                              << " vertex " << v;
    }
  }
}

TEST(Differential, SisUniquenessMakesItOrderInsensitiveInOutcome) {
  // Corollary worth pinning: the SIS result depends only on (graph, IDs),
  // never on the execution history. Re-running with different fault bursts
  // mid-way must land on the same set.
  graph::Rng rng(405);
  const core::SisProtocol sis;
  const Graph g = graph::connectedErdosRenyi(30, 0.12, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());

  std::vector<BitState> reference(g.order());
  SyncRunner<BitState> refRunner(sis, g, ids);
  ASSERT_TRUE(refRunner.run(reference, g.order() + 1).stabilized);

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BitState> states(g.order());
    SyncRunner<BitState> runner(sis, g, ids);
    // Run a few rounds, inject a fault burst, then finish.
    for (int r = 0; r < 3; ++r) runner.step(states);
    engine::corruptConfiguration(states, g, rng, 0.3, core::randomBitState);
    ASSERT_TRUE(runner.run(states, g.order() + 1).stabilized);
    EXPECT_EQ(states, reference) << "trial " << trial;
  }
}

TEST(Differential, SmmFixpointsVaryButPredicateClassAgrees) {
  // SMM's fixpoint is schedule- and start-dependent; what is invariant is
  // the predicate (maximal matching) and the 2-approximation band. Document
  // both by finding two starts with different final matchings.
  graph::Rng rng(407);
  const core::SmmProtocol smm = core::smmPaper();
  const Graph g = graph::cycle(8);
  const IdAssignment ids = IdAssignment::identity(8);

  std::vector<std::vector<core::PointerState>> finals;
  for (int trial = 0; trial < 10; ++trial) {
    auto states = engine::randomConfiguration<core::PointerState>(
        g, rng, core::randomPointerState);
    SyncRunner<core::PointerState> runner(smm, g, ids);
    ASSERT_TRUE(runner.run(states, 12).stabilized);
    ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok());
    finals.push_back(std::move(states));
  }
  bool anyDifferent = false;
  for (std::size_t i = 1; i < finals.size(); ++i) {
    anyDifferent |= !(finals[i] == finals[0]);
  }
  EXPECT_TRUE(anyDifferent);  // multiple legitimate fixpoints exist
}

}  // namespace
}  // namespace selfstab
