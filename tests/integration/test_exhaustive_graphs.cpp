// Brute-force sweeps over ALL labeled graphs on small vertex sets: every
// graph on 4 and 5 vertices (64 + 1024 of them) x every initial
// configuration. This is the strongest correctness evidence short of a
// mechanized proof: Theorems 1 and 2 hold on the entire
// (graph, configuration) product space we can afford to enumerate.
#include <gtest/gtest.h>

#include "analysis/verifiers.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/graph.hpp"
#include "graph/rng.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;
using graph::Vertex;

// Builds the labeled graph on n vertices whose edge set is given by the
// bits of `mask` over the pairs (0,1),(0,2),(1,2),(0,3),... (column order).
Graph graphFromMask(std::size_t n, std::uint64_t mask) {
  Graph g(n);
  std::size_t bit = 0;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u, ++bit) {
      if ((mask >> bit) & 1u) g.addEdge(u, v);
    }
  }
  return g;
}

TEST(ExhaustiveGraphs, SmmTheorem1OnAllGraphsOn4Vertices) {
  const core::SmmProtocol smm = core::smmPaper();
  const IdAssignment ids = IdAssignment::identity(4);
  std::size_t totalRuns = 0;
  for (std::uint64_t mask = 0; mask < 64; ++mask) {
    const Graph g = graphFromMask(4, mask);
    std::vector<std::vector<PointerState>> candidates(4);
    for (Vertex v = 0; v < 4; ++v) {
      candidates[v].push_back(PointerState{});
      for (const Vertex w : g.neighbors(v)) {
        candidates[v].push_back(PointerState{w});
      }
    }
    engine::enumerateConfigurations(
        candidates, [&](const std::vector<PointerState>& start) {
          SyncRunner<PointerState> runner(smm, g, ids);
          auto states = start;
          const auto result = runner.run(states, 6);
          ASSERT_TRUE(result.stabilized) << "mask " << mask;
          ASSERT_LE(result.rounds, 5u) << "mask " << mask;  // n + 1
          ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok())
              << "mask " << mask;
          ++totalRuns;
        });
  }
  // 64 graphs, sum over graphs of prod(deg_v + 1) configurations = 3112
  // (e.g. K4 alone contributes 4^4 = 256).
  EXPECT_EQ(totalRuns, 3112u);
}

TEST(ExhaustiveGraphs, SisTheorem2OnAllGraphsOn4Vertices) {
  const core::SisProtocol sis;
  const IdAssignment ids = IdAssignment::identity(4);
  std::size_t totalRuns = 0;
  for (std::uint64_t mask = 0; mask < 64; ++mask) {
    const Graph g = graphFromMask(4, mask);
    std::vector<std::vector<BitState>> candidates(
        4, {BitState{false}, BitState{true}});
    engine::enumerateConfigurations(
        candidates, [&](const std::vector<BitState>& start) {
          SyncRunner<BitState> runner(sis, g, ids);
          auto states = start;
          const auto result = runner.run(states, 5);
          ASSERT_TRUE(result.stabilized) << "mask " << mask;
          ASSERT_LE(result.rounds, 4u) << "mask " << mask;  // n
          ASSERT_TRUE(analysis::isMaximalIndependentSet(
              g, analysis::membersOf(states)))
              << "mask " << mask;
          ++totalRuns;
        });
  }
  EXPECT_EQ(totalRuns, 64u * 16u);
}

TEST(ExhaustiveGraphs, SisAllGraphsOn5VerticesAllConfigs) {
  // 1024 graphs x 32 configurations x <= 6 rounds: still cheap for SIS.
  const core::SisProtocol sis;
  const IdAssignment ids = IdAssignment::identity(5);
  for (std::uint64_t mask = 0; mask < 1024; ++mask) {
    const Graph g = graphFromMask(5, mask);
    std::vector<std::vector<BitState>> candidates(
        5, {BitState{false}, BitState{true}});
    engine::enumerateConfigurations(
        candidates, [&](const std::vector<BitState>& start) {
          SyncRunner<BitState> runner(sis, g, ids);
          auto states = start;
          const auto result = runner.run(states, 6);
          ASSERT_TRUE(result.stabilized) << "mask " << mask;
          ASSERT_LE(result.rounds, 5u) << "mask " << mask;
          ASSERT_TRUE(analysis::isMaximalIndependentSet(
              g, analysis::membersOf(states)))
              << "mask " << mask;
        });
  }
}

TEST(ExhaustiveGraphs, SmmAllGraphsOn5VerticesAllConfigs) {
  // SMM's configuration space per graph is prod(deg+1) (up to 5^5 = 3125
  // for K5); the total over all 1024 labeled graphs is a few hundred
  // thousand runs — cheap enough to sweep completely.
  const core::SmmProtocol smm = core::smmPaper();
  const IdAssignment ids = IdAssignment::identity(5);
  for (std::uint64_t mask = 0; mask < 1024; ++mask) {
    const Graph g = graphFromMask(5, mask);
    std::vector<std::vector<PointerState>> candidates(5);
    for (Vertex v = 0; v < 5; ++v) {
      candidates[v].push_back(PointerState{});
      for (const Vertex w : g.neighbors(v)) {
        candidates[v].push_back(PointerState{w});
      }
    }
    engine::enumerateConfigurations(
        candidates, [&](const std::vector<PointerState>& start) {
          SyncRunner<PointerState> runner(smm, g, ids);
          auto states = start;
          const auto result = runner.run(states, 7);
          ASSERT_TRUE(result.stabilized) << "mask " << mask;
          ASSERT_LE(result.rounds, 6u) << "mask " << mask;
          ASSERT_TRUE(analysis::checkMatchingFixpoint(g, states).ok())
              << "mask " << mask;
        });
  }
}

TEST(ExhaustiveGraphs, ArbitraryR2LivelocksOnlyWhereExpected) {
  // Sweep the Successor-policy variant over all graphs on 4 vertices from
  // the all-null start: the paper's C4 counterexample must show up among
  // the livelocking instances, and min-ID SMM must stabilize on every one
  // of the same instances.
  const core::SmmProtocol broken = core::smmArbitrary(core::Choice::Successor);
  const core::SmmProtocol fixed = core::smmPaper();
  const IdAssignment ids = IdAssignment::identity(4);
  std::size_t livelocks = 0;
  bool c4Livelocks = false;
  for (std::uint64_t mask = 0; mask < 64; ++mask) {
    const Graph g = graphFromMask(4, mask);
    const std::vector<PointerState> allNull(4);
    const auto bad = engine::traceTrajectory(broken, g, ids, allNull, 200);
    if (bad.cycled) {
      ++livelocks;
      // C4 as labeled graph 0-1-2-3-0: edges (0,1),(1,2),(2,3),(0,3).
      if (g.size() == 4 && g.hasEdge(0, 1) && g.hasEdge(1, 2) &&
          g.hasEdge(2, 3) && g.hasEdge(0, 3)) {
        c4Livelocks = true;
      }
    }
    const auto good = engine::traceTrajectory(fixed, g, ids, allNull, 200);
    ASSERT_TRUE(good.stabilized) << "mask " << mask;
  }
  EXPECT_TRUE(c4Livelocks);
  EXPECT_GT(livelocks, 0u);
}

}  // namespace
}  // namespace selfstab
