// Experiment E9 — solution quality.
//
// The protocols guarantee maximality, which classically pins quality:
//   * a maximal matching has at least half the edges of a maximum matching,
//   * a maximal independent set is a minimal dominating set.
// We measure where SMM/SIS actually land relative to greedy baselines and
// (on small instances) exact optima.
#include <functional>
#include <iostream>
#include <numeric>

#include "analysis/baselines.hpp"
#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::BitState;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E9: solution quality vs baselines",
                "maximality pins SMM within 2x of the maximum matching; SIS "
                "output is simultaneously an MIS and a minimal dominating "
                "set");

  bool allOk = true;
  graph::Rng rng(0xE9);
  const core::SmmProtocol smm = core::smmPaper();
  const core::SisProtocol sis;

  // Matching quality vs exact optimum (small n for the exact DP).
  {
    std::cout << "Matching size vs exact maximum (n=18, 25 instances):\n";
    Table table({"graph family", "SMM/OPT mean", "SMM/OPT min", "greedy/OPT "
                 "mean", ">= 0.5 always"});
    struct FamilyCase {
      std::string name;
      std::function<Graph(graph::Rng&)> make;
    };
    const std::vector<FamilyCase> families{
        {"gnp(18,.15)",
         [](graph::Rng& r) { return graph::connectedErdosRenyi(18, 0.15, r); }},
        {"gnp(18,.3)",
         [](graph::Rng& r) { return graph::connectedErdosRenyi(18, 0.3, r); }},
        {"udg(18,.35)",
         [](graph::Rng& r) {
           return graph::connectedRandomGeometric(18, 0.35, r);
         }},
        {"tree(18)", [](graph::Rng& r) { return graph::randomTree(18, r); }},
    };
    for (const auto& family : families) {
      std::vector<double> smmRatio;
      std::vector<double> greedyRatio;
      bool halfAlways = true;
      for (int t = 0; t < 25; ++t) {
        const Graph g = family.make(rng);
        const IdAssignment ids = IdAssignment::identity(g.order());
        std::vector<PointerState> states;
        const auto result =
            engine::runFromClean(smm, g, ids, g.order() + 2, &states);
        allOk &= result.stabilized;
        const double smmSize =
            static_cast<double>(analysis::matchedEdges(g, states).size());
        const double optimum =
            static_cast<double>(analysis::maximumMatchingSize(g));
        const double greedySize =
            static_cast<double>(analysis::greedyMaximalMatching(g).size());
        if (optimum > 0) {
          smmRatio.push_back(smmSize / optimum);
          greedyRatio.push_back(greedySize / optimum);
          halfAlways &= smmSize * 2.0 >= optimum;
        }
      }
      allOk &= halfAlways;
      table.addRow(family.name, analysis::summarize(smmRatio).mean,
                   analysis::summarize(smmRatio).min,
                   analysis::summarize(greedyRatio).mean,
                   halfAlways ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  // Independent set quality vs greedy and (small n) exact.
  {
    std::cout << "Independent set size (n=40, 25 instances):\n";
    Table table({"graph family", "SIS/OPT mean", "greedy/OPT mean",
                 "SIS dominates (minimal)"});
    struct FamilyCase {
      std::string name;
      std::function<Graph(graph::Rng&)> make;
    };
    const std::vector<FamilyCase> families{
        {"gnp(40,.1)",
         [](graph::Rng& r) { return graph::connectedErdosRenyi(40, 0.1, r); }},
        {"udg(40,.3)",
         [](graph::Rng& r) {
           return graph::connectedRandomGeometric(40, 0.3, r);
         }},
        {"tree(40)", [](graph::Rng& r) { return graph::randomTree(40, r); }},
    };
    for (const auto& family : families) {
      std::vector<double> sisRatio;
      std::vector<double> greedyRatio;
      bool domAlways = true;
      for (int t = 0; t < 25; ++t) {
        const Graph g = family.make(rng);
        const IdAssignment ids = IdAssignment::identity(g.order());
        std::vector<BitState> states;
        const auto result =
            engine::runFromClean(sis, g, ids, g.order() + 1, &states);
        allOk &= result.stabilized;
        const auto members = analysis::membersOf(states);
        const double optimum =
            static_cast<double>(analysis::maximumIndependentSetSize(g));
        sisRatio.push_back(static_cast<double>(members.size()) / optimum);
        greedyRatio.push_back(
            static_cast<double>(
                analysis::greedyMaximalIndependentSet(g).size()) /
            optimum);
        domAlways &= analysis::isMinimalDominatingSet(g, members);
      }
      allOk &= domAlways;
      table.addRow(family.name, analysis::summarize(sisRatio).mean,
                   analysis::summarize(greedyRatio).mean,
                   domAlways ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  // Dominating-set economy: SIS (as a dominating set) vs the exact minimum
  // dominating set.
  {
    std::cout << "SIS as dominating set vs exact minimum (n=24, 20 "
                 "instances):\n";
    Table table({"graph family", "|SIS|/|MinDom| mean", "max"});
    std::vector<double> ratio;
    for (int t = 0; t < 20; ++t) {
      const Graph g = graph::connectedErdosRenyi(24, 0.15, rng);
      const IdAssignment ids = IdAssignment::identity(24);
      std::vector<BitState> states;
      allOk &= engine::runFromClean(sis, g, ids, 30, &states).stabilized;
      const auto members = analysis::membersOf(states);
      ratio.push_back(
          static_cast<double>(members.size()) /
          static_cast<double>(analysis::minimumDominatingSetSize(g)));
    }
    const auto s = analysis::summarize(ratio);
    table.addRow("gnp(24,.15)", s.mean, s.max);
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "SMM always within 2x of optimum; SIS always an MIS and a "
                 "minimal dominating set");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
