// Experiment E2 — Lemmas 1, 9, 10.
//
//   Lemma 1:  M_t ⊆ M_{t+1} (the matched set only grows).
//   Lemma 10: for t >= 1, if any move happens at time t+1 then
//             |M_{t+2}| >= |M_t| + 2.
//
// We trace |M_t| across full runs and print a sample trace plus aggregate
// violation counts (which must be zero).
#include <algorithm>
#include <iostream>
#include <set>

#include "analysis/verifiers.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

std::set<graph::Edge> matchedSet(const Graph& g,
                                 const std::vector<PointerState>& states) {
  const auto edges = analysis::matchedEdges(g, states);
  return {edges.begin(), edges.end()};
}

int run() {
  bench::banner("E2: growth of the matched set (Lemmas 1, 9, 10)",
                "matched nodes never unmatch; while active, |M| gains >= 2 "
                "nodes every 2 rounds");

  const core::SmmProtocol smm = core::smmPaper();
  graph::Rng rng(0xE2);

  // Sample trace on one instance, for the record.
  {
    std::cout << "Sample |M_t| trace (path(20), adversarial start):\n";
    const Graph g = graph::path(20);
    const IdAssignment ids = IdAssignment::identity(20);
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    Table table({"t", "|M_t| (nodes)", "moves at t"});
    table.addRow(0, matchedSet(g, states).size() * 2, "-");
    runner.run(states, 30,
               [&](std::size_t t, const std::vector<PointerState>&,
                   const std::vector<PointerState>& after,
                   std::size_t moves) {
                 table.addRow(t + 1, matchedSet(g, after).size() * 2, moves);
               });
    table.print();
    std::cout << '\n';
  }

  // Aggregate check across families, sizes, and random starts.
  std::size_t lemma1Violations = 0;
  std::size_t lemma10Violations = 0;
  std::size_t windowsChecked = 0;
  std::size_t runs = 0;

  Table table({"family", "n", "runs", "L1 viol.", "L10 windows",
               "L10 viol."});
  for (const auto& family : bench::standardFamilies()) {
    for (const std::size_t n : {24u, 48u}) {
      const Graph g = family.make(n, rng);
      const IdAssignment ids = IdAssignment::identity(g.order());
      std::size_t famWindows = 0;
      std::size_t famL10 = 0;
      std::size_t famL1 = 0;
      constexpr int kTrials = 15;
      for (int t = 0; t < kTrials; ++t) {
        auto states = engine::randomConfiguration<PointerState>(
            g, rng, core::randomPointerState);
        SyncRunner<PointerState> runner(smm, g, ids);
        std::vector<std::size_t> counts{matchedSet(g, states).size() * 2};
        const auto result = runner.run(
            states, g.order() + 2,
            [&](std::size_t, const std::vector<PointerState>& before,
                const std::vector<PointerState>& after, std::size_t) {
              const auto b = matchedSet(g, before);
              const auto a = matchedSet(g, after);
              if (!std::includes(a.begin(), a.end(), b.begin(), b.end())) {
                ++famL1;
              }
              counts.push_back(a.size() * 2);
            });
        ++runs;
        for (std::size_t w = 1; w + 2 < counts.size(); ++w) {
          if (w + 2 <= result.rounds) {
            ++famWindows;
            if (counts[w + 2] < counts[w] + 2) ++famL10;
          }
        }
      }
      lemma1Violations += famL1;
      lemma10Violations += famL10;
      windowsChecked += famWindows;
      table.addRow(family.name, g.order(), kTrials, famL1, famWindows,
                   famL10);
    }
  }
  table.print();
  std::cout << "\ntotal runs: " << runs
            << ", Lemma 10 windows checked: " << windowsChecked << '\n';

  const bool ok = lemma1Violations == 0 && lemma10Violations == 0;
  bench::verdict(ok, "zero violations of Lemma 1 and Lemma 10 growth");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
