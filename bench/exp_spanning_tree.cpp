// Experiment E11 — the spanning-tree substrate of the introduction.
//
// "a minimal spanning tree must be maintained to minimize latency and
//  bandwidth requirements of multicast/broadcast messages" (Section 1,
//  refs [13, 14]). We measure the self-stabilizing BFS-tree protocol in the
//  same methodology as E1/E4: stabilization rounds vs n from clean and
//  adversarial starts, exactness of the resulting tree, and recovery after
//  topology churn.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/bfs_tree.hpp"
#include "core/leader_tree.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/algorithms.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::BfsTreeProtocol;
using core::TreeState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E11: self-stabilizing BFS multicast tree (Section 1, "
                "refs [13,14])",
                "the tree protocol stabilizes in O(diam) rounds from clean "
                "starts and O(n) from arbitrary states, to the exact "
                "shortest-path tree");

  bool allOk = true;
  graph::Rng rng(0xE11);

  {
    std::cout << "Stabilization rounds (20 trials per row):\n";
    Table table({"family", "n", "diam", "clean worst", "arbitrary worst",
                 "bound 2n", "exact tree"});
    for (const auto& family : bench::standardFamilies()) {
      for (const std::size_t n : {32u, 64u}) {
        const Graph g = family.make(n, rng);
        const IdAssignment ids = IdAssignment::identity(g.order());
        const auto cap = static_cast<std::uint32_t>(g.order());
        const BfsTreeProtocol bfs(ids.idOf(0), cap);
        const std::size_t diam = graph::diameter(g);

        std::size_t cleanWorst = 0;
        std::size_t arbWorst = 0;
        bool exact = true;
        for (int t = 0; t < 20; ++t) {
          SyncRunner<TreeState> runner(bfs, g, ids);
          auto states = t == 0 ? runner.initialStates()
                               : engine::randomConfiguration<TreeState>(
                                     g, rng, core::randomTreeState);
          const bool clean = t == 0;
          const auto result = runner.run(states, 3 * g.order());
          allOk &= result.stabilized;
          exact &= analysis::isShortestPathTree(g, ids, 0, cap, states);
          if (clean) {
            cleanWorst = std::max(cleanWorst, result.rounds);
            allOk &= result.rounds <= diam + 2;
          } else {
            arbWorst = std::max(arbWorst, result.rounds);
            allOk &= result.rounds <= 2 * g.order();
          }
        }
        allOk &= exact;
        table.addRow(family.name, g.order(), diam, cleanWorst, arbWorst,
                     2 * g.order(), exact ? "yes" : "NO");
      }
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "Recovery after k link flips on a stabilized tree "
                 "(gnp(100,5/n), 20 trials per row):\n";
    Table table({"k flips", "mean rounds", "max rounds", "exact always"});
    const std::size_t n = 100;
    for (const std::size_t k : {1u, 4u, 16u}) {
      std::vector<double> rounds;
      bool exactAlways = true;
      for (int t = 0; t < 20; ++t) {
        Graph g = graph::connectedErdosRenyi(
            n, 5.0 / static_cast<double>(n), rng);
        const IdAssignment ids = IdAssignment::identity(n);
        const auto cap = static_cast<std::uint32_t>(n);
        const BfsTreeProtocol bfs(ids.idOf(0), cap);
        SyncRunner<TreeState> runner(bfs, g, ids);
        auto states = runner.initialStates();
        allOk &= runner.run(states, 3 * n).stabilized;

        engine::perturbTopology(g, rng, k, /*keepConnected=*/true);
        SyncRunner<TreeState> rerun(bfs, g, ids);
        const auto result = rerun.run(states, 3 * n);
        allOk &= result.stabilized;
        exactAlways &= analysis::isShortestPathTree(g, ids, 0, cap, states);
        rounds.push_back(static_cast<double>(result.rounds));
      }
      allOk &= exactAlways;
      const auto s = analysis::summarize(rounds);
      table.addRow(k, s.mean, s.max, exactAlways ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "Rootless variant — leader election + tree, starting from "
                 "states full of fake root IDs (20 trials per row):\n";
    Table table({"family", "n", "worst rounds", "budget 3n", "exact always"});
    for (const auto& family : bench::standardFamilies()) {
      const std::size_t n = 48;
      const Graph g = family.make(n, rng);
      const IdAssignment ids = IdAssignment::identity(g.order());
      const core::LeaderTreeProtocol protocol(
          static_cast<std::uint32_t>(g.order()));
      std::size_t worst = 0;
      bool exact = true;
      for (int t = 0; t < 20; ++t) {
        SyncRunner<core::LeaderState> runner(protocol, g, ids);
        auto states = t == 0 ? runner.initialStates()
                             : engine::randomConfiguration<core::LeaderState>(
                                   g, rng, core::randomLeaderState);
        const auto result = runner.run(states, 3 * g.order());
        allOk &= result.stabilized;
        exact &= analysis::isLeaderTree(g, ids, states);
        worst = std::max(worst, result.rounds);
      }
      allOk &= exact;
      table.addRow(family.name, g.order(), worst, 3 * g.order(),
                   exact ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "BFS tree stabilizes within the analytic bounds and always "
                 "matches the ground-truth shortest-path tree; the rootless "
                 "leader-tree variant flushes fake roots and agrees");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
