// Scale benchmark and hard performance gate for the beacon simulator's
// spatial-index rework.
//
// Two stages, both on a geometric deployment with loss, MAC collisions, and
// random-waypoint mobility all enabled (radius 1.2/sqrt(n) keeps expected
// degree constant, the regime where one beacon interval should cost
// O(n * deg) — not O(n^2)):
//
//  1. Gate at n = 10^5: the grid+calendar simulator and the scan+heap
//     reference run the same slice of simulated time. Their trajectories
//     must be bit-identical, the wall-clock speedup must be >= 10x, and the
//     exact-distance-check count must shrink >= 20x.
//  2. Demo at n = 10^6 over 20 beacon intervals, grid only (the reference
//     would take hours): the reference cost is extrapolated from stage 1's
//     measured seconds-per-range-check and checks-per-beacon (both scale
//     linearly in n), and the extrapolated speedup must be >= 10x.
//
// Exits non-zero if any gate fails. Results append to $SELFSTAB_BENCH_JSON
// (see bench/support/bench_json.hpp). SELFSTAB_SCALE_GATE_N /
// SELFSTAB_SCALE_DEMO_N override the sizes for smoke runs.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "adhoc/mobility.hpp"
#include "adhoc/network.hpp"
#include "bench/support/bench_json.hpp"
#include "core/sis.hpp"
#include "graph/geometry.hpp"
#include "graph/id_order.hpp"

namespace {

using namespace selfstab;
using adhoc::IndexMode;
using adhoc::QueueMode;
using adhoc::SimTime;

struct RunResult {
  double seconds = 0.0;
  adhoc::NetworkStats stats;
  adhoc::IndexStats index;
  std::vector<core::BitState> states;
};

adhoc::NetworkConfig makeConfig(std::size_t n) {
  adhoc::NetworkConfig cfg;
  cfg.seed = 42;
  cfg.radius = 1.2 / std::sqrt(static_cast<double>(n));
  cfg.lossProbability = 0.05;
  cfg.collisionWindow = cfg.beaconInterval / 20;
  return cfg;
}

RunResult runOnce(std::size_t n, SimTime until, IndexMode index,
                  QueueMode queue) {
  adhoc::NetworkConfig cfg = makeConfig(n);
  cfg.index = index;
  cfg.queue = queue;

  graph::Rng rng(hashCombine(42, n));
  adhoc::RandomWaypoint::Config wp;
  wp.speedMin = 0.005;
  wp.speedMax = 0.01;
  adhoc::RandomWaypoint mobility(graph::randomPoints(n, rng), wp,
                                 hashCombine(7, n));
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  const core::SisProtocol sis;
  adhoc::NetworkSimulator<core::BitState> sim(sis, ids, mobility, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  sim.run(until);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.stats = sim.stats();
  out.index = sim.indexStats();
  out.states = sim.states();
  return out;
}

std::size_t envSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long long v = std::strtoll(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

bool require(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  const std::size_t gateN = envSize("SELFSTAB_SCALE_GATE_N", 100'000);
  const std::size_t demoN = envSize("SELFSTAB_SCALE_DEMO_N", 1'000'000);
  bool ok = true;

  // ---- Stage 1: measured gate at gateN -----------------------------------
  const adhoc::NetworkConfig gateCfg = makeConfig(gateN);
  // A slice of one interval is enough for ~n/8 beacons; the reference costs
  // O(n) per beacon either way, and a full interval would take minutes.
  const SimTime gateUntil = gateCfg.beaconInterval / 8;
  std::printf("scale_network stage 1: n=%zu, %lld us of simulated time\n",
              gateN, static_cast<long long>(gateUntil));

  const RunResult grid =
      runOnce(gateN, gateUntil, IndexMode::Grid, QueueMode::Calendar);
  std::printf("  grid+calendar: %.3fs, %zu beacons, %zu range checks\n",
              grid.seconds, grid.stats.beaconsSent, grid.index.rangeChecks);
  const RunResult ref =
      runOnce(gateN, gateUntil, IndexMode::Scan, QueueMode::Heap);
  std::printf("  scan+heap    : %.3fs, %zu beacons, %zu range checks\n",
              ref.seconds, ref.stats.beaconsSent, ref.index.rangeChecks);

  const double speedup = ref.seconds / grid.seconds;
  const double checkRatio = static_cast<double>(ref.index.rangeChecks) /
                            static_cast<double>(grid.index.rangeChecks);
  std::printf("  wall speedup %.1fx, range-check reduction %.1fx\n", speedup,
              checkRatio);
  ok &= require(grid.states == ref.states, "bit-identical states");
  ok &= require(grid.stats == ref.stats, "identical NetworkStats");
  ok &= require(speedup >= 10.0, "wall-clock speedup >= 10x");
  ok &= require(checkRatio >= 20.0, "range-check reduction >= 20x");

  bench::appendBenchJson(
      "scale_network_gate",
      {{"n", static_cast<double>(gateN)},
       {"sim_us", static_cast<double>(gateUntil)},
       {"grid_seconds", grid.seconds},
       {"ref_seconds", ref.seconds},
       {"speedup", speedup},
       {"grid_range_checks", static_cast<double>(grid.index.rangeChecks)},
       {"ref_range_checks", static_cast<double>(ref.index.rangeChecks)},
       {"check_ratio", checkRatio},
       {"beacons", static_cast<double>(grid.stats.beaconsSent)}});

  // ---- Stage 2: million-node demo, reference extrapolated ----------------
  const adhoc::NetworkConfig demoCfg = makeConfig(demoN);
  const SimTime demoUntil = 20 * demoCfg.beaconInterval;
  std::printf("scale_network stage 2: n=%zu, 20 beacon intervals\n", demoN);
  const RunResult demo =
      runOnce(demoN, demoUntil, IndexMode::Grid, QueueMode::Calendar);
  std::printf("  grid+calendar: %.1fs, %zu beacons, %zu range checks\n",
              demo.seconds, demo.stats.beaconsSent, demo.index.rangeChecks);

  // The reference does O(n) range checks per beacon (broadcast scan plus a
  // full scan per in-range receiver when collisions are on); both the
  // per-beacon check count and the per-check cost were measured in stage 1.
  const double refChecksPerBeacon =
      static_cast<double>(ref.index.rangeChecks) /
      static_cast<double>(ref.stats.beaconsSent);
  const double refSecondsPerCheck =
      ref.seconds / static_cast<double>(ref.index.rangeChecks);
  const double extrapolatedChecks =
      refChecksPerBeacon *
      (static_cast<double>(demoN) / static_cast<double>(gateN)) *
      static_cast<double>(demo.stats.beaconsSent);
  const double extrapolatedSeconds = extrapolatedChecks * refSecondsPerCheck;
  const double demoSpeedup = extrapolatedSeconds / demo.seconds;
  std::printf("  extrapolated reference: %.0fs (%.2e checks) -> %.0fx\n",
              extrapolatedSeconds, extrapolatedChecks, demoSpeedup);
  ok &= require(demoSpeedup >= 10.0, "extrapolated speedup >= 10x");

  bench::appendBenchJson(
      "scale_network_demo",
      {{"n", static_cast<double>(demoN)},
       {"sim_us", static_cast<double>(demoUntil)},
       {"grid_seconds", demo.seconds},
       {"beacons", static_cast<double>(demo.stats.beaconsSent)},
       {"grid_range_checks", static_cast<double>(demo.index.rangeChecks)},
       {"extrapolated_ref_seconds", extrapolatedSeconds},
       {"extrapolated_speedup", demoSpeedup}});

  std::printf("scale_network: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
