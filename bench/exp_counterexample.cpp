// Experiment E5 — the Section 3 counterexample.
//
// "It is interesting to note that in rule R2 of Algorithm SMM, it is
//  necessary that i select a minimum neighbor j, rather than an arbitrary
//  neighbor. For if we were to omit this requirement, the algorithm may not
//  stabilize: Consider a four cycle, with all pointers initially null, which
//  repeatedly select their clockwise neighbor using rule R2, and then
//  execute rule R3."
//
// We replay exactly that schedule (the Successor policy) on C4 and larger
// cycles, certify non-stabilization by exhibiting a repeated global
// configuration, and show that (a) min-ID selection fixes the very same
// instances, and (b) the broken rule is still fine under a central daemon.
#include <iostream>

#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/smm.hpp"
#include "engine/cycle_detection.hpp"
#include "engine/daemons.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E5: necessity of min-ID selection in R2 (Section 3 remark)",
                "arbitrary-choice R2 livelocks on cycles under the "
                "synchronous model; min-ID choice stabilizes");

  bool allOk = true;

  {
    std::cout << "Synchronous model, all-null start:\n";
    Table table({"graph", "R2 policy", "outcome", "cycle start",
                 "cycle len", "rounds"});
    for (const std::size_t n : {4u, 6u, 8u, 12u, 16u}) {
      const Graph g = graph::cycle(n);
      const IdAssignment ids = IdAssignment::identity(n);
      const std::vector<PointerState> allNull(n);

      const core::SmmProtocol broken =
          core::smmArbitrary(core::Choice::Successor);
      const auto bad = engine::traceTrajectory(broken, g, ids, allNull, 5000);
      table.addRow("cycle(" + std::to_string(n) + ")", "successor",
                   bad.cycled ? "LIVELOCK (certified)" : "stabilized",
                   bad.cycled ? std::to_string(bad.cycleStart) : "-",
                   bad.cycled ? std::to_string(bad.cycleLength) : "-",
                   bad.rounds);
      allOk &= bad.cycled && !bad.stabilized;

      const core::SmmProtocol fixed = core::smmPaper();
      const auto good = engine::traceTrajectory(fixed, g, ids, allNull, 5000);
      table.addRow("cycle(" + std::to_string(n) + ")", "min-id",
                   good.stabilized ? "stabilized" : "LIVELOCK", "-", "-",
                   good.rounds);
      allOk &= good.stabilized && good.rounds <= n + 1;
    }
    table.print();
    std::cout << '\n';
  }

  // The First (adjacency-order) policy is also "arbitrary": show at least
  // one instance where it livelocks too, to stress that the phenomenon is
  // about arbitrariness, not about the specific clockwise schedule.
  {
    std::cout << "Other arbitrary policies on C4 (all-null start):\n";
    Table table({"R2 policy", "outcome", "cycle len"});
    const Graph g = graph::cycle(4);
    const IdAssignment ids = IdAssignment::identity(4);
    const std::vector<PointerState> allNull(4);
    for (const core::Choice policy :
         {core::Choice::Successor, core::Choice::MaxId, core::Choice::First,
          core::Choice::MinId}) {
      const core::SmmProtocol protocol(policy, core::Choice::First);
      const auto result =
          engine::traceTrajectory(protocol, g, ids, allNull, 5000);
      table.addRow(std::string(core::toString(policy)),
                   result.cycled ? "LIVELOCK" : "stabilized",
                   result.cycled ? std::to_string(result.cycleLength) : "-");
      // Only two outcomes are pinned: the paper's clockwise schedule must
      // livelock, and the paper's min-ID rule must stabilize. MaxId/First
      // happen to escape on this instance (their round-1 choices collide
      // into a matched pair) — "may not stabilize" is existential, and the
      // Successor row is the witness.
      if (policy == core::Choice::MinId) allOk &= result.stabilized;
      if (policy == core::Choice::Successor) allOk &= result.cycled;
    }
    table.print();
    std::cout << '\n';
  }

  // Same broken rule under a central daemon: stabilizes (the requirement is
  // a synchronous-model artifact).
  {
    std::cout << "Broken policy under a central daemon (random schedule):\n";
    Table table({"graph", "trials", "stabilized", "maximal"});
    graph::Rng rng(0xE5);
    for (const std::size_t n : {4u, 8u, 16u}) {
      const Graph g = graph::cycle(n);
      const IdAssignment ids = IdAssignment::identity(n);
      const core::SmmProtocol broken =
          core::smmArbitrary(core::Choice::Successor);
      int stabilized = 0;
      int maximal = 0;
      constexpr int kTrials = 20;
      for (int t = 0; t < kTrials; ++t) {
        engine::CentralDaemonRunner<PointerState> runner(
            broken, g, ids, engine::CentralPolicy::Random,
            static_cast<std::uint64_t>(t) + n);
        std::vector<PointerState> states(n);
        const auto result = runner.run(states, 100000);
        stabilized += result.stabilized ? 1 : 0;
        maximal +=
            analysis::checkMatchingFixpoint(g, states).ok() ? 1 : 0;
      }
      allOk &= stabilized == kTrials && maximal == kTrials;
      table.addRow("cycle(" + std::to_string(n) + ")", kTrials, stabilized,
                   maximal);
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "arbitrary R2 livelocks synchronously (period-2 certified), "
                 "min-ID R2 stabilizes, central daemon is unaffected");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
