// Microbenchmarks: cost of the telemetry instruments themselves, and their
// end-to-end effect on SyncRunner::step. The disabled path (null registry)
// is the one that matters — it must be indistinguishable from an
// uninstrumented engine, which support/overhead.hpp asserts behaviorally
// before any timing starts.
#include <benchmark/benchmark.h>

#include <sstream>

#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "support/overhead.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab {
namespace {

using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

void BM_CounterInc(benchmark::State& state) {
  telemetry::Counter c;
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterInc);

// Contended path: the parallel runner's workers share moves_total.
void BM_CounterIncContended(benchmark::State& state) {
  static telemetry::Counter c;
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterIncContended)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  telemetry::Gauge g;
  double v = 0.0;
  for (auto _ : state) {
    g.set(v);
    v += 0.5;
  }
  benchmark::DoNotOptimize(g.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram h(telemetry::durationBuckets());
  double v = 1e-7;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.01 : 1e-7;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramObserve);

// The disabled timer: no sink, no clock read. This is what every
// instrumented scope costs when telemetry is off.
void BM_ScopedTimerNull(benchmark::State& state) {
  for (auto _ : state) {
    const telemetry::ScopedTimer t(nullptr);
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ScopedTimerNull);

void BM_ScopedTimerActive(benchmark::State& state) {
  telemetry::Histogram h(telemetry::durationBuckets());
  for (auto _ : state) {
    const telemetry::ScopedTimer t(&h);
    benchmark::DoNotOptimize(&t);
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_ScopedTimerActive);

void BM_EventLogEmit(benchmark::State& state) {
  std::ostringstream sink;
  telemetry::EventLog log(sink);
  std::size_t round = 0;
  for (auto _ : state) {
    log.emit("round", {{"executor", "sync"}, {"round", round}, {"moves", 3}});
    ++round;
    if (round % 4096 == 0) {
      state.PauseTiming();
      sink.str({});  // keep the buffer from growing without bound
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_EventLogEmit);

enum class Wiring { Bare, NullAttached, Instrumented };

// End-to-end: one synchronous round of SMM, with telemetry absent, attached
// but null (the production default), and fully attached. Bare and
// NullAttached should be statistically indistinguishable.
void stepBench(benchmark::State& state, Wiring wiring) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g =
      graph::connectedErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();

  telemetry::Registry registry;
  SyncRunner<PointerState> runner(smm, g, ids);
  if (wiring == Wiring::NullAttached) {
    runner.attachTelemetry(nullptr, nullptr);
  } else if (wiring == Wiring::Instrumented) {
    runner.attachTelemetry(&registry, nullptr);
  }

  for (auto _ : state) {
    state.PauseTiming();
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_SyncStepBare(benchmark::State& state) {
  stepBench(state, Wiring::Bare);
}
void BM_SyncStepNullAttached(benchmark::State& state) {
  stepBench(state, Wiring::NullAttached);
}
void BM_SyncStepInstrumented(benchmark::State& state) {
  stepBench(state, Wiring::Instrumented);
}
BENCHMARK(BM_SyncStepBare)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SyncStepNullAttached)->Arg(1024)->Arg(4096);
BENCHMARK(BM_SyncStepInstrumented)->Arg(1024)->Arg(4096);

}  // namespace
}  // namespace selfstab

int main(int argc, char** argv) {
  // Hard gate before timing anything: disabled telemetry must not change
  // behavior at all.
  selfstab::bench::assertNullRegistryZeroOverhead();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
