// Chaos soak gate: the fault-campaign subsystem must be free when unused,
// deterministic when used, and must never stretch recovery past the paper's
// stabilization bounds.
//
// Three gates, each fatal on failure (non-zero exit):
//
//  1. Zero-cost-when-off: a beacon run with the chaos state block attached
//     but an empty plan is bit-identical to a plain run (states AND stats)
//     and costs < 2% extra wall clock (best-of-N, interleaved, on a run
//     big enough that the guard branches dominate any allocation noise).
//  2. Determinism: the same (seed, plan) replays byte-identically across
//     repeated runs and across every IndexMode x QueueMode combination —
//     final states, network stats, and per-fault recovery records.
//  3. Recovery bounds: randomized template campaigns over the abstract
//     engine re-stabilize SMM within 2n+1 rounds and SIS within n rounds of
//     every injected fault (measured from each fault, per Theorems 1-2).
//
// Results append to $SELFSTAB_BENCH_JSON (bench/support/bench_json.hpp).
// SELFSTAB_CHAOS_GATE_N and SELFSTAB_CHAOS_OVERHEAD_PCT override the
// overhead-stage size/threshold for smoke runs on noisy machines.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "adhoc/mobility.hpp"
#include "adhoc/network.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/bench_json.hpp"
#include "chaos/campaign.hpp"
#include "chaos/injector.hpp"
#include "chaos/monitors.hpp"
#include "chaos/plan.hpp"
#include "chaos/safety.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "graph/id_order.hpp"

namespace {

using namespace selfstab;
using adhoc::SimTime;

int failures = 0;

void gate(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++failures;
}

std::size_t envSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

double envDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name)) {
    const double v = std::strtod(env, nullptr);
    if (v > 0) return v;
  }
  return fallback;
}

std::vector<graph::Point> placement(std::size_t n, double radius,
                                    std::uint64_t seed) {
  graph::Rng rng(seed);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(n, radius, rng, &pts);
  return pts;
}

// ---------------------------------------------------------------------------
// Gate 1: empty plan == no plan, in bits and (almost) in wall clock.

struct TimedRun {
  double seconds = 0.0;
  std::vector<core::BitState> states;
  adhoc::NetworkStats stats;
};

TimedRun timedSisRun(const std::vector<graph::Point>& pts, double radius,
                     bool attachChaos) {
  adhoc::NetworkConfig cfg;
  cfg.seed = 1234;
  cfg.radius = radius;
  cfg.lossProbability = 0.05;
  adhoc::StaticPlacement mobility(pts);
  const auto ids = graph::IdAssignment::identity(pts.size());
  const core::SisProtocol sis;
  adhoc::NetworkSimulator<core::BitState> sim(sis, ids, mobility, cfg);
  if (attachChaos) sim.chaosAttach(1.0);
  const auto t0 = std::chrono::steady_clock::now();
  sim.run(40 * cfg.beaconInterval);
  const auto t1 = std::chrono::steady_clock::now();
  TimedRun out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.states = sim.states();
  out.stats = sim.stats();
  return out;
}

void overheadGate() {
  const std::size_t n = envSize("SELFSTAB_CHAOS_GATE_N", 4000);
  const double threshold = envDouble("SELFSTAB_CHAOS_OVERHEAD_PCT", 2.0);
  const double radius = 1.4 / std::sqrt(static_cast<double>(n));
  const auto pts = placement(n, radius, 99);
  std::printf("gate 1: empty-plan overhead, n=%zu, best of 7\n", n);

  double bestPlain = 1e30;
  double bestAttached = 1e30;
  TimedRun plain;
  TimedRun attached;
  for (int rep = 0; rep < 7; ++rep) {  // interleaved: same thermal regime
    plain = timedSisRun(pts, radius, false);
    attached = timedSisRun(pts, radius, true);
    bestPlain = std::min(bestPlain, plain.seconds);
    bestAttached = std::min(bestAttached, attached.seconds);
  }
  const bool identical =
      plain.states == attached.states && plain.stats == attached.stats;
  const double overheadPct = 100.0 * (bestAttached - bestPlain) / bestPlain;
  gate(identical, "attached empty plan is bit-identical to plain run");
  char line[160];
  std::snprintf(line, sizeof line,
                "overhead %.2f%% (plain %.4fs, attached %.4fs, limit %.1f%%)",
                overheadPct, bestPlain, bestAttached, threshold);
  gate(overheadPct < threshold, line);
  bench::appendBenchJson(
      "chaos_empty_plan_overhead",
      {{"n", static_cast<double>(n)},
       {"plain_s", bestPlain},
       {"attached_s", bestAttached},
       {"overhead_pct", overheadPct},
       {"identical", identical ? 1.0 : 0.0}});
}

// ---------------------------------------------------------------------------
// Gate 2: determinism across modes and runs.

struct SimCampaignRun {
  std::vector<core::PointerState> states;
  adhoc::NetworkStats stats;
  std::vector<chaos::RecoveryMonitor::Record> records;
};

SimCampaignRun simCampaign(std::size_t n, std::uint64_t seed,
                           adhoc::IndexMode index, adhoc::QueueMode queue) {
  adhoc::NetworkConfig cfg;
  cfg.seed = seed;
  cfg.index = index;
  cfg.queue = queue;
  adhoc::StaticPlacement mobility(placement(n, cfg.radius, seed));
  const auto ids = graph::IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  adhoc::NetworkSimulator<core::PointerState> sim(smm, ids, mobility, cfg);
  const chaos::FaultPlan plan = chaos::makeCampaign("churn", seed, n);
  chaos::RecoveryMonitor monitor;
  chaos::SimChaosController<core::PointerState,
                            decltype(&core::randomPointerState)>
      controller(sim, plan, hashCombine(seed, 0xC4A05ULL),
                 &core::randomPointerState, cfg.beaconInterval, monitor);
  sim.runUntilQuiet(5 * cfg.beaconInterval,
                    controller.noQuietBefore() + 4000 * cfg.beaconInterval,
                    controller.noQuietBefore());
  controller.finalize();
  SimCampaignRun out;
  out.states = sim.states();
  out.stats = sim.stats();
  out.records = monitor.records();
  return out;
}

bool sameRecords(const std::vector<chaos::RecoveryMonitor::Record>& a,
                 const std::vector<chaos::RecoveryMonitor::Record>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].at != b[i].at || a[i].kind != b[i].kind ||
        a[i].injected != b[i].injected ||
        a[i].recoveryRounds != b[i].recoveryRounds ||
        a[i].containmentRadius != b[i].containmentRadius ||
        a[i].recovered != b[i].recovered) {
      return false;
    }
  }
  return true;
}

void determinismGate() {
  const std::size_t n = 20;
  std::printf("gate 2: cross-mode + cross-run determinism, n=%zu\n", n);
  const auto reference =
      simCampaign(n, 7, adhoc::IndexMode::Grid, adhoc::QueueMode::Calendar);
  const auto rerun =
      simCampaign(n, 7, adhoc::IndexMode::Grid, adhoc::QueueMode::Calendar);
  gate(reference.states == rerun.states && reference.stats == rerun.stats &&
           sameRecords(reference.records, rerun.records),
       "same (seed, plan) replays identically");

  bool crossMode = true;
  for (const auto index : {adhoc::IndexMode::Grid, adhoc::IndexMode::Scan}) {
    for (const auto queue :
         {adhoc::QueueMode::Calendar, adhoc::QueueMode::Heap}) {
      const auto run = simCampaign(n, 7, index, queue);
      crossMode = crossMode && run.states == reference.states &&
                  run.stats == reference.stats &&
                  sameRecords(run.records, reference.records);
    }
  }
  gate(crossMode, "identical across index {grid,scan} x queue "
                  "{calendar,heap}");
  bench::appendBenchJson("chaos_determinism",
                         {{"n", static_cast<double>(n)},
                          {"faults", static_cast<double>(
                               reference.records.size())},
                          {"cross_mode_ok", crossMode ? 1.0 : 0.0}});
}

// ---------------------------------------------------------------------------
// Gate 3: paper recovery bounds under randomized campaigns (engine).

template <typename State, typename Protocol, typename Sampler>
bool engineCampaignWithinBound(const Protocol& protocol, Sampler sampler,
                               const chaos::SafetyCheck<State>& safety,
                               std::size_t n, std::uint64_t seed,
                               const char* name, std::size_t bound,
                               std::size_t* worstRecovery) {
  Rng rng(hashCombine(seed, 0x706CULL));
  graph::Graph g = graph::connectedRandomGeometric(n, 0.35, rng);
  const auto ids = graph::IdAssignment::identity(n);
  engine::SyncRunner<State> runner(protocol, g, ids, seed);
  std::vector<State> states;
  for (graph::Vertex v = 0; v < n; ++v) {
    states.push_back(protocol.initialState(v));
  }
  chaos::RecoveryMonitor monitor;
  const chaos::CampaignResult result = chaos::runEngineCampaign(
      runner, protocol, g, ids, states, chaos::makeCampaign(name, seed, n),
      hashCombine(seed, 0xC4A05ULL), bound, sampler, &monitor, safety);
  bool ok = result.recoveredAll && result.finalFixpoint;
  for (const auto& r : monitor.records()) {
    ok = ok && r.recoveryRounds <= bound;
    *worstRecovery = std::max(*worstRecovery, r.recoveryRounds);
  }
  return ok;
}

void recoveryBoundGate() {
  std::printf("gate 3: paper recovery bounds over randomized campaigns\n");
  const char* templates[] = {"churn", "crash-storm", "rolling-partition"};
  bool smmOk = true;
  bool sisOk = true;
  std::size_t worstSmm = 0;
  std::size_t worstSis = 0;
  std::size_t campaigns = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* name : templates) {
      const std::size_t n = 14 + 3 * static_cast<std::size_t>(seed);
      smmOk = engineCampaignWithinBound<core::PointerState>(
                  core::smmPaper(), &core::randomPointerState,
                  chaos::smmSafetyCheck(), n, seed, name, 2 * n + 1,
                  &worstSmm) &&
              smmOk;
      sisOk = engineCampaignWithinBound<core::BitState>(
                  core::SisProtocol(), &core::randomBitState,
                  chaos::sisSafetyCheck(), n, seed, name, n, &worstSis) &&
              sisOk;
      ++campaigns;
    }
  }
  char line[120];
  std::snprintf(line, sizeof line,
                "SMM recovers within 2n+1 after every fault (worst %zu)",
                worstSmm);
  gate(smmOk, line);
  std::snprintf(line, sizeof line,
                "SIS recovers within n after every fault (worst %zu)",
                worstSis);
  gate(sisOk, line);
  bench::appendBenchJson("chaos_recovery_bounds",
                         {{"campaigns", static_cast<double>(campaigns)},
                          {"worst_smm_recovery",
                           static_cast<double>(worstSmm)},
                          {"worst_sis_recovery",
                           static_cast<double>(worstSis)},
                          {"smm_ok", smmOk ? 1.0 : 0.0},
                          {"sis_ok", sisOk ? 1.0 : 0.0}});
}

}  // namespace

int main() {
  std::printf("soak_chaos: fault-campaign subsystem gates\n");
  overheadGate();
  determinismGate();
  recoveryBoundGate();
  if (failures != 0) {
    std::printf("soak_chaos: %d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("soak_chaos: all gates passed\n");
  return 0;
}
