// Experiment E10 — extensions (Section 1 motivation, Section 5 conclusions).
//
// The paper's introduction lists minimal dominating sets and minimal
// colorings among the global predicates this methodology maintains, and the
// conclusions claim centralized-model algorithms are "generally solvable
// using the synchronous model". We validate the two extensions built on the
// same framework:
//   * Grundy-style coloring (reference [7]) — native synchronous protocol,
//   * minimal dominating set — central-daemon rules deployed synchronously
//     via the [16]-style Synchronized wrapper.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/coloring.hpp"
#include "core/dominating_set.hpp"
#include "core/local_mutex.hpp"
#include "engine/daemons.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::ColorState;
using core::DomState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E10: extensions — coloring and minimal domination",
                "the same framework maintains a proper (Delta+1)-coloring in "
                "<= n rounds and a minimal dominating set via daemon "
                "refinement");

  bool allOk = true;
  graph::Rng rng(0xE10);

  {
    std::cout << "Grundy coloring (20 random starts per row):\n";
    Table table({"family", "n", "worst rounds", "bound n", "colors (max)",
                 "Delta+1", "proper always"});
    const core::ColoringProtocol coloring;
    for (const auto& family : bench::standardFamilies()) {
      for (const std::size_t n : {32u, 96u}) {
        const Graph g = family.make(n, rng);
        const IdAssignment ids = IdAssignment::identity(g.order());
        std::size_t worst = 0;
        std::uint32_t colorsMax = 0;
        bool properAlways = true;
        for (int t = 0; t < 20; ++t) {
          auto states = engine::randomConfiguration<ColorState>(
              g, rng, core::randomColorState);
          SyncRunner<ColorState> runner(coloring, g, ids);
          const auto result = runner.run(states, g.order() + 1);
          allOk &= result.stabilized && result.rounds <= g.order();
          properAlways &= analysis::isProperColoring(g, states);
          worst = std::max(worst, result.rounds);
          colorsMax = std::max(colorsMax, analysis::colorCount(states));
        }
        allOk &= properAlways && colorsMax <= g.maxDegree() + 1;
        table.addRow(family.name, g.order(), worst, g.order(), colorsMax,
                     g.maxDegree() + 1, properAlways ? "yes" : "NO");
      }
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "Minimal dominating set via Synchronized wrapper (15 "
                 "random starts per row):\n";
    Table table({"family", "n", "worst rounds", "|S| mean", "minimal-dom "
                 "always"});
    const core::Synchronized<core::DominatingSetProtocol> dom;
    for (const auto& family : bench::standardFamilies()) {
      const std::size_t n = 32;
      const Graph g = family.make(n, rng);
      const IdAssignment ids = IdAssignment::identity(g.order());
      std::size_t worst = 0;
      std::vector<double> sizes;
      bool minimalAlways = true;
      for (int t = 0; t < 15; ++t) {
        auto states = engine::randomConfiguration<DomState>(
            g, rng, core::randomDomState);
        SyncRunner<DomState> runner(dom, g, ids, static_cast<std::uint64_t>(t));
        const auto result = runner.run(states, 50000);
        allOk &= result.stabilized;
        const auto members = analysis::membersOf(states);
        minimalAlways &= analysis::isMinimalDominatingSet(g, members);
        worst = std::max(worst, result.rounds);
        sizes.push_back(static_cast<double>(members.size()));
      }
      allOk &= minimalAlways;
      table.addRow(family.name, g.order(), worst,
                   analysis::summarize(sizes).mean,
                   minimalAlways ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  {
    std::cout << "Minimal dominating set under a central daemon (moves):\n";
    Table table({"n", "mean moves", "max moves", "minimal always"});
    const core::DominatingSetProtocol dom;
    for (const std::size_t n : {16u, 32u, 64u}) {
      const Graph g =
          graph::connectedErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
      const IdAssignment ids = IdAssignment::identity(n);
      std::vector<double> moves;
      bool minimalAlways = true;
      for (int t = 0; t < 15; ++t) {
        auto states = engine::randomConfiguration<DomState>(
            g, rng, core::randomDomState);
        engine::CentralDaemonRunner<DomState> runner(
            dom, g, ids, engine::CentralPolicy::Random,
            static_cast<std::uint64_t>(t));
        const auto result = runner.run(states, n * n * 10);
        allOk &= result.stabilized;
        minimalAlways &=
            analysis::isMinimalDominatingSet(g, analysis::membersOf(states));
        moves.push_back(static_cast<double>(result.moves));
      }
      allOk &= minimalAlways;
      const auto s = analysis::summarize(moves);
      table.addRow(n, s.mean, s.max, minimalAlways ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "both extensions stabilize to their predicates on every "
                 "tested instance");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
