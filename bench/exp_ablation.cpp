// Experiment E12 — ablations of the design choices DESIGN.md calls out.
//
//   (a) SMM's R1 accept policy: the paper says a node "may select" any
//       proposer; the proofs are policy-independent. Measure all four
//       policies: rounds must stay within Theorem 1 for each, and quality
//       should be statistically indistinguishable.
//   (b) ID-order sensitivity: both algorithms consult IDs, so the *solution*
//       (not its correctness) depends on the assignment. Quantify the spread
//       of matching/IS sizes across orders — and the star graph pathology
//       for SIS (center holding the largest vs smallest ID).
//   (c) SIS seniority direction: LargerIdWins vs SmallerIdWins are mirror
//       images; both meet Theorem 2.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::BitState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E12: ablations — accept policy, ID orders, seniority",
                "R1 accept choice is immaterial (as the proofs claim); ID "
                "assignment shifts solution sizes without affecting "
                "correctness or bounds");

  bool allOk = true;
  graph::Rng rng(0xE12);

  // (a) Accept-policy ablation for SMM.
  {
    std::cout << "SMM accept-policy ablation (gnp(48,5/n), 40 random starts "
                 "each):\n";
    Table table({"accept policy", "mean rounds", "max rounds",
                 "mean pairs", "bound holds"});
    const Graph g = graph::connectedErdosRenyi(48, 5.0 / 48.0, rng);
    const IdAssignment ids = IdAssignment::identity(48);
    for (const core::Choice accept :
         {core::Choice::MinId, core::Choice::MaxId, core::Choice::First,
          core::Choice::Random}) {
      const core::SmmProtocol smm(core::Choice::MinId, accept);
      std::vector<double> rounds;
      std::vector<double> pairs;
      bool bound = true;
      for (int t = 0; t < 40; ++t) {
        auto states = engine::randomConfiguration<PointerState>(
            g, rng, core::randomPointerState);
        SyncRunner<PointerState> runner(smm, g, ids,
                                        static_cast<std::uint64_t>(t));
        const auto result = runner.run(states, g.order() + 2);
        bound &= result.stabilized && result.rounds <= g.order() + 1;
        bound &= analysis::checkMatchingFixpoint(g, states).ok();
        rounds.push_back(static_cast<double>(result.rounds));
        pairs.push_back(
            static_cast<double>(analysis::matchedEdges(g, states).size()));
      }
      allOk &= bound;
      table.addRow(std::string(core::toString(accept)),
                   analysis::summarize(rounds).mean,
                   analysis::summarize(rounds).max,
                   analysis::summarize(pairs).mean, bound ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  // (b) ID-order sensitivity.
  {
    std::cout << "ID-order sensitivity (clean starts):\n";
    Table table({"graph", "order", "SMM rounds", "SMM pairs", "SIS rounds",
                 "|SIS|"});
    struct OrderCase {
      std::string name;
      IdAssignment ids;
    };
    const std::vector<std::pair<std::string, Graph>> graphs{
        {"path(60)", graph::path(60)},
        {"star(40)", graph::star(40)},
        {"udg(48,.3)", graph::connectedRandomGeometric(48, 0.3, rng)},
    };
    for (const auto& [gname, g] : graphs) {
      graph::Rng idRng(5);
      const std::vector<OrderCase> orders{
          {"identity", IdAssignment::identity(g.order())},
          {"reversed", IdAssignment::reversed(g.order())},
          {"random", IdAssignment::randomPermutation(g.order(), idRng)},
      };
      for (const auto& order : orders) {
        const core::SmmProtocol smm = core::smmPaper();
        SyncRunner<PointerState> mr(smm, g, order.ids);
        auto mstates = mr.initialStates();
        const auto mres = mr.run(mstates, g.order() + 2);
        allOk &= mres.stabilized &&
                 analysis::checkMatchingFixpoint(g, mstates).ok();

        const core::SisProtocol sis;
        SyncRunner<BitState> sr(sis, g, order.ids);
        auto sstates = sr.initialStates();
        const auto sres = sr.run(sstates, g.order() + 1);
        allOk &= sres.stabilized &&
                 analysis::isMaximalIndependentSet(
                     g, analysis::membersOf(sstates));

        table.addRow(gname, order.name, mres.rounds,
                     analysis::matchedEdges(g, mstates).size(), sres.rounds,
                     analysis::membersOf(sstates).size());
      }
    }
    table.print();
    std::cout << "(on star(40): if the center holds the largest ID, SIS "
                 "elects only the center — |SIS|=1; otherwise all 39 "
                 "leaves — both are maximal independent sets)\n\n";
  }

  // (c) Seniority direction.
  {
    std::cout << "SIS seniority direction (gnp(48,5/n), 40 random starts "
                 "each):\n";
    Table table({"direction", "mean rounds", "max rounds", "mean |SIS|",
                 "bound holds"});
    const Graph g = graph::connectedErdosRenyi(48, 5.0 / 48.0, rng);
    const IdAssignment ids = IdAssignment::identity(48);
    for (const auto& [name, seniority] :
         std::vector<std::pair<std::string, core::Seniority>>{
             {"larger-id-wins", core::Seniority::LargerIdWins},
             {"smaller-id-wins", core::Seniority::SmallerIdWins}}) {
      const core::SisProtocol sis(seniority);
      std::vector<double> rounds;
      std::vector<double> sizes;
      bool bound = true;
      for (int t = 0; t < 40; ++t) {
        auto states = engine::randomConfiguration<BitState>(
            g, rng, core::randomBitState);
        SyncRunner<BitState> runner(sis, g, ids);
        const auto result = runner.run(states, g.order() + 1);
        bound &= result.stabilized && result.rounds <= g.order();
        bound &= analysis::isMaximalIndependentSet(
            g, analysis::membersOf(states));
        rounds.push_back(static_cast<double>(result.rounds));
        sizes.push_back(
            static_cast<double>(analysis::membersOf(states).size()));
      }
      allOk &= bound;
      table.addRow(name, analysis::summarize(rounds).mean,
                   analysis::summarize(rounds).max,
                   analysis::summarize(sizes).mean, bound ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "all ablation arms stay within the theorems' bounds; only "
                 "solution geometry shifts with ID assignment");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
