// Experiment E4 — Theorem 2.
//
// "Algorithm SIS stabilizes in O(n) rounds" — the proof sketch fixes one
// node per round in decreasing ID order, i.e. at most n rounds. We sweep
// families x sizes x ID orders from random configurations, check the n-round
// bound and MIS-ness at the fixpoint, and report how far below the bound
// typical runs land (the observed dependence tracks the ID-order "depth" of
// the graph, usually far smaller than n).
#include <algorithm>
#include <iostream>

#include "analysis/verifiers.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/sis.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::BitState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E4: SIS stabilization rounds vs n (Theorem 2)",
                "SIS stabilizes to a maximal independent set in at most n "
                "rounds from any configuration");

  bool allOk = true;
  const core::SisProtocol sis;
  graph::Rng rng(0xE4);

  Table table(
      {"family", "n", "trials", "worst", "mean", "bound n", "MIS always"});
  for (const auto& family : bench::standardFamilies()) {
    for (const std::size_t n : {16u, 32u, 64u, 128u}) {
      const Graph g = family.make(n, rng);
      std::size_t worst = 0;
      double sum = 0;
      std::size_t trials = 0;
      bool misAlways = true;
      for (const auto& order : bench::standardIdOrders()) {
        const IdAssignment ids = order.make(g.order(), rng);
        for (int t = 0; t < 20; ++t) {
          auto states =
              t == 0 ? std::vector<BitState>(g.order())
                     : engine::randomConfiguration<BitState>(
                           g, rng, core::randomBitState);
          SyncRunner<BitState> runner(sis, g, ids);
          const auto result = runner.run(states, g.order() + 1);
          allOk &= result.stabilized;
          allOk &= result.rounds <= g.order();
          misAlways &= analysis::isMaximalIndependentSet(
              g, analysis::membersOf(states));
          worst = std::max(worst, result.rounds);
          sum += static_cast<double>(result.rounds);
          ++trials;
        }
      }
      allOk &= misAlways;
      table.addRow(family.name, g.order(), trials, worst,
                   sum / static_cast<double>(trials), g.order(),
                   misAlways ? "yes" : "NO");
    }
  }
  table.print();
  std::cout << '\n';

  // Exhaustive worst case on small instances (all 2^n starts).
  {
    std::cout << "Exact worst case over all 2^n configurations:\n";
    Table exact({"graph", "n", "configs", "worst rounds", "bound n"});
    struct Instance {
      std::string name;
      Graph g;
    };
    const std::vector<Instance> instances{
        {"path(8)", graph::path(8)},
        {"cycle(8)", graph::cycle(8)},
        {"complete(8)", graph::complete(8)},
        {"star(8)", graph::star(8)},
        {"grid(2x4)", graph::grid(2, 4)},
        {"K(4,4)", graph::completeBipartite(4, 4)},
    };
    for (const auto& [name, g] : instances) {
      const IdAssignment ids = IdAssignment::identity(g.order());
      std::vector<std::vector<BitState>> candidates(
          g.order(), {BitState{false}, BitState{true}});
      std::size_t worst = 0;
      std::size_t configs = 0;
      engine::enumerateConfigurations(
          candidates, [&](const std::vector<BitState>& start) {
            SyncRunner<BitState> runner(sis, g, ids);
            auto states = start;
            const auto result = runner.run(states, g.order() + 1);
            allOk &= result.stabilized && result.rounds <= g.order();
            allOk &= analysis::isMaximalIndependentSet(
                g, analysis::membersOf(states));
            worst = std::max(worst, result.rounds);
            ++configs;
          });
      exact.addRow(name, g.order(), configs, worst, g.order());
    }
    exact.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "every run stabilized within n rounds to a maximal "
                 "independent set (Theorem 2)");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
