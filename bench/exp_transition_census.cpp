// Experiment E3 — Figures 2 and 3 (Lemmas 2-7).
//
// The paper partitions nodes into {M, A0, A1, PA, PM, PP} and restricts the
// per-round type transitions to the diagram of Figure 3. We run SMM from
// many adversarial configurations, record EVERY observed transition in a
// 6x6 census, and verify (a) all mass sits on legal edges, (b) A1 and PA are
// empty from round 1 on (Lemma 7).
#include <iostream>

#include "analysis/node_types.hpp"
#include "bench/support/families.hpp"
#include "bench/support/table.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"

namespace selfstab {
namespace {

using analysis::NodeType;
using analysis::TransitionCensus;
using bench::Table;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner(
      "E3: node-type transition census (Figures 2-3, Lemmas 2-7)",
      "observed transitions fall only on the Figure 3 diagram edges; A1 and "
      "PA vanish after round 0");

  const core::SmmProtocol smm = core::smmPaper();
  graph::Rng rng(0xE3);

  // One global census across all runs (per-vertex transition events).
  std::array<std::array<std::size_t, analysis::kNodeTypeCount>,
             analysis::kNodeTypeCount>
      global{};
  std::size_t illegal = 0;
  std::size_t lateA1Pa = 0;
  std::size_t transitions = 0;

  for (const auto& family : bench::standardFamilies()) {
    for (const std::size_t n : {16u, 32u, 64u}) {
      const Graph g = family.make(n, rng);
      const IdAssignment ids = IdAssignment::identity(g.order());
      for (int t = 0; t < 25; ++t) {
        auto states = engine::randomConfiguration<PointerState>(
            g, rng, core::randomPointerState);
        SyncRunner<PointerState> runner(smm, g, ids);
        TransitionCensus census(g);
        runner.run(states, g.order() + 2,
                   [&](std::size_t round,
                       const std::vector<PointerState>& before,
                       const std::vector<PointerState>& after, std::size_t) {
                     census.record(round, before, after);
                   });
        illegal += census.illegalCount();
        lateA1Pa += census.lateA1PaCount();
        transitions += census.transitionsRecorded();
        for (std::size_t i = 0; i < analysis::kNodeTypeCount; ++i) {
          for (std::size_t j = 0; j < analysis::kNodeTypeCount; ++j) {
            global[i][j] += census.counts()[i][j];
          }
        }
      }
    }
  }

  std::cout << "Aggregate 6x6 transition counts (rows: from, cols: to), "
            << transitions << " transitions total:\n";
  Table table({"from\\to", "M", "A0", "A1", "PA", "PM", "PP", "legal targets"});
  const char* legend[analysis::kNodeTypeCount] = {
      "M",  // -> M
      "A0", "A1", "PA", "PM", "PP"};
  const char* legalTargets[analysis::kNodeTypeCount] = {
      "M", "A0,M,PM,PP", "M (t=0 only)", "M,PM (t=0 only)", "A0", "A0"};
  // Table rows in the paper's reading order.
  const NodeType order[] = {NodeType::M,  NodeType::A0, NodeType::A1,
                            NodeType::PA, NodeType::PM, NodeType::PP};
  const std::size_t columnOrder[] = {
      static_cast<std::size_t>(NodeType::M),
      static_cast<std::size_t>(NodeType::A0),
      static_cast<std::size_t>(NodeType::A1),
      static_cast<std::size_t>(NodeType::PA),
      static_cast<std::size_t>(NodeType::PM),
      static_cast<std::size_t>(NodeType::PP)};
  for (const NodeType from : order) {
    const auto f = static_cast<std::size_t>(from);
    table.addRow(legend[f], global[f][columnOrder[0]],
                 global[f][columnOrder[1]], global[f][columnOrder[2]],
                 global[f][columnOrder[3]], global[f][columnOrder[4]],
                 global[f][columnOrder[5]], legalTargets[f]);
  }
  table.print();

  std::cout << "\nillegal transitions: " << illegal
            << "\nA1/PA occurrences after round 0 (Lemma 7): " << lateA1Pa
            << '\n';

  // Also confirm the census actually exercised every legal edge family at
  // least once (otherwise the check would be vacuous).
  const bool covered =
      global[static_cast<std::size_t>(NodeType::A0)]
            [static_cast<std::size_t>(NodeType::M)] > 0 &&
      global[static_cast<std::size_t>(NodeType::PM)]
            [static_cast<std::size_t>(NodeType::A0)] > 0 &&
      global[static_cast<std::size_t>(NodeType::PP)]
            [static_cast<std::size_t>(NodeType::A0)] > 0 &&
      global[static_cast<std::size_t>(NodeType::A1)]
            [static_cast<std::size_t>(NodeType::M)] > 0 &&
      global[static_cast<std::size_t>(NodeType::PA)]
            [static_cast<std::size_t>(NodeType::M)] +
              global[static_cast<std::size_t>(NodeType::PA)]
                    [static_cast<std::size_t>(NodeType::PM)] >
          0;
  std::cout << "all legal edge families exercised: "
            << (covered ? "yes" : "NO") << '\n';

  const bool ok = illegal == 0 && lateA1Pa == 0 && covered;
  bench::verdict(ok, "transition diagram of Figure 3 holds exactly");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
