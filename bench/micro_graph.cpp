// Microbenchmarks for the graph substrate.
#include <benchmark/benchmark.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace selfstab::graph {
namespace {

void BM_AddRemoveEdge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Graph g = connectedErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto u = static_cast<Vertex>(mix64(i) % n);
    auto v = static_cast<Vertex>(mix64(i + 1) % n);
    if (v == u) v = (v + 1) % static_cast<Vertex>(n);
    benchmark::DoNotOptimize(g.toggleEdge(u, v));
    ++i;
  }
}
BENCHMARK(BM_AddRemoveEdge)->Arg(256)->Arg(4096);

void BM_NeighborScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Graph g = connectedErdosRenyi(n, 8.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    std::size_t total = 0;
    for (Vertex v = 0; v < g.order(); ++v) {
      for (const Vertex w : g.neighbors(v)) total += w;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * g.size()));
}
BENCHMARK(BM_NeighborScan)->Arg(256)->Arg(4096);

void BM_ErdosRenyiGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        erdosRenyi(n, 6.0 / static_cast<double>(n), rng));
  }
}
BENCHMARK(BM_ErdosRenyiGeneration)->Arg(256)->Arg(1024);

void BM_UnitDiskGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto pts = randomPoints(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(unitDiskGraph(pts, 0.1));
  }
}
BENCHMARK(BM_UnitDiskGeneration)->Arg(256)->Arg(1024);

void BM_Bfs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Graph g = connectedErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfsDistances(g, 0));
  }
}
BENCHMARK(BM_Bfs)->Arg(256)->Arg(4096);

void BM_DegeneracyOrder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  const Graph g = connectedErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degeneracyOrder(g));
  }
}
BENCHMARK(BM_DegeneracyOrder)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace selfstab::graph

BENCHMARK_MAIN();
