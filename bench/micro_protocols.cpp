// Microbenchmarks: per-round and full-run protocol costs on the abstract
// synchronous engine. These size the engine itself (rule evaluation is
// O(deg) per node per round), independent of the paper's round-complexity
// results.
#include <benchmark/benchmark.h>

#include "analysis/node_types.hpp"
#include "core/coloring.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::ColorState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

Graph benchGraph(std::size_t n) {
  graph::Rng rng(n);
  return graph::connectedErdosRenyi(n, 6.0 / static_cast<double>(n), rng);
}

void BM_SmmSingleRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  graph::Rng rng(1);

  for (auto _ : state) {
    state.PauseTiming();
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SmmSingleRound)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SmmFullStabilization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  graph::Rng rng(2);

  for (auto _ : state) {
    state.PauseTiming();
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    SyncRunner<PointerState> runner(smm, g, ids);
    state.ResumeTiming();
    const auto result = runner.run(states, n + 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SmmFullStabilization)->Arg(64)->Arg(256)->Arg(1024);

void BM_SisSingleRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SisProtocol sis;
  graph::Rng rng(3);

  for (auto _ : state) {
    state.PauseTiming();
    auto states =
        engine::randomConfiguration<BitState>(g, rng, core::randomBitState);
    SyncRunner<BitState> runner(sis, g, ids);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_SisSingleRound)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SisFullStabilization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SisProtocol sis;
  graph::Rng rng(4);

  for (auto _ : state) {
    state.PauseTiming();
    auto states =
        engine::randomConfiguration<BitState>(g, rng, core::randomBitState);
    SyncRunner<BitState> runner(sis, g, ids);
    state.ResumeTiming();
    const auto result = runner.run(states, n + 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SisFullStabilization)->Arg(64)->Arg(256)->Arg(1024);

void BM_ColoringFullStabilization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::ColoringProtocol coloring;
  graph::Rng rng(5);

  for (auto _ : state) {
    state.PauseTiming();
    auto states = engine::randomConfiguration<ColorState>(
        g, rng, core::randomColorState);
    SyncRunner<ColorState> runner(coloring, g, ids);
    state.ResumeTiming();
    const auto result = runner.run(states, n + 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ColoringFullStabilization)->Arg(64)->Arg(256)->Arg(1024);

void BM_ParallelSmmRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  const core::SmmProtocol smm = core::smmPaper();
  graph::Rng rng(8);

  engine::ParallelSyncRunner<PointerState> runner(smm, g, ids, threads);
  for (auto _ : state) {
    state.PauseTiming();
    auto states = engine::randomConfiguration<PointerState>(
        g, rng, core::randomPointerState);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
// Wall-clock timing: the work happens on the pool threads, so CPU time of
// the driving thread would be meaningless.
BENCHMARK(BM_ParallelSmmRound)
    ->UseRealTime()
    ->Args({4096, 1})
    ->Args({4096, 2})
    ->Args({4096, 4})
    ->Args({16384, 1})
    ->Args({16384, 4});

void BM_ClassifyNodes(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = benchGraph(n);
  const IdAssignment ids = IdAssignment::identity(n);
  graph::Rng rng(6);
  const auto states = engine::randomConfiguration<PointerState>(
      g, rng, core::randomPointerState);

  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::classifyNodes(g, states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ClassifyNodes)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace selfstab

BENCHMARK_MAIN();
