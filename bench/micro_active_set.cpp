// Active-set scheduling microbench plus its acceptance gate.
//
// The scenario the schedule exists for: a large, near-converged network
// absorbs a small fault burst. Dense rounds still evaluate every node;
// active rounds evaluate only the dirty frontier around the burst. The
// gate in main() runs exactly that scenario on a ~100k-node unit-disk
// graph and exits non-zero unless the active schedule (a) performs at
// most one third of the dense schedule's rule evaluations and (b) is
// faster in wall-clock time — both measured before any benchmark timing.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "telemetry/telemetry.hpp"

namespace selfstab {
namespace {

using core::PointerState;
using engine::Schedule;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

// A connected unit-disk graph at roughly constant average degree: the
// ad hoc topology of the paper, at a size where O(n)-per-round matters.
Graph bigGeometric(std::size_t n, graph::Rng& rng) {
  const double radius = 2.2 / std::sqrt(static_cast<double>(n));
  return graph::connectedRandomGeometric(n, radius, rng);
}

struct RecoveryStats {
  std::uint64_t evaluations = 0;
  double seconds = 0.0;
  std::size_t rounds = 0;
};

// Stabilize from scratch, corrupt `faultFraction` of the nodes, then time
// the recovery run under `schedule`, counting rule evaluations via the
// active_nodes_total counter.
RecoveryStats measureRecovery(const Graph& g, const IdAssignment& ids,
                              Schedule schedule, double faultFraction) {
  const core::SmmProtocol smm = core::smmPaper();
  SyncRunner<PointerState> runner(smm, g, ids, /*seed=*/7, schedule);
  auto states = runner.initialStates();
  const std::size_t bound = 2 * g.order() + 1;
  if (!runner.run(states, bound).stabilized) {
    std::fprintf(stderr, "setup run failed to stabilize\n");
    std::exit(1);
  }

  graph::Rng faultRng(99);
  engine::corruptAndReschedule(runner, states, g, faultRng, faultFraction,
                               core::wildPointerState);

  telemetry::Registry registry;
  runner.attachTelemetry(&registry);
  const auto start = std::chrono::steady_clock::now();
  const engine::RunResult recovery = runner.run(states, bound);
  const auto stop = std::chrono::steady_clock::now();
  if (!recovery.stabilized) {
    std::fprintf(stderr, "recovery run failed to stabilize\n");
    std::exit(1);
  }

  RecoveryStats stats;
  stats.evaluations =
      registry.counterValue(telemetry::names::kActiveNodes);
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  stats.rounds = recovery.rounds;
  return stats;
}

// The acceptance gate: >= 3x fewer evaluations AND a wall-clock win on a
// near-converged ~100k-node geometric graph recovering from a 0.5% burst.
void assertActiveSetWins() {
  graph::Rng rng(42);
  const Graph g = bigGeometric(100'000, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());

  const RecoveryStats dense =
      measureRecovery(g, ids, Schedule::Dense, 0.005);
  const RecoveryStats active =
      measureRecovery(g, ids, Schedule::Active, 0.005);

  std::fprintf(stderr,
               "active-set gate: n=%zu m=%zu | dense %llu evals in %.3fs "
               "(%zu rounds) | active %llu evals in %.3fs (%zu rounds)\n",
               static_cast<std::size_t>(g.order()),
               static_cast<std::size_t>(g.size()),
               static_cast<unsigned long long>(dense.evaluations),
               dense.seconds, dense.rounds,
               static_cast<unsigned long long>(active.evaluations),
               active.seconds, active.rounds);

  if (active.evaluations * 3 > dense.evaluations) {
    std::fprintf(stderr,
                 "FAIL: active schedule ran %llu evaluations, more than a "
                 "third of dense's %llu\n",
                 static_cast<unsigned long long>(active.evaluations),
                 static_cast<unsigned long long>(dense.evaluations));
    std::exit(1);
  }
  if (active.seconds >= dense.seconds) {
    std::fprintf(stderr,
                 "FAIL: active schedule (%.3fs) not faster than dense "
                 "(%.3fs)\n",
                 active.seconds, dense.seconds);
    std::exit(1);
  }
}

// Timed benchmark: one recovery run (fault burst through re-stabilization)
// at smaller sizes, dense vs active.
void recoveryBench(benchmark::State& state, Schedule schedule) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g = bigGeometric(n, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());
  const core::SmmProtocol smm = core::smmPaper();
  const std::size_t bound = 2 * g.order() + 1;

  SyncRunner<PointerState> runner(smm, g, ids, /*seed=*/7, schedule);
  auto converged = runner.initialStates();
  if (!runner.run(converged, bound).stabilized) {
    state.SkipWithError("setup failed to stabilize");
    return;
  }

  std::uint64_t burst = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto states = converged;
    graph::Rng faultRng(1000 + burst++);
    engine::corruptAndReschedule(runner, states, g, faultRng, 0.005,
                                 core::wildPointerState);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.run(states, bound).rounds);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_RecoveryDense(benchmark::State& state) {
  recoveryBench(state, Schedule::Dense);
}
void BM_RecoveryActive(benchmark::State& state) {
  recoveryBench(state, Schedule::Active);
}
BENCHMARK(BM_RecoveryDense)->Arg(4096)->Arg(16384);
BENCHMARK(BM_RecoveryActive)->Arg(4096)->Arg(16384);

// A single step on an already-converged graph: the per-round floor of each
// schedule. Dense pays the full snapshot+evaluate sweep; active pays a
// reseed-free no-op round.
void quiescentStepBench(benchmark::State& state, Schedule schedule) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g = bigGeometric(n, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());
  const core::SisProtocol sis;
  SyncRunner<core::BitState> runner(sis, g, ids, /*seed=*/7, schedule);
  auto states = runner.initialStates();
  if (!runner.run(states, g.order()).stabilized) {
    state.SkipWithError("setup failed to stabilize");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

void BM_QuiescentStepDense(benchmark::State& state) {
  quiescentStepBench(state, Schedule::Dense);
}
void BM_QuiescentStepActive(benchmark::State& state) {
  quiescentStepBench(state, Schedule::Active);
}
BENCHMARK(BM_QuiescentStepDense)->Arg(4096)->Arg(65536);
BENCHMARK(BM_QuiescentStepActive)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace selfstab

int main(int argc, char** argv) {
  // Hard gate before timing anything: the active schedule must deliver the
  // promised evaluation reduction and a real wall-clock win at scale.
  selfstab::assertActiveSetWins();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
