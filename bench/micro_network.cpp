// Microbenchmarks for the beacon-model simulator: events/second and cost of
// simulated protocol time, plus a machine-readable grid-vs-scan comparison
// appended to $SELFSTAB_BENCH_JSON before the google-benchmark run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "adhoc/network.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"
#include "support/bench_json.hpp"

namespace selfstab::adhoc {
namespace {

using core::BitState;
using core::PointerState;
using graph::IdAssignment;

std::vector<graph::Point> points(std::size_t n, std::uint64_t seed) {
  graph::Rng rng(seed);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(n, 0.3, rng, &pts);
  return pts;
}

void BM_BeaconSecondsSimulated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SisProtocol sis;
  const IdAssignment ids = IdAssignment::identity(n);
  for (auto _ : state) {
    state.PauseTiming();
    NetworkConfig config;
    config.seed = 9;
    StaticPlacement mobility(points(n, 5));
    NetworkSimulator<BitState> sim(sis, ids, mobility, config);
    state.ResumeTiming();
    sim.run(10 * kSecond);
    benchmark::DoNotOptimize(sim.stats().beaconsSent);
  }
}
BENCHMARK(BM_BeaconSecondsSimulated)->Arg(16)->Arg(64)->Arg(128);

void BM_MobileSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SmmProtocol smm = core::smmPaper();
  const IdAssignment ids = IdAssignment::identity(n);
  for (auto _ : state) {
    state.PauseTiming();
    NetworkConfig config;
    config.seed = 11;
    config.radius = 0.4;
    RandomWaypoint::Config wp;
    wp.speedMin = 0.02;
    wp.speedMax = 0.05;
    graph::Rng rng(7);
    RandomWaypoint mobility(graph::randomPoints(n, rng), wp, 3);
    NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
    state.ResumeTiming();
    sim.run(10 * kSecond);
    benchmark::DoNotOptimize(sim.stats().moves);
  }
}
BENCHMARK(BM_MobileSimulation)->Arg(16)->Arg(64);

// One measured grid-vs-scan data point at a size where the gap is already
// visible (n = 4096, two beacon intervals, collisions on). Also re-checks
// that both modes end bit-identical, so a perf regression hunt can trust
// the comparison.
void emitGridVsScan() {
  constexpr std::size_t kNodes = 4096;
  const core::SisProtocol sis;
  const IdAssignment ids = IdAssignment::identity(kNodes);

  const auto runMode = [&](IndexMode index, QueueMode queue, double* seconds) {
    NetworkConfig config;
    config.seed = 9;
    config.radius = 1.2 / std::sqrt(static_cast<double>(kNodes));
    config.lossProbability = 0.05;
    config.collisionWindow = config.beaconInterval / 20;
    config.index = index;
    config.queue = queue;
    StaticPlacement mobility(points(kNodes, 5));
    NetworkSimulator<BitState> sim(sis, ids, mobility, config);
    const auto t0 = std::chrono::steady_clock::now();
    sim.run(2 * config.beaconInterval);
    *seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return std::make_pair(sim.states(), sim.indexStats().rangeChecks);
  };

  double gridSeconds = 0.0;
  double scanSeconds = 0.0;
  const auto grid =
      runMode(IndexMode::Grid, QueueMode::Calendar, &gridSeconds);
  const auto scan = runMode(IndexMode::Scan, QueueMode::Heap, &scanSeconds);
  if (grid.first != scan.first) {
    std::fprintf(stderr,
                 "micro_network: grid and scan trajectories diverged\n");
    std::exit(1);
  }
  bench::appendBenchJson(
      "micro_network_grid_vs_scan",
      {{"n", static_cast<double>(kNodes)},
       {"grid_seconds", gridSeconds},
       {"scan_seconds", scanSeconds},
       {"speedup", scanSeconds / gridSeconds},
       {"grid_range_checks", static_cast<double>(grid.second)},
       {"scan_range_checks", static_cast<double>(scan.second)}});
}

}  // namespace
}  // namespace selfstab::adhoc

int main(int argc, char** argv) {
  selfstab::adhoc::emitGridVsScan();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
