// Microbenchmarks for the beacon-model simulator: events/second and cost of
// simulated protocol time.
#include <benchmark/benchmark.h>

#include "adhoc/network.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "graph/generators.hpp"

namespace selfstab::adhoc {
namespace {

using core::BitState;
using core::PointerState;
using graph::IdAssignment;

std::vector<graph::Point> points(std::size_t n, std::uint64_t seed) {
  graph::Rng rng(seed);
  std::vector<graph::Point> pts;
  graph::connectedRandomGeometric(n, 0.3, rng, &pts);
  return pts;
}

void BM_BeaconSecondsSimulated(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SisProtocol sis;
  const IdAssignment ids = IdAssignment::identity(n);
  for (auto _ : state) {
    state.PauseTiming();
    NetworkConfig config;
    config.seed = 9;
    StaticPlacement mobility(points(n, 5));
    NetworkSimulator<BitState> sim(sis, ids, mobility, config);
    state.ResumeTiming();
    sim.run(10 * kSecond);
    benchmark::DoNotOptimize(sim.stats().beaconsSent);
  }
}
BENCHMARK(BM_BeaconSecondsSimulated)->Arg(16)->Arg(64)->Arg(128);

void BM_MobileSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::SmmProtocol smm = core::smmPaper();
  const IdAssignment ids = IdAssignment::identity(n);
  for (auto _ : state) {
    state.PauseTiming();
    NetworkConfig config;
    config.seed = 11;
    config.radius = 0.4;
    RandomWaypoint::Config wp;
    wp.speedMin = 0.02;
    wp.speedMax = 0.05;
    graph::Rng rng(7);
    RandomWaypoint mobility(graph::randomPoints(n, rng), wp, 3);
    NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
    state.ResumeTiming();
    sim.run(10 * kSecond);
    benchmark::DoNotOptimize(sim.stats().moves);
  }
}
BENCHMARK(BM_MobileSimulation)->Arg(16)->Arg(64);

}  // namespace
}  // namespace selfstab::adhoc

BENCHMARK_MAIN();
