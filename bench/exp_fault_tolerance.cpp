// Experiment E6 — fault tolerance (Sections 1-2).
//
// "our algorithms ... can detect occasional link failures and/or new link
//  creations in the network (due to mobility of the hosts) and can readjust
//  the global predicates."
//
// Three fault channels, each measured as re-stabilization rounds after the
// event, on an already-stabilized system:
//   (a) topology churn: k random link flips,
//   (b) transient state corruption: a fraction of nodes scrambled,
//   (c) combined bursts.
// The headline number: recovery cost scales with the damage, not with n.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::BitState;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E6: re-stabilization after faults (Sections 1-2)",
                "after link failures/creations and transient corruption the "
                "protocols re-stabilize; cost scales with damage, not n");

  bool allOk = true;
  graph::Rng rng(0xE6);
  const core::SmmProtocol smm = core::smmPaper();
  const core::SisProtocol sis;

  // (a) SMM: recovery rounds vs number of link flips, for two sizes.
  {
    std::cout << "SMM: recovery after k link flips (G(n, 5/n), 30 trials "
                 "each):\n";
    Table table({"n", "k flips", "mean rounds", "max rounds", "recovered"});
    for (const std::size_t n : {50u, 200u}) {
      for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
        std::vector<double> rounds;
        bool recovered = true;
        for (int t = 0; t < 30; ++t) {
          Graph g = graph::connectedErdosRenyi(
              n, 5.0 / static_cast<double>(n), rng);
          const IdAssignment ids = IdAssignment::identity(n);
          std::vector<PointerState> states;
          engine::runFromClean(smm, g, ids, n + 2, &states);
          engine::perturbTopology(g, rng, k, /*keepConnected=*/true);
          SyncRunner<PointerState> runner(smm, g, ids);
          const auto result = runner.run(states, n + 3);
          recovered &= result.stabilized &&
                       analysis::checkMatchingFixpoint(g, states).ok();
          rounds.push_back(static_cast<double>(result.rounds));
        }
        const auto s = analysis::summarize(rounds);
        allOk &= recovered;
        table.addRow(n, k, s.mean, s.max, recovered ? "yes" : "NO");
      }
    }
    table.print();
    std::cout << '\n';
  }

  // (b) SMM: recovery vs corruption fraction at fixed n.
  {
    std::cout << "SMM: recovery after corrupting a fraction of nodes "
                 "(n=200, 30 trials each):\n";
    Table table(
        {"corrupt %", "mean rounds", "max rounds", "bound n+1", "recovered"});
    const std::size_t n = 200;
    for (const double frac : {0.01, 0.05, 0.10, 0.25, 0.50, 1.00}) {
      std::vector<double> rounds;
      bool recovered = true;
      for (int t = 0; t < 30; ++t) {
        Graph g =
            graph::connectedErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
        const IdAssignment ids = IdAssignment::identity(n);
        std::vector<PointerState> states;
        engine::runFromClean(smm, g, ids, n + 2, &states);
        engine::corruptConfiguration(states, g, rng, frac,
                                     core::randomPointerState);
        SyncRunner<PointerState> runner(smm, g, ids);
        const auto result = runner.run(states, n + 2);
        recovered &= result.stabilized &&
                     analysis::checkMatchingFixpoint(g, states).ok();
        rounds.push_back(static_cast<double>(result.rounds));
      }
      const auto s = analysis::summarize(rounds);
      allOk &= recovered;
      table.addRow(frac * 100.0, s.mean, s.max, n + 1,
                   recovered ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  // (c) SIS: same two channels.
  {
    std::cout << "SIS: recovery after faults (n=200, 30 trials each):\n";
    Table table({"fault", "mean rounds", "max rounds", "recovered"});
    const std::size_t n = 200;
    struct Scenario {
      std::string name;
      std::size_t flips;
      double corrupt;
    };
    for (const Scenario& sc :
         {Scenario{"4 link flips", 4, 0.0}, Scenario{"16 link flips", 16, 0.0},
          Scenario{"5% corrupt", 0, 0.05}, Scenario{"50% corrupt", 0, 0.50},
          Scenario{"16 flips + 10% corrupt", 16, 0.10}}) {
      std::vector<double> rounds;
      bool recovered = true;
      for (int t = 0; t < 30; ++t) {
        Graph g =
            graph::connectedErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
        const IdAssignment ids = IdAssignment::identity(n);
        std::vector<BitState> states;
        engine::runFromClean(sis, g, ids, n + 1, &states);
        if (sc.flips > 0) {
          engine::perturbTopology(g, rng, sc.flips, true);
        }
        if (sc.corrupt > 0) {
          engine::corruptConfiguration(states, g, rng, sc.corrupt,
                                       core::randomBitState);
        }
        SyncRunner<BitState> runner(sis, g, ids);
        const auto result = runner.run(states, n + 1);
        recovered &= result.stabilized &&
                     analysis::isMaximalIndependentSet(
                         g, analysis::membersOf(states));
        rounds.push_back(static_cast<double>(result.rounds));
      }
      const auto s = analysis::summarize(rounds);
      allOk &= recovered;
      table.addRow(sc.name, s.mean, s.max, recovered ? "yes" : "NO");
    }
    table.print();
    std::cout << '\n';
  }

  // (d) Locality: small fixed damage across growing n. Mean recovery rounds
  // must stay roughly flat (bounded), demonstrating local containment.
  {
    std::cout << "SMM locality: 4 link flips, growing n:\n";
    Table table({"n", "mean rounds", "max rounds"});
    double meanSmall = 0;
    double meanLarge = 0;
    for (const std::size_t n : {50u, 100u, 200u, 400u}) {
      std::vector<double> rounds;
      for (int t = 0; t < 20; ++t) {
        Graph g =
            graph::connectedErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
        const IdAssignment ids = IdAssignment::identity(n);
        std::vector<PointerState> states;
        engine::runFromClean(smm, g, ids, n + 2, &states);
        engine::perturbTopology(g, rng, 4, true);
        SyncRunner<PointerState> runner(smm, g, ids);
        const auto result = runner.run(states, n + 3);
        allOk &= result.stabilized;
        rounds.push_back(static_cast<double>(result.rounds));
      }
      const auto s = analysis::summarize(rounds);
      if (n == 50) meanSmall = s.mean;
      if (n == 400) meanLarge = s.mean;
      table.addRow(n, s.mean, s.max);
    }
    table.print();
    // "Flat" envelope: 8x n growth must not cost more than ~3x rounds.
    allOk &= meanLarge <= 3.0 * meanSmall + 3.0;
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "all fault scenarios re-stabilized to the correct predicate; "
                 "recovery cost tracks damage, not system size");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
