// Experiment E8 — the beacon execution model (Section 2).
//
// The paper's complexity unit is the beacon round: "a period of time in
// which each node in the system receives beacon messages from all its
// neighbors". We run the protocols over the discrete-event beacon simulator
// (periodic jittered beacons, neighbor timeouts, propagation delay, loss,
// mobility) and measure:
//   (a) stabilization time in beacon intervals vs abstract-engine rounds,
//   (b) message cost,
//   (c) degradation under beacon loss,
//   (d) re-stabilization after a mobility phase.
#include <iostream>

#include "adhoc/network.hpp"
#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using adhoc::NetworkConfig;
using adhoc::NetworkSimulator;
using adhoc::SimTime;
using adhoc::StaticPlacement;
using bench::Table;
using core::PointerState;
using graph::Graph;
using graph::IdAssignment;

struct Deployment {
  std::vector<graph::Point> points;
  Graph g;
};

Deployment deploy(std::size_t n, double radius, std::uint64_t seed) {
  graph::Rng rng(seed);
  Deployment d;
  d.g = graph::connectedRandomGeometric(n, radius, rng, &d.points);
  return d;
}

int run() {
  bench::banner("E8: protocols over the beacon substrate (Section 2)",
                "beacon-driven execution stabilizes in time proportional to "
                "abstract rounds x beacon interval, tolerating jitter, loss "
                "and mobility");

  bool allOk = true;
  const core::SmmProtocol smm = core::smmPaper();

  // (a)+(b): beacon rounds vs abstract rounds, and message cost.
  {
    std::cout << "SMM, static unit-disk deployments (10 seeds each):\n";
    Table table({"n", "abstract rounds (mean)", "beacon rounds (mean)",
                 "ratio", "beacons/node/round"});
    for (const std::size_t n : {16u, 32u, 64u}) {
      std::vector<double> abstractRounds;
      std::vector<double> beaconRounds;
      std::vector<double> msgPerNodeRound;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        NetworkConfig config;
        config.seed = seed;
        const auto d = deploy(n, config.radius, seed * 7 + n);
        const IdAssignment ids = IdAssignment::identity(n);

        std::vector<PointerState> states;
        const auto abstractResult =
            engine::runFromClean(smm, d.g, ids, n + 2, &states);
        allOk &= abstractResult.stabilized;
        abstractRounds.push_back(
            static_cast<double>(abstractResult.rounds));

        StaticPlacement mobility(d.points);
        NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
        const auto result = sim.runUntilQuiet(
            5 * config.beaconInterval,
            static_cast<SimTime>(4 * (n + 10)) * config.beaconInterval);
        allOk &= result.quiet;
        allOk &=
            analysis::checkMatchingFixpoint(sim.currentTopology(), sim.states())
                .ok();
        const double rounds = static_cast<double>(sim.lastMoveTime()) /
                              static_cast<double>(config.beaconInterval);
        beaconRounds.push_back(rounds);
        msgPerNodeRound.push_back(
            static_cast<double>(result.stats.beaconsSent) /
            (static_cast<double>(n) * sim.roundsElapsed()));
      }
      const auto sa = analysis::summarize(abstractRounds);
      const auto sb = analysis::summarize(beaconRounds);
      const auto sm = analysis::summarize(msgPerNodeRound);
      table.addRow(n, sa.mean, sb.mean, sb.mean / std::max(sa.mean, 1.0),
                   sm.mean);
    }
    table.print();
    std::cout << "(beacons/node/round ~ 1.0 by construction: the protocol "
                 "piggybacks on the link layer's beacons)\n\n";
  }

  // (c): beacon loss sweep, crossed with the neighbor-discovery timeout.
  // The paper assumes the link layer masks transient losses; residual loss
  // interacts with the timeout: once the chance of losing `timeoutFactor`
  // consecutive beacons stops being negligible, neighbor entries flap, links
  // appear to fail and reappear, and the protocol — correctly — keeps
  // readjusting forever. A loss-proportionate timeout restores quiescence.
  {
    std::cout << "SMM under beacon loss (n=24, 10 seeds each):\n";
    Table table({"loss prob", "timeout x", "stabilized",
                 "beacon rounds (mean)", "beacons lost (mean)"});
    struct LossCase {
      double loss;
      double timeoutFactor;
      int minQuiet;  ///< reproduction gate; -1 = report only
    };
    const LossCase cases[] = {
        {0.00, 2.5, 10}, {0.05, 2.5, 10}, {0.10, 2.5, 10},
        {0.20, 2.5, -1},  // onset of link flapping: sometimes slow
        {0.35, 2.5, -1},  // expected breakdown of the timeout assumption
        {0.35, 6.0, 7},   // loss-proportionate timeout restores convergence
    };
    for (const LossCase& lc : cases) {
      int quiet = 0;
      std::vector<double> rounds;
      std::vector<double> lost;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        NetworkConfig config;
        config.seed = seed;
        config.lossProbability = lc.loss;
        config.timeoutFactor = lc.timeoutFactor;
        const auto d = deploy(24, config.radius, seed * 13);
        const IdAssignment ids = IdAssignment::identity(24);
        StaticPlacement mobility(d.points);
        NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
        const auto result = sim.runUntilQuiet(8 * config.beaconInterval,
                                              600 * config.beaconInterval);
        const bool good =
            result.quiet && analysis::checkMatchingFixpoint(
                                sim.currentTopology(), sim.states())
                                .ok();
        quiet += good ? 1 : 0;
        rounds.push_back(static_cast<double>(sim.lastMoveTime()) /
                         static_cast<double>(config.beaconInterval));
        lost.push_back(static_cast<double>(result.stats.beaconsLost));
      }
      if (lc.minQuiet >= 0) allOk &= quiet >= lc.minQuiet;
      table.addRow(lc.loss, lc.timeoutFactor, std::to_string(quiet) + "/10",
                   analysis::summarize(rounds).mean,
                   analysis::summarize(lost).mean);
    }
    table.print();
    std::cout << "(high loss with a short timeout makes discovered links "
                 "flap, so the protocol keeps readjusting — the paper's "
                 "link-layer masking assumption; a timeout sized to the "
                 "loss rate restores quiescence)\n\n";
  }

  // (d): mobility phase, then freeze and measure re-stabilization.
  {
    std::cout << "SMM with random-waypoint mobility until t=60s, then "
                 "frozen (10 seeds):\n";
    Table table({"speed", "recovered", "re-stab. rounds after freeze (mean)"});
    for (const double speed : {0.01, 0.03, 0.06}) {
      int recovered = 0;
      std::vector<double> restabRounds;
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        NetworkConfig config;
        config.seed = seed;
        config.radius = 0.45;
        adhoc::RandomWaypoint::Config wp;
        wp.speedMin = speed * 0.5;
        wp.speedMax = speed;
        wp.stopTime = 60 * adhoc::kSecond;
        graph::Rng rng(seed * 17);
        adhoc::RandomWaypoint mobility(graph::randomPoints(20, rng), wp,
                                       seed);
        const IdAssignment ids = IdAssignment::identity(20);
        NetworkSimulator<PointerState> sim(smm, ids, mobility, config);
        sim.run(wp.stopTime);
        const auto result = sim.runUntilQuiet(
            5 * config.beaconInterval, wp.stopTime + 600 * adhoc::kSecond);
        const bool good =
            result.quiet && analysis::checkMatchingFixpoint(
                                sim.currentTopology(), sim.states())
                                .ok();
        recovered += good ? 1 : 0;
        restabRounds.push_back(
            static_cast<double>(
                std::max<SimTime>(0, sim.lastMoveTime() - wp.stopTime)) /
            static_cast<double>(config.beaconInterval));
      }
      allOk &= recovered == 10;
      table.addRow(speed, std::to_string(recovered) + "/10",
                   analysis::summarize(restabRounds).mean);
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "beacon-model execution matches the abstract round model up "
                 "to small constants and survives loss and mobility");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
