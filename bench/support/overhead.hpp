// The disabled-telemetry contract, checked before benchmarking.
//
// SyncRunner::attachTelemetry(nullptr) must be observably free: the same
// trajectory, the same move counts, the same RunResult as a runner that
// never heard of telemetry. (ScopedTimer with a null sink performs no clock
// read, so the instrumented phases compile down to the bare loop.) The
// micro_telemetry benchmark then quantifies the residual timing difference;
// this check guarantees there is no *behavioral* difference to quantify.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab::bench {

inline void assertNullRegistryZeroOverhead() {
  graph::Rng rng(4242);
  const graph::Graph g = graph::connectedErdosRenyi(128, 0.06, rng);
  const auto ids = graph::IdAssignment::identity(128);
  const core::SmmProtocol smm = core::smmPaper();
  const auto start = engine::randomConfiguration<core::PointerState>(
      g, rng, core::randomPointerState);

  auto bare = start;
  engine::SyncRunner<core::PointerState> plain(smm, g, ids, 7);
  const engine::RunResult plainResult = plain.run(bare, 300);

  auto nulled = start;
  engine::SyncRunner<core::PointerState> detached(smm, g, ids, 7);
  detached.attachTelemetry(nullptr, nullptr);
  const engine::RunResult detachedResult = detached.run(nulled, 300);

  if (!(plainResult == detachedResult) || !(bare == nulled)) {
    std::fprintf(stderr,
                 "FATAL: attachTelemetry(nullptr) changed the trajectory "
                 "(rounds %zu vs %zu, moves %zu vs %zu)\n",
                 plainResult.rounds, detachedResult.rounds,
                 plainResult.totalMoves, detachedResult.totalMoves);
    std::abort();
  }
}

}  // namespace selfstab::bench
