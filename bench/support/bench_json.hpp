// Machine-readable benchmark results.
//
// Benchmarks print human summaries to stdout; CI additionally wants one
// JSONL stream it can diff across commits. Every bench calls
// appendBenchJson(); when the SELFSTAB_BENCH_JSON env var names a file, one
// {"bench":"<name>",...} line is appended per call (scripts/run_all.sh
// points it at BENCH_PR4.json), and when it is unset the call is a no-op so
// ad hoc runs stay clean.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <initializer_list>

namespace selfstab::bench {

struct JsonField {
  const char* key;
  double value;
};

inline void appendBenchJson(const char* name,
                            std::initializer_list<JsonField> fields) {
  const char* path = std::getenv("SELFSTAB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"bench\":\"%s\"", name);
  for (const JsonField& field : fields) {
    std::fprintf(f, ",\"%s\":%.17g", field.key, field.value);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace selfstab::bench
