// Minimal fixed-width table printer for the experiment binaries.
#pragma once

#include <cstddef>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace selfstab::bench {

/// Accumulates rows of stringified cells and prints them with columns padded
/// to the widest cell. Keeps experiment output readable and diff-friendly.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  template <typename... Cells>
  void addRow(const Cells&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(toCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void print(std::ostream& out = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c) {
      widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    printRow(out, header_, widths);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto& row : rows_) printRow(out, row, widths);
  }

 private:
  template <typename T>
  static std::string toCell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(2) << value;
      return ss.str();
    } else {
      std::ostringstream ss;
      ss << value;
      return ss.str();
    }
  }

  static void printRow(std::ostream& out, const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
          << row[c];
    }
    out << '\n';
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==============================================================="
               "=================\n"
            << id << '\n'
            << "Paper claim: " << claim << '\n'
            << "==============================================================="
               "=================\n";
}

/// Prints a one-line verdict the harness (and EXPERIMENTS.md) keys off.
inline void verdict(bool ok, const std::string& what) {
  std::cout << (ok ? "[REPRODUCED] " : "[MISMATCH]   ") << what << "\n\n";
}

}  // namespace selfstab::bench
