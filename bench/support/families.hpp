// Shared graph-family registry for the experiment binaries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/id_order.hpp"

namespace selfstab::bench {

struct Family {
  std::string name;
  std::function<graph::Graph(std::size_t n, graph::Rng& rng)> make;
};

/// The structured + random families every sweep uses. Sizes are taken as
/// "approximately n": grid rounds to a 4-wide mesh.
inline std::vector<Family> standardFamilies() {
  return {
      {"path", [](std::size_t n, graph::Rng&) { return graph::path(n); }},
      {"cycle", [](std::size_t n, graph::Rng&) { return graph::cycle(n); }},
      {"star", [](std::size_t n, graph::Rng&) { return graph::star(n); }},
      {"complete",
       [](std::size_t n, graph::Rng&) { return graph::complete(n); }},
      {"bintree",
       [](std::size_t n, graph::Rng&) { return graph::binaryTree(n); }},
      {"grid4",
       [](std::size_t n, graph::Rng&) { return graph::grid(n / 4 + 1, 4); }},
      {"gnp(4/n)",
       [](std::size_t n, graph::Rng& rng) {
         return graph::connectedErdosRenyi(
             n, 4.0 / static_cast<double>(n), rng);
       }},
      {"udg(r=.3)",
       [](std::size_t n, graph::Rng& rng) {
         return graph::connectedRandomGeometric(n, 0.3, rng);
       }},
  };
}

/// The ID orders every sweep uses.
struct IdOrderCase {
  std::string name;
  std::function<graph::IdAssignment(std::size_t n, graph::Rng& rng)> make;
};

inline std::vector<IdOrderCase> standardIdOrders() {
  return {
      {"identity",
       [](std::size_t n, graph::Rng&) {
         return graph::IdAssignment::identity(n);
       }},
      {"reversed",
       [](std::size_t n, graph::Rng&) {
         return graph::IdAssignment::reversed(n);
       }},
      {"random",
       [](std::size_t n, graph::Rng& rng) {
         return graph::IdAssignment::randomPermutation(n, rng);
       }},
  };
}

}  // namespace selfstab::bench
