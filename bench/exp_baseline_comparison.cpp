// Experiment E7 — the "not as fast" claim (Section 3 opening).
//
// "While the central daemon algorithm of [15] may be converted into a
//  synchronous model protocol using the techniques of [1, 16], the resulting
//  protocol is not as fast."
//
// We compare three executions of maximal matching:
//   1. SMM (the paper's native synchronous protocol)        — rounds
//   2. Hsu-Huang under the [16]-style local-mutex transform — rounds
//   3. Hsu-Huang under central daemons                      — moves
// The reproduction target is the *shape*: (2) costs multiples of (1) in
// rounds, growing with density (lock contention), while (3) is correct but
// serial.
#include <iostream>

#include "analysis/stats.hpp"
#include "analysis/verifiers.hpp"
#include "bench/support/table.hpp"
#include "core/local_mutex.hpp"
#include "core/smm.hpp"
#include "engine/daemons.hpp"
#include "engine/fault.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"

namespace selfstab {
namespace {

using bench::Table;
using core::PointerState;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

int run() {
  bench::banner("E7: SMM vs transformed Hsu-Huang (Section 3)",
                "the daemon-refined conversion of [15] stabilizes but needs "
                "more rounds than the native synchronous SMM");

  bool allOk = true;
  graph::Rng rng(0xE7);
  const core::SmmProtocol native = core::smmPaper();
  const core::Synchronized<core::SmmProtocol> transformed(
      core::Choice::First, core::Choice::First);

  {
    std::cout << "Rounds to stabilize (30 random starts each):\n";
    Table table({"graph", "n", "SMM mean", "SMM max", "sync-HH mean",
                 "sync-HH max", "slowdown"});
    struct Case {
      std::string name;
      Graph g;
    };
    std::vector<Case> cases;
    cases.push_back({"path(64)", graph::path(64)});
    cases.push_back({"cycle(64)", graph::cycle(64)});
    cases.push_back({"grid(8x8)", graph::grid(8, 8)});
    cases.push_back(
        {"gnp(64,4/n)", graph::connectedErdosRenyi(64, 4.0 / 64, rng)});
    cases.push_back(
        {"gnp(64,12/n)", graph::connectedErdosRenyi(64, 12.0 / 64, rng)});
    cases.push_back({"complete(64)", graph::complete(64)});

    double aggregateNative = 0;
    double aggregateTransformed = 0;
    for (const auto& [name, g] : cases) {
      const IdAssignment ids = IdAssignment::identity(g.order());
      std::vector<double> nativeRounds;
      std::vector<double> transformedRounds;
      for (int t = 0; t < 30; ++t) {
        const auto start = engine::randomConfiguration<PointerState>(
            g, rng, core::randomPointerState);

        auto a = start;
        SyncRunner<PointerState> runnerA(native, g, ids, t);
        const auto ra = runnerA.run(a, 100000);
        allOk &= ra.stabilized && analysis::checkMatchingFixpoint(g, a).ok();
        nativeRounds.push_back(static_cast<double>(ra.rounds));

        auto b = start;
        SyncRunner<PointerState> runnerB(transformed, g, ids, t);
        const auto rb = runnerB.run(b, 100000);
        allOk &= rb.stabilized && analysis::checkMatchingFixpoint(g, b).ok();
        transformedRounds.push_back(static_cast<double>(rb.rounds));
      }
      const auto sn = analysis::summarize(nativeRounds);
      const auto st = analysis::summarize(transformedRounds);
      aggregateNative += sn.mean;
      aggregateTransformed += st.mean;
      table.addRow(name, g.order(), sn.mean, sn.max, st.mean, st.max,
                   st.mean / std::max(sn.mean, 1.0));
    }
    table.print();
    allOk &= aggregateTransformed > aggregateNative;
    std::cout << '\n';
  }

  {
    std::cout << "Hsu-Huang under central daemons (moves, 20 random starts "
                 "each, gnp(n,5/n)):\n";
    Table table({"n", "policy", "mean moves", "max moves", "n^2"});
    const core::SmmProtocol hh = core::hsuHuang();
    for (const std::size_t n : {32u, 64u, 128u}) {
      const Graph g =
          graph::connectedErdosRenyi(n, 5.0 / static_cast<double>(n), rng);
      const IdAssignment ids = IdAssignment::identity(n);
      const std::vector<std::pair<std::string, engine::CentralPolicy>>
          policies{{"random", engine::CentralPolicy::Random},
                   {"round-robin", engine::CentralPolicy::RoundRobin}};
      for (const auto& [policyName, policy] : policies) {
        std::vector<double> moves;
        for (int t = 0; t < 20; ++t) {
          auto states = engine::randomConfiguration<PointerState>(
              g, rng, core::randomPointerState);
          engine::CentralDaemonRunner<PointerState> runner(
              hh, g, ids, policy, static_cast<std::uint64_t>(t));
          const auto result = runner.run(states, n * n * n);
          allOk &= result.stabilized &&
                   analysis::checkMatchingFixpoint(g, states).ok();
          moves.push_back(static_cast<double>(result.moves));
        }
        const auto s = analysis::summarize(moves);
        table.addRow(n, policyName, s.mean, s.max, n * n);
      }
    }
    table.print();
    std::cout << '\n';
  }

  bench::verdict(allOk,
                 "both approaches produce maximal matchings; the transformed "
                 "central-daemon baseline needs strictly more rounds "
                 "(the paper's 'not as fast')");
  return allOk ? 0 : 1;
}

}  // namespace
}  // namespace selfstab

int main() { return selfstab::run(); }
