// Flat-kernel microbench plus its acceptance gate.
//
// The flat kernels (src/core/*_kernel.hpp) exist to strip the generic
// path's per-node LocalView assembly, virtual onRound dispatch, and
// per-neighbor pointer chase out of the round loop. The gate in main()
// measures whole-round rule-evaluation throughput for SIS — the kernel the
// word-parallel bitset argument was made for — on both a power-law
// (preferential-attachment) and a geometric (unit-disk) topology, and
// exits non-zero unless the flat kernel clears 3x the generic path's
// evaluations/second on each. Results are appended to the
// SELFSTAB_BENCH_JSON stream (scripts/run_all.sh points it at
// BENCH_PR5.json). SELFSTAB_SMOKE=1 shrinks the gate for the sub-minute
// smoke pass (scripts/bench_smoke.sh).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/kernels.hpp"
#include "core/sis.hpp"
#include "core/smm.hpp"
#include "engine/fault.hpp"
#include "engine/parallel_runner.hpp"
#include "engine/sync_runner.hpp"
#include "graph/generators.hpp"
#include "support/bench_json.hpp"

namespace selfstab {
namespace {

using core::BitState;
using core::PointerState;
using engine::Schedule;
using engine::SyncRunner;
using graph::Graph;
using graph::IdAssignment;

enum class Family { Geometric, PowerLaw };

Graph makeGraph(Family family, std::size_t n, graph::Rng& rng) {
  if (family == Family::PowerLaw) {
    // m=8 attachment edges: average degree ~16 with the heavy hub tail
    // that motivates degree-weighted partitioning.
    return graph::preferentialAttachment(n, 8, rng);
  }
  const double radius = 2.2 / std::sqrt(static_cast<double>(n));
  return graph::connectedRandomGeometric(n, radius, rng);
}

const char* toString(Family family) {
  return family == Family::PowerLaw ? "powerlaw" : "geometric";
}

/// One timed batch: `reps` dense steps on an already-converged runner.
/// Every dense step() still evaluates all n vertices, so this isolates
/// pure whole-round rule-evaluation throughput (evaluations/second).
template <typename State>
double timeBatch(SyncRunner<State>& runner, std::vector<State>& states,
                 int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    benchmark::DoNotOptimize(runner.step(states));
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(reps) * static_cast<double>(states.size()) /
         seconds;
}

struct GateRates {
  double generic = 0.0;
  double flat = 0.0;
  [[nodiscard]] double speedup() const { return flat / generic; }
};

/// Generic-vs-flat SIS throughput, measured as the best of three
/// *interleaved* batches: each batch times the generic and the flat runner
/// back to back and the gate compares per-batch ratios, so a drift in
/// machine speed (shared/throttled hosts) hits both paths of a batch
/// equally and cancels out of the speedup instead of flaking the gate.
GateRates measureSisGate(const Graph& g, const IdAssignment& ids, int reps) {
  const core::SisProtocol sis;
  SyncRunner<BitState> genericRunner(sis, g, ids, /*seed=*/7, Schedule::Dense);
  SyncRunner<BitState> flatRunner(sis, g, ids, /*seed=*/7, Schedule::Dense);
  auto kernel = core::makeFlatKernel<BitState>(sis, g, ids);
  if (kernel == nullptr) {
    std::fprintf(stderr, "FAIL: no flat kernel for SIS\n");
    std::exit(1);
  }
  flatRunner.setKernel(std::move(kernel));

  auto genericStates = genericRunner.initialStates();
  auto flatStates = flatRunner.initialStates();
  if (!genericRunner.run(genericStates, g.order() + 1).stabilized ||
      !flatRunner.run(flatStates, g.order() + 1).stabilized) {
    std::fprintf(stderr, "FAIL: SIS setup run did not stabilize\n");
    std::exit(1);
  }

  GateRates best;
  for (int batch = 0; batch < 3; ++batch) {
    GateRates sample;
    sample.generic = timeBatch(genericRunner, genericStates, reps);
    sample.flat = timeBatch(flatRunner, flatStates, reps);
    if (best.generic == 0.0 || sample.speedup() > best.speedup()) {
      best = sample;
    }
  }
  return best;
}

/// The acceptance gate: flat SIS evaluation must be >= 3x generic on both
/// graph families, measured before any benchmark timing.
void assertFlatKernelWins() {
  const bool smoke = std::getenv("SELFSTAB_SMOKE") != nullptr;
  const std::size_t n = smoke ? 20'000 : 200'000;
  const int reps = smoke ? 20 : 40;

  for (const Family family : {Family::PowerLaw, Family::Geometric}) {
    graph::Rng rng(42);
    const Graph g = makeGraph(family, n, rng);
    const IdAssignment ids = IdAssignment::identity(g.order());

    const GateRates rates = measureSisGate(g, ids, reps);
    const double generic = rates.generic;
    const double flat = rates.flat;
    const double speedup = rates.speedup();

    std::fprintf(stderr,
                 "kernel gate [%s]: n=%zu m=%zu | generic %.3g evals/s | "
                 "flat %.3g evals/s | speedup %.2fx\n",
                 toString(family), static_cast<std::size_t>(g.order()),
                 static_cast<std::size_t>(g.size()), generic, flat, speedup);

    const std::string row =
        std::string("micro_kernels/sis_gate_") + toString(family);
    bench::appendBenchJson(row.c_str(),
                           {{"n", static_cast<double>(g.order())},
                            {"m", static_cast<double>(g.size())},
                            {"generic_evals_per_sec", generic},
                            {"flat_evals_per_sec", flat},
                            {"speedup", speedup}});

    if (speedup < 3.0) {
      std::fprintf(stderr,
                   "FAIL: flat SIS kernel speedup %.2fx on %s graph, below "
                   "the 3x gate\n",
                   speedup, toString(family));
      std::exit(1);
    }
  }
}

/// Companion measurement (recorded, not gated): SMM flat-vs-generic on the
/// same converged-sweep methodology.
void recordSmmSpeedup() {
  const bool smoke = std::getenv("SELFSTAB_SMOKE") != nullptr;
  const std::size_t n = smoke ? 20'000 : 100'000;
  const int reps = smoke ? 10 : 20;
  for (const Family family : {Family::PowerLaw, Family::Geometric}) {
    graph::Rng rng(43);
    const Graph g = makeGraph(family, n, rng);
    const IdAssignment ids = IdAssignment::identity(g.order());
    const core::SmmProtocol smm = core::smmPaper();

    // Same interleaved-batch methodology as the SIS gate.
    SyncRunner<PointerState> genericRunner(smm, g, ids, /*seed=*/7,
                                           Schedule::Dense);
    SyncRunner<PointerState> flatRunner(smm, g, ids, /*seed=*/7,
                                        Schedule::Dense);
    flatRunner.setKernel(core::makeFlatKernel<PointerState>(smm, g, ids));
    auto genericStates = genericRunner.initialStates();
    auto flatStates = flatRunner.initialStates();
    if (!genericRunner.run(genericStates, 2 * g.order() + 1).stabilized ||
        !flatRunner.run(flatStates, 2 * g.order() + 1).stabilized) {
      std::fprintf(stderr, "FAIL: SMM setup run did not stabilize\n");
      std::exit(1);
    }
    GateRates best;
    for (int batch = 0; batch < 3; ++batch) {
      GateRates sample;
      sample.generic = timeBatch(genericRunner, genericStates, reps);
      sample.flat = timeBatch(flatRunner, flatStates, reps);
      if (best.generic == 0.0 || sample.speedup() > best.speedup()) {
        best = sample;
      }
    }

    std::fprintf(stderr,
                 "kernel info [%s]: smm generic %.3g evals/s | flat %.3g "
                 "evals/s | speedup %.2fx\n",
                 toString(family), best.generic, best.flat, best.speedup());
    const std::string row =
        std::string("micro_kernels/smm_info_") + toString(family);
    bench::appendBenchJson(row.c_str(),
                           {{"n", static_cast<double>(g.order())},
                            {"generic_evals_per_sec", best.generic},
                            {"flat_evals_per_sec", best.flat},
                            {"speedup", best.speedup()}});
  }
}

// ---- Timed benchmarks -----------------------------------------------------

/// Dense converged sweep, serial runner: the purest view of evaluation
/// throughput. Covers SMM and SIS, both graph families, flat vs generic.
template <typename State, typename Protocol>
void denseStepBench(benchmark::State& state, const Protocol& protocol,
                    Family family, bool flat) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g = makeGraph(family, n, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());
  SyncRunner<State> runner(protocol, g, ids, /*seed=*/7, Schedule::Dense);
  if (flat) runner.setKernel(core::makeFlatKernel<State>(protocol, g, ids));
  auto states = runner.initialStates();
  if (!runner.run(states, 2 * g.order() + 1).stabilized) {
    state.SkipWithError("setup failed to stabilize");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

/// Fault-burst recovery under the active schedule, serial runner: exercises
/// the kernels' evaluateList + apply path instead of the dense range sweep.
template <typename State, typename Protocol, typename Sampler>
void activeRecoveryBench(benchmark::State& state, const Protocol& protocol,
                         Family family, bool flat, Sampler sampler) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g = makeGraph(family, n, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());
  SyncRunner<State> runner(protocol, g, ids, /*seed=*/7, Schedule::Active);
  if (flat) runner.setKernel(core::makeFlatKernel<State>(protocol, g, ids));
  auto converged = runner.initialStates();
  const std::size_t bound = 2 * g.order() + 1;
  if (!runner.run(converged, bound).stabilized) {
    state.SkipWithError("setup failed to stabilize");
    return;
  }
  std::uint64_t burst = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto states = converged;
    graph::Rng faultRng(1000 + burst++);
    engine::corruptAndReschedule(runner, states, g, faultRng, 0.005, sampler);
    state.ResumeTiming();
    benchmark::DoNotOptimize(runner.run(states, bound).rounds);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

/// Dense converged sweep on the worker pool: evaluation throughput under
/// the degree-weighted partition, flat vs generic.
template <typename State, typename Protocol>
void parallelDenseStepBench(benchmark::State& state, const Protocol& protocol,
                            Family family, bool flat) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(n);
  const Graph g = makeGraph(family, n, rng);
  const IdAssignment ids = IdAssignment::identity(g.order());
  engine::ParallelSyncRunner<State> runner(protocol, g, ids, /*threads=*/4,
                                           /*seed=*/7, Schedule::Dense);
  if (flat) runner.setKernel(core::makeFlatKernel<State>(protocol, g, ids));
  std::vector<State> states;
  states.reserve(g.order());
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    states.push_back(protocol.initialState(v));
  }
  if (!runner.run(states, 2 * g.order() + 1).stabilized) {
    state.SkipWithError("setup failed to stabilize");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.step(states));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}

const core::SisProtocol kSis;
const core::SmmProtocol kSmm = core::smmPaper();

void BM_SisDenseGenericPower(benchmark::State& s) {
  denseStepBench<BitState>(s, kSis, Family::PowerLaw, false);
}
void BM_SisDenseFlatPower(benchmark::State& s) {
  denseStepBench<BitState>(s, kSis, Family::PowerLaw, true);
}
void BM_SisDenseGenericGeo(benchmark::State& s) {
  denseStepBench<BitState>(s, kSis, Family::Geometric, false);
}
void BM_SisDenseFlatGeo(benchmark::State& s) {
  denseStepBench<BitState>(s, kSis, Family::Geometric, true);
}
BENCHMARK(BM_SisDenseGenericPower)->Arg(16384);
BENCHMARK(BM_SisDenseFlatPower)->Arg(16384);
BENCHMARK(BM_SisDenseGenericGeo)->Arg(16384);
BENCHMARK(BM_SisDenseFlatGeo)->Arg(16384);

void BM_SmmDenseGenericPower(benchmark::State& s) {
  denseStepBench<PointerState>(s, kSmm, Family::PowerLaw, false);
}
void BM_SmmDenseFlatPower(benchmark::State& s) {
  denseStepBench<PointerState>(s, kSmm, Family::PowerLaw, true);
}
void BM_SmmDenseGenericGeo(benchmark::State& s) {
  denseStepBench<PointerState>(s, kSmm, Family::Geometric, false);
}
void BM_SmmDenseFlatGeo(benchmark::State& s) {
  denseStepBench<PointerState>(s, kSmm, Family::Geometric, true);
}
BENCHMARK(BM_SmmDenseGenericPower)->Arg(16384);
BENCHMARK(BM_SmmDenseFlatPower)->Arg(16384);
BENCHMARK(BM_SmmDenseGenericGeo)->Arg(16384);
BENCHMARK(BM_SmmDenseFlatGeo)->Arg(16384);

void BM_SmmActiveRecoveryGeneric(benchmark::State& s) {
  activeRecoveryBench<PointerState>(s, kSmm, Family::Geometric, false,
                                    core::wildPointerState);
}
void BM_SmmActiveRecoveryFlat(benchmark::State& s) {
  activeRecoveryBench<PointerState>(s, kSmm, Family::Geometric, true,
                                    core::wildPointerState);
}
BENCHMARK(BM_SmmActiveRecoveryGeneric)->Arg(16384);
BENCHMARK(BM_SmmActiveRecoveryFlat)->Arg(16384);

void BM_SisActiveRecoveryGeneric(benchmark::State& s) {
  activeRecoveryBench<BitState>(s, kSis, Family::PowerLaw, false,
                                core::randomBitState);
}
void BM_SisActiveRecoveryFlat(benchmark::State& s) {
  activeRecoveryBench<BitState>(s, kSis, Family::PowerLaw, true,
                                core::randomBitState);
}
BENCHMARK(BM_SisActiveRecoveryGeneric)->Arg(16384);
BENCHMARK(BM_SisActiveRecoveryFlat)->Arg(16384);

void BM_SisParallelDenseGeneric(benchmark::State& s) {
  parallelDenseStepBench<BitState>(s, kSis, Family::PowerLaw, false);
}
void BM_SisParallelDenseFlat(benchmark::State& s) {
  parallelDenseStepBench<BitState>(s, kSis, Family::PowerLaw, true);
}
void BM_SmmParallelDenseGeneric(benchmark::State& s) {
  parallelDenseStepBench<PointerState>(s, kSmm, Family::PowerLaw, false);
}
void BM_SmmParallelDenseFlat(benchmark::State& s) {
  parallelDenseStepBench<PointerState>(s, kSmm, Family::PowerLaw, true);
}
BENCHMARK(BM_SisParallelDenseGeneric)->Arg(65536);
BENCHMARK(BM_SisParallelDenseFlat)->Arg(65536);
BENCHMARK(BM_SmmParallelDenseGeneric)->Arg(65536);
BENCHMARK(BM_SmmParallelDenseFlat)->Arg(65536);

}  // namespace
}  // namespace selfstab

int main(int argc, char** argv) {
  // Hard gate before timing anything: the flat SIS kernel must deliver the
  // promised 3x evaluation-throughput win on both graph families.
  selfstab::assertFlatKernelWins();
  selfstab::recordSmmSpeedup();
  // Gate-only mode for scripts/bench_smoke.sh: skip the timed benchmarks.
  if (std::getenv("SELFSTAB_GATE_ONLY") != nullptr) return 0;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
